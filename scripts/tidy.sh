#!/usr/bin/env bash
# clang-tidy gate over the library code (src/, tools/ and tests/),
# driven by the CMake compilation database. Part of scripts/check.sh
# --all.
#
# Usage:
#   scripts/tidy.sh                 # tidy every src/, tools/ and tests/ TU
#   scripts/tidy.sh --changed [REF] # only TUs touched since REF
#                                   # (default: $TIDY_BASE_REF or HEAD~1)
#   BUILD_DIR=build-foo scripts/tidy.sh
#   CLANG_TIDY=clang-tidy-18 scripts/tidy.sh
#   TIDY_BASE_REF=origin/main scripts/tidy.sh --changed
#
# The base ref diffs via the merge base (three-dot semantics), so a CI
# run on a branch compares against where the branch forked from
# origin/main, not whatever origin/main has moved on to. The diff is
# filtered to added/copied/modified/renamed files so a header renamed or
# added on the branch still tidies the TUs next to it.
#
# The container used for the offline experiment sweeps ships only g++;
# when clang-tidy is not installed this script SKIPS (exit 0) with a
# loud notice rather than failing, so check.sh stays runnable
# everywhere. CI installs clang-tidy and gets the full gate.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
BUILD_DIR="${BUILD_DIR:-build}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "tidy.sh: SKIPPED — '$TIDY' is not installed." >&2
  echo "tidy.sh: install clang-tidy (>= 15) or set CLANG_TIDY to run this gate." >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Collect the translation units to tidy. Headers are covered through
# the TUs that include them (HeaderFilterRegex in .clang-tidy).
mapfile -t files < <(find src tools tests -name '*.cpp' | sort)

if [ "${1:-}" = "--changed" ]; then
  base="${2:-${TIDY_BASE_REF:-HEAD~1}}"
  # An unresolvable base (shallow clone, missing remote ref) must be a
  # hard failure: silently diffing nothing would skip the whole gate.
  if ! git rev-parse --verify --quiet "$base^{commit}" >/dev/null; then
    echo "tidy.sh: FAILED — base ref '$base' is not resolvable." >&2
    echo "tidy.sh: in CI, check out with full history (actions/checkout" >&2
    echo "tidy.sh: fetch-depth: 0); locally, fetch the ref or pass one" >&2
    echo "tidy.sh: that exists (scripts/tidy.sh --changed REF)." >&2
    exit 1
  fi
  # merge-base comparison: changes on this branch only, not upstream's.
  if merge_base=$(git merge-base "$base" HEAD 2>/dev/null); then
    if [ "$merge_base" = "$(git rev-parse HEAD)" ]; then
      base="HEAD~1"  # base already contains HEAD (push to main): diff
                     # the last commit instead of nothing
    else
      base="$merge_base"
    fi
  else
    echo "tidy.sh: FAILED — no merge base between '$base' and HEAD" >&2
    echo "tidy.sh: (disjoint histories or shallow clone)." >&2
    exit 1
  fi
  mapfile -t changed < <(git diff --name-only --diff-filter=ACMR "$base" -- \
    'src/*.cpp' 'src/*.hpp' 'src/*.h' 'src/*.hh' \
    'tools/*.cpp' 'tools/*.hpp' 'tools/*.h' 'tools/*.hh' \
    'tests/*.cpp' 'tests/*.hpp' 'tests/*.h' 'tests/*.hh' | sort -u)
  if [ "${#changed[@]}" -eq 0 ]; then
    echo "tidy.sh: no src/tools/tests changes since $base — nothing to tidy."
    exit 0
  fi
  # A touched header tidies every TU in its directory (cheap safe
  # over-approximation of reverse includes).
  declare -A pick=()
  for f in "${changed[@]}"; do
    case "$f" in
      *.cpp) pick["$f"]=1 ;;
      *.hpp | *.h | *.hh)
             for tu in "$(dirname "$f")"/*.cpp; do
               [ -f "$tu" ] && pick["$tu"]=1
             done ;;
    esac
  done
  files=("${!pick[@]}")
  if [ "${#files[@]}" -eq 0 ]; then
    echo "tidy.sh: changed files have no translation units — done."
    exit 0
  fi
fi

echo "tidy.sh: $TIDY over ${#files[@]} translation units (database: $BUILD_DIR)"
status=0
for f in "${files[@]}"; do
  # WarningsAsErrors in .clang-tidy turns any finding into a hard fail.
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "tidy.sh: FAILED — fix the findings above or NOLINT them with a reason." >&2
  exit 1
fi
echo "tidy.sh: OK"
