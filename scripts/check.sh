#!/usr/bin/env bash
# Correctness gate for the simulator core (see DESIGN.md "Correctness
# tooling").
#
# Usage:
#   scripts/check.sh                    # one build + ctest (RelWithDebInfo)
#   LMK_SANITIZE=address scripts/check.sh
#   LMK_SANITIZE=undefined scripts/check.sh
#   LMK_SANITIZE=thread scripts/check.sh
#   scripts/check.sh --audit            # build + ctest with LMK_AUDIT=1:
#                                       # every experiment run gets the
#                                       # invariant auditor attached
#                                       # (src/audit/, fail-fast)
#   scripts/check.sh --all              # the full gate:
#                                       #   1. lmk-lint over src/
#                                       #   2. clang-tidy (scripts/tidy.sh)
#                                       #   3. plain build (-Werror) + ctest
#                                       #   4. audit leg (LMK_AUDIT=1 ctest)
#                                       #   5. ASan, UBSan, TSan builds + ctest
#
# Every build is -Werror for src/ and tools/ (LMK_WERROR=ON). Each
# sanitizer gets its own build directory (build-check-<san>) so
# instrumented and plain builds never mix objects.
set -euo pipefail

cd "$(dirname "$0")/.."

# Exercise the thread pool with a wide pool even on small CI machines.
export LMK_THREADS="${LMK_THREADS:-8}"

run_leg() {
  local san="$1"
  local build_dir cmake_args
  if [ -n "$san" ]; then
    build_dir="build-check-${san}"
    cmake_args=(-DLMK_SANITIZE="${san}")
  else
    build_dir="build-check"
    cmake_args=()
  fi
  echo "== check.sh: leg '${san:-plain}' (${build_dir}) =="
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON "${cmake_args[@]}"
  cmake --build "$build_dir" -j"$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"
}

run_lint() {
  echo "== check.sh: lmk-lint =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)" --target lmk-lint >/dev/null
  ./build-check/tools/lint/lmk-lint src
}

run_audit() {
  echo "== check.sh: audit leg (LMK_AUDIT=1) =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)"
  LMK_AUDIT=1 ctest --test-dir build-check --output-on-failure -j"$(nproc)"
}

if [ "${1:-}" = "--audit" ]; then
  run_audit
  echo "check.sh: OK (audit leg, LMK_THREADS=$LMK_THREADS)"
  exit 0
fi

if [ "${1:-}" = "--all" ]; then
  run_lint
  BUILD_DIR=build-check scripts/tidy.sh
  run_leg ""
  run_audit
  for san in address undefined thread; do
    run_leg "$san"
  done
  echo "check.sh: OK (--all: lint + tidy + plain + audit + asan/ubsan/tsan," \
       "LMK_THREADS=$LMK_THREADS)"
  exit 0
fi

run_leg "${LMK_SANITIZE:-}"
echo "check.sh: OK (${LMK_SANITIZE:-no sanitizer}, LMK_THREADS=$LMK_THREADS)"
