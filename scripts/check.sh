#!/usr/bin/env bash
# Build + tier-1 test smoke script, with optional sanitizer
# instrumentation for the offline threading code.
#
# Usage:
#   scripts/check.sh                    # plain RelWithDebInfo build + ctest
#   LMK_SANITIZE=address scripts/check.sh
#   LMK_SANITIZE=undefined scripts/check.sh
#   LMK_SANITIZE=thread scripts/check.sh
#
# Each sanitizer gets its own build directory (build-check-<san>) so
# instrumented and plain builds never mix objects.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${LMK_SANITIZE:-}"
if [ -n "$SAN" ]; then
  BUILD_DIR="build-check-${SAN}"
  CMAKE_ARGS=(-DLMK_SANITIZE="${SAN}")
else
  BUILD_DIR="build-check"
  CMAKE_ARGS=()
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)"

# Exercise the thread pool under the sanitizer with a wide pool even on
# small CI machines.
export LMK_THREADS="${LMK_THREADS:-8}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "check.sh: OK (${SAN:-no sanitizer}, LMK_THREADS=$LMK_THREADS)"
