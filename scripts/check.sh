#!/usr/bin/env bash
# Correctness gate for the simulator core (see DESIGN.md "Correctness
# tooling").
#
# Usage:
#   scripts/check.sh                    # one build + ctest (RelWithDebInfo)
#   LMK_SANITIZE=address scripts/check.sh
#   LMK_SANITIZE=undefined scripts/check.sh
#   LMK_SANITIZE=thread scripts/check.sh
#   scripts/check.sh --audit            # build + ctest with LMK_AUDIT=1:
#                                       # every experiment run gets the
#                                       # invariant auditor attached
#                                       # (src/audit/, fail-fast)
#   scripts/check.sh --all              # the full gate:
#                                       #   1. lmk-lint over src/ tools/ tests/
#                                       #   2. clang-tidy (scripts/tidy.sh)
#                                       #   3. plain build (-Werror) + ctest
#                                       #   4. audit leg (LMK_AUDIT=1 ctest)
#                                       #   5. ASan, UBSan, TSan builds + ctest
#                                       #   6. alloc-guard leg (below)
#                                       #   7. sched smoke (below)
#                                       #   8. store smoke (below)
#                                       #   9. serve smoke (below)
#   scripts/check.sh --alloc-guard [--warn-only]
#                                       # allocation-discipline leg: build
#                                       # with -DLMK_ALLOC_GUARD=ON and
#                                       # -DLMK_ARENA_GUARD=ON (operator
#                                       # new/delete interposed, arena
#                                       # lifetime sanitizer armed), ctest,
#                                       # then a toy-scale bench_perf whose
#                                       # per-phase allocation JSON feeds
#                                       # bench_diff.py's zero-steady-state-
#                                       # allocation gate (a HARD gate: it
#                                       # fails even under --warn-only)
#   scripts/check.sh --bench-smoke [--warn-only]
#                                       # toy-scale online bench_perf run +
#                                       # bench_diff.py events/sec regression
#                                       # check against the committed
#                                       # bench/BENCH_perf.baseline.json
#                                       # (--warn-only: report, never fail —
#                                       # what CI uses on shared runners)
#   scripts/check.sh --flagship-smoke [--warn-only]
#                                       # reduced-scale bench_flagship run
#                                       # (256 nodes / 20k objects), twice:
#                                       # LMK_THREADS=1 and =8, byte-compares
#                                       # the deterministic JSON sections
#                                       # (that cmp fails hard even under
#                                       # --warn-only), then bench_diff.py
#                                       # --flagship-only gates p99 latency,
#                                       # arena high-water, and bytes on the
#                                       # wire against the committed
#                                       # bench/BENCH_flagship.baseline.json
#   scripts/check.sh --store-smoke      # local-store ablation gate: run
#                                       # bench_ablation_localstore at smoke
#                                       # scale with LMK_THREADS=1 and =8,
#                                       # byte-compare the deterministic JSON
#                                       # sections, then re-run under
#                                       # LMK_ABL_ENFORCE=1 (HNSW and pivot
#                                       # must cut scanned/subquery >= 5x vs
#                                       # sorted, HNSW recall-vs-exact >=
#                                       # 0.95, pivot exact id-for-id)
#   scripts/check.sh --serve-smoke [--warn-only]
#                                       # serving-layer gate: bench_flagship
#                                       # with LMK_FLAGSHIP_SERVE=1 and
#                                       # LMK_SERVE_VERIFY=1 (every cache hit
#                                       # oracle-checked in-line) at
#                                       # LMK_THREADS=1 and =8, byte-compares
#                                       # the deterministic sections (serve
#                                       # sweep included; fails hard even
#                                       # under --warn-only), then
#                                       # bench_diff.py --flagship-only runs
#                                       # the serve gates: digest match, hit-
#                                       # rate floor, wire-ratio ceiling, and
#                                       # the 4x-overload p99 win
#   scripts/check.sh --sched-smoke      # schedule & fault exploration gate:
#                                       # a small lmk-sched seed swarm must
#                                       # pass on the clean tree, then a
#                                       # -DLMK_SCHED_MUTATION=ON build must
#                                       # be caught by the same swarm, ddmin-
#                                       # shrunk to <= 5 directives, and the
#                                       # minimized .sched must replay to the
#                                       # same auditor failure
#
# Every build is -Werror for src/ and tools/ (LMK_WERROR=ON). Each
# sanitizer gets its own build directory (build-check-<san>) so
# instrumented and plain builds never mix objects.
set -euo pipefail

cd "$(dirname "$0")/.."

# Exercise the thread pool with a wide pool even on small CI machines.
export LMK_THREADS="${LMK_THREADS:-8}"

run_leg() {
  local san="$1"
  local build_dir cmake_args
  if [ -n "$san" ]; then
    build_dir="build-check-${san}"
    cmake_args=(-DLMK_SANITIZE="${san}")
  else
    build_dir="build-check"
    cmake_args=()
  fi
  echo "== check.sh: leg '${san:-plain}' (${build_dir}) =="
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON "${cmake_args[@]}"
  cmake --build "$build_dir" -j"$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"
}

run_lint() {
  echo "== check.sh: lmk-lint =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)" --target lmk-lint >/dev/null
  ./build-check/tools/lint/lmk-lint src tools tests
}

run_sched_smoke() {
  echo "== check.sh: sched smoke (schedule & fault exploration gate) =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)" --target lmk-sched >/dev/null
  # Clean tree: every plan in the seed swarm must either keep the
  # invariants or recover by quiescence.
  LMK_SCHED_PLANS=6 ./build-check/tools/sched/lmk-sched explore \
    --out build-check/minimized.sched
  # Mutation tree: -DLMK_SCHED_MUTATION=ON plants a replication-repair
  # bug (src/core/index_platform.cpp). The same swarm must catch it,
  # ddmin must shrink the plan to <= 5 directives, and the minimized
  # reproducer must replay to the same auditor failure.
  cmake -B build-check-schedmutation -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON -DLMK_SCHED_MUTATION=ON >/dev/null
  cmake --build build-check-schedmutation -j"$(nproc)" --target lmk-sched \
    >/dev/null
  local sched=build-check-schedmutation/minimized.sched
  if LMK_SCHED_PLANS=6 ./build-check-schedmutation/tools/sched/lmk-sched \
      explore --out "$sched"; then
    echo "sched smoke: FAIL — planted mutation survived the seed swarm" >&2
    return 1
  fi
  if [ ! -f "$sched" ]; then
    echo "sched smoke: FAIL — no minimized reproducer written" >&2
    return 1
  fi
  local directives
  directives=$(grep -cvE '^(tie |#|$)' "$sched" || true)
  if [ "$directives" -gt 5 ]; then
    echo "sched smoke: FAIL — minimized plan has $directives directives" \
         "(want <= 5)" >&2
    return 1
  fi
  if ./build-check-schedmutation/tools/sched/lmk-sched replay "$sched"; then
    echo "sched smoke: FAIL — minimized reproducer replays clean" >&2
    return 1
  fi
  echo "sched smoke: mutation caught, shrunk to $directives directive(s)," \
       "reproducer replays to the same failure"
}

run_audit() {
  echo "== check.sh: audit leg (LMK_AUDIT=1) =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)"
  LMK_AUDIT=1 ctest --test-dir build-check --output-on-failure -j"$(nproc)"
}

run_bench_smoke() {
  echo "== check.sh: bench smoke (toy-scale online bench_perf) =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)" \
    --target bench_perf bench_fig2_synthetic_nolb >/dev/null
  # Toy scale: the offline phases shrink with the workload, while the
  # engine storm (events/sec, the number bench_diff gates on) measures
  # per-event dispatch cost, which is scale-independent.
  LMK_NODES=64 LMK_OBJECTS=2000 LMK_QUERIES=30 LMK_SAMPLE=200 \
    LMK_ONLINE_EVENTS=1000000 \
    LMK_PERF_OUT=build-check/BENCH_perf.smoke.json \
    LMK_PERF_BASELINE=bench/BENCH_perf.baseline.json \
    ./build-check/bench/bench_perf
  # Sweep-engine determinism: one figure sweep must emit byte-identical
  # tables strictly serial (LMK_THREADS=1) and parallel (LMK_THREADS=8).
  echo "== check.sh: bench smoke (fig2 sweep, 1 vs 8 threads) =="
  LMK_NODES=64 LMK_OBJECTS=2000 LMK_QUERIES=30 LMK_SAMPLE=200 \
    LMK_THREADS=1 ./build-check/bench/bench_fig2_synthetic_nolb \
    > build-check/fig2_sweep.t1.out
  LMK_NODES=64 LMK_OBJECTS=2000 LMK_QUERIES=30 LMK_SAMPLE=200 \
    LMK_THREADS=8 ./build-check/bench/bench_fig2_synthetic_nolb \
    > build-check/fig2_sweep.t8.out
  cmp build-check/fig2_sweep.t1.out build-check/fig2_sweep.t8.out
  echo "bench smoke: fig2 sweep byte-identical at 1 and 8 threads"
  scripts/bench_diff.py --current build-check/BENCH_perf.smoke.json "$@"
}

run_flagship_smoke() {
  echo "== check.sh: flagship smoke (reduced open-loop scenario) =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)" --target bench_flagship >/dev/null
  # The deterministic section (virtual-time latency, wire bytes, arena
  # marks, recall) must be byte-identical at any thread count; only the
  # wallclock section may differ.  Run the reduced scenario serial and
  # wide, compare the deterministic JSON, gate on the committed baseline.
  LMK_THREADS=1 \
    LMK_FLAGSHIP_OUT=build-check/BENCH_flagship.smoke.json \
    LMK_FLAGSHIP_DET_OUT=build-check/flagship_det.t1.json \
    ./build-check/bench/bench_flagship
  LMK_THREADS=8 \
    LMK_FLAGSHIP_OUT=build-check/BENCH_flagship.smoke.t8.json \
    LMK_FLAGSHIP_DET_OUT=build-check/flagship_det.t8.json \
    ./build-check/bench/bench_flagship >/dev/null
  cmp build-check/flagship_det.t1.json build-check/flagship_det.t8.json
  echo "flagship smoke: deterministic section byte-identical at 1 and 8 threads"
  scripts/bench_diff.py --flagship-only \
    --flagship build-check/BENCH_flagship.smoke.json "$@"
}

run_serve_smoke() {
  echo "== check.sh: serve smoke (serving-layer gate) =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)" --target bench_flagship >/dev/null
  # Serve-on sweep, serial and wide: the whole serving tier (cache fill
  # order, coalescing flushes, shed/retry/drop schedule) runs in virtual
  # time, so the deterministic section — serve sweep included — must be
  # byte-identical at any thread count. LMK_SERVE_VERIFY=1 re-solves
  # every cache hit against the store in-line: a stale hit aborts the
  # bench rather than passing the gate.
  LMK_THREADS=1 LMK_FLAGSHIP_SERVE=1 LMK_SERVE_VERIFY=1 \
    LMK_FLAGSHIP_OUT=build-check/BENCH_flagship.serve.json \
    LMK_FLAGSHIP_DET_OUT=build-check/serve_det.t1.json \
    ./build-check/bench/bench_flagship
  LMK_THREADS=8 LMK_FLAGSHIP_SERVE=1 LMK_SERVE_VERIFY=1 \
    LMK_FLAGSHIP_OUT=build-check/BENCH_flagship.serve.t8.json \
    LMK_FLAGSHIP_DET_OUT=build-check/serve_det.t8.json \
    ./build-check/bench/bench_flagship >/dev/null
  cmp build-check/serve_det.t1.json build-check/serve_det.t8.json
  echo "serve smoke: deterministic section byte-identical at 1 and 8 threads"
  scripts/bench_diff.py --flagship-only \
    --flagship build-check/BENCH_flagship.serve.json "$@"
}

run_store_smoke() {
  echo "== check.sh: store smoke (local-store ablation gate) =="
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON >/dev/null
  cmake --build build-check -j"$(nproc)" \
    --target bench_ablation_localstore >/dev/null
  # Backend determinism: the per-backend deterministic section (scan
  # counters, recalls, store bytes, rebuild counters) must be
  # byte-identical at any thread count, for all three backends at once.
  LMK_THREADS=1 \
    LMK_ABL_OUT=build-check/BENCH_ablation_localstore.t1.json \
    LMK_ABL_DET_OUT=build-check/localstore_det.t1.json \
    ./build-check/bench/bench_ablation_localstore
  LMK_THREADS=8 \
    LMK_ABL_OUT=build-check/BENCH_ablation_localstore.t8.json \
    LMK_ABL_DET_OUT=build-check/localstore_det.t8.json \
    ./build-check/bench/bench_ablation_localstore >/dev/null
  cmp build-check/localstore_det.t1.json build-check/localstore_det.t8.json
  echo "store smoke: deterministic section byte-identical at 1 and 8 threads"
  # Enforced run: sub-linear reductions and the HNSW recall floor. The
  # pivot id-for-id exactness cross-check is always on inside the bench.
  LMK_ABL_ENFORCE=1 \
    LMK_ABL_OUT=build-check/BENCH_ablation_localstore.json \
    ./build-check/bench/bench_ablation_localstore >/dev/null
  echo "store smoke: enforce gates passed (reductions + recall + exactness)"
}

run_alloc_guard() {
  echo "== check.sh: alloc-guard leg (LMK_ALLOC_GUARD + LMK_ARENA_GUARD) =="
  # Own build directory: the interposed allocator and the checked arena
  # handles must never mix objects with the plain build.
  cmake -B build-check-allocguard -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLMK_WERROR=ON -DLMK_ALLOC_GUARD=ON -DLMK_ARENA_GUARD=ON
  cmake --build build-check-allocguard -j"$(nproc)"
  ctest --test-dir build-check-allocguard --output-on-failure -j"$(nproc)"
  # Toy-scale storm: the steady-state phase must report zero allocations
  # (bench_diff's hard gate); scale does not matter, per-event behaviour
  # does.
  LMK_NODES=64 LMK_OBJECTS=2000 LMK_QUERIES=30 LMK_SAMPLE=200 \
    LMK_ONLINE_EVENTS=1000000 \
    LMK_PERF_OUT=build-check-allocguard/BENCH_perf.allocguard.json \
    ./build-check-allocguard/bench/bench_perf
  scripts/bench_diff.py \
    --current build-check-allocguard/BENCH_perf.allocguard.json "$@"
}

if [ "${1:-}" = "--alloc-guard" ]; then
  shift
  run_alloc_guard "$@"
  echo "check.sh: OK (alloc-guard leg)"
  exit 0
fi

if [ "${1:-}" = "--flagship-smoke" ]; then
  shift
  run_flagship_smoke "$@"
  echo "check.sh: OK (flagship smoke)"
  exit 0
fi

if [ "${1:-}" = "--bench-smoke" ]; then
  shift
  run_bench_smoke "$@"
  echo "check.sh: OK (bench smoke)"
  exit 0
fi

if [ "${1:-}" = "--sched-smoke" ]; then
  run_sched_smoke
  echo "check.sh: OK (sched smoke)"
  exit 0
fi

if [ "${1:-}" = "--store-smoke" ]; then
  run_store_smoke
  echo "check.sh: OK (store smoke)"
  exit 0
fi

if [ "${1:-}" = "--serve-smoke" ]; then
  shift
  run_serve_smoke "$@"
  echo "check.sh: OK (serve smoke)"
  exit 0
fi

if [ "${1:-}" = "--audit" ]; then
  run_audit
  echo "check.sh: OK (audit leg, LMK_THREADS=$LMK_THREADS)"
  exit 0
fi

if [ "${1:-}" = "--all" ]; then
  run_lint
  BUILD_DIR=build-check scripts/tidy.sh
  run_leg ""
  run_audit
  for san in address undefined thread; do
    run_leg "$san"
  done
  run_alloc_guard
  run_sched_smoke
  run_store_smoke
  run_serve_smoke
  echo "check.sh: OK (--all: lint + tidy + plain + audit + asan/ubsan/tsan" \
       "+ alloc-guard + sched-smoke + store-smoke + serve-smoke," \
       "LMK_THREADS=$LMK_THREADS)"
  exit 0
fi

run_leg "${LMK_SANITIZE:-}"
echo "check.sh: OK (${LMK_SANITIZE:-no sanitizer}, LMK_THREADS=$LMK_THREADS)"
