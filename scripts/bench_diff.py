#!/usr/bin/env python3
"""Event-engine throughput regression check for BENCH_perf.json.

Compares the "online" section of a freshly produced BENCH_perf.json
against the committed pre-optimization baseline
(bench/BENCH_perf.baseline.json by default) and exits nonzero when
engine events/sec regressed by more than the threshold (default 25%).

Throughput on shared CI runners is noisy, so CI invokes this with
--warn-only: the comparison is printed and annotated but never breaks
the build. Local runs (scripts/check.sh --bench-smoke) fail hard.

The scanned-candidates counter is compared informationally only — it is
a work metric, not a wall-clock one, but a silent increase usually
means the order-index fast path stopped being hit.
"""

import argparse
import json
import sys


def load_online(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    online = doc.get("online")
    if not isinstance(online, dict):
        sys.exit(f"bench_diff: {path} has no \"online\" section")
    return online


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/BENCH_perf.baseline.json")
    ap.add_argument("--current", default="BENCH_perf.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional events/sec regression")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0 (CI)")
    args = ap.parse_args()

    base = load_online(args.baseline)
    cur = load_online(args.current)

    base_eps = float(base.get("engine_events_per_sec", 0))
    cur_eps = float(cur.get("engine_events_per_sec", 0))
    if base_eps <= 0 or cur_eps <= 0:
        sys.exit("bench_diff: missing engine_events_per_sec")

    ratio = cur_eps / base_eps
    print(f"bench_diff: engine {cur_eps:,.0f} events/s vs baseline "
          f"{base_eps:,.0f} ({ratio:.2f}x)")

    base_scan = float(base.get("scanned_per_subquery", 0))
    cur_scan = float(cur.get("scanned_per_subquery", 0))
    if base_scan > 0 and cur_scan > 0:
        print(f"bench_diff: scanned/subquery {cur_scan:.1f} vs baseline "
              f"{base_scan:.1f} (informational)")

    floor = 1.0 - args.threshold
    if ratio < floor:
        msg = (f"bench_diff: REGRESSION — engine events/sec is "
               f"{ratio:.2f}x of baseline (floor {floor:.2f}x)")
        if args.warn_only:
            print(f"::warning::{msg}")
            print(msg)
            return 0
        print(msg, file=sys.stderr)
        return 1
    print(f"bench_diff: OK (>= {floor:.2f}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
