#!/usr/bin/env python3
"""Performance regression check for BENCH_perf.json.

Compares a freshly produced BENCH_perf.json against the committed
pre-optimization baseline (bench/BENCH_perf.baseline.json by default)
and exits nonzero when:

  * engine events/sec regressed by more than --threshold (default 25%);
  * queries/sec regressed by more than --threshold (default 25%);
  * scanned entries per subquery GREW by more than --scan-threshold
    (default 50%) — a work metric, not a wall-clock one, so it is
    immune to machine noise; silent growth usually means the
    order-index fast path stopped being hit;
  * the sweep phase's parallel speedup fell below --sweep-floor
    (default 3x) — enforced only when the measuring machine actually
    has >= --sweep-min-cores hardware threads and the run used >= that
    many pool threads, since a 1-2 core container physically cannot
    show a parallel speedup. Under-provisioned machines print the
    numbers and skip the gate, with a note saying why.

When a flagship run (BENCH_flagship.json, produced by bench_flagship)
and its committed baseline are both present, three further gates run on
the *deterministic* section — virtual-time latencies and exact byte
counts, so they are immune to machine noise and any violation is a real
behaviour change, not jitter:

  * p99 response latency must not exceed the baseline's by more than
    --flagship-latency-threshold (default 10%);
  * the streaming-build arena high-water mark must stay within
    --arena-threshold (default 25%) of the baseline's (the batch-sized
    memory budget of the streaming insert path);
  * total bytes on the wire must not grow by more than
    --wire-threshold (default 10%);
  * recall@10 (deterministic sampled-oracle mean) must not fall below
    --flagship-recall-floor (default 0.90) — an absolute floor, not a
    ratio, so an approximate local store cannot silently trade recall
    for speed;
  * scanned entries per subquery must not grow by more than
    --flagship-scan-threshold (default 50%) — compared only when the
    baseline and current runs used the same "local_store" backend
    (the scan profile is backend-specific; a deliberate backend switch
    prints a skip note instead).

The flagship gates are scale-matched: when the current run's "scale"
section differs from the baseline's (e.g. an LMK_FULL run against the
committed smoke baseline), the gates are skipped with a note.

Serving-tier gates: when the current flagship run carries a
deterministic "serve" section (produced with LMK_FLAGSHIP_SERVE=1),
four absolute gates run on it — absolute, not baseline-relative,
because the section compares serve-on against serve-off inside one
run:

  * the efficiency rung's result digests must match (the cache and the
    coalescing window must not change any query's result set);
  * the cache hit rate must reach --serve-hit-floor (default 0.30)
    under the Zipf-pooled workload;
  * bytes on the wire with batching must not exceed the serve-off
    bytes: wire_ratio <= --serve-wire-ceiling (default 1.0);
  * at the --serve-overload-mult (default 4x) rung of the arrival-rate
    ladder, p99 with shedding on must be strictly below p99 with the
    serving tier off — load shedding must buy tail latency under
    overload or it is dead weight.

Serve-off runs carry no "serve" section and the gates auto-skip with a
printed note, so the default pipelines are unaffected.

Allocation-discipline gate: when the current BENCH_perf.json carries an
"alloc" section with "guard_enabled": true (an LMK_ALLOC_GUARD build),
the engine steady-state phase — and, when present, the serving tier's
cache-probe steady state — must report ZERO allocations and frees.
This is a correctness property of the engine hot path, not a wall-clock
number, so it is a HARD failure: it exits nonzero even under
--warn-only. Plain builds (guard_enabled false) skip the gate with a
note.

Throughput on shared CI runners is noisy, so CI invokes this with
--warn-only: the comparison is printed and annotated but never breaks
the build. Local runs (scripts/check.sh --bench-smoke) fail hard.
The sweep cells-per-sec is also compared to the baseline's
informationally (the committed baseline may come from different
hardware).

Malformed input (unreadable file, invalid JSON, a non-numeric value
where a number is required) exits nonzero with a one-line
"bench_diff: <path>: ..." message — never a Python traceback.
"""

import argparse
import json
import sys


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(doc.get("online"), dict):
        sys.exit(f"bench_diff: {path} has no \"online\" section")
    return doc


def section(mapping, key, path):
    """`mapping[key]` as a dict; {} when absent, readable exit when
    present but not an object (a malformed producer, not a bug here)."""
    val = mapping.get(key)
    if val is None:
        return {}
    if not isinstance(val, dict):
        sys.exit(f"bench_diff: {path}: \"{key}\" is not a JSON object")
    return val


def fnum(mapping, key, path, default=0.0):
    val = mapping.get(key, default)
    try:
        return float(val)
    except (TypeError, ValueError):
        sys.exit(f"bench_diff: {path}: \"{key}\" is not a number "
                 f"(got {val!r})")


def inum(mapping, key, path, default=0):
    val = mapping.get(key, default)
    try:
        return int(val)
    except (TypeError, ValueError):
        sys.exit(f"bench_diff: {path}: \"{key}\" is not an integer "
                 f"(got {val!r})")


def load_flagship(path):
    """Flagship docs are optional: None (with a reason) when absent."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError:
        return None, f"{path} not present"
    except ValueError as err:
        sys.exit(f"bench_diff: {path} is not valid JSON: {err}")
    if not isinstance(doc.get("deterministic"), dict):
        sys.exit(f"bench_diff: {path} has no \"deterministic\" section")
    return doc, None


def check_flagship(args, gate):
    base_doc, why = load_flagship(args.flagship_baseline)
    if base_doc is None:
        print(f"bench_diff: flagship gates skipped — {why}")
        return
    cur_doc, why = load_flagship(args.flagship)
    if cur_doc is None:
        print(f"bench_diff: flagship gates skipped — {why}")
        return

    base_scale = base_doc.get("scale", {})
    cur_scale = cur_doc.get("scale", {})
    if base_scale != cur_scale:
        diff = {k for k in set(base_scale) | set(cur_scale)
                if base_scale.get(k) != cur_scale.get(k)}
        print(f"bench_diff: flagship gates skipped — scale mismatch vs "
              f"baseline ({', '.join(sorted(diff))}); deterministic "
              f"numbers are only comparable at identical scale")
        return

    base = base_doc["deterministic"]
    cur = cur_doc["deterministic"]

    # --- p99 latency (virtual time: deterministic, noise-free) ---
    base_p99 = fnum(section(base, "latency_ms", args.flagship_baseline),
                    "p99", args.flagship_baseline)
    cur_p99 = fnum(section(cur, "latency_ms", args.flagship), "p99",
                   args.flagship)
    if base_p99 > 0 and cur_p99 > 0:
        growth = cur_p99 / base_p99
        ceil = 1.0 + args.flagship_latency_threshold
        print(f"bench_diff: flagship p99 {cur_p99:.2f}ms vs baseline "
              f"{base_p99:.2f}ms ({growth:.2f}x)")
        if growth > ceil:
            gate(f"flagship p99 latency grew {growth:.2f}x over baseline "
                 f"(ceiling {ceil:.2f}x) — virtual-time metric, not noise")
    else:
        print("bench_diff: flagship p99 missing on one side (skipped)")

    # --- arena high-water mark (streaming-build memory budget) ---
    base_arena = inum(section(base, "memory", args.flagship_baseline),
                      "arena_high_water", args.flagship_baseline)
    cur_arena = inum(section(cur, "memory", args.flagship),
                     "arena_high_water", args.flagship)
    if base_arena > 0 and cur_arena > 0:
        budget = int(base_arena * (1.0 + args.arena_threshold))
        print(f"bench_diff: flagship arena high-water {cur_arena:,} bytes "
              f"vs baseline {base_arena:,} (budget {budget:,})")
        if cur_arena > budget:
            gate(f"flagship arena high-water {cur_arena:,} bytes exceeds "
                 f"the budget {budget:,} (baseline {base_arena:,} "
                 f"+ {args.arena_threshold:.0%})")
    else:
        print("bench_diff: flagship arena high-water missing on one side "
              "(skipped)")

    # --- bytes on the wire (exact counter, hard ceiling) ---
    base_wire = fnum(section(base, "wire", args.flagship_baseline),
                     "total_bytes", args.flagship_baseline)
    cur_wire = fnum(section(cur, "wire", args.flagship), "total_bytes",
                    args.flagship)
    if base_wire > 0 and cur_wire > 0:
        growth = cur_wire / base_wire
        ceil = 1.0 + args.wire_threshold
        print(f"bench_diff: flagship wire {cur_wire:,.0f} bytes vs "
              f"baseline {base_wire:,.0f} ({growth:.2f}x)")
        if growth > ceil:
            gate(f"flagship bytes-on-wire grew {growth:.2f}x over "
                 f"baseline (ceiling {ceil:.2f}x) — exact counter, "
                 f"not noise")
    else:
        print("bench_diff: flagship wire bytes missing on one side "
              "(skipped)")

    # --- recall floor (deterministic sampled-oracle mean) ---
    cur_recall = fnum(section(cur, "recall", args.flagship), "mean",
                      args.flagship, default=-1.0)
    base_recall = fnum(section(base, "recall", args.flagship_baseline),
                       "mean", args.flagship_baseline, default=-1.0)
    if cur_recall >= 0:
        print(f"bench_diff: flagship recall {cur_recall:.3f} vs baseline "
              f"{base_recall:.3f} (floor {args.flagship_recall_floor:.2f})")
        if cur_recall < args.flagship_recall_floor:
            gate(f"flagship recall {cur_recall:.3f} fell below the "
                 f"{args.flagship_recall_floor:.2f} floor — deterministic "
                 f"metric, usually a local-store or refinement change")
    else:
        print("bench_diff: flagship recall missing (floor skipped)")

    # --- scanned/subquery ceiling (per-node solve work) ---
    # Only comparable when both runs used the same LocalStore backend:
    # an intentional backend switch changes this number by design.
    base_store = base.get("local_store")
    cur_store = cur.get("local_store")
    base_scan = fnum(base, "scanned_per_subquery", args.flagship_baseline)
    cur_scan = fnum(cur, "scanned_per_subquery", args.flagship)
    if base_store != cur_store:
        print(f"bench_diff: flagship scanned/subquery gate skipped — "
              f"local_store differs (baseline {base_store!r}, current "
              f"{cur_store!r}); the scan profile is backend-specific")
    elif base_scan > 0 and cur_scan > 0:
        growth = cur_scan / base_scan
        ceil = 1.0 + args.flagship_scan_threshold
        print(f"bench_diff: flagship scanned/subquery {cur_scan:.1f} vs "
              f"baseline {base_scan:.1f} ({growth:.2f}x, backend "
              f"{cur_store!r})")
        if growth > ceil:
            gate(f"flagship scanned/subquery grew {growth:.2f}x over "
                 f"baseline (ceiling {ceil:.2f}x) — deterministic work "
                 f"metric, not noise")
    else:
        print("bench_diff: flagship scanned/subquery missing on one side "
              "(skipped)")

    # Informational: queue depth travels with the same file.
    base_q = base.get("queue", {}).get("max_depth")
    cur_q = cur.get("queue", {}).get("max_depth")
    if base_q is not None and cur_q is not None:
        print(f"bench_diff: flagship max queue depth {cur_q} vs baseline "
              f"{base_q} (informational)")


def check_serve(args, gate):
    """Serving-tier gates on the current flagship run's deterministic
    "serve" section. Absolute gates (the section already holds the
    on-vs-off comparison), so no baseline is consulted; serve-off runs
    carry no section and skip."""
    cur_doc, why = load_flagship(args.flagship)
    if cur_doc is None:
        print(f"bench_diff: serve gates skipped — {why}")
        return
    serve = cur_doc["deterministic"].get("serve")
    if not isinstance(serve, dict):
        print(f"bench_diff: serve gates skipped — no \"serve\" section in "
              f"{args.flagship} (produce one with LMK_FLAGSHIP_SERVE=1)")
        return

    eff = section(serve, "efficiency", args.flagship)

    # --- result digests: the serving tier must be invisible to results ---
    if eff.get("digest_match") is not True:
        gate("serve efficiency rung: result digests differ between "
             "serve-on and serve-off — the cache or the coalescing "
             "window changed a query's result set")
    else:
        print("bench_diff: serve digests match (cache + coalescing "
              "result-transparent)")

    # --- cache hit rate floor (Zipf-pooled workload) ---
    hit_rate = fnum(eff, "hit_rate", args.flagship, default=-1.0)
    if hit_rate >= 0:
        print(f"bench_diff: serve hit rate {hit_rate:.3f} "
              f"(floor {args.serve_hit_floor:.2f})")
        if hit_rate < args.serve_hit_floor:
            gate(f"serve cache hit rate {hit_rate:.3f} is below the "
                 f"{args.serve_hit_floor:.2f} floor — the hot-result "
                 f"cache stopped absorbing the Zipf head")
    else:
        print("bench_diff: serve hit rate missing (floor skipped)")

    # --- bytes on the wire with batching (exact counters) ---
    wire_ratio = fnum(eff, "wire_ratio", args.flagship, default=-1.0)
    if wire_ratio >= 0:
        print(f"bench_diff: serve wire ratio {wire_ratio:.4f} "
              f"(ceiling {args.serve_wire_ceiling:.2f})")
        if wire_ratio > args.serve_wire_ceiling:
            gate(f"serve wire ratio {wire_ratio:.4f} exceeds the "
                 f"{args.serve_wire_ceiling:.2f} ceiling — the "
                 f"coalescing window stopped paying for itself in "
                 f"query bytes")
    else:
        print("bench_diff: serve wire ratio missing (ceiling skipped)")

    # --- overload ladder: shedding must buy p99 at the target rung ---
    ladder = serve.get("overload")
    if not isinstance(ladder, list):
        print("bench_diff: serve overload ladder missing (gate skipped)")
        return
    rung = next((r for r in ladder if isinstance(r, dict)
                 and r.get("mult") == args.serve_overload_mult), None)
    if rung is None:
        print(f"bench_diff: serve overload gate skipped — no "
              f"{args.serve_overload_mult}x rung in the ladder")
        return
    p99_off = fnum(rung, "p99_off", args.flagship)
    p99_on = fnum(rung, "p99_on", args.flagship)
    if p99_off > 0 and p99_on > 0:
        print(f"bench_diff: serve overload {args.serve_overload_mult}x "
              f"p99 {p99_on:.1f}ms shedding-on vs {p99_off:.1f}ms off "
              f"(shed {rung.get('shed')}, dropped {rung.get('dropped')})")
        if p99_on >= p99_off:
            gate(f"serve overload {args.serve_overload_mult}x rung: p99 "
                 f"with shedding on ({p99_on:.1f}ms) is not below the "
                 f"serve-off p99 ({p99_off:.1f}ms) — admission control "
                 f"stopped buying tail latency under overload")
    else:
        print("bench_diff: serve overload p99 missing on one side "
              "(gate skipped)")


def check_alloc(cur_doc, path, hard):
    """Zero-allocation gate on the engine steady-state phase.

    Only meaningful for LMK_ALLOC_GUARD builds (guard_enabled true);
    plain builds always report zeros because the interposed counters do
    not exist, and gating on those would be vacuous.
    """
    alloc = section(cur_doc, "alloc", path)
    if not alloc:
        print("bench_diff: alloc gate skipped — no \"alloc\" section "
              f"in {path} (pre-guard producer)")
        return
    if not alloc.get("guard_enabled"):
        print("bench_diff: alloc gate skipped — alloc guard disabled "
              "in this build (configure with -DLMK_ALLOC_GUARD=ON)")
        return
    warm = section(alloc, "engine_warmup", path)
    steady = section(alloc, "engine_steady_state", path)
    w_allocs = inum(warm, "allocs", path)
    w_bytes = inum(warm, "alloc_bytes", path)
    s_allocs = inum(steady, "allocs", path)
    s_frees = inum(steady, "frees", path)
    s_bytes = inum(steady, "alloc_bytes", path)
    print(f"bench_diff: alloc guard — engine warmup {w_allocs:,} allocs "
          f"/ {w_bytes:,} bytes; steady state {s_allocs:,} allocs, "
          f"{s_frees:,} frees")
    if s_allocs > 0 or s_frees > 0:
        hard(f"engine steady state performed {s_allocs:,} allocations "
             f"and {s_frees:,} frees ({s_bytes:,} bytes) — the event "
             f"engine hot path must be allocation-free after warmup")
    else:
        print("bench_diff: alloc gate OK (zero steady-state "
              "allocations)")
    serve = alloc.get("serve_steady_state")
    if not isinstance(serve, dict):
        print("bench_diff: serve alloc gate skipped — no "
              "\"serve_steady_state\" phase (pre-serve producer)")
        return
    v_allocs = inum(serve, "allocs", path)
    v_frees = inum(serve, "frees", path)
    v_bytes = inum(serve, "alloc_bytes", path)
    if v_allocs > 0 or v_frees > 0:
        hard(f"serve steady state performed {v_allocs:,} allocations "
             f"and {v_frees:,} frees ({v_bytes:,} bytes) — cache probe "
             f"and invalidation loops must be allocation-free once "
             f"filled")
    else:
        print("bench_diff: serve alloc gate OK (zero steady-state "
              "allocations)")


def finish(args, failures, hard_failures, label):
    """Shared exit protocol: soft failures respect --warn-only, hard
    failures (allocation discipline) never do."""
    for msg in failures:
        full = f"bench_diff: REGRESSION — {msg}"
        if args.warn_only and not hard_failures:
            print(f"::warning::{full}")
            print(full)
        else:
            print(full, file=sys.stderr)
    for msg in hard_failures:
        print(f"bench_diff: HARD FAILURE — {msg}", file=sys.stderr)
    if hard_failures:
        print("bench_diff: hard failures exit nonzero even under "
              "--warn-only", file=sys.stderr)
        return 1
    if failures:
        return 0 if args.warn_only else 1
    print(f"bench_diff: OK{label}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/BENCH_perf.baseline.json")
    ap.add_argument("--current", default="BENCH_perf.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional wall-clock regression "
                         "(events/sec, queries/sec)")
    ap.add_argument("--scan-threshold", type=float, default=0.50,
                    help="allowed fractional growth of scanned entries "
                         "per subquery")
    ap.add_argument("--sweep-floor", type=float, default=3.0,
                    help="required sweep speedup (tN vs t1) on capable "
                         "hardware")
    ap.add_argument("--sweep-min-cores", type=int, default=8,
                    help="hardware threads (and pool threads) needed "
                         "before the sweep floor is enforced")
    ap.add_argument("--flagship-baseline",
                    default="bench/BENCH_flagship.baseline.json")
    ap.add_argument("--flagship", default="BENCH_flagship.json",
                    help="current flagship run (gates skipped when the "
                         "file is absent)")
    ap.add_argument("--flagship-latency-threshold", type=float,
                    default=0.10,
                    help="allowed fractional growth of the flagship p99 "
                         "virtual-time latency")
    ap.add_argument("--arena-threshold", type=float, default=0.25,
                    help="allowed fractional growth of the flagship "
                         "arena high-water mark")
    ap.add_argument("--wire-threshold", type=float, default=0.10,
                    help="allowed fractional growth of flagship bytes "
                         "on the wire")
    ap.add_argument("--flagship-recall-floor", type=float, default=0.90,
                    help="minimum flagship recall@10 (deterministic "
                         "sampled-oracle mean)")
    ap.add_argument("--flagship-scan-threshold", type=float, default=0.50,
                    help="allowed fractional growth of flagship scanned "
                         "entries per subquery (same-backend runs only)")
    ap.add_argument("--serve-hit-floor", type=float, default=0.30,
                    help="minimum serve cache hit rate on the flagship "
                         "efficiency rung (LMK_FLAGSHIP_SERVE runs)")
    ap.add_argument("--serve-wire-ceiling", type=float, default=1.0,
                    help="maximum serve-on/serve-off query-bytes ratio "
                         "with the coalescing window enabled")
    ap.add_argument("--serve-overload-mult", type=int, default=4,
                    help="arrival-rate multiple whose ladder rung must "
                         "show shedding-on p99 below serve-off p99")
    ap.add_argument("--flagship-only", action="store_true",
                    help="run only the flagship gates (for a CI leg that "
                         "produces no BENCH_perf.json)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0 (CI)")
    args = ap.parse_args()

    failures = []
    hard_failures = []

    def gate(msg):
        failures.append(msg)

    def hard(msg):
        hard_failures.append(msg)

    if args.flagship_only:
        check_flagship(args, gate)
        check_serve(args, gate)
        return finish(args, failures, hard_failures, " (flagship only)")

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    base = base_doc["online"]
    cur = cur_doc["online"]

    # --- engine events/sec (wall clock, hard floor) ---
    base_eps = fnum(base, "engine_events_per_sec", args.baseline)
    cur_eps = fnum(cur, "engine_events_per_sec", args.current)
    if base_eps <= 0 or cur_eps <= 0:
        sys.exit(f"bench_diff: {args.current}: missing "
                 f"engine_events_per_sec")
    ratio = cur_eps / base_eps
    floor = 1.0 - args.threshold
    print(f"bench_diff: engine {cur_eps:,.0f} events/s vs baseline "
          f"{base_eps:,.0f} ({ratio:.2f}x)")
    if ratio < floor:
        gate(f"engine events/sec is {ratio:.2f}x of baseline "
             f"(floor {floor:.2f}x)")

    # --- queries/sec (wall clock, hard floor) ---
    base_qps = fnum(base, "queries_per_sec", args.baseline)
    cur_qps = fnum(cur, "queries_per_sec", args.current)
    if base_qps > 0 and cur_qps > 0:
        qratio = cur_qps / base_qps
        print(f"bench_diff: queries {cur_qps:,.1f}/s vs baseline "
              f"{base_qps:,.1f}/s ({qratio:.2f}x)")
        if qratio < floor:
            gate(f"queries/sec is {qratio:.2f}x of baseline "
                 f"(floor {floor:.2f}x)")
    else:
        print("bench_diff: queries_per_sec missing on one side (skipped)")

    # --- scanned per subquery (work metric, hard ceiling) ---
    base_scan = fnum(base, "scanned_per_subquery", args.baseline)
    cur_scan = fnum(cur, "scanned_per_subquery", args.current)
    if base_scan > 0 and cur_scan > 0:
        growth = cur_scan / base_scan
        ceil = 1.0 + args.scan_threshold
        print(f"bench_diff: scanned/subquery {cur_scan:.1f} vs baseline "
              f"{base_scan:.1f} ({growth:.2f}x)")
        if growth > ceil:
            gate(f"scanned/subquery grew {growth:.2f}x over baseline "
                 f"(ceiling {ceil:.2f}x) — deterministic work metric, "
                 f"not noise")
    else:
        print("bench_diff: scanned_per_subquery missing on one side "
              "(skipped)")

    # --- sweep phase: parallel cells throughput ---
    cur_sweep = cur_doc.get("sweep")
    if isinstance(cur_sweep, dict):
        cells = inum(cur_sweep, "cells", args.current)
        speedup = fnum(cur_sweep, "speedup", args.current)
        hw = inum(cur_sweep, "hardware_threads", args.current)
        threads = inum(cur_doc, "threads", args.current)
        peak = inum(cur_sweep, "peak_resident", args.current)
        cap = inum(cur_sweep, "resident_cap", args.current)
        print(f"bench_diff: sweep {cells} cells, speedup {speedup:.2f}x "
              f"(pool {threads}, hw {hw}, peak resident {peak}/{cap})")
        if cap > 0 and peak > cap:
            gate(f"sweep peak resident {peak} exceeded the cap {cap}")
        base_sweep = base_doc.get("sweep")
        if isinstance(base_sweep, dict):
            base_cps = float(base_sweep.get("cells_per_sec_n_threads", 0))
            cur_cps = float(cur_sweep.get("cells_per_sec_n_threads", 0))
            if base_cps > 0 and cur_cps > 0:
                print(f"bench_diff: sweep {cur_cps:.2f} cells/s vs "
                      f"baseline {base_cps:.2f} (informational — baseline "
                      f"hardware may differ)")
        if hw >= args.sweep_min_cores and threads >= args.sweep_min_cores:
            if speedup < args.sweep_floor:
                gate(f"sweep speedup {speedup:.2f}x is below the "
                     f"{args.sweep_floor:.1f}x floor on {hw}-thread "
                     f"hardware")
            else:
                print(f"bench_diff: sweep OK "
                      f"(>= {args.sweep_floor:.1f}x floor)")
        else:
            print(f"bench_diff: sweep floor skipped — needs >= "
                  f"{args.sweep_min_cores} hardware threads and pool "
                  f"threads (have hw={hw}, pool={threads}); a "
                  f"parallel-speedup gate on this machine would only "
                  f"measure scheduler noise")
    else:
        print("bench_diff: no sweep section in current run (skipped)")

    # --- allocation discipline (hard gate, ignores --warn-only) ---
    check_alloc(cur_doc, args.current, hard)

    # --- flagship open-loop scenario (deterministic gates) ---
    check_flagship(args, gate)

    # --- serving tier (absolute gates on the current flagship run) ---
    check_serve(args, gate)

    return finish(args, failures, hard_failures, "")


if __name__ == "__main__":
    sys.exit(main())
