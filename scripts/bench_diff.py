#!/usr/bin/env python3
"""Performance regression check for BENCH_perf.json.

Compares a freshly produced BENCH_perf.json against the committed
pre-optimization baseline (bench/BENCH_perf.baseline.json by default)
and exits nonzero when:

  * engine events/sec regressed by more than --threshold (default 25%);
  * queries/sec regressed by more than --threshold (default 25%);
  * scanned entries per subquery GREW by more than --scan-threshold
    (default 50%) — a work metric, not a wall-clock one, so it is
    immune to machine noise; silent growth usually means the
    order-index fast path stopped being hit;
  * the sweep phase's parallel speedup fell below --sweep-floor
    (default 3x) — enforced only when the measuring machine actually
    has >= --sweep-min-cores hardware threads and the run used >= that
    many pool threads, since a 1-2 core container physically cannot
    show a parallel speedup. Under-provisioned machines print the
    numbers and skip the gate, with a note saying why.

Throughput on shared CI runners is noisy, so CI invokes this with
--warn-only: the comparison is printed and annotated but never breaks
the build. Local runs (scripts/check.sh --bench-smoke) fail hard.
The sweep cells-per-sec is also compared to the baseline's
informationally (the committed baseline may come from different
hardware).
"""

import argparse
import json
import sys


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(doc.get("online"), dict):
        sys.exit(f"bench_diff: {path} has no \"online\" section")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/BENCH_perf.baseline.json")
    ap.add_argument("--current", default="BENCH_perf.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional wall-clock regression "
                         "(events/sec, queries/sec)")
    ap.add_argument("--scan-threshold", type=float, default=0.50,
                    help="allowed fractional growth of scanned entries "
                         "per subquery")
    ap.add_argument("--sweep-floor", type=float, default=3.0,
                    help="required sweep speedup (tN vs t1) on capable "
                         "hardware")
    ap.add_argument("--sweep-min-cores", type=int, default=8,
                    help="hardware threads (and pool threads) needed "
                         "before the sweep floor is enforced")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0 (CI)")
    args = ap.parse_args()

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    base = base_doc["online"]
    cur = cur_doc["online"]

    failures = []

    def gate(msg):
        failures.append(msg)

    # --- engine events/sec (wall clock, hard floor) ---
    base_eps = float(base.get("engine_events_per_sec", 0))
    cur_eps = float(cur.get("engine_events_per_sec", 0))
    if base_eps <= 0 or cur_eps <= 0:
        sys.exit("bench_diff: missing engine_events_per_sec")
    ratio = cur_eps / base_eps
    floor = 1.0 - args.threshold
    print(f"bench_diff: engine {cur_eps:,.0f} events/s vs baseline "
          f"{base_eps:,.0f} ({ratio:.2f}x)")
    if ratio < floor:
        gate(f"engine events/sec is {ratio:.2f}x of baseline "
             f"(floor {floor:.2f}x)")

    # --- queries/sec (wall clock, hard floor) ---
    base_qps = float(base.get("queries_per_sec", 0))
    cur_qps = float(cur.get("queries_per_sec", 0))
    if base_qps > 0 and cur_qps > 0:
        qratio = cur_qps / base_qps
        print(f"bench_diff: queries {cur_qps:,.1f}/s vs baseline "
              f"{base_qps:,.1f}/s ({qratio:.2f}x)")
        if qratio < floor:
            gate(f"queries/sec is {qratio:.2f}x of baseline "
                 f"(floor {floor:.2f}x)")
    else:
        print("bench_diff: queries_per_sec missing on one side (skipped)")

    # --- scanned per subquery (work metric, hard ceiling) ---
    base_scan = float(base.get("scanned_per_subquery", 0))
    cur_scan = float(cur.get("scanned_per_subquery", 0))
    if base_scan > 0 and cur_scan > 0:
        growth = cur_scan / base_scan
        ceil = 1.0 + args.scan_threshold
        print(f"bench_diff: scanned/subquery {cur_scan:.1f} vs baseline "
              f"{base_scan:.1f} ({growth:.2f}x)")
        if growth > ceil:
            gate(f"scanned/subquery grew {growth:.2f}x over baseline "
                 f"(ceiling {ceil:.2f}x) — deterministic work metric, "
                 f"not noise")
    else:
        print("bench_diff: scanned_per_subquery missing on one side "
              "(skipped)")

    # --- sweep phase: parallel cells throughput ---
    cur_sweep = cur_doc.get("sweep")
    if isinstance(cur_sweep, dict):
        cells = int(cur_sweep.get("cells", 0))
        speedup = float(cur_sweep.get("speedup", 0))
        hw = int(cur_sweep.get("hardware_threads", 0))
        threads = int(cur_doc.get("threads", 0))
        peak = int(cur_sweep.get("peak_resident", 0))
        cap = int(cur_sweep.get("resident_cap", 0))
        print(f"bench_diff: sweep {cells} cells, speedup {speedup:.2f}x "
              f"(pool {threads}, hw {hw}, peak resident {peak}/{cap})")
        if cap > 0 and peak > cap:
            gate(f"sweep peak resident {peak} exceeded the cap {cap}")
        base_sweep = base_doc.get("sweep")
        if isinstance(base_sweep, dict):
            base_cps = float(base_sweep.get("cells_per_sec_n_threads", 0))
            cur_cps = float(cur_sweep.get("cells_per_sec_n_threads", 0))
            if base_cps > 0 and cur_cps > 0:
                print(f"bench_diff: sweep {cur_cps:.2f} cells/s vs "
                      f"baseline {base_cps:.2f} (informational — baseline "
                      f"hardware may differ)")
        if hw >= args.sweep_min_cores and threads >= args.sweep_min_cores:
            if speedup < args.sweep_floor:
                gate(f"sweep speedup {speedup:.2f}x is below the "
                     f"{args.sweep_floor:.1f}x floor on {hw}-thread "
                     f"hardware")
            else:
                print(f"bench_diff: sweep OK "
                      f"(>= {args.sweep_floor:.1f}x floor)")
        else:
            print(f"bench_diff: sweep floor skipped — needs >= "
                  f"{args.sweep_min_cores} hardware threads and pool "
                  f"threads (have hw={hw}, pool={threads}); a "
                  f"parallel-speedup gate on this machine would only "
                  f"measure scheduler noise")
    else:
        print("bench_diff: no sweep section in current run (skipped)")

    if failures:
        for msg in failures:
            full = f"bench_diff: REGRESSION — {msg}"
            if args.warn_only:
                print(f"::warning::{full}")
                print(full)
            else:
                print(full, file=sys.stderr)
        return 0 if args.warn_only else 1
    print(f"bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
