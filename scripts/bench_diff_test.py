#!/usr/bin/env python3
"""Tests for scripts/bench_diff.py error handling and the alloc gate.

Runs bench_diff.py as a subprocess (the way CI and check.sh invoke it)
and asserts on exit codes and messages: malformed input must produce a
one-line readable error (never a traceback), and the zero-allocation
hard gate must fail even under --warn-only.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_diff.py")


def perf_doc(alloc=None):
    """A minimal well-formed BENCH_perf.json document."""
    doc = {
        "online": {
            "engine_events_per_sec": 1000000.0,
            "queries_per_sec": 50.0,
            "scanned_per_subquery": 10.0,
        },
    }
    if alloc is not None:
        doc["alloc"] = alloc
    return doc


def flagship_doc(recall=0.95, scanned=70.0, store="sorted", serve=None):
    """A minimal well-formed BENCH_flagship.json document."""
    doc = {
        "scale": {"nodes": 256, "objects": 20000},
        "deterministic": {
            "latency_ms": {"p99": 800.0},
            "memory": {"arena_high_water": 1000000},
            "wire": {"total_bytes": 5000000.0},
            "recall": {"sampled": 25, "mean": recall},
            "local_store": store,
            "scanned_per_subquery": scanned,
        },
    }
    if serve is not None:
        doc["deterministic"]["serve"] = serve
    return doc


def serve_section(digest_match=True, hit_rate=0.75, wire_ratio=0.98,
                  p99_off=7000.0, p99_on=3300.0):
    """A deterministic "serve" section as bench_flagship emits it."""
    return {
        "qpool": 4, "arrivals": 200,
        "efficiency": {"digest_match": digest_match, "hit_rate": hit_rate,
                       "wire_ratio": wire_ratio},
        "overload": [
            {"mult": 1, "shed": 10, "dropped": 0,
             "p99_off": 1700.0, "p99_on": 1800.0},
            {"mult": 4, "shed": 900, "dropped": 110,
             "p99_off": p99_off, "p99_on": p99_on},
        ],
    }


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, content):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(content, str):
                f.write(content)
            else:
                json.dump(content, f)
        return path

    def run_diff(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, "--baseline", baseline,
             "--current", current, *extra],
            capture_output=True, text=True, check=False)

    def assert_readable_failure(self, proc, needle):
        combined = proc.stdout + proc.stderr
        self.assertNotEqual(proc.returncode, 0, combined)
        self.assertNotIn("Traceback", combined)
        self.assertIn(needle, combined)

    def test_matching_runs_pass(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", perf_doc())
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("bench_diff: OK", proc.stdout)

    def test_missing_file_is_readable(self):
        base = self.write("base.json", perf_doc())
        missing = os.path.join(self.tmp.name, "nope.json")
        proc = self.run_diff(base, missing)
        self.assert_readable_failure(proc, "cannot read")

    def test_invalid_json_is_readable(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", "{not json")
        proc = self.run_diff(base, cur)
        self.assert_readable_failure(proc, "cannot read")

    def test_missing_online_section_is_readable(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", {"sweep": {}})
        proc = self.run_diff(base, cur)
        self.assert_readable_failure(proc, "no \"online\" section")

    def test_missing_metric_is_readable(self):
        base = self.write("base.json", perf_doc())
        doc = perf_doc()
        del doc["online"]["engine_events_per_sec"]
        cur = self.write("cur.json", doc)
        proc = self.run_diff(base, cur)
        self.assert_readable_failure(proc, "engine_events_per_sec")

    def test_non_numeric_metric_is_readable(self):
        base = self.write("base.json", perf_doc())
        doc = perf_doc()
        doc["online"]["queries_per_sec"] = "fast"
        cur = self.write("cur.json", doc)
        proc = self.run_diff(base, cur)
        self.assert_readable_failure(proc, "is not a number")

    def test_alloc_gate_passes_on_zero_steady_state(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", perf_doc(alloc={
            "guard_enabled": True,
            "engine_warmup": {"allocs": 123, "frees": 4,
                              "alloc_bytes": 9000, "free_bytes": 100},
            "engine_steady_state": {"allocs": 0, "frees": 0,
                                    "alloc_bytes": 0, "free_bytes": 0},
        }))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("alloc gate OK", proc.stdout)

    def test_alloc_gate_fails_hard_even_with_warn_only(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", perf_doc(alloc={
            "guard_enabled": True,
            "engine_warmup": {"allocs": 123, "frees": 4,
                              "alloc_bytes": 9000, "free_bytes": 100},
            "engine_steady_state": {"allocs": 7, "frees": 7,
                                    "alloc_bytes": 448,
                                    "free_bytes": 448},
        }))
        proc = self.run_diff(base, cur, "--warn-only")
        self.assert_readable_failure(proc, "HARD FAILURE")
        self.assertIn("allocation-free", proc.stderr)

    def test_alloc_gate_skipped_when_guard_disabled(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", perf_doc(alloc={
            "guard_enabled": False,
            "engine_warmup": {"allocs": 0, "frees": 0,
                              "alloc_bytes": 0, "free_bytes": 0},
            "engine_steady_state": {"allocs": 0, "frees": 0,
                                    "alloc_bytes": 0, "free_bytes": 0},
        }))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("alloc gate skipped", proc.stdout)

    def run_flagship(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, "--flagship-only",
             "--flagship-baseline", baseline, "--flagship", current,
             *extra],
            capture_output=True, text=True, check=False)

    def test_flagship_matching_runs_pass(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write("fcur.json", flagship_doc())
        proc = self.run_flagship(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("bench_diff: OK", proc.stdout)

    def test_flagship_recall_floor_fails(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write("fcur.json", flagship_doc(recall=0.62))
        proc = self.run_flagship(base, cur)
        self.assert_readable_failure(proc, "recall 0.620 fell below")

    def test_flagship_recall_floor_is_tunable(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write("fcur.json", flagship_doc(recall=0.62))
        proc = self.run_flagship(base, cur, "--flagship-recall-floor",
                                 "0.5")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_flagship_scan_ceiling_fails_same_backend(self):
        base = self.write("fbase.json", flagship_doc(scanned=70.0))
        cur = self.write("fcur.json", flagship_doc(scanned=700.0))
        proc = self.run_flagship(base, cur)
        self.assert_readable_failure(proc, "scanned/subquery grew")

    def test_flagship_scan_ceiling_skipped_on_backend_switch(self):
        # Ten times the scan volume, but on a different backend: the
        # profile is not comparable, so the gate must skip with a note
        # instead of failing.
        base = self.write("fbase.json", flagship_doc(scanned=70.0))
        cur = self.write("fcur.json",
                         flagship_doc(scanned=700.0, store="hnsw"))
        proc = self.run_flagship(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("local_store differs", proc.stdout)

    def test_flagship_gates_skip_on_scale_mismatch(self):
        base = self.write("fbase.json", flagship_doc())
        doc = flagship_doc(recall=0.1, scanned=9999.0)
        doc["scale"]["nodes"] = 10000
        cur = self.write("fcur.json", doc)
        proc = self.run_flagship(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("scale mismatch", proc.stdout)

    def test_serve_gates_skip_without_section(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write("fcur.json", flagship_doc())
        proc = self.run_flagship(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("serve gates skipped", proc.stdout)

    def test_serve_gates_pass_on_healthy_section(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write("fcur.json",
                         flagship_doc(serve=serve_section()))
        proc = self.run_flagship(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("serve digests match", proc.stdout)
        self.assertIn("serve hit rate", proc.stdout)

    def test_serve_digest_mismatch_fails(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write(
            "fcur.json",
            flagship_doc(serve=serve_section(digest_match=False)))
        proc = self.run_flagship(base, cur)
        self.assert_readable_failure(proc, "result digests differ")

    def test_serve_hit_rate_floor_fails_and_is_tunable(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write("fcur.json",
                         flagship_doc(serve=serve_section(hit_rate=0.05)))
        proc = self.run_flagship(base, cur)
        self.assert_readable_failure(proc, "hit rate 0.050 is below")
        proc = self.run_flagship(base, cur, "--serve-hit-floor", "0.01")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_serve_wire_ceiling_fails(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write(
            "fcur.json",
            flagship_doc(serve=serve_section(wire_ratio=1.07)))
        proc = self.run_flagship(base, cur)
        self.assert_readable_failure(proc, "wire ratio 1.0700 exceeds")

    def test_serve_overload_gate_fails_when_shedding_stops_paying(self):
        base = self.write("fbase.json", flagship_doc())
        cur = self.write(
            "fcur.json",
            flagship_doc(serve=serve_section(p99_off=3000.0,
                                             p99_on=3200.0)))
        proc = self.run_flagship(base, cur)
        self.assert_readable_failure(proc, "is not below the serve-off")

    def test_serve_overload_gate_targets_chosen_rung(self):
        # The 1x rung in serve_section() has p99_on > p99_off (shedding
        # costs a little at mild load, by design); pointing the gate at
        # it must fail while the default 4x rung passes.
        base = self.write("fbase.json", flagship_doc())
        cur = self.write("fcur.json",
                         flagship_doc(serve=serve_section()))
        self.assertEqual(
            self.run_flagship(base, cur).returncode, 0)
        proc = self.run_flagship(base, cur, "--serve-overload-mult", "1")
        self.assert_readable_failure(proc, "is not below the serve-off")

    def test_serve_alloc_gate_fails_hard(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", perf_doc(alloc={
            "guard_enabled": True,
            "engine_warmup": {"allocs": 123, "frees": 4,
                              "alloc_bytes": 9000, "free_bytes": 100},
            "engine_steady_state": {"allocs": 0, "frees": 0,
                                    "alloc_bytes": 0, "free_bytes": 0},
            "serve_steady_state": {"allocs": 3, "frees": 3,
                                   "alloc_bytes": 192, "free_bytes": 192},
        }))
        proc = self.run_diff(base, cur, "--warn-only")
        self.assert_readable_failure(proc, "HARD FAILURE")
        self.assertIn("cache probe", proc.stderr)

    def test_serve_alloc_gate_passes_on_zero(self):
        base = self.write("base.json", perf_doc())
        cur = self.write("cur.json", perf_doc(alloc={
            "guard_enabled": True,
            "engine_warmup": {"allocs": 123, "frees": 4,
                              "alloc_bytes": 9000, "free_bytes": 100},
            "engine_steady_state": {"allocs": 0, "frees": 0,
                                    "alloc_bytes": 0, "free_bytes": 0},
            "serve_steady_state": {"allocs": 0, "frees": 0,
                                   "alloc_bytes": 0, "free_bytes": 0},
        }))
        proc = self.run_diff(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("serve alloc gate OK", proc.stdout)

    def test_soft_regression_respects_warn_only(self):
        base = self.write("base.json", perf_doc())
        doc = perf_doc()
        doc["online"]["engine_events_per_sec"] = 1000.0  # 1000x slower
        cur = self.write("cur.json", doc)
        self.assertNotEqual(self.run_diff(base, cur).returncode, 0)
        proc = self.run_diff(base, cur, "--warn-only")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)


if __name__ == "__main__":
    unittest.main()
