// Core types of the invariant-auditor subsystem.
//
// The auditor gives the simulation a machine-checked version of the
// paper's correctness arguments: queries resolve exactly iff the live
// nodes' hypercuboids tile the index space, Chord routing state matches
// the converged oracle, and migration/rotation conserve the indexed
// multiset. Checkers run with a global "god's-eye" view (the Ring and
// IndexPlatform containers), on a virtual-time cadence and at
// quiescence, and report Violations that name the offending node, the
// virtual time, and the violated invariant — diagnostics precise enough
// to act on from a CI log.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chord/ring.hpp"

namespace lmk {

class IndexPlatform;
class Rng;

namespace audit {

/// One invariant violation, carrying enough context to locate the fault.
struct Violation {
  std::string invariant;   ///< e.g. "ring/successor", "partition/tiling-gap"
  Id node = 0;             ///< offending (or responsible) node id
  bool node_known = false; ///< false for network-wide violations
  SimTime at = 0;          ///< virtual time of the audit that caught it
  std::string detail;      ///< human-readable specifics

  [[nodiscard]] std::string to_string() const;
};

/// Outcome of one audit pass (or several merged passes).
struct AuditReport {
  std::vector<Violation> violations;
  std::uint64_t checks = 0;  ///< individual invariant evaluations

  [[nodiscard]] bool ok() const { return violations.empty(); }
  void merge(AuditReport other);
  /// Multi-line digest: counts plus the first few violations.
  [[nodiscard]] std::string summary() const;
};

/// Everything a checker may look at. Checkers are passive: they never
/// mutate protocol state or schedule events.
struct AuditContext {
  const Ring* ring = nullptr;
  const IndexPlatform* platform = nullptr;  ///< null when no index hosted
  SimTime now = 0;
  Rng* rng = nullptr;  ///< seeded source for sampled checks
};

/// A pluggable invariant checker.
class Checker {
 public:
  virtual ~Checker() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual void check(const AuditContext& ctx, AuditReport* out) = 0;
};

/// printf-style std::string formatting for violation details.
[[nodiscard]] std::string strformat(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// Alive nodes sorted by ascending identifier (the canonical ring order
/// every checker reasons in).
[[nodiscard]] std::vector<ChordNode*> alive_by_id(const Ring& ring);

/// True when the LMK_AUDIT environment variable enables auditing for
/// this process (non-empty and not "0").
[[nodiscard]] bool audit_env_enabled();

}  // namespace audit
}  // namespace lmk
