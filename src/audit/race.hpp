// Event-tie race detector: a deterministic-simulation analogue of a
// race detector.
//
// Two events scheduled for the same virtual instant on the same node
// are "tied": the physical system they model gives no ordering between
// them, yet the simulator must pick one (FIFO by insertion). If any
// simulation outcome depends on that pick, the model has a race — a
// hidden order dependence that TSan structurally cannot see, because
// the simulator is single-threaded.
//
// The detector runs a caller-supplied scenario twice — once under the
// FIFO tie-break and once with same-timestamp ties reversed (both fully
// deterministic) — and compares per-node state digests. Divergence
// pinpoints exactly which nodes' final state depended on tie order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "audit/digest.hpp"
#include "sim/event_queue.hpp"

namespace lmk::audit {

struct RaceReport {
  bool diverged = false;
  std::vector<Id> divergent_nodes;  ///< ids whose digests differ
  TieStats ties;                    ///< tie groups seen in the FIFO run

  [[nodiscard]] std::string to_string() const;
};

/// A scenario builds a fresh simulation under the given tie-break
/// policy (set it on the Simulator before scheduling anything), runs it
/// to quiescence, and returns the per-node digests — typically
/// network_digests(ring, platform). It may also report the run's
/// TieStats via the out-param (pass the FIFO run's stats; may ignore).
using ScenarioFn =
    std::function<std::vector<NodeDigest>(TieBreak, TieStats* stats)>;

/// Run `scenario` under both tie-break policies and diff the digests.
[[nodiscard]] RaceReport detect_event_tie_races(const ScenarioFn& scenario);

}  // namespace lmk::audit
