// The Auditor: owns a set of pluggable checkers, runs them with a
// god's-eye view of the overlay, and wires itself to the simulator's
// audit hook (cadence + quiescence).
//
// Passive invariants (ring, partition, conservation) run from the hook
// while events execute. Query completeness is different in kind — it
// must *drive* the simulator to route sampled queries — so it is an
// explicit call (audit_queries) made at quiescence by the harness.
#pragma once

#include <memory>
#include <vector>

#include "audit/checkers.hpp"
#include "common/rng.hpp"

namespace lmk {

class IndexPlatform;

namespace audit {

class Auditor {
 public:
  struct Options {
    /// Virtual-time cadence for hook-driven audits (0 = only at
    /// quiescence). attach() installs the hook.
    SimTime cadence = 0;
    /// Abort (via LMK_CHECK_MSG) on the first failing pass, printing
    /// the violation diagnostics — the CI mode. Tests leave this off
    /// and inspect reports.
    bool fail_fast = false;
    std::size_t tiling_samples = 64;  ///< partition tiling probes / pass
    std::size_t query_samples = 3;    ///< sampled queries per audit_queries
    std::uint64_t seed = 0xa0d17ull;  ///< sampling seed
  };

  Auditor(Ring& ring, IndexPlatform* platform, Options opts);
  explicit Auditor(Ring& ring, IndexPlatform* platform = nullptr);

  /// Add a custom checker (runs after any already installed).
  void add_checker(std::unique_ptr<Checker> checker);

  /// Install the standard ring, partition, and conservation checkers.
  void install_standard_checkers();

  /// The installed conservation checker (null until
  /// install_standard_checkers).
  [[nodiscard]] ConservationChecker* conservation() { return conservation_; }

  /// Snapshot the current index multiset as the conservation baseline.
  void capture_baseline();

  /// Run every checker once against the current global state.
  AuditReport run_once();

  /// Register run_once() as the simulator's audit hook at the
  /// configured cadence (and at quiescence).
  void attach();

  /// Cross-check `samples` random range queries (0 = options default)
  /// against a brute-force scan of every live store. Requires a
  /// platform and a quiescent simulator; drives the simulator to route
  /// the sampled queries.
  AuditReport audit_queries(std::uint32_t scheme, std::size_t samples = 0);

  /// Union of every pass so far (hook-driven and explicit).
  [[nodiscard]] const AuditReport& accumulated() const { return accumulated_; }

  /// Number of completed audit passes.
  [[nodiscard]] std::uint64_t audits_run() const { return audits_; }

 private:
  void finish_pass(const AuditReport& report);

  Ring& ring_;
  IndexPlatform* platform_;
  Options opts_;
  Rng rng_;
  std::vector<std::unique_ptr<Checker>> checkers_;
  ConservationChecker* conservation_ = nullptr;
  AuditReport accumulated_;
  std::uint64_t audits_ = 0;
};

}  // namespace audit
}  // namespace lmk
