#include "audit/explorer.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/index_platform.hpp"

namespace lmk::audit {
namespace {

/// One execution of the canonical scenario. `sends_out`, when non-null,
/// receives the number of messages the injector observed (the swarm
/// generator scales its sequence-number draws with it).
RunResult run_plan(const ExploreOptions& opts, const FaultPlan& plan,
                   std::uint64_t* sends_out) {
  Simulator sim;
  sim.set_tie_break(plan.tie);
  sim.set_shuffle_seed(plan.shuffle_seed);
  // Constant latency on purpose: equal delays pile deliveries into the
  // same instant, so the tie-break order (the thing kShuffled explores)
  // decides as much as possible.
  ConstantLatencyModel topo(opts.hosts, 10 * kMillisecond);
  Network net(sim, topo);
  Ring::Options ropts;
  ropts.seed = opts.scenario_seed;
  Ring ring(net, ropts);
  for (HostId h = 0; h < opts.hosts; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform::Options popts;
  popts.replication = opts.replication;
  IndexPlatform platform(ring, popts);
  const std::uint32_t scheme =
      platform.register_scheme("sched", uniform_boundary(2, 0, 1), false);
  Rng load_rng(mix64(opts.scenario_seed ^ 0x10adull));
  for (std::size_t i = 0; i < opts.entries; ++i) {
    platform.insert(scheme, i,
                    IndexPoint{load_rng.uniform(), load_rng.uniform()});
  }

  Auditor::Options aopts;
  aopts.fail_fast = false;
  Auditor auditor(ring, &platform, aopts);
  auditor.install_standard_checkers();
  auditor.capture_baseline();

  FaultInjector inj(sim, plan);
  net.set_fault_injector(&inj);
  FaultInjector::Hooks hooks;
  hooks.crash = [&ring, &opts](HostId h) {
    ChordNode& n = ring.node(h);
    // Never crash below the replication degree: a conforming plan must
    // leave at least one copy of every entry alive.
    if (!n.alive() || ring.alive_count() <= opts.replication) return;
    ring.fail(n);
  };
  hooks.rejoin = [&ring, &plan](HostId h) {
    ChordNode& n = ring.node(h);
    if (n.alive()) return;
    ring.rejoin(n, mix64(n.id() ^ (plan.shuffle_seed + 0x7ea11ull)));
  };
  inj.arm(std::move(hooks));

  // Query workload spread across the fault window, from rotating
  // origins resolved at fire time (the scheduled origin may have
  // crashed by then).
  Rng query_rng(mix64(opts.scenario_seed ^ 0x9e37ull));
  for (std::size_t q = 0; q < opts.queries; ++q) {
    const SimTime at = static_cast<SimTime>(
        (q + 1) * static_cast<std::uint64_t>(opts.horizon) /
        (opts.queries + 1));
    const std::uint64_t pick = query_rng.next();
    sim.schedule_at(at, [&ring, &platform, scheme, pick] {
      auto alive = ring.alive_nodes();
      if (alive.empty()) return;
      platform.region_query(*alive[pick % alive.size()], scheme,
                            Region{{Interval{0.2, 0.8}, Interval{0.2, 0.8}}},
                            IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                            [](const IndexPlatform::QueryOutcome&) {});
    });
  }
  // Maintenance sweeps generate control traffic inside the window; the
  // call drains the simulator, so every query, fault and churn
  // directive has fired by the time it returns.
  ring.run_stabilization(opts.stab_rounds,
                         opts.horizon / (opts.stab_rounds + 1));

  // Recovery phase (the "recover by quiescence" contract): faults off,
  // held messages delivered, routing state repaired, replication
  // restored — then every invariant must hold again.
  inj.disarm();
  sim.run();
  for (ChordNode* n : ring.alive_nodes()) ring.fix_neighbors(*n);
  ring.refresh_all_fingers();
  platform.repair_replication();
  sim.run();

  RunResult res;
  res.report = auditor.run_once();
  res.failed = !res.report.ok();
  res.stats = inj.stats();
  if (sends_out != nullptr) *sends_out = inj.stats().sends;
  net.set_fault_injector(nullptr);
  return res;
}

}  // namespace

RunResult run_scenario(const ExploreOptions& opts, const FaultPlan& plan) {
  return run_plan(opts, plan, nullptr);
}

FaultPlan shrink(const ExploreOptions& opts, const FaultPlan& failing,
                 std::size_t* runs) {
  FaultPlan best = failing;
  std::size_t budget = opts.shrink_budget;
  const auto fails = [&](std::vector<FaultDirective> dirs) {
    --budget;
    if (runs != nullptr) ++*runs;
    FaultPlan candidate = best;
    candidate.directives = std::move(dirs);
    return run_plan(opts, candidate, nullptr).failed;
  };
  // ddmin, complement-only variant: repeatedly try to delete one of n
  // chunks; on success restart at coarser granularity, otherwise
  // refine. Reaches 1-minimality (no single directive removable) when
  // n grows to the list size, unless the run budget ends first.
  std::size_t n = 2;
  while (best.directives.size() >= 2 && budget > 0) {
    const std::size_t len = best.directives.size();
    const std::size_t chunk = (len + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < len && budget > 0; start += chunk) {
      std::vector<FaultDirective> cand;
      cand.reserve(len);
      for (std::size_t i = 0; i < len; ++i) {
        if (i >= start && i < std::min(start + chunk, len)) continue;
        cand.push_back(best.directives[i]);
      }
      if (cand.empty()) continue;  // the empty plan is the passing baseline
      if (fails(cand)) {
        best.directives = std::move(cand);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= best.directives.size()) break;
      n = std::min(best.directives.size(), n * 2);
    }
  }
  return best;
}

ExploreResult explore(const ExploreOptions& opts) {
  ExploreResult out;
  // Fault-free baseline: sanity-checks the scenario itself and counts
  // the messages a clean run sends (scales sequence-number draws).
  RunResult base = run_plan(opts, FaultPlan{}, &out.baseline_sends);
  ++out.runs;
  if (base.failed) {
    out.baseline_failed = true;
    out.found_failure = true;
    out.violation = base.report.violations.front().to_string();
    return out;
  }
  FaultPlan::GenOptions gen;
  gen.hosts = opts.hosts;
  gen.sends = std::max<std::uint64_t>(out.baseline_sends, 1);
  gen.horizon = opts.horizon;
  gen.directives = opts.directives;
  gen.max_crashes = opts.replication > 1 ? opts.replication - 1 : 0;
  for (std::size_t i = 0; i < opts.plans; ++i) {
    const std::uint64_t seed = opts.swarm_seed + i;
    FaultPlan plan = FaultPlan::generate(seed, gen);
    RunResult r = run_plan(opts, plan, nullptr);
    ++out.runs;
    if (!r.failed) continue;
    out.found_failure = true;
    out.failing_seed = seed;
    out.failing_plan = plan;
    out.violation = r.report.violations.front().to_string();
    out.minimized = shrink(opts, plan, &out.runs);
    return out;
  }
  return out;
}

}  // namespace lmk::audit
