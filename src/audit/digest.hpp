// Per-node state digests for the event-tie race detector.
//
// A digest summarizes everything observable about one node: its routing
// state (successors, predecessor, fingers, incarnation) and the index
// entries it stores. Store contents are hashed as a multiset, so two
// nodes holding the same entries in different vector order digest
// equally — vector order is an artifact of arrival order, not state.
#pragma once

#include <cstdint>
#include <vector>

#include "chord/ring.hpp"

namespace lmk {

class IndexPlatform;

namespace audit {

struct NodeDigest {
  Id node = 0;
  std::uint64_t digest = 0;
};

/// FNV-1a digest of one node's routing state and (if `platform` is
/// non-null) its stored entries.
[[nodiscard]] std::uint64_t node_state_digest(const ChordNode& node,
                                              const IndexPlatform* platform);

/// Digests of every alive node, ascending by node id.
[[nodiscard]] std::vector<NodeDigest> network_digests(
    const Ring& ring, const IndexPlatform* platform);

}  // namespace audit
}  // namespace lmk
