#include "audit/digest.hpp"

#include <bit>

#include "audit/audit.hpp"
#include "core/index_platform.hpp"

namespace lmk::audit {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t* h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= kFnvPrime;
  }
}

void mix_ref(std::uint64_t* h, const NodeRef& r) {
  mix(h, r.valid() ? r.id : ~std::uint64_t{0});
  mix(h, r.valid() ? 1 : 0);
}

}  // namespace

std::uint64_t node_state_digest(const ChordNode& node,
                                const IndexPlatform* platform) {
  std::uint64_t h = kFnvOffset;
  mix(&h, node.id());
  mix(&h, node.alive() ? 1 : 0);
  mix(&h, node.incarnation());
  mix_ref(&h, node.predecessor());
  mix(&h, node.successor_list().size());
  for (const NodeRef& r : node.successor_list()) mix_ref(&h, r);
  for (const NodeRef& f : node.finger_table()) mix_ref(&h, f);
  if (platform != nullptr) {
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(platform->scheme_count()); ++s) {
      const auto& entries = platform->store(node, s);
      // Multiset hash: sum of per-entry digests, insensitive to the
      // store's vector order.
      std::uint64_t sum = 0;
      for (EntryView e : entries) {
        std::uint64_t eh = kFnvOffset;
        mix(&eh, e.key);
        mix(&eh, e.object);
        for (double d : e.point) mix(&eh, std::bit_cast<std::uint64_t>(d));
        sum += eh;
      }
      mix(&h, s);
      mix(&h, entries.size());
      mix(&h, sum);
    }
  }
  return h;
}

std::vector<NodeDigest> network_digests(const Ring& ring,
                                        const IndexPlatform* platform) {
  std::vector<NodeDigest> out;
  for (const ChordNode* node : alive_by_id(ring)) {
    out.push_back(NodeDigest{node->id(), node_state_digest(*node, platform)});
  }
  return out;
}

}  // namespace lmk::audit
