// The standard invariant checkers (see audit.hpp for the framework).
//
//  * RingChecker      — Chord routing state vs. the converged oracle:
//                       successors, successor-list prefixes, predecessor
//                       symmetry, finger intervals.
//  * PartitionChecker — live nodes' key arcs (equivalently, their LPH
//                       hypercuboid sets) tile the ring with no gap or
//                       overlap; every stored entry lies inside its
//                       owner's arc and carries the key its point hashes
//                       to under the scheme's boundary + rotation.
//  * ConservationChecker — the multiset of (scheme, object, key) triples
//                       is preserved across migration/rotation: capture a
//                       baseline, then every later pass reports entries
//                       lost or duplicated since.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "audit/audit.hpp"

namespace lmk::audit {

class RingChecker : public Checker {
 public:
  [[nodiscard]] std::string_view name() const override { return "ring"; }
  void check(const AuditContext& ctx, AuditReport* out) override;
};

class PartitionChecker : public Checker {
 public:
  /// `tiling_samples` random keys are tested for exactly-one-owner per
  /// pass (a probabilistic whole-space tiling probe on top of the exact
  /// per-arc comparison).
  explicit PartitionChecker(std::size_t tiling_samples = 64)
      : tiling_samples_(tiling_samples) {}

  [[nodiscard]] std::string_view name() const override { return "partition"; }
  void check(const AuditContext& ctx, AuditReport* out) override;

 private:
  std::size_t tiling_samples_;
};

class ConservationChecker : public Checker {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "conservation";
  }

  /// Record the current multiset of indexed entries as the baseline all
  /// later passes compare against. Call after bulk load / balancing,
  /// before the events that must conserve the index.
  void capture(const AuditContext& ctx);

  [[nodiscard]] bool captured() const { return captured_; }

  void check(const AuditContext& ctx, AuditReport* out) override;

 private:
  // (scheme, object, key): the identity of one stored copy.
  using Item = std::tuple<std::uint32_t, std::uint64_t, Id>;
  [[nodiscard]] static std::vector<Item> collect(const AuditContext& ctx);

  std::vector<Item> baseline_;
  bool captured_ = false;
};

}  // namespace lmk::audit
