#include "audit/audit.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lmk::audit {

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<std::size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string Violation::to_string() const {
  std::string who =
      node_known
          ? strformat("node=%016llx", static_cast<unsigned long long>(node))
          : std::string("node=<network>");
  return strformat("[%s] %s t=%lld: %s", invariant.c_str(), who.c_str(),
                   static_cast<long long>(at), detail.c_str());
}

void AuditReport::merge(AuditReport other) {
  checks += other.checks;
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string AuditReport::summary() const {
  std::string out = strformat("audit: %zu violation(s), %llu check(s)",
                              violations.size(),
                              static_cast<unsigned long long>(checks));
  std::size_t shown = std::min<std::size_t>(violations.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    out += "\n  " + violations[i].to_string();
  }
  if (shown < violations.size()) {
    out += strformat("\n  ... and %zu more", violations.size() - shown);
  }
  return out;
}

std::vector<ChordNode*> alive_by_id(const Ring& ring) {
  std::vector<ChordNode*> nodes = ring.alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](const ChordNode* a, const ChordNode* b) {
              return a->id() < b->id();
            });
  return nodes;
}

bool audit_env_enabled() {
  const char* v = std::getenv("LMK_AUDIT");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace lmk::audit
