#include "audit/race.hpp"

#include <algorithm>

#include "audit/audit.hpp"

namespace lmk::audit {

std::string RaceReport::to_string() const {
  if (!diverged) {
    return strformat("event-tie race check: no divergence "
                     "(%llu tie group(s), %llu tied event(s))",
                     static_cast<unsigned long long>(ties.groups),
                     static_cast<unsigned long long>(ties.events));
  }
  std::string out = strformat(
      "event-tie race detected: %zu node(s) diverge under perturbed "
      "tie-break order:",
      divergent_nodes.size());
  std::size_t shown = std::min<std::size_t>(divergent_nodes.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    out += strformat(" %016llx",
                     static_cast<unsigned long long>(divergent_nodes[i]));
  }
  if (shown < divergent_nodes.size()) out += " ...";
  return out;
}

RaceReport detect_event_tie_races(const ScenarioFn& scenario) {
  RaceReport report;
  std::vector<NodeDigest> fifo = scenario(TieBreak::kFifo, &report.ties);
  std::vector<NodeDigest> reversed = scenario(TieBreak::kReversed, nullptr);

  // Both vectors are sorted by node id (network_digests order); a
  // mismatch in membership is itself a divergence.
  std::size_t i = 0, j = 0;
  while (i < fifo.size() || j < reversed.size()) {
    if (j >= reversed.size() ||
        (i < fifo.size() && fifo[i].node < reversed[j].node)) {
      report.divergent_nodes.push_back(fifo[i].node);
      ++i;
    } else if (i >= fifo.size() || reversed[j].node < fifo[i].node) {
      report.divergent_nodes.push_back(reversed[j].node);
      ++j;
    } else {
      if (fifo[i].digest != reversed[j].digest) {
        report.divergent_nodes.push_back(fifo[i].node);
      }
      ++i;
      ++j;
    }
  }
  report.diverged = !report.divergent_nodes.empty();
  return report;
}

}  // namespace lmk::audit
