#include "audit/auditor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/index_platform.hpp"
#include "lph/lph.hpp"

namespace lmk::audit {

Auditor::Auditor(Ring& ring, IndexPlatform* platform, Options opts)
    : ring_(ring), platform_(platform), opts_(opts), rng_(opts.seed) {}

Auditor::Auditor(Ring& ring, IndexPlatform* platform)
    : Auditor(ring, platform, Options{}) {}

void Auditor::add_checker(std::unique_ptr<Checker> checker) {
  checkers_.push_back(std::move(checker));
}

void Auditor::install_standard_checkers() {
  add_checker(std::make_unique<RingChecker>());
  add_checker(std::make_unique<PartitionChecker>(opts_.tiling_samples));
  auto conservation = std::make_unique<ConservationChecker>();
  conservation_ = conservation.get();
  add_checker(std::move(conservation));
}

void Auditor::capture_baseline() {
  LMK_CHECK_MSG(conservation_ != nullptr,
                "capture_baseline needs install_standard_checkers first");
  AuditContext ctx{&ring_, platform_, ring_.sim().now(), &rng_};
  conservation_->capture(ctx);
}

AuditReport Auditor::run_once() {
  AuditContext ctx{&ring_, platform_, ring_.sim().now(), &rng_};
  AuditReport report;
  for (const auto& checker : checkers_) {
    checker->check(ctx, &report);
  }
  finish_pass(report);
  return report;
}

void Auditor::attach() {
  ring_.sim().set_audit(opts_.cadence, [this](SimTime) { run_once(); });
}

AuditReport Auditor::audit_queries(std::uint32_t scheme,
                                   std::size_t samples) {
  AuditReport report;
  LMK_CHECK_MSG(platform_ != nullptr,
                "query-completeness audit needs an index platform");
  LMK_CHECK_MSG(ring_.sim().pending() == 0,
                "query-completeness audit requires a quiescent simulator "
                "(%zu events pending at t=%lld)",
                ring_.sim().pending(),
                static_cast<long long>(ring_.sim().now()));
  if (samples == 0) samples = opts_.query_samples;
  const SchemeRouting& sch = platform_->scheme(scheme);

  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<ChordNode*> nodes = alive_by_id(ring_);
    if (nodes.empty()) break;
    ChordNode* origin = nodes[rng_.below(nodes.size())];

    // A random near-neighbour region: center uniform in the boundary,
    // radius a small fraction of the mean dimension span.
    IndexPoint center(sch.boundary.size(), 0.0);
    double mean_span = 0;
    for (std::size_t d = 0; d < sch.boundary.size(); ++d) {
      const Interval& iv = sch.boundary[d];
      center[d] = iv.lo + rng_.uniform() * (iv.hi - iv.lo);
      mean_span += iv.hi - iv.lo;
    }
    mean_span /= static_cast<double>(sch.boundary.size());
    double radius = mean_span * (0.05 + 0.20 * rng_.uniform());
    Region region = query_region(center, radius);

    // Brute-force oracle over the god's-eye view, using the same
    // clamped region and closed-interval match the index nodes apply.
    Region clamped = region;
    clamp_region(clamped, sch.boundary);
    std::vector<std::uint64_t> expected;
    for (ChordNode* node : nodes) {
      for (EntryView e : platform_->store(*node, scheme)) {
        bool inside = true;
        for (std::size_t d = 0; d < e.point.size(); ++d) {
          const Interval& r = clamped.ranges[d];
          if (e.point[d] < r.lo || e.point[d] > r.hi) {
            inside = false;
            break;
          }
        }
        if (inside) expected.push_back(e.object);
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());

    bool finished = false;
    IndexPlatform::QueryOutcome outcome;
    platform_->region_query(*origin, scheme, region, center,
                            ReplyMode::kAllMatches,
                            [&](const IndexPlatform::QueryOutcome& o) {
                              outcome = o;
                              finished = true;
                            });
    ring_.sim().run();

    SimTime now = ring_.sim().now();
    ++report.checks;
    if (!finished || !outcome.complete) {
      report.violations.push_back(Violation{
          "query/incomplete", origin->id(), true, now,
          strformat("sampled query from %016llx never completed "
                    "(%d subqueries lost)",
                    static_cast<unsigned long long>(origin->id()),
                    outcome.lost_subqueries)});
      continue;
    }
    std::vector<std::uint64_t> got = outcome.results;
    std::sort(got.begin(), got.end());
    got.erase(std::unique(got.begin(), got.end()), got.end());

    auto report_diff = [&](const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b,
                           const char* kind, const char* explain) {
      std::vector<std::uint64_t> diff;
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(diff));
      constexpr std::size_t kShown = 5;
      for (std::size_t i = 0; i < diff.size() && i < kShown; ++i) {
        // Name the node whose store the object lives on (oracle view).
        Id holder = origin->id();
        bool found = false;
        for (ChordNode* node : nodes) {
          for (EntryView e : platform_->store(*node, scheme)) {
            if (e.object == diff[i]) {
              holder = node->id();
              found = true;
              break;
            }
          }
          if (found) break;
        }
        report.violations.push_back(Violation{
            strformat("query/%s-result", kind), holder, true, now,
            strformat("object %llu %s (query origin %016llx, %zu %s "
                      "in total)",
                      static_cast<unsigned long long>(diff[i]), explain,
                      static_cast<unsigned long long>(origin->id()),
                      diff.size(), kind)});
      }
    };
    report_diff(expected, got, "missing",
                "matches the region but was not returned");
    report_diff(got, expected, "spurious",
                "was returned but does not match the region");
  }

  finish_pass(report);
  return report;
}

void Auditor::finish_pass(const AuditReport& report) {
  ++audits_;
  accumulated_.merge(report);
  if (opts_.fail_fast && !report.ok()) {
    LMK_CHECK_MSG(false, "%s", report.summary().c_str());
  }
}

}  // namespace lmk::audit
