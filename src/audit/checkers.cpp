#include "audit/checkers.hpp"

#include <algorithm>

#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "core/index_platform.hpp"
#include "lph/lph.hpp"

namespace lmk::audit {
namespace {

unsigned long long hex(Id id) { return static_cast<unsigned long long>(id); }

void add(AuditReport* out, std::string invariant, SimTime at, Id node,
         bool node_known, std::string detail) {
  out->violations.push_back(Violation{std::move(invariant), node, node_known,
                                      at, std::move(detail)});
}

/// Index of the alive node owning `key` in the id-sorted vector.
std::size_t owner_index(const std::vector<ChordNode*>& nodes, Id key) {
  auto it = std::lower_bound(
      nodes.begin(), nodes.end(), key,
      [](const ChordNode* a, Id k) { return a->id() < k; });
  if (it == nodes.end()) return 0;  // wrap to the smallest id
  return static_cast<std::size_t>(it - nodes.begin());
}

}  // namespace

// ----- RingChecker -----

void RingChecker::check(const AuditContext& ctx, AuditReport* out) {
  std::vector<ChordNode*> nodes = alive_by_id(*ctx.ring);
  std::size_t n = nodes.size();
  if (n == 0) return;
  if (n == 1) {
    ChordNode* only = nodes[0];
    out->checks += 2;
    if (only->successor().node != only) {
      add(out, "ring/successor", ctx.now, only->id(), true,
          "singleton ring: node is not its own successor");
    }
    const NodeRef& p = only->predecessor();
    if (!p.valid() || p.node != only) {
      add(out, "ring/predecessor", ctx.now, only->id(), true,
          "singleton ring: node is not its own predecessor");
    }
    return;
  }

  for (std::size_t idx = 0; idx < n; ++idx) {
    ChordNode* node = nodes[idx];
    ChordNode* expected_succ = nodes[(idx + 1) % n];
    ChordNode* expected_pred = nodes[(idx + n - 1) % n];

    // Successor: the next live identifier on the ring.
    ++out->checks;
    NodeRef succ = node->successor();
    if (!succ.valid() || succ.node != expected_succ) {
      add(out, "ring/successor", ctx.now, node->id(), true,
          strformat("successor is %016llx%s, next live id is %016llx",
                    hex(succ.id), succ.valid() ? "" : " (stale)",
                    hex(expected_succ->id())));
    }

    // Successor list: a correct prefix of the ring order after this
    // node, with no stale entries and no skipped live node.
    std::span<const NodeRef> list = node->successor_list();
    std::size_t expected_len =
        std::min<std::size_t>(ChordNode::kSuccessors, n - 1);
    ++out->checks;
    if (list.size() != expected_len) {
      add(out, "ring/successor-list", ctx.now, node->id(), true,
          strformat("successor list has %zu entries, expected %zu",
                    list.size(), expected_len));
    }
    for (std::size_t j = 0; j < list.size(); ++j) {
      ++out->checks;
      ChordNode* want = nodes[(idx + 1 + j) % n];
      if (!list[j].valid()) {
        add(out, "ring/successor-list", ctx.now, node->id(), true,
            strformat("successor list entry %zu (%016llx) is stale", j,
                      hex(list[j].id)));
      } else if (list[j].node != want) {
        add(out, "ring/successor-list", ctx.now, node->id(), true,
            strformat("successor list entry %zu is %016llx, ring order "
                      "expects %016llx",
                      j, hex(list[j].id), hex(want->id())));
        break;  // everything after a skipped node mismatches too
      }
    }

    // Predecessor: symmetric with the previous node's successor claim.
    ++out->checks;
    const NodeRef& pred = node->predecessor();
    if (!pred.valid() || pred.node != expected_pred) {
      add(out, "ring/predecessor", ctx.now, node->id(), true,
          strformat("predecessor is %016llx%s, previous live id is %016llx",
                    hex(pred.id), pred.valid() ? "" : " (stale/unset)",
                    hex(expected_pred->id())));
    }

    // Fingers: finger i may be any node in the paper's interval
    // [id + 2^i, id + 2^{i+1}) (PNS picks by latency among them); when
    // the interval holds no live node it must be the first node after
    // the interval, i.e. the oracle successor of the interval start.
    for (int i = 0; i < kIdBits; ++i) {
      ++out->checks;
      Id start = node->finger_start(i);
      // Interval end is id + 2^{i+1}; for the last finger 2^{kIdBits}
      // wraps the full ring, i.e. end == id. Shifting by the full bit
      // width is UB, so the span is spelled out as 0 for that case.
      Id span = (i + 1 == kIdBits) ? Id{0} : (Id{1} << (i + 1));
      Id end = node->id() + span;
      NodeRef f = node->finger_table()[static_cast<std::size_t>(i)];
      if (!f.valid()) {
        add(out, "ring/finger", ctx.now, node->id(), true,
            strformat("finger %d (%016llx) is stale or unset", i,
                      hex(f.id)));
        continue;
      }
      ChordNode* oracle = nodes[owner_index(nodes, start)];
      if (in_closed_open(oracle->id(), start, end)) {
        if (!in_closed_open(f.id, start, end)) {
          add(out, "ring/finger", ctx.now, node->id(), true,
              strformat("finger %d is %016llx, outside its interval "
                        "[%016llx, %016llx) which holds live node %016llx",
                        i, hex(f.id), hex(start), hex(end),
                        hex(oracle->id())));
        }
      } else if (f.node != oracle) {
        add(out, "ring/finger", ctx.now, node->id(), true,
            strformat("finger %d is %016llx, but its empty interval "
                      "[%016llx, %016llx) must fall through to %016llx",
                      i, hex(f.id), hex(start), hex(end),
                      hex(oracle->id())));
      }
    }
  }
}

// ----- PartitionChecker -----

void PartitionChecker::check(const AuditContext& ctx, AuditReport* out) {
  std::vector<ChordNode*> nodes = alive_by_id(*ctx.ring);
  std::size_t n = nodes.size();
  if (n == 0) return;

  // Exact arc tiling: node idx claims (predecessor.id, id]; the claims
  // tile the ring iff every claimed arc starts exactly where the
  // previous live node ends.
  for (std::size_t idx = 0; idx < n; ++idx) {
    ChordNode* node = nodes[idx];
    ChordNode* expected_pred = nodes[(idx + n - 1) % n];
    ++out->checks;
    const NodeRef& pred = node->predecessor();
    if (!pred.valid()) {
      add(out, "partition/arc", ctx.now, node->id(), true,
          strformat("claimed arc has no live lower bound (predecessor "
                    "%016llx is stale/unset)",
                    hex(pred.id)));
      continue;
    }
    if (pred.id == expected_pred->id()) continue;
    if (n > 1 && in_open(pred.id, expected_pred->id(), node->id())) {
      add(out, "partition/arc-gap", ctx.now, node->id(), true,
          strformat("keys in (%016llx, %016llx] are claimed by no node "
                    "(arc starts at %016llx, previous live id is %016llx)",
                    hex(expected_pred->id()), hex(pred.id), hex(pred.id),
                    hex(expected_pred->id())));
    } else {
      add(out, "partition/arc-overlap", ctx.now, node->id(), true,
          strformat("claimed arc (%016llx, %016llx] overlaps arcs of "
                    "preceding nodes (previous live id is %016llx)",
                    hex(pred.id), hex(node->id()), hex(expected_pred->id())));
    }
  }

  // Sampled whole-space probe: every key — equivalently every LPH leaf
  // cuboid, since cuboid codes are keys — must have exactly one owner.
  if (ctx.rng != nullptr) {
    for (std::size_t s = 0; s < tiling_samples_; ++s) {
      ++out->checks;
      Id key = ctx.rng->next();
      std::size_t owners = 0;
      for (ChordNode* node : nodes) {
        if (node->owns(key)) ++owners;
      }
      if (owners == 1) continue;
      ChordNode* oracle = nodes[owner_index(nodes, key)];
      add(out,
          owners == 0 ? "partition/tiling-gap" : "partition/tiling-overlap",
          ctx.now, oracle->id(), true,
          strformat("key %016llx has %zu claimants, expected exactly 1 "
                    "(ring owner %016llx)",
                    hex(key), owners, hex(oracle->id())));
    }
  }

  // Stored entries: each copy carries the key its point hashes to and
  // sits on the owner (or, with replication r, one of the owner's r-1
  // successors).
  if (ctx.platform == nullptr) return;
  const IndexPlatform& platform = *ctx.platform;
  std::size_t replication = std::max<std::size_t>(
      1, platform.options().replication);
  for (ChordNode* node : nodes) {
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(platform.scheme_count()); ++s) {
      const SchemeRouting& sch = platform.scheme(s);
      for (EntryView e : platform.store(*node, s)) {
        out->checks += 2;
        Id expect_key = lph_hash(e.point, sch.boundary) + sch.rotation;
        if (e.key != expect_key) {
          add(out, "partition/entry-key", ctx.now, node->id(), true,
              strformat("scheme %u object %llu stored under key %016llx "
                        "but its point hashes to %016llx",
                        s, static_cast<unsigned long long>(e.object),
                        hex(e.key), hex(expect_key)));
        }
        std::size_t oidx = owner_index(nodes, e.key);
        bool placed = false;
        for (std::size_t r = 0; r < std::min(replication, n); ++r) {
          if (nodes[(oidx + r) % n] == node) {
            placed = true;
            break;
          }
        }
        if (!placed) {
          add(out, "partition/entry-misplaced", ctx.now, node->id(), true,
              strformat("scheme %u object %llu (key %016llx) stored "
                        "outside its owner's cuboid — owner is %016llx",
                        s, static_cast<unsigned long long>(e.object),
                        hex(e.key), hex(nodes[oidx]->id())));
        }
      }
    }
  }
}

// ----- ConservationChecker -----

std::vector<ConservationChecker::Item> ConservationChecker::collect(
    const AuditContext& ctx) {
  std::vector<Item> items;
  if (ctx.platform == nullptr) return items;
  for (ChordNode* node : alive_by_id(*ctx.ring)) {
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(ctx.platform->scheme_count()); ++s) {
      for (EntryView e : ctx.platform->store(*node, s)) {
        items.emplace_back(s, e.object, e.key);
      }
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

void ConservationChecker::capture(const AuditContext& ctx) {
  baseline_ = collect(ctx);
  captured_ = true;
}

void ConservationChecker::check(const AuditContext& ctx, AuditReport* out) {
  if (!captured_ || ctx.platform == nullptr) return;
  ++out->checks;
  std::vector<Item> current = collect(ctx);
  std::vector<Item> lost;
  std::set_difference(baseline_.begin(), baseline_.end(), current.begin(),
                      current.end(), std::back_inserter(lost));
  std::vector<Item> duplicated;
  std::set_difference(current.begin(), current.end(), baseline_.begin(),
                      baseline_.end(), std::back_inserter(duplicated));

  std::vector<ChordNode*> nodes = alive_by_id(*ctx.ring);
  auto report = [&](const std::vector<Item>& items, const char* kind) {
    constexpr std::size_t kShown = 5;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto& [scheme, object, key] = items[i];
      // Blame the node that owns (or should own) the entry's key.
      Id owner = nodes.empty() ? Id{0} : nodes[owner_index(nodes, key)]->id();
      if (i == kShown && items.size() > kShown + 1) {
        add(out, strformat("conservation/%s", kind), ctx.now, owner,
            !nodes.empty(),
            strformat("... and %zu more entries %s since the baseline",
                      items.size() - kShown, kind));
        break;
      }
      add(out, strformat("conservation/%s", kind), ctx.now, owner,
          !nodes.empty(),
          strformat("scheme %u object %llu (key %016llx) %s since the "
                    "baseline of %zu entries",
                    scheme, static_cast<unsigned long long>(object), hex(key),
                    kind, baseline_.size()));
    }
  };
  report(lost, "lost");
  report(duplicated, "duplicated");
}

}  // namespace lmk::audit
