// Schedule & fault exploration: the dynamic half of lmk-sched.
//
// The explorer runs one canonical churn scenario — a replicated index
// on a Chord ring serving queries while stabilization sweeps run —
// under a swarm of seeded FaultPlans (sim/fault.hpp): each plan picks
// a tie-break order for same-instant events (including the seeded
// kShuffled permutation) and a handful of fault directives. The oracle
// is the PR 3 auditor, applied with a recover-by-quiescence contract:
// after the last fault the injector is disarmed, routing state is
// repaired, replication is re-established, and every invariant (ring,
// partition tiling, conservation against the pre-fault baseline) must
// hold. A failing plan is minimized by delta debugging (ddmin over the
// directive list) and serialized as a `.sched` file that replays
// bit-for-bit — the artifact CI uploads and a human commits next to
// the regression test.
#pragma once

#include <cstdint>
#include <string>

#include "audit/auditor.hpp"
#include "sim/fault.hpp"

namespace lmk::audit {

/// Scenario + swarm dimensions. Defaults are the CI smoke scale.
struct ExploreOptions {
  std::size_t hosts = 24;          ///< ring size
  std::size_t entries = 240;       ///< indexed objects (2-D scheme)
  std::size_t replication = 2;     ///< copies per entry (max_crashes + 1)
  std::uint64_t scenario_seed = 1; ///< ring/workload seed
  std::size_t queries = 8;         ///< queries injected during the window
  int stab_rounds = 3;             ///< stabilization sweeps in the window
  SimTime horizon = 600 * kMillisecond;  ///< fault window length
  std::size_t plans = 16;          ///< seed-swarm size
  std::uint64_t swarm_seed = 1;    ///< plan seeds are swarm_seed + i
  std::size_t directives = 8;      ///< directives per generated plan
  std::size_t shrink_budget = 64;  ///< max scenario runs spent shrinking
};

/// Outcome of one scenario execution under one plan.
struct RunResult {
  bool failed = false;        ///< final audit reported violations
  AuditReport report;         ///< the final (post-recovery) audit pass
  FaultInjector::Stats stats; ///< what the plan actually injected
};

/// Run the canonical scenario once under `plan`. Deterministic: the
/// same options and plan always produce the same result.
[[nodiscard]] RunResult run_scenario(const ExploreOptions& opts,
                                     const FaultPlan& plan);

/// ddmin over `failing.directives`: the smallest sub-list (tie mode and
/// shuffle seed held fixed) that still fails the scenario, within
/// `opts.shrink_budget` runs. `runs`, when non-null, accumulates the
/// scenario executions spent.
[[nodiscard]] FaultPlan shrink(const ExploreOptions& opts,
                               const FaultPlan& failing,
                               std::size_t* runs = nullptr);

/// Swarm exploration result.
struct ExploreResult {
  bool found_failure = false;
  bool baseline_failed = false;  ///< the fault-free run itself failed
  std::uint64_t failing_seed = 0;
  FaultPlan failing_plan;   ///< the plan as generated
  FaultPlan minimized;      ///< after ddmin
  std::string violation;    ///< first violation of the failing run
  std::size_t runs = 0;     ///< scenario executions (swarm + shrink)
  std::uint64_t baseline_sends = 0;  ///< fault-free message count
};

/// Run the swarm: a fault-free baseline first (its send count scales
/// the generated sequence numbers; a baseline failure aborts the
/// swarm), then `opts.plans` generated plans until one fails. The
/// first failure is shrunk and returned.
[[nodiscard]] ExploreResult explore(const ExploreOptions& opts);

}  // namespace lmk::audit
