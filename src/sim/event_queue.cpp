#include "sim/event_queue.hpp"

#include "common/check.hpp"

namespace lmk {

void EventQueue::push(SimTime at, EventFn fn, std::uint64_t actor) {
  // The tie key is fixed at push time so the comparator stays stateless:
  // ascending seq gives FIFO, ascending ~seq gives reverse order.
  std::uint64_t seq = next_seq_++;
  std::uint64_t tie = mode_ == TieBreak::kFifo ? seq : ~seq;
  heap_.push(Entry{at, tie, actor, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  LMK_CHECK(!heap_.empty());
  return heap_.top().at;
}

EventFn EventQueue::pop(SimTime* at) {
  LMK_CHECK(!heap_.empty());
  // priority_queue::top() is const; the move is safe because we pop
  // immediately after.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  note_pop(top.at, top.actor);
  if (at != nullptr) *at = top.at;
  return std::move(top.fn);
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
  flush_tie_group();
}

void EventQueue::set_tie_break(TieBreak mode) {
  LMK_CHECK(heap_.empty());
  mode_ = mode;
}

TieStats EventQueue::tie_stats() {
  flush_tie_group();
  return stats_;
}

void EventQueue::note_pop(SimTime at, std::uint64_t actor) {
  if (at != group_at_) {
    flush_tie_group();
    group_at_ = at;
  }
  if (actor != kNoActor) ++group_actors_[actor];
}

void EventQueue::flush_tie_group() {
  for (const auto& [actor, count] : group_actors_) {
    (void)actor;
    if (count >= 2) {
      ++stats_.groups;
      stats_.events += count;
    }
  }
  group_actors_.clear();
  group_at_ = -1;
}

}  // namespace lmk
