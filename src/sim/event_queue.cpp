#include "sim/event_queue.hpp"

#include "common/check.hpp"

namespace lmk {

void EventQueue::push(SimTime at, EventFn fn) {
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  LMK_CHECK(!heap_.empty());
  return heap_.top().at;
}

EventFn EventQueue::pop(SimTime* at) {
  LMK_CHECK(!heap_.empty());
  // priority_queue::top() is const; the move is safe because we pop
  // immediately after.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  if (at != nullptr) *at = top.at;
  return std::move(top.fn);
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace lmk
