#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace lmk {
namespace {

/// Avalanching mix (the splitmix64 finalizer) so clustered timestamps
/// spread across the probe table.
std::uint64_t mix(SimTime at) {
  auto x = static_cast<std::uint64_t>(at);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

void EventQueue::push(SimTime at, EventFn fn, std::uint64_t actor) {
  std::uint32_t b = find_or_create_bucket(at);
  // Bucket slots keep their capacity across incarnations (clear(), not
  // shrink), so growth stops at the high-water events-per-instant mark.
  // lmk-lint: allow(hot-alloc) capacity warmup, amortizes to zero
  buckets_[b].events.push_back(Slot{actor, std::move(fn)});
  ++size_;
}

SimTime EventQueue::next_time() const {
  LMK_CHECK(size_ > 0);
  // Invariant: while events are pending, the heap-min bucket is
  // non-drained (pop sheds drained buckets eagerly), so its timestamp
  // is the earliest pending instant.
  return heap_.front().at;
}

EventFn EventQueue::pop(SimTime* at) {
  LMK_CHECK(size_ > 0);
  Bucket& b = buckets_[heap_.front().bucket];
  Slot slot;
  if (mode_ == TieBreak::kFifo) {
    slot = std::move(b.events[b.head++]);
  } else {
    if (mode_ == TieBreak::kShuffled && b.events.size() > 1) {
      // Draw a seeded index and swap it to the back; the draw key mixes
      // (seed, timestamp, draws-so-far) so the permutation is a pure
      // function of the seed and the bucket's arrival sequence — a
      // same-instant push joins the remaining pool and stays eligible.
      // Swap moves the two Slots in place: no allocation on this path.
      std::size_t idx =
          mix(shuffle_seed_ ^ (mix(b.at) + b.drawn)) % b.events.size();
      ++b.drawn;
      if (idx + 1 != b.events.size()) std::swap(b.events[idx], b.events.back());
    }
    slot = std::move(b.events.back());
    b.events.pop_back();
  }
  --size_;
  note_pop(b.at, slot.actor);
  if (at != nullptr) *at = b.at;
  // Shed the bucket as soon as it drains so the heap min is always a
  // live instant. A later push at the same timestamp (e.g. a zero-delay
  // schedule from the event we just popped) simply opens a fresh bucket
  // for it — by then every older same-instant event has already run, so
  // queue/stack order across the two incarnations is still (at, tie).
  while (!heap_.empty() && drained(buckets_[heap_.front().bucket])) {
    release_min_bucket();
  }
  return std::move(slot.fn);
}

void EventQueue::clear() {
  heap_.clear();
  buckets_.clear();
  free_.clear();
  table_.clear();
  table_live_ = 0;
  size_ = 0;
  flush_tie_group();
}

void EventQueue::set_tie_break(TieBreak mode) {
  LMK_CHECK(empty());
  mode_ = mode;
}

void EventQueue::set_shuffle_seed(std::uint64_t seed) {
  LMK_CHECK(empty());
  shuffle_seed_ = seed;
}

TieStats EventQueue::tie_stats() {
  flush_tie_group();
  return stats_;
}

void EventQueue::sift_up(std::size_t i) {
  HeapItem item = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 4;
    if (!before(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void EventQueue::sift_down(std::size_t i) {
  HeapItem item = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], item)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

std::uint32_t EventQueue::find_or_create_bucket(SimTime at) {
  if (table_.empty()) table_.resize(64);
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix(at) & mask;
  while (table_[i].bucket != kNoBucket) {
    if (table_[i].key == at) return table_[i].bucket;
    i = (i + 1) & mask;
  }
  std::uint32_t b;
  if (!free_.empty()) {
    b = free_.back();
    free_.pop_back();
  } else {
    b = static_cast<std::uint32_t>(buckets_.size());
    // Drained buckets recycle through free_, so the pool stops growing
    // at the high-water count of distinct pending instants.
    // lmk-lint: allow(hot-alloc) bucket-pool warmup, amortizes to zero
    buckets_.emplace_back();
    // At most one free-list entry can exist per pool slot, so sizing
    // free_ with the pool here keeps the push_back in
    // release_min_bucket() from ever reallocating: a late high-water of
    // simultaneously drained buckets must not allocate in steady state.
    // lmk-lint: allow(hot-alloc) grows only with the pool, amortizes to zero
    free_.reserve(buckets_.capacity());
  }
  buckets_[b].at = at;
  table_[i] = TableEntry{at, b};
  ++table_live_;
  // lmk-lint: allow(hot-alloc) heap capacity warmup, amortizes to zero
  heap_.push_back(HeapItem{at, b});
  sift_up(heap_.size() - 1);
  if (table_live_ * 10 >= table_.size() * 7) table_grow();
  return b;
}

void EventQueue::release_min_bucket() {
  Bucket& b = buckets_[heap_.front().bucket];
  table_erase(b.at);
  b.events.clear();  // keeps capacity for the bucket's next incarnation
  b.head = 0;
  b.drawn = 0;
  // lmk-lint: allow(hot-alloc) free-list capacity warmup, amortizes to zero
  free_.push_back(heap_.front().bucket);
  HeapItem last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    sift_down(0);
  }
}

void EventQueue::table_grow() {
  std::vector<TableEntry> old = std::move(table_);
  table_.assign(old.size() * 2, TableEntry{});
  const std::size_t mask = table_.size() - 1;
  for (const TableEntry& e : old) {
    if (e.bucket == kNoBucket) continue;
    std::size_t i = mix(e.key) & mask;
    while (table_[i].bucket != kNoBucket) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void EventQueue::table_erase(SimTime at) {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix(at) & mask;
  while (table_[i].key != at || table_[i].bucket == kNoBucket) {
    i = (i + 1) & mask;
  }
  table_[i].bucket = kNoBucket;
  --table_live_;
  // Backward-shift deletion keeps probe chains gap-free without
  // tombstones: walk the cluster after the hole and move back any entry
  // whose home slot does not lie inside (i, j].
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (table_[j].bucket == kNoBucket) break;
    std::size_t home = mix(table_[j].key) & mask;
    const bool home_in_hole_to_j =
        (j > i) ? (home > i && home <= j) : (home > i || home <= j);
    if (!home_in_hole_to_j) {
      table_[i] = table_[j];
      table_[j].bucket = kNoBucket;
      i = j;
    }
  }
}

void EventQueue::note_pop(SimTime at, std::uint64_t actor) {
  if (at != group_at_) {
    flush_tie_group();
    group_at_ = at;
  }
  if (actor == kNoActor) return;
  // Cleared (not shrunk) per tie group, so capacity stops at the
  // largest same-instant group.
  // lmk-lint: allow(hot-alloc) tie-group capacity warmup
  group_actors_.push_back(actor);
}

void EventQueue::flush_tie_group() {
  if (!group_actors_.empty()) {
    std::sort(group_actors_.begin(), group_actors_.end());
    std::size_t run = 1;
    for (std::size_t i = 1; i <= group_actors_.size(); ++i) {
      if (i < group_actors_.size() &&
          group_actors_[i] == group_actors_[i - 1]) {
        ++run;
        continue;
      }
      if (run >= 2) {
        ++stats_.groups;
        stats_.events += run;
      }
      run = 1;
    }
    group_actors_.clear();  // keeps capacity; groups re-form each timestamp
  }
  group_at_ = -1;
}

}  // namespace lmk
