// Priority queue of timestamped events for the discrete-event simulator.
//
// Ties are broken by insertion sequence number so that two events
// scheduled for the same instant run in schedule order — this makes the
// whole simulation deterministic, which the reproduction relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/latency_model.hpp"

namespace lmk {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Min-heap of (time, seq) ordered events.
class EventQueue {
 public:
  /// Enqueue `fn` to run at absolute time `at`.
  void push(SimTime at, EventFn fn);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the earliest pending event. Requires !empty().
  EventFn pop(SimTime* at);

  /// Drop all pending events.
  void clear();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lmk
