// Priority queue of timestamped events for the discrete-event simulator.
//
// Ties are broken by insertion sequence number so that two events
// scheduled for the same instant run in schedule order — this makes the
// whole simulation deterministic, which the reproduction relies on.
//
// For the audit subsystem the queue additionally supports:
//  - a perturbed (but still deterministic) tie-break mode, used by the
//    event-tie race detector to re-run a scenario with same-timestamp
//    events reversed and compare per-node state digests;
//  - an optional per-event actor tag (the node/host the event acts on),
//    so the queue can record same-(timestamp, actor) tie groups — the
//    places where tie-break order could matter at all.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "net/latency_model.hpp"

namespace lmk {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Actor tag for events not attributed to any node.
inline constexpr std::uint64_t kNoActor = ~std::uint64_t{0};

/// How same-timestamp events are ordered. Both modes are fully
/// deterministic; kReversed exists only to perturb tie order for the
/// race detector.
enum class TieBreak : std::uint8_t {
  kFifo,      // insertion order (the default)
  kReversed,  // reverse insertion order among equal timestamps
};

/// Counters over same-(timestamp, actor) event groups observed at pop
/// time. A "group" is >= 2 events sharing both the timestamp and a
/// non-kNoActor actor tag — exactly the events whose relative order is
/// decided by the tie-break policy rather than by virtual time.
struct TieStats {
  std::uint64_t groups = 0;  // distinct (timestamp, actor) groups
  std::uint64_t events = 0;  // events inside those groups
};

/// Min-heap of (time, tie-key) ordered events.
class EventQueue {
 public:
  /// Enqueue `fn` to run at absolute time `at`. `actor` optionally names
  /// the node/host the event acts on (for tie-group accounting).
  void push(SimTime at, EventFn fn, std::uint64_t actor = kNoActor);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the earliest pending event. Requires !empty().
  EventFn pop(SimTime* at);

  /// Drop all pending events.
  void clear();

  /// Select the tie-break policy. Must be called while the queue is
  /// empty (changing the order of already-heaped entries would corrupt
  /// the heap invariant).
  void set_tie_break(TieBreak mode);

  [[nodiscard]] TieBreak tie_break() const { return mode_; }

  /// Tie-group counters accumulated so far. Flushes the group forming
  /// at the current head timestamp, so call at quiescence for exact
  /// totals (mid-timestamp calls may split one group into two).
  TieStats tie_stats();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t tie;  // seq (kFifo) or ~seq (kReversed)
    std::uint64_t actor;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.tie > b.tie;
    }
  };

  void note_pop(SimTime at, std::uint64_t actor);
  void flush_tie_group();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  TieBreak mode_ = TieBreak::kFifo;
  TieStats stats_;
  // Actor multiplicities among events popped at the head timestamp.
  SimTime group_at_ = -1;
  std::map<std::uint64_t, std::uint64_t> group_actors_;
};

}  // namespace lmk
