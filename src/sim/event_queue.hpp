// Priority queue of timestamped events for the discrete-event simulator.
//
// Ties are broken by insertion sequence number so that two events
// scheduled for the same instant run in schedule order — this makes the
// whole simulation deterministic, which the reproduction relies on.
//
// Hot-path layout: events are grouped into per-timestamp buckets held
// in a pool; a flat 4-ary min-heap orders the *buckets* by timestamp
// (one heap entry per distinct pending instant), and an open-addressing
// hash maps timestamp -> live bucket so push appends in O(1). Within a
// bucket the tie-break order is free: under kFifo the bucket is a queue
// (events arrive in ascending sequence number, a cursor pops from the
// front), under kReversed it is a stack (pop from the back yields
// descending sequence, and a same-instant push lands on top — exactly
// the event that reversed order pops next), and under kShuffled the
// bucket is a pool (each pop swaps a seeded draw to the back and pops
// it, yielding a deterministic-per-seed permutation of the same-instant
// events — the schedule explorer's arbitrary-order probe). Heap sifts
// therefore cost
// O(log #distinct-timestamps) per *timestamp*, not per event — the win
// that matters under bursty delivery, where one instant carries many
// events. Callables are EventClosure (event_closure.hpp): 64-byte
// inline storage, heap fallback, move-only; they are moved only on
// bucket append/pop, never during sifts.
//
// Determinism: pop order is (at, tie) with tie = seq under kFifo and
// ~seq under kReversed, identical to a global heap over (at, tie) keys.
// Buckets partition events by `at`; the bucket heap is keyed by `at`
// alone and live buckets have distinct timestamps (the hash guarantees
// one live bucket per instant), so the comparator is a strict total
// order. The per-bucket queue/stack discipline reproduces the tie
// order, including events pushed at the instant currently draining.
//
// For the audit subsystem the queue additionally supports:
//  - a perturbed (but still deterministic) tie-break mode, used by the
//    event-tie race detector to re-run a scenario with same-timestamp
//    events reversed and compare per-node state digests;
//  - an optional per-event actor tag (the node/host the event acts on),
//    so the queue can record same-(timestamp, actor) tie groups — the
//    places where tie-break order could matter at all.
#pragma once

#include <cstdint>
#include <vector>

#include "net/latency_model.hpp"
#include "sim/event_closure.hpp"

namespace lmk {

/// Callback invoked when an event fires.
using EventFn = EventClosure;

/// Actor tag for events not attributed to any node.
inline constexpr std::uint64_t kNoActor = ~std::uint64_t{0};

/// How same-timestamp events are ordered. All modes are fully
/// deterministic; kReversed and kShuffled exist only to perturb tie
/// order for the race detector and the schedule explorer.
enum class TieBreak : std::uint8_t {
  kFifo,      // insertion order (the default)
  kReversed,  // reverse insertion order among equal timestamps
  kShuffled,  // seeded permutation among equal timestamps (set_shuffle_seed)
};

/// Counters over same-(timestamp, actor) event groups observed at pop
/// time. A "group" is >= 2 events sharing both the timestamp and a
/// non-kNoActor actor tag — exactly the events whose relative order is
/// decided by the tie-break policy rather than by virtual time.
struct TieStats {
  std::uint64_t groups = 0;  // distinct (timestamp, actor) groups
  std::uint64_t events = 0;  // events inside those groups
};

/// Min-heap of (time, tie-key) ordered events.
class EventQueue {
 public:
  /// Enqueue `fn` to run at absolute time `at`. `actor` optionally names
  /// the node/host the event acts on (for tie-group accounting).
  void push(SimTime at, EventFn fn, std::uint64_t actor = kNoActor);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Timestamp of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the earliest pending event. Requires !empty().
  EventFn pop(SimTime* at);

  /// Drop all pending events and reset the tie sequence.
  void clear();

  /// Select the tie-break policy. Must be called while the queue is
  /// empty (changing the order of already-bucketed entries would
  /// corrupt the per-bucket discipline).
  void set_tie_break(TieBreak mode);

  [[nodiscard]] TieBreak tie_break() const { return mode_; }

  /// Seed for kShuffled draws. Must be called while the queue is empty
  /// (a mid-bucket seed change would re-key a half-drained permutation).
  void set_shuffle_seed(std::uint64_t seed);

  [[nodiscard]] std::uint64_t shuffle_seed() const { return shuffle_seed_; }

  /// Tie-group counters accumulated so far. Flushes the group forming
  /// at the current head timestamp, so call at quiescence for exact
  /// totals (mid-timestamp calls may split one group into two).
  TieStats tie_stats();

 private:
  /// Pool slot: one pending event inside a bucket.
  struct Slot {
    std::uint64_t actor = kNoActor;
    EventClosure fn;
  };
  /// All events pending at one instant, in arrival (= sequence) order.
  /// kFifo pops events[head], kReversed pops events.back(); kShuffled
  /// swaps a seeded draw to the back first (drawn counts the draws so
  /// each pop re-keys the permutation deterministically).
  struct Bucket {
    SimTime at = 0;
    std::size_t head = 0;
    std::uint32_t drawn = 0;
    std::vector<Slot> events;
  };
  /// Heap key: buckets ordered by timestamp alone (timestamps of live
  /// buckets are distinct, so this is a strict total order).
  struct HeapItem {
    SimTime at;
    std::uint32_t bucket;
  };

  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};
  /// timestamp -> bucket-pool index; bucket == kNoBucket marks an empty
  /// table cell (linear probing, backward-shift deletion).
  struct TableEntry {
    SimTime key = 0;
    std::uint32_t bucket = kNoBucket;
  };

  [[nodiscard]] static bool before(const HeapItem& a, const HeapItem& b) {
    return a.at < b.at;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  [[nodiscard]] bool drained(const Bucket& b) const {
    return mode_ == TieBreak::kFifo ? b.head == b.events.size()
                                    : b.events.empty();
  }
  std::uint32_t find_or_create_bucket(SimTime at);
  void release_min_bucket();
  void table_grow();
  void table_erase(SimTime at);

  void note_pop(SimTime at, std::uint64_t actor);
  void flush_tie_group();

  std::vector<HeapItem> heap_;       // flat 4-ary min-heap of buckets
  std::vector<Bucket> buckets_;      // bucket pool
  std::vector<std::uint32_t> free_;  // recycled pool indices
  std::vector<TableEntry> table_;    // open-addressing timestamp index
  std::size_t table_live_ = 0;
  std::size_t size_ = 0;             // pending events across all buckets
  TieBreak mode_ = TieBreak::kFifo;
  std::uint64_t shuffle_seed_ = 0;   // keys kShuffled draws
  TieStats stats_;
  // Actors of events popped at the head timestamp, in pop order. The
  // flush sorts and counts runs — O(1) append per pop, and the
  // flush-time sort keeps busy timestamps (many actors) linearithmic.
  SimTime group_at_ = -1;
  std::vector<std::uint64_t> group_actors_;
};

}  // namespace lmk
