// Deterministic network fault injection for the schedule explorer.
//
// A FaultPlan is a small list of directives — message drops, duplicate
// deliveries, delay spikes, reorderings, link partitions, and
// crash-stop / crash-rejoin churn — either generated from a single
// seed (FaultPlan::generate) or parsed from a `.sched` text file. The
// FaultInjector executes a plan against Network::send: every message
// the network would schedule passes through on_send(), which matches
// directives by the global send sequence number (message faults) or by
// virtual time (partitions), and arm() schedules the timed churn
// directives through harness-provided hooks. Everything the injector
// does is a pure function of the plan and the simulation, so a failing
// run replays bit-for-bit from its `.sched` file — and with no
// injector installed Network::send is byte-identical to before.
//
// Known modelling limit: EventClosure is move-only, so a duplicated
// message cannot re-run its handler. kDuplicate instead delivers the
// original normally plus a no-op arrival event at a second, offset
// time — it perturbs same-instant tie groups and event interleaving
// the way a duplicate would, without re-applying the payload. True
// payload re-delivery arrives with the wire protocol (ROADMAP item 4).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/latency_model.hpp"
#include "sim/event_queue.hpp"

namespace lmk {

class Simulator;

/// One kind of injected fault.
enum class FaultKind : std::uint8_t {
  kDrop,       ///< message `seq` is never delivered
  kDuplicate,  ///< message `seq` also triggers a no-op arrival `extra` later
  kDelay,      ///< message `seq` takes `extra` additional microseconds
  kReorder,    ///< message `seq` is held until the next send to the same host
  kPartition,  ///< link a<->b (a==b: all links of a) drops in [at, until)
  kCrash,      ///< host `a` crash-stops at virtual time `at`
  kRejoin,     ///< host `a` rejoins at virtual time `at`
};

/// One fault directive. Which fields matter depends on `kind` (see
/// FaultKind); unused fields stay zero so plans print compactly.
struct FaultDirective {
  FaultKind kind = FaultKind::kDrop;
  std::uint64_t seq = 0;  ///< message faults: global send sequence number
  SimTime extra = 0;      ///< kDelay: added latency; kDuplicate: echo offset
  HostId a = 0;           ///< kPartition endpoint / churn target
  HostId b = 0;           ///< kPartition other endpoint (== a: isolate a)
  SimTime at = 0;         ///< kPartition window start / churn time
  SimTime until = 0;      ///< kPartition window end (exclusive)

  [[nodiscard]] std::string to_string() const;
};

/// A complete exploration schedule: the tie-break policy for
/// same-instant events plus the fault directives. Serializes to the
/// `.sched` text format (one directive per line) so minimized failing
/// plans can be committed and replayed via LMK_SCHED_REPLAY.
struct FaultPlan {
  TieBreak tie = TieBreak::kFifo;
  std::uint64_t shuffle_seed = 0;  ///< used when tie == kShuffled
  std::vector<FaultDirective> directives;

  /// Bounds for seeded plan generation. Sequence numbers are drawn
  /// below `sends`, fault windows and churn times inside
  /// [0, horizon), endpoints below `hosts`. At most `max_crashes`
  /// crash directives are emitted and every crash is paired with a
  /// rejoin of the same host later in the run — callers set
  /// max_crashes below the replication factor so a conforming plan
  /// can never lose every copy of an entry.
  struct GenOptions {
    std::size_t hosts = 0;
    std::uint64_t sends = 0;
    SimTime horizon = 0;
    std::size_t directives = 8;
    std::size_t max_crashes = 1;
  };

  /// Deterministic plan from one seed (the explorer's swarm unit).
  [[nodiscard]] static FaultPlan generate(std::uint64_t seed,
                                          const GenOptions& opts);

  /// `.sched` text round-trip.
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static bool parse(const std::string& text, FaultPlan* out,
                                  std::string* error);
};

/// Executes a FaultPlan against a Network (install via
/// Network::set_fault_injector). Passive until arm(); after disarm()
/// messages flow untouched again (held reordered messages are
/// released), so a scenario can measure fault-free recovery.
class FaultInjector {
 public:
  /// Churn callbacks, supplied by the harness (typically Ring::fail and
  /// Ring::rejoin plus index-layer repair). Invoked from scheduled
  /// events at each directive's virtual time.
  /// lmk-lint: allow(hot-std-function) install-time only, not per-event
  struct Hooks {
    std::function<void(HostId)> crash;
    std::function<void(HostId)> rejoin;
  };

  FaultInjector(Simulator& sim, FaultPlan plan);

  /// Activate message faults and schedule the churn directives.
  void arm(Hooks hooks);

  /// Stop affecting traffic. Held kReorder messages are rescheduled for
  /// immediate delivery so no payload is silently lost; already-elapsed
  /// churn directives have fired, pending ones become no-ops.
  void disarm();

  [[nodiscard]] bool armed() const { return armed_; }

  /// Virtual time of the last fault the plan can inject (the recovery
  /// phase starts after this instant). 0 for an all-message-fault plan
  /// whose sequence numbers were never reached.
  [[nodiscard]] SimTime last_fault_time() const { return last_fault_time_; }

  /// Counters for reporting/tests.
  struct Stats {
    std::uint64_t sends = 0;      ///< messages observed while armed
    std::uint64_t dropped = 0;    ///< kDrop + kPartition discards
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t reordered = 0;  ///< messages held by kReorder
    std::uint64_t crashes = 0;
    std::uint64_t rejoins = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Network::send interception. Returns true when the injector
  /// consumed the message (dropped or held); otherwise the caller
  /// schedules `handler` with the (possibly adjusted) `delay`.
  bool on_send(HostId from, HostId to, SimTime& delay, EventFn& handler);

 private:
  struct Held {
    HostId to = 0;
    EventFn fn;
  };

  Simulator& sim_;
  FaultPlan plan_;
  Hooks hooks_;
  Stats stats_;
  std::vector<Held> held_;  ///< kReorder messages awaiting a release
  std::uint64_t next_seq_ = 0;
  SimTime last_fault_time_ = 0;
  std::uint64_t armed_epoch_ = 0;  ///< invalidates scheduled churn on disarm
  bool armed_ = false;
};

}  // namespace lmk
