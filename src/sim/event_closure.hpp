// Move-only type-erased `void()` callable for the event engine.
//
// std::function is the wrong tool for a discrete-event hot path: its
// small-buffer window (16 bytes in libstdc++) spills almost every
// protocol continuation to the heap, it drags copy machinery along that
// the queue never uses, and every heap sift moves the full callable.
// EventClosure fixes the first two: a 64-byte inline buffer holds every
// routine simulator continuation (message deliveries capture `this`,
// ids, incarnations and a vector handle — about 56 bytes for the tree
// router's batched delivery), larger captures fall back to one heap
// allocation, and the type is move-only so move-only captures work too.
// The third is fixed by the queue itself, which sifts (time, tie, slot)
// keys and leaves closures parked in a slot pool (see event_queue.hpp).
//
// The dispatch table is a static per-type Ops vtable (invoke /
// relocate / destroy); relocation is what the slot pool needs when its
// backing vector grows, so stored callables must be nothrow move
// constructible (every lambda over movable captures is).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lmk {

/// Move-only `void()` callable with a 64-byte inline buffer.
class EventClosure {
 public:
  /// Inline capture capacity. Callables up to this size (and
  /// max_align_t alignment) are stored in place; larger ones cost one
  /// heap allocation.
  static constexpr std::size_t kInlineBytes = 64;

  EventClosure() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventClosure> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for EventFn.
  EventClosure(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "event callables must be nothrow move constructible "
                  "(the slot pool relocates them when it grows)");
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      // Cold fallback: only captures over 64 bytes land here, and the
      // engine's routine continuations all fit inline (the alloc-guard
      // bench gate proves the steady state is allocation-free).
      // lmk-lint: allow(hot-alloc) oversized-capture cold fallback
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventClosure(EventClosure&& other) noexcept { steal(other); }

  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  ~EventClosure() { reset(); }

  /// Invoke the stored callable. Requires a non-empty closure.
  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the stored callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the stored callable lives in the inline buffer (tests).
  [[nodiscard]] bool is_inline() const {
    return ops_ != nullptr && ops_->inline_storage;
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    /// Move the callable from `src`'s buffer into `dst`'s and destroy
    /// the source — the slot pool's relocation primitive.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* buf) noexcept;
    bool inline_storage;
  };

  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t);
  }

  template <typename D>
  static D* inline_ptr(void* buf) {
    return std::launder(reinterpret_cast<D*>(buf));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* buf) { (*inline_ptr<D>(buf))(); },
      /*relocate=*/
      [](void* src, void* dst) noexcept {
        D* from = inline_ptr<D>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      /*destroy=*/[](void* buf) noexcept { inline_ptr<D>(buf)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* buf) { (**reinterpret_cast<D**>(buf))(); },
      /*relocate=*/
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      /*destroy=*/[](void* buf) noexcept { delete *reinterpret_cast<D**>(buf); },
      /*inline_storage=*/false,
  };

  void steal(EventClosure& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace lmk
