#include "sim/network.hpp"

#include <cmath>

#include "common/check.hpp"
#include "sim/fault.hpp"

namespace lmk {

void Network::set_jitter(double fraction, std::uint64_t seed) {
  LMK_CHECK(fraction >= 0);
  jitter_ = fraction;
  jitter_rng_ = Rng(seed);
}

void Network::send(HostId from, HostId to, std::uint64_t bytes,
                   EventFn handler, TrafficCounter* counter) {
  LMK_DCHECK(from < topology_.size());
  LMK_DCHECK(to < topology_.size());
  total_.add(bytes);
  if (counter != nullptr) counter->add(bytes);
  SimTime delay = topology_.latency(from, to);
  if (jitter_ > 0 && delay > 0) {
    // Round to the nearest microsecond: truncation would floor any
    // sub-unit jitter draw to zero, silently disabling jitter for
    // low-latency links (delay * fraction < 1) and biasing the rest low.
    delay += static_cast<SimTime>(std::llround(
        static_cast<double>(delay) * jitter_ * jitter_rng_.uniform()));
  }
  // Offer the message to the fault injector (counters above already
  // charged: a dropped message still consumed uplink bandwidth). A
  // consumed message was dropped or held; otherwise the injector may
  // have stretched `delay`.
  if (faults_ != nullptr && faults_->on_send(from, to, delay, handler)) {
    return;
  }
  // Tag the delivery with the destination host so the event queue can
  // record same-(timestamp, node) tie groups for the race detector.
  sim_.schedule_after(delay, std::move(handler), to);
}

}  // namespace lmk
