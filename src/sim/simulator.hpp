// The discrete-event simulator driving all protocol activity.
//
// This is our substitute for p2psim: a single virtual clock, an event
// queue, and helpers to schedule work at relative or absolute times.
// Protocol code never blocks; everything is continuation-passing via
// scheduled callbacks.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"

namespace lmk {

/// Virtual-time event loop.
class Simulator {
 public:
  /// Current virtual time (microseconds since simulation start).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (delay >= 0).
  void schedule_after(SimTime delay, EventFn fn);

  /// Schedule `fn` at absolute virtual time `at` (must not be in the past).
  void schedule_at(SimTime at, EventFn fn);

  /// Run events until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit =
                        std::numeric_limits<std::uint64_t>::max());

  /// Run events with timestamps <= `until` (the clock ends at `until`
  /// even if the queue drains earlier). Returns events executed.
  std::uint64_t run_until(SimTime until);

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Pending event count (diagnostics).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Drop all pending events (used between experiment phases).
  void drain() { queue_.clear(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace lmk
