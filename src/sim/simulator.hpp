// The discrete-event simulator driving all protocol activity.
//
// This is our substitute for p2psim: a single virtual clock, an event
// queue, and helpers to schedule work at relative or absolute times.
// Protocol code never blocks; everything is continuation-passing via
// scheduled callbacks.
//
// The simulator can host a single audit hook (src/audit/): a passive
// observer invoked on a configurable virtual-time cadence while events
// run, and once more at quiescence (when the queue drains). The hook
// must not schedule events — it is a read-only inspection point.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"

namespace lmk {

/// Passive observer invoked with the current virtual time. Installed
/// once per run (set_audit), never constructed per event.
/// lmk-lint: allow(hot-std-function) install-time only, not per-event
using AuditHook = std::function<void(SimTime)>;

/// Virtual-time event loop.
class Simulator {
 public:
  /// Current virtual time (microseconds since simulation start).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (delay >= 0).
  /// `actor` optionally names the node/host the event acts on; the
  /// event queue uses it to record same-(timestamp, actor) tie groups.
  void schedule_after(SimTime delay, EventFn fn,
                      std::uint64_t actor = kNoActor);

  /// Schedule `fn` at absolute virtual time `at` (must not be in the past).
  void schedule_at(SimTime at, EventFn fn, std::uint64_t actor = kNoActor);

  /// Run events until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit =
                        std::numeric_limits<std::uint64_t>::max());

  /// Run events with timestamps <= `until` (the clock ends at `until`
  /// even if the queue drains earlier). Returns events executed.
  std::uint64_t run_until(SimTime until);

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Pending event count (diagnostics).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Drop all pending events (used between experiment phases).
  void drain() { queue_.clear(); }

  /// Install the audit hook. With cadence > 0 the hook fires whenever
  /// virtual time crosses a multiple of `cadence` during run()/run_until(),
  /// and always once more when run() drains the queue (quiescence).
  /// Cadence 0 audits only at quiescence. Passing a null hook uninstalls.
  void set_audit(SimTime cadence, AuditHook hook);

  /// Number of times the audit hook has fired.
  [[nodiscard]] std::uint64_t audits_fired() const { return audits_fired_; }

  /// Tie-break policy for same-timestamp events (race detector probe).
  /// Only valid while no events are pending.
  void set_tie_break(TieBreak mode) { queue_.set_tie_break(mode); }

  /// Seed for TieBreak::kShuffled same-timestamp draws (schedule
  /// explorer probe). Only valid while no events are pending.
  void set_shuffle_seed(std::uint64_t seed) { queue_.set_shuffle_seed(seed); }

  /// Same-(timestamp, actor) tie-group counters from the event queue.
  [[nodiscard]] TieStats tie_stats() { return queue_.tie_stats(); }

 private:
  void maybe_audit();
  void audit_now();

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  AuditHook audit_hook_;
  SimTime audit_cadence_ = 0;
  SimTime next_audit_ = 0;
  std::uint64_t audits_fired_ = 0;
  bool in_audit_ = false;
};

}  // namespace lmk
