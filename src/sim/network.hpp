// Packet-level message delivery between simulated hosts.
//
// Messages are delivered as scheduled callbacks after the one-way latency
// given by the topology's LatencyModel. Every message carries a byte size
// so the harness can account bandwidth with the paper's cost model; the
// network keeps global counters and supports per-category accounting via
// TrafficCounter hooks.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "net/latency_model.hpp"
#include "sim/simulator.hpp"

namespace lmk {

class FaultInjector;

/// Byte/message counters for one traffic category (e.g. one query, or
/// all maintenance traffic).
struct TrafficCounter {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  void add(std::uint64_t sz) {
    ++messages;
    bytes += sz;
  }
};

/// Simulated network: schedules sized messages with topology latency.
class Network {
 public:
  Network(Simulator& sim, const LatencyModel& topology)
      : sim_(sim), topology_(topology) {}

  /// Enable per-message delay jitter: each delivery takes
  /// latency * (1 + U[0, fraction)). Deterministic for a given seed.
  void set_jitter(double fraction, std::uint64_t seed);

  /// Install (or, with nullptr, remove) a fault injector (sim/fault.hpp):
  /// every send is offered to it before scheduling, so an armed injector
  /// can drop, hold, or retime messages. The network does not own the
  /// injector; with none installed send() behaves exactly as before.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

  [[nodiscard]] FaultInjector* fault_injector() const { return faults_; }

  /// Deliver `handler` at `to` after the one-way latency from `from`.
  /// `bytes` is the modeled message size; `counter` (optional) receives
  /// the per-category accounting in addition to the global counters.
  void send(HostId from, HostId to, std::uint64_t bytes, EventFn handler,
            TrafficCounter* counter = nullptr);

  /// One-way latency lookup (used by PNS and by tests).
  [[nodiscard]] SimTime latency(HostId a, HostId b) const {
    return topology_.latency(a, b);
  }

  /// Number of hosts in the topology.
  [[nodiscard]] std::size_t hosts() const { return topology_.size(); }

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  /// All traffic since construction.
  [[nodiscard]] const TrafficCounter& total_traffic() const { return total_; }

 private:
  Simulator& sim_;
  const LatencyModel& topology_;
  TrafficCounter total_;
  double jitter_ = 0;
  Rng jitter_rng_{0};
  FaultInjector* faults_ = nullptr;
};

}  // namespace lmk
