#include "sim/simulator.hpp"

#include "common/check.hpp"

namespace lmk {

void Simulator::schedule_after(SimTime delay, EventFn fn) {
  LMK_CHECK(delay >= 0);
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime at, EventFn fn) {
  LMK_CHECK(at >= now_);
  queue_.push(at, std::move(fn));
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && !queue_.empty()) {
    SimTime at = 0;
    EventFn fn = queue_.pop(&at);
    LMK_CHECK(at >= now_);
    now_ = at;
    fn();
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime until) {
  LMK_CHECK(until >= now_);
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    SimTime at = 0;
    EventFn fn = queue_.pop(&at);
    now_ = at;
    fn();
    ++n;
  }
  now_ = until;
  executed_ += n;
  return n;
}

}  // namespace lmk
