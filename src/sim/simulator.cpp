#include "sim/simulator.hpp"

#include <utility>

#include "common/check.hpp"

namespace lmk {

void Simulator::schedule_after(SimTime delay, EventFn fn,
                               std::uint64_t actor) {
  LMK_CHECK(delay >= 0);
  queue_.push(now_ + delay, std::move(fn), actor);
}

void Simulator::schedule_at(SimTime at, EventFn fn, std::uint64_t actor) {
  LMK_CHECK(at >= now_);
  queue_.push(at, std::move(fn), actor);
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && !queue_.empty()) {
    SimTime at = 0;
    EventFn fn = queue_.pop(&at);
    LMK_CHECK(at >= now_);
    now_ = at;
    fn();
    ++n;
    maybe_audit();
  }
  executed_ += n;
  // Quiescence audit: the queue drained (as opposed to hitting `limit`),
  // so the global state is stable and safe to inspect.
  if (n > 0 && queue_.empty()) audit_now();
  return n;
}

std::uint64_t Simulator::run_until(SimTime until) {
  LMK_CHECK(until >= now_);
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    SimTime at = 0;
    EventFn fn = queue_.pop(&at);
    now_ = at;
    fn();
    ++n;
    maybe_audit();
  }
  now_ = until;
  executed_ += n;
  return n;
}

void Simulator::set_audit(SimTime cadence, AuditHook hook) {
  LMK_CHECK(cadence >= 0);
  audit_cadence_ = cadence;
  audit_hook_ = std::move(hook);
  if (audit_cadence_ > 0) {
    next_audit_ = (now_ / audit_cadence_ + 1) * audit_cadence_;
  }
}

void Simulator::maybe_audit() {
  if (!audit_hook_ || audit_cadence_ <= 0 || in_audit_) return;
  while (now_ >= next_audit_) {
    audit_now();
    next_audit_ += audit_cadence_;
  }
}

void Simulator::audit_now() {
  if (!audit_hook_ || in_audit_) return;
  in_audit_ = true;
  std::size_t before = queue_.size();
  audit_hook_(now_);
  // The hook is a passive observer; scheduling from inside it would
  // perturb the very execution it is meant to validate.
  LMK_CHECK(queue_.size() == before);
  in_audit_ = false;
  ++audits_fired_;
}

}  // namespace lmk
