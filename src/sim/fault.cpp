#include "sim/fault.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "sim/simulator.hpp"

namespace lmk {
namespace {

const char* kind_word(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop:      return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kDelay:     return "delay";
    case FaultKind::kReorder:   return "reorder";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kCrash:     return "crash";
    case FaultKind::kRejoin:    return "rejoin";
  }
  return "?";
}

const char* tie_word(TieBreak t) {
  switch (t) {
    case TieBreak::kFifo:     return "fifo";
    case TieBreak::kReversed: return "reversed";
    case TieBreak::kShuffled: return "shuffled";
  }
  return "?";
}

}  // namespace

std::string FaultDirective::to_string() const {
  std::ostringstream os;
  os << kind_word(kind);
  switch (kind) {
    case FaultKind::kDrop:
    case FaultKind::kReorder:
      os << ' ' << seq;
      break;
    case FaultKind::kDuplicate:
    case FaultKind::kDelay:
      os << ' ' << seq << ' ' << extra;
      break;
    case FaultKind::kPartition:
      os << ' ' << a << ' ' << b << ' ' << at << ' ' << until;
      break;
    case FaultKind::kCrash:
    case FaultKind::kRejoin:
      os << ' ' << a << ' ' << at;
      break;
  }
  return os.str();
}

FaultPlan FaultPlan::generate(std::uint64_t seed, const GenOptions& opts) {
  LMK_CHECK(opts.hosts > 0);
  LMK_CHECK(opts.horizon > 0);
  Rng rng(mix64(seed ^ 0x5c4eduLL));
  FaultPlan plan;
  // Tie order: half the swarm explores seeded permutations, the rest
  // splits between the two legacy deterministic orders.
  switch (rng.below(4)) {
    case 0: plan.tie = TieBreak::kFifo; break;
    case 1: plan.tie = TieBreak::kReversed; break;
    default:
      plan.tie = TieBreak::kShuffled;
      plan.shuffle_seed = rng.next();
      break;
  }
  const auto host = [&] { return static_cast<HostId>(rng.below(opts.hosts)); };
  const auto when = [&] {
    return static_cast<SimTime>(rng.below(static_cast<std::uint64_t>(opts.horizon)));
  };
  std::size_t crashes = 0;
  for (std::size_t i = 0; i < opts.directives; ++i) {
    std::uint64_t k = rng.below(6);
    // No observed-send budget: message faults have nothing to match, so
    // fall through to the time-window kinds.
    if (opts.sends == 0 && k < 4) k = 4;
    if (k == 5 && crashes >= opts.max_crashes) k = 0;
    if (k == 0 && opts.sends == 0) k = 4;
    FaultDirective d;
    switch (k) {
      case 0:
        d.kind = FaultKind::kDrop;
        d.seq = rng.below(opts.sends);
        break;
      case 1:
        d.kind = FaultKind::kDuplicate;
        d.seq = rng.below(opts.sends);
        d.extra = 1 + static_cast<SimTime>(
                          rng.below(static_cast<std::uint64_t>(opts.horizon / 16 + 1)));
        break;
      case 2:
        d.kind = FaultKind::kDelay;
        d.seq = rng.below(opts.sends);
        d.extra = 1 + static_cast<SimTime>(
                          rng.below(static_cast<std::uint64_t>(opts.horizon / 8 + 1)));
        break;
      case 3:
        d.kind = FaultKind::kReorder;
        d.seq = rng.below(opts.sends);
        break;
      case 4: {
        d.kind = FaultKind::kPartition;
        d.a = host();
        d.b = host();  // may equal d.a: isolate the host entirely
        d.at = when();
        d.until = d.at + opts.horizon / 16 + 1 +
                  static_cast<SimTime>(rng.below(
                      static_cast<std::uint64_t>(opts.horizon / 8 + 1)));
        break;
      }
      default: {
        // Crash paired with a later rejoin of the same host, so a
        // conforming plan (max_crashes < replication) never erases
        // every copy of an entry for good.
        ++crashes;
        d.kind = FaultKind::kCrash;
        d.a = host();
        d.at = when() / 2 + 1;  // leave room for the rejoin
        plan.directives.push_back(d);
        d.kind = FaultKind::kRejoin;
        d.at += opts.horizon / 8 + 1 +
                static_cast<SimTime>(rng.below(
                    static_cast<std::uint64_t>(opts.horizon / 4 + 1)));
        break;
      }
    }
    plan.directives.push_back(d);
  }
  return plan;
}

std::string FaultPlan::to_text() const {
  std::ostringstream os;
  os << "# lmk-sched fault plan\n";
  os << "tie " << tie_word(tie) << ' ' << shuffle_seed << '\n';
  for (const FaultDirective& d : directives) os << d.to_string() << '\n';
  return os.str();
}

bool FaultPlan::parse(const std::string& text, FaultPlan* out,
                      std::string* error) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + msg;
    }
    return false;
  };
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;
    if (word == "tie") {
      std::string mode;
      if (!(ls >> mode >> plan.shuffle_seed)) {
        return fail("expected 'tie <mode> <seed>'");
      }
      if (mode == "fifo") {
        plan.tie = TieBreak::kFifo;
      } else if (mode == "reversed") {
        plan.tie = TieBreak::kReversed;
      } else if (mode == "shuffled") {
        plan.tie = TieBreak::kShuffled;
      } else {
        return fail("unknown tie mode '" + mode + "'");
      }
      continue;
    }
    FaultDirective d;
    bool ok = false;
    if (word == "drop" || word == "reorder") {
      d.kind = word == "drop" ? FaultKind::kDrop : FaultKind::kReorder;
      ok = static_cast<bool>(ls >> d.seq);
    } else if (word == "dup" || word == "delay") {
      d.kind = word == "dup" ? FaultKind::kDuplicate : FaultKind::kDelay;
      ok = static_cast<bool>(ls >> d.seq >> d.extra) && d.extra >= 0;
    } else if (word == "partition") {
      d.kind = FaultKind::kPartition;
      ok = static_cast<bool>(ls >> d.a >> d.b >> d.at >> d.until) &&
           d.at >= 0 && d.until >= d.at;
    } else if (word == "crash" || word == "rejoin") {
      d.kind = word == "crash" ? FaultKind::kCrash : FaultKind::kRejoin;
      ok = static_cast<bool>(ls >> d.a >> d.at) && d.at >= 0;
    } else {
      return fail("unknown directive '" + word + "'");
    }
    if (!ok) return fail("malformed '" + word + "' directive");
    std::string trailing;
    if (ls >> trailing) return fail("trailing tokens after '" + word + "'");
    plan.directives.push_back(d);
  }
  *out = std::move(plan);
  return true;
}

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {}

void FaultInjector::arm(Hooks hooks) {
  LMK_CHECK(!armed_);
  armed_ = true;
  ++armed_epoch_;
  hooks_ = std::move(hooks);
  const std::uint64_t epoch = armed_epoch_;
  for (const FaultDirective& d : plan_.directives) {
    if (d.kind != FaultKind::kCrash && d.kind != FaultKind::kRejoin) continue;
    const bool crash = d.kind == FaultKind::kCrash;
    const HostId target = d.a;
    const SimTime at = std::max(d.at, sim_.now());
    last_fault_time_ = std::max(last_fault_time_, at);
    // The epoch guard turns the event into a no-op if the injector was
    // disarmed (or re-armed) before the directive's time arrives.
    sim_.schedule_at(
        at,
        [this, epoch, crash, target] {
          if (!armed_ || armed_epoch_ != epoch) return;
          if (crash) {
            ++stats_.crashes;
            if (hooks_.crash) hooks_.crash(target);
          } else {
            ++stats_.rejoins;
            if (hooks_.rejoin) hooks_.rejoin(target);
          }
        },
        target);
  }
}

void FaultInjector::disarm() {
  armed_ = false;
  ++armed_epoch_;
  // Release reordered messages still in flight: deliver now rather than
  // silently dropping payload the plan only promised to *reorder*.
  for (Held& h : held_) {
    sim_.schedule_after(0, std::move(h.fn), h.to);
  }
  held_.clear();
}

bool FaultInjector::on_send(HostId from, HostId to, SimTime& delay,
                            EventFn& handler) {
  if (!armed_) return false;
  const std::uint64_t seq = next_seq_++;
  ++stats_.sends;
  const SimTime now = sim_.now();
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  SimTime extra_delay = 0;
  SimTime dup_offset = 0;
  for (const FaultDirective& d : plan_.directives) {
    switch (d.kind) {
      case FaultKind::kPartition: {
        if (now < d.at || now >= d.until) break;
        const bool hit = d.a == d.b
                             ? (from == d.a || to == d.a)
                             : ((from == d.a && to == d.b) ||
                                (from == d.b && to == d.a));
        if (hit) drop = true;
        break;
      }
      case FaultKind::kDrop:
        if (d.seq == seq) drop = true;
        break;
      case FaultKind::kDuplicate:
        if (d.seq == seq) {
          duplicate = true;
          dup_offset = d.extra;
        }
        break;
      case FaultKind::kDelay:
        if (d.seq == seq) extra_delay += d.extra;
        break;
      case FaultKind::kReorder:
        if (d.seq == seq) reorder = true;
        break;
      case FaultKind::kCrash:
      case FaultKind::kRejoin:
        break;  // timed directives, handled by arm()
    }
  }
  if (drop) {
    ++stats_.dropped;
    last_fault_time_ = std::max(last_fault_time_, now);
    return true;  // handler destroyed with the message
  }
  if (extra_delay > 0) {
    ++stats_.delayed;
    delay += extra_delay;
    last_fault_time_ = std::max(last_fault_time_, now + delay);
  }
  if (duplicate) {
    ++stats_.duplicated;
    const SimTime echo = delay + std::max<SimTime>(dup_offset, 1);
    // No-op arrival standing in for the duplicate payload (EventClosure
    // is move-only; see the header's modelling note).
    sim_.schedule_after(echo, [] {}, to);
    last_fault_time_ = std::max(last_fault_time_, now + echo);
  }
  // A send to `to` releases any messages held for it: they are
  // scheduled into the same delivery instant, so both land in one tie
  // bucket and the tie-break policy decides the interleaving.
  for (std::size_t i = 0; i < held_.size();) {
    if (held_[i].to == to) {
      sim_.schedule_after(delay, std::move(held_[i].fn), to);
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (reorder) {
    ++stats_.reordered;
    last_fault_time_ = std::max(last_fault_time_, now + delay);
    held_.push_back(Held{to, std::move(handler)});
    return true;
  }
  return false;
}

}  // namespace lmk
