#include "store/sorted_store.hpp"

#include <algorithm>
#include <cmath>

namespace lmk {

void SortedStore::build(const EntryStore& entries) {
  const std::size_t dims = entries.dims();
  order_.assign(dims, {});
  const auto n = static_cast<std::uint32_t>(entries.size());
  for (std::size_t d = 0; d < dims; ++d) order_[d].reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::span<const double> p = entries.point(i);
    for (std::size_t d = 0; d < dims; ++d) {
      order_[d].emplace_back(p[d], i);
    }
  }
  for (std::size_t d = 0; d < dims; ++d) {
    std::sort(order_[d].begin(), order_[d].end());
  }
  best_.reserve(64);
}

// lmk-hot-path: range runs once per subquery per index node — the
// per-event cost of the whole query storm. The alloc-guard bench gate
// holds the solver path to zero steady-state allocations.
std::size_t SortedStore::range(const EntryStore& entries, const Region& region,
                               std::vector<std::uint32_t>& out) {
  // An empty store indexes zero dimensions; nothing can match.
  if (order_.empty()) return 0;
  const std::size_t dims = order_.size();
  std::size_t best_d = 0;
  std::size_t best_lo = 0;
  std::size_t best_hi = 0;
  std::size_t best_count = entries.size() + 1;
  for (std::size_t d = 0; d < dims; ++d) {
    const auto& ord = order_[d];
    const Interval& r = region.ranges[d];
    auto lo = std::lower_bound(
        ord.begin(), ord.end(), r.lo,
        [](const std::pair<double, std::uint32_t>& p, double v) {
          return p.first < v;
        });
    auto hi = std::upper_bound(
        lo, ord.end(), r.hi,
        [](double v, const std::pair<double, std::uint32_t>& p) {
          return v < p.first;
        });
    auto count = static_cast<std::size_t>(hi - lo);
    if (count < best_count) {
      best_count = count;
      best_d = d;
      best_lo = static_cast<std::size_t>(lo - ord.begin());
      best_hi = static_cast<std::size_t>(hi - ord.begin());
    }
  }
  const auto& ord = order_[best_d];
  for (std::size_t k = best_lo; k < best_hi; ++k) {
    const std::uint32_t ei = ord[k].second;
    std::span<const double> pt = entries.point(ei);
    bool inside = true;
    for (std::size_t d = 0; d < pt.size(); ++d) {
      if (d == best_d) continue;  // the slice already satisfies best_d
      const Interval& r = region.ranges[d];
      if (pt[d] < r.lo || pt[d] > r.hi) {
        inside = false;
        break;
      }
    }
    if (!inside) continue;
    // Caller-owned hit buffer; capacity survives across probes.
    // lmk-lint: allow(hot-alloc) pooled-buffer capacity warmup
    out.push_back(ei);
  }
  return best_count;
}

std::size_t SortedStore::knn(const EntryStore& entries,
                             std::span<const double> focus, std::size_t k,
                             std::vector<std::uint32_t>& out) {
  const auto n = static_cast<std::uint32_t>(entries.size());
  if (k == 0 || n == 0) return 0;
  best_.clear();
  // Max-heap on (distance, entry index): the top is the worst of the
  // current best k, ejected whenever a strictly better pair arrives.
  for (std::uint32_t i = 0; i < n; ++i) {
    std::span<const double> p = entries.point(i);
    double dist = 0.0;
    for (std::size_t d = 0; d < p.size(); ++d) {
      dist = std::max(dist, std::abs(p[d] - focus[d]));
    }
    const std::pair<double, std::uint32_t> cand{dist, i};
    if (best_.size() < k) {
      best_.push_back(cand);
      std::push_heap(best_.begin(), best_.end());
    } else if (cand < best_.front()) {
      std::pop_heap(best_.begin(), best_.end());
      best_.back() = cand;
      std::push_heap(best_.begin(), best_.end());
    }
  }
  std::sort_heap(best_.begin(), best_.end());
  out.reserve(out.size() + best_.size());
  for (const auto& [dist, ei] : best_) out.push_back(ei);
  return n;
}
// lmk-hot-path-end

std::size_t SortedStore::memory_bytes() const {
  std::size_t bytes = order_.capacity() * sizeof(order_[0]);
  for (const auto& ord : order_) {
    bytes += ord.capacity() * sizeof(std::pair<double, std::uint32_t>);
  }
  bytes += best_.capacity() * sizeof(std::pair<double, std::uint32_t>);
  return bytes;
}

}  // namespace lmk
