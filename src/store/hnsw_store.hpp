// Approximate LocalStore: hierarchical navigable small world graph over
// the index points, searched under the index-space L-inf metric.
//
// Determinism pinning (the part that differs from textbook HNSW):
//   * Level assignment is a pure function of (options seed, object id) —
//     mix64-forked Rng, no shared stream — so an entry keeps its level
//     across migrations, rotations, and rebuilds on any node.
//   * Construction inserts entries in store order (itself deterministic:
//     EntryStore mutations are order-preserving) and every candidate heap
//     orders by (distance, entry index), so neighbour lists are unique.
//   * Probes visit and emit in (distance, entry index) order.
// Together these make range/knn results byte-identical at any
// LMK_THREADS and stable across the migration protocol.
#pragma once

#include <utility>
#include <vector>

#include "store/local_store.hpp"

namespace lmk {

class HnswStore final : public LocalStore {
 public:
  explicit HnswStore(const LocalStoreOptions& opts);

  [[nodiscard]] LocalStoreKind kind() const override {
    return LocalStoreKind::kHnsw;
  }
  [[nodiscard]] bool exact() const override { return false; }

  void build(const EntryStore& entries) override;
  std::size_t range(const EntryStore& entries, const Region& region,
                    std::vector<std::uint32_t>& out) override;
  std::size_t knn(const EntryStore& entries, std::span<const double> focus,
                  std::size_t k, std::vector<std::uint32_t>& out) override;
  [[nodiscard]] std::size_t memory_bytes() const override;

  /// Level the entry for `object` occupies in any build (determinism pin).
  [[nodiscard]] int level_for_object(std::uint64_t object) const;

 private:
  using Scored = std::pair<double, std::uint32_t>;  // (distance, entry)

  [[nodiscard]] double distance(const EntryStore& entries, std::uint32_t ei,
                                std::span<const double> q);
  [[nodiscard]] std::vector<std::uint32_t>& links(std::uint32_t ei,
                                                  int layer);
  /// Greedy descent on one layer: move to the closest neighbour until no
  /// neighbour improves on (distance, index).
  [[nodiscard]] Scored descend_layer(const EntryStore& entries,
                                     std::span<const double> q, Scored from,
                                     int layer);
  /// Beam search on one layer; leaves the best <= ef candidates in
  /// `found_` sorted ascending by (distance, index).
  void search_layer(const EntryStore& entries, std::span<const double> q,
                    Scored from, std::size_t ef, int layer);
  /// Re-select the cap closest neighbours of `ei` on `layer` after a
  /// reverse link pushed its list over capacity.
  void shrink_links(const EntryStore& entries, std::uint32_t ei, int layer,
                    std::size_t cap);
  /// Bridge disconnected layer-0 components to their nearest reached
  /// entry so every probe can reach every stored entry (build-time
  /// repair; closest-first selection alone can strand far clusters).
  void connect_components(const EntryStore& entries);

  std::size_t m_;                // max neighbours, layers >= 1
  std::size_t m0_;               // max neighbours, layer 0
  std::size_t ef_construction_;
  std::size_t ef_search_;
  std::uint64_t seed_;
  double inv_log_m_;             // level scale mL = 1 / ln(m)

  std::size_t size_ = 0;
  int max_level_ = -1;
  std::uint32_t entry_point_ = 0;
  std::vector<int> level_;       // per entry: top layer it occupies
  // Adjacency, entry -> layer -> neighbour entries. Nested vectors keep
  // rebuild simple; the whole structure is rebuilt wholesale on any
  // store mutation, never patched.
  std::vector<std::vector<std::vector<std::uint32_t>>> links_;

  // Probe scratch, reserved in build so probes stay allocation-free once
  // capacities warm up.
  std::vector<std::uint32_t> visit_mark_;  // epoch stamp per entry
  std::uint32_t visit_epoch_ = 0;
  std::vector<Scored> cand_;     // min-heap (via negated comparator)
  std::vector<Scored> found_;    // max-heap during search, sorted after
  std::vector<Scored> pool_;     // neighbour-selection scratch
  std::vector<double> center_;   // box-centre scratch for range probes
  // Set for the duration of a range probe: distance() measures to the
  // box (0 inside), so hits rank first in every heap. Null during build
  // and knn, where distance() measures to the query point.
  const Region* region_ = nullptr;
  std::size_t scanned_ = 0;      // distance evaluations this probe
};

}  // namespace lmk
