#include "store/local_store.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "store/hnsw_store.hpp"
#include "store/pivot_store.hpp"
#include "store/sorted_store.hpp"

namespace lmk {

const char* local_store_kind_name(LocalStoreKind kind) {
  switch (kind) {
    case LocalStoreKind::kSorted:
      return "sorted";
    case LocalStoreKind::kHnsw:
      return "hnsw";
    case LocalStoreKind::kPivot:
      return "pivot";
  }
  LMK_CHECK_MSG(false, "invalid LocalStoreKind");
  return "?";
}

bool parse_local_store_kind(std::string_view name, LocalStoreKind* out) {
  if (name == "sorted") {
    *out = LocalStoreKind::kSorted;
    return true;
  }
  if (name == "hnsw") {
    *out = LocalStoreKind::kHnsw;
    return true;
  }
  if (name == "pivot") {
    *out = LocalStoreKind::kPivot;
    return true;
  }
  return false;
}

LocalStoreOptions LocalStoreOptions::from_env() {
  LocalStoreOptions opts;
  // Configuration input, not entropy: the same environment always yields
  // the same backend, and CI pins it explicitly per leg.
  const char* env = std::getenv("LMK_LOCAL_STORE");
  if (env != nullptr && *env != '\0') {
    LMK_CHECK_MSG(parse_local_store_kind(env, &opts.kind),
                  "LMK_LOCAL_STORE must be sorted|hnsw|pivot, got \"%s\"",
                  env);
  }
  return opts;
}

std::unique_ptr<LocalStore> make_local_store(const LocalStoreOptions& opts) {
  switch (opts.kind) {
    case LocalStoreKind::kSorted:
      return std::make_unique<SortedStore>();
    case LocalStoreKind::kHnsw:
      return std::make_unique<HnswStore>(opts);
    case LocalStoreKind::kPivot:
      return std::make_unique<PivotStore>(opts);
  }
  LMK_CHECK_MSG(false, "invalid LocalStoreKind");
  return nullptr;
}

}  // namespace lmk
