// Per-node local index abstraction. Each (node, scheme) pair owns an
// EntryStore (the SoA rows) plus a LocalStore: an index structure over
// those rows that answers the solver's box/knn probes without a full
// scan. Backends trade exactness, build cost, and memory:
//
//   kSorted  exact        per-dimension sorted order indices; binary-search
//                         the most selective dimension and walk its slice
//                         (the pre-PR-9 solver behaviour, re-homed).
//   kHnsw    approximate  hierarchical navigable small world graph over the
//                         index points (L-inf metric); sub-linear descent,
//                         recall governed by ef_search.
//   kPivot   exact        LAESA-style pivot table; triangle-inequality
//                         lower bounds from precomputed pivot distances
//                         prune candidates before any coordinate is read.
//
// Determinism contract (all backends): given the same EntryStore contents
// and options, `build` produces the same structure and `range`/`knn` emit
// the same indices in the same order, independent of LMK_THREADS, node
// identity, and insertion history. HNSW pins its randomness to the stored
// object ids (level = f(seed, object)), so a migrated entry rebuilds at
// the same level on its new owner.
//
// Mutation protocol: LocalStore never observes mutations directly. The
// platform bumps a version counter on every EntryStore writer and lazily
// calls `build` again before the next probe (rebuild-on-migrate); between
// builds the structure may be arbitrarily stale and must not be probed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/entry_store.hpp"
#include "lph/lph.hpp"

namespace lmk {

enum class LocalStoreKind : std::uint8_t { kSorted, kHnsw, kPivot };

/// Stable lower-case name ("sorted" / "hnsw" / "pivot") for logs and JSON.
[[nodiscard]] const char* local_store_kind_name(LocalStoreKind kind);

/// Parse a backend name as accepted by LMK_LOCAL_STORE. Returns false
/// (and leaves `out` untouched) for unknown names.
[[nodiscard]] bool parse_local_store_kind(std::string_view name,
                                          LocalStoreKind* out);

/// Per-scheme backend selection and tuning knobs. Defaults come from the
/// environment (LMK_LOCAL_STORE) so whole-process experiments can switch
/// backend without a recompile; explicit per-scheme options win.
struct LocalStoreOptions {
  LocalStoreKind kind = LocalStoreKind::kSorted;

  // HNSW: max neighbours per layer (layer 0 gets 2*m), and the candidate
  // beam widths for construction and search.
  std::size_t hnsw_m = 8;
  std::size_t hnsw_ef_construction = 64;
  std::size_t hnsw_ef_search = 64;

  // Pivot table: number of pivots (capped by the store size at build).
  std::size_t pivots = 8;

  // Base seed for determinism-pinned randomness (HNSW level assignment).
  // Mixed with the stored object id, never with the entry position.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  /// Defaults with `kind` overridden by LMK_LOCAL_STORE when set.
  /// Aborts on an unknown backend name (configuration error).
  [[nodiscard]] static LocalStoreOptions from_env();
};

/// Cumulative (re)build accounting, aggregated platform-wide: how many
/// times any per-(node, scheme) structure was built and how many entries
/// those builds indexed. Migration and rotation churn shows up here.
struct LocalStoreBuildStats {
  std::uint64_t rebuilds = 0;
  std::uint64_t rebuilt_entries = 0;
};

/// Index structure over one EntryStore. Probes report `scanned` — the
/// number of stored entries whose coordinates were examined — so callers
/// can account pruning effectiveness uniformly across backends.
class LocalStore {
 public:
  LocalStore() = default;
  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;
  virtual ~LocalStore() = default;

  [[nodiscard]] virtual LocalStoreKind kind() const = 0;
  [[nodiscard]] const char* name() const {
    return local_store_kind_name(kind());
  }

  /// True when `range` returns exactly the entries inside the region.
  /// Approximate backends (HNSW) may miss matches but never invent them.
  [[nodiscard]] virtual bool exact() const = 0;

  /// (Re)index the store's current rows. Reads coordinates through
  /// EntryStore spans only; must leave the structure probe-ready even for
  /// an empty store. Scratch buffers are reserved here so probes run
  /// allocation-free at steady state.
  virtual void build(const EntryStore& entries) = 0;

  /// Append the indices of entries whose point lies in the closed region
  /// to `out` (not cleared) in a deterministic backend-specific order.
  /// Returns the number of entries scanned.
  virtual std::size_t range(const EntryStore& entries, const Region& region,
                            std::vector<std::uint32_t>& out) = 0;

  /// Append the indices of (up to) the k entries nearest `focus` under the
  /// index-space L-inf metric, ordered by (distance, entry index), to
  /// `out` (not cleared). Returns the number of entries scanned.
  virtual std::size_t knn(const EntryStore& entries,
                          std::span<const double> focus, std::size_t k,
                          std::vector<std::uint32_t>& out) = 0;

  /// Resident heap bytes of the index structure (excluding the EntryStore).
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;
};

/// Instantiate the backend selected by `opts.kind`.
[[nodiscard]] std::unique_ptr<LocalStore> make_local_store(
    const LocalStoreOptions& opts);

}  // namespace lmk
