// Exact LocalStore: LAESA-style pivot table. Build picks a deterministic
// farthest-first pivot set and precomputes the L-inf distance from every
// pivot to every entry. A probe computes the query's distance to each
// pivot once; the triangle inequality then lower-bounds every entry's
// distance as max_j |d(pivot_j, entry) - d(pivot_j, query)|, and entries
// whose bound exceeds the query radius are pruned without touching their
// coordinates. Survivors get an exact containment (or distance) check,
// so results are identical to a full scan — only `scanned` shrinks.
//
// The pivot table needs nothing from the coordinates beyond the metric
// itself, which is what makes this the backend of choice for black-box
// metrics (Levenshtein, Hausdorff) where per-dimension sorting and graph
// navigation have no geometry to exploit.
#pragma once

#include <utility>
#include <vector>

#include "store/local_store.hpp"

namespace lmk {

class PivotStore final : public LocalStore {
 public:
  explicit PivotStore(const LocalStoreOptions& opts);

  [[nodiscard]] LocalStoreKind kind() const override {
    return LocalStoreKind::kPivot;
  }
  [[nodiscard]] bool exact() const override { return true; }

  void build(const EntryStore& entries) override;
  std::size_t range(const EntryStore& entries, const Region& region,
                    std::vector<std::uint32_t>& out) override;
  std::size_t knn(const EntryStore& entries, std::span<const double> focus,
                  std::size_t k, std::vector<std::uint32_t>& out) override;
  [[nodiscard]] std::size_t memory_bytes() const override;

  /// Entry indices chosen as pivots by the last build (test hook).
  [[nodiscard]] const std::vector<std::uint32_t>& pivot_entries() const {
    return pivots_;
  }

 private:
  /// Triangle-inequality lower bound on d(query, entry i) given the
  /// query-to-pivot distances in `dq_`. Early-outs once above `cut`.
  [[nodiscard]] double lower_bound(std::uint32_t i, double cut) const;

  std::size_t pivots_requested_;
  std::size_t n_ = 0;
  std::size_t p_ = 0;                    // pivots actually used (<= n_)
  std::vector<std::uint32_t> pivots_;    // pivot entry indices
  std::vector<double> table_;            // p_ x n_ row-major pivot dists
  std::vector<double> dq_;               // scratch: query-to-pivot dists
  std::vector<double> center_;           // scratch: range box centre
  std::vector<std::pair<double, std::uint32_t>> best_;  // knn scratch
};

}  // namespace lmk
