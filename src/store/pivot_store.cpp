#include "store/pivot_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lmk {

namespace {

// Absolute slack added to every pruning cut. The stored pivot distances
// and the query-to-pivot distances are each rounded to nearest double,
// so the computed bound can exceed the true distance by a few ulp; with
// coordinates up to ~1e6 that error is < 1e-9, and admitting that much
// extra keeps pruning strictly conservative — exactness is never traded
// for pruning power.
constexpr double kSlack = 1e-9;

double linf(std::span<const double> a, std::span<const double> b) {
  double dist = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    dist = std::max(dist, std::abs(a[d] - b[d]));
  }
  return dist;
}

}  // namespace

PivotStore::PivotStore(const LocalStoreOptions& opts)
    : pivots_requested_(std::max<std::size_t>(std::size_t{1}, opts.pivots)) {}

void PivotStore::build(const EntryStore& entries) {
  n_ = entries.size();
  p_ = std::min(pivots_requested_, n_);
  pivots_.clear();
  pivots_.reserve(p_);
  table_.assign(p_ * n_, 0.0);
  dq_.assign(p_, 0.0);
  center_.clear();
  center_.reserve(entries.dims());
  best_.reserve(64);
  if (p_ == 0) return;
  // Farthest-first pivot selection seeded at entry 0, ties broken by the
  // lowest entry index: a pure function of store contents, so rebuilds
  // pick the same pivots everywhere. Spread-out pivots give the
  // triangle-inequality bounds their discriminating power.
  std::vector<double> mind(n_, std::numeric_limits<double>::infinity());
  std::uint32_t next = 0;
  for (std::size_t j = 0; j < p_; ++j) {
    pivots_.push_back(next);
    const std::span<const double> pj = entries.point(next);
    double far_dist = -1.0;
    std::uint32_t far_idx = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      const double dist = linf(pj, entries.point(i));
      table_[j * n_ + i] = dist;
      if (dist < mind[i]) mind[i] = dist;
      if (mind[i] > far_dist) {
        far_dist = mind[i];
        far_idx = i;
      }
    }
    next = far_idx;
  }
}

double PivotStore::lower_bound(std::uint32_t i, double cut) const {
  double bound = 0.0;
  for (std::size_t j = 0; j < p_; ++j) {
    const double diff = std::abs(table_[j * n_ + i] - dq_[j]);
    if (diff > bound) {
      bound = diff;
      if (bound > cut) break;  // already prunable; no need to tighten
    }
  }
  return bound;
}

// lmk-hot-path: range/knn run once per subquery per index node; the
// pivot loop prunes most entries before any coordinate load.
std::size_t PivotStore::range(const EntryStore& entries, const Region& region,
                              std::vector<std::uint32_t>& out) {
  if (n_ == 0) return 0;
  // Cover the closed box with the L-inf ball around its centre. The
  // radius uses the rounded centre actually computed, so every box point
  // is inside the ball even after floating-point rounding (monotonicity
  // of rounded subtraction), and pruning stays conservative.
  center_.clear();
  double r_cover = 0.0;
  for (const Interval& r : region.ranges) {
    const double mid = 0.5 * (r.lo + r.hi);
    center_.push_back(mid);
    r_cover = std::max(r_cover, std::max(r.hi - mid, mid - r.lo));
  }
  const std::span<const double> q{center_.data(), center_.size()};
  for (std::size_t j = 0; j < p_; ++j) {
    dq_[j] = linf(q, entries.point(pivots_[j]));
  }
  const double cut = r_cover + kSlack;
  std::size_t scanned = p_;  // pivot coordinates were examined
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (lower_bound(i, cut) > cut) continue;
    ++scanned;
    std::span<const double> pt = entries.point(i);
    bool inside = true;
    for (std::size_t d = 0; d < pt.size(); ++d) {
      const Interval& r = region.ranges[d];
      if (pt[d] < r.lo || pt[d] > r.hi) {
        inside = false;
        break;
      }
    }
    if (!inside) continue;
    // Caller-owned hit buffer; capacity survives across probes.
    // lmk-lint: allow(hot-alloc) pooled-buffer capacity warmup
    out.push_back(i);
  }
  return scanned;
}

std::size_t PivotStore::knn(const EntryStore& entries,
                            std::span<const double> focus, std::size_t k,
                            std::vector<std::uint32_t>& out) {
  if (k == 0 || n_ == 0) return 0;
  for (std::size_t j = 0; j < p_; ++j) {
    dq_[j] = linf(focus, entries.point(pivots_[j]));
  }
  std::size_t scanned = p_;
  best_.clear();
  // Max-heap of the best k (distance, index) pairs; an entry is skipped
  // without touching coordinates when its bound proves it cannot beat
  // the current worst. Skips require a full heap and a strictly larger
  // bound, so boundary ties still get their exact check.
  for (std::uint32_t i = 0; i < n_; ++i) {
    const bool full = best_.size() >= k;
    const double worst =
        full ? best_.front().first : std::numeric_limits<double>::infinity();
    if (full && lower_bound(i, worst + kSlack) > worst + kSlack) continue;
    ++scanned;
    const double dist = linf(focus, entries.point(i));
    const std::pair<double, std::uint32_t> cand{dist, i};
    if (!full) {
      best_.push_back(cand);
      std::push_heap(best_.begin(), best_.end());
    } else if (cand < best_.front()) {
      std::pop_heap(best_.begin(), best_.end());
      best_.back() = cand;
      std::push_heap(best_.begin(), best_.end());
    }
  }
  std::sort_heap(best_.begin(), best_.end());
  out.reserve(out.size() + best_.size());
  for (const auto& [dist, ei] : best_) out.push_back(ei);
  return scanned;
}
// lmk-hot-path-end

std::size_t PivotStore::memory_bytes() const {
  std::size_t bytes = pivots_.capacity() * sizeof(std::uint32_t);
  bytes += table_.capacity() * sizeof(double);
  bytes += dq_.capacity() * sizeof(double);
  bytes += center_.capacity() * sizeof(double);
  bytes += best_.capacity() * sizeof(std::pair<double, std::uint32_t>);
  return bytes;
}

}  // namespace lmk
