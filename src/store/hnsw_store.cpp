#include "store/hnsw_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace lmk {

namespace {

// Hard ceiling on assigned levels. With mL = 1/ln(8) a level this high
// has probability ~8^-24; the cap only bounds memory against adversarial
// object ids, it never fires under the geometric distribution.
constexpr int kMaxLevel = 24;

}  // namespace

HnswStore::HnswStore(const LocalStoreOptions& opts)
    : m_(std::max<std::size_t>(std::size_t{2}, opts.hnsw_m)),
      m0_(2 * m_),
      ef_construction_(std::max(opts.hnsw_ef_construction, m0_)),
      ef_search_(std::max<std::size_t>(std::size_t{1}, opts.hnsw_ef_search)),
      seed_(opts.seed),
      inv_log_m_(1.0 / std::log(static_cast<double>(m_))) {}

int HnswStore::level_for_object(std::uint64_t object) const {
  // Forked per-object stream: the level depends only on (seed, object),
  // never on insertion order, store position, or a shared generator —
  // that is what keeps a migrated entry at the same level on its new
  // owner and makes rebuilds byte-identical.
  Rng rng(mix64(seed_ ^ mix64(object)));
  const double u = 1.0 - rng.uniform();  // (0, 1]
  const int level = static_cast<int>(-std::log(u) * inv_log_m_);
  return std::min(level, kMaxLevel);
}

std::vector<std::uint32_t>& HnswStore::links(std::uint32_t ei, int layer) {
  return links_[ei][static_cast<std::size_t>(layer)];
}

// lmk-hot-path: distance/descend/search are the per-probe inner loops —
// every range/knn subquery an index node answers funnels through here.
double HnswStore::distance(const EntryStore& entries, std::uint32_t ei,
                           std::span<const double> q) {
  ++scanned_;
  std::span<const double> p = entries.point(ei);
  double dist = 0.0;
  if (region_ != nullptr) {
    // Range probe: L-inf distance to the query box (0 for any entry
    // inside it). Guiding the walk by box distance instead of distance
    // to the box centre makes every hit rank ahead of every non-hit,
    // so the beam enumerates the box instead of a ball around its
    // centre — the boxes the platform sends are cell-clipped and their
    // centres routinely sit far from the matching entries.
    return linf_box_distance(p, *region_);
  }
  for (std::size_t d = 0; d < p.size(); ++d) {
    dist = std::max(dist, std::abs(p[d] - q[d]));
  }
  return dist;
}

HnswStore::Scored HnswStore::descend_layer(const EntryStore& entries,
                                           std::span<const double> q,
                                           Scored from, int layer) {
  // Greedy walk; neighbour lists are (distance, index)-selected at build
  // time and traversed in stored order, so the path is deterministic.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::uint32_t nb : links(from.second, layer)) {
      Scored cand{distance(entries, nb, q), nb};
      if (cand < from) {
        from = cand;
        improved = true;
      }
    }
  }
  return from;
}

void HnswStore::search_layer(const EntryStore& entries,
                             std::span<const double> q, Scored from,
                             std::size_t ef, int layer) {
  if (++visit_epoch_ == 0) {  // epoch wrap: invalidate every stale mark
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0U);
    visit_epoch_ = 1;
  }
  // cand_ is a min-heap of unexpanded candidates, found_ a max-heap of
  // the best <= ef seen; both order by (distance, entry index) so ties
  // resolve identically everywhere.
  const auto closer = [](const Scored& a, const Scored& b) { return b < a; };
  cand_.clear();
  found_.clear();
  visit_mark_[from.second] = visit_epoch_;
  cand_.push_back(from);
  found_.push_back(from);
  while (!cand_.empty()) {
    std::pop_heap(cand_.begin(), cand_.end(), closer);
    const Scored cur = cand_.back();
    cand_.pop_back();
    if (found_.size() >= ef && found_.front() < cur) break;
    for (std::uint32_t nb : links(cur.second, layer)) {
      if (visit_mark_[nb] == visit_epoch_) continue;
      visit_mark_[nb] = visit_epoch_;
      const Scored cand{distance(entries, nb, q), nb};
      if (found_.size() < ef || cand < found_.front()) {
        cand_.push_back(cand);
        std::push_heap(cand_.begin(), cand_.end(), closer);
        found_.push_back(cand);
        std::push_heap(found_.begin(), found_.end());
        if (found_.size() > ef) {
          std::pop_heap(found_.begin(), found_.end());
          found_.pop_back();
        }
      }
    }
  }
  std::sort_heap(found_.begin(), found_.end());
}

std::size_t HnswStore::range(const EntryStore& entries, const Region& region,
                             std::vector<std::uint32_t>& out) {
  scanned_ = 0;
  if (size_ == 0) return 0;
  // Box-guided probe: distance() measures to the box while region_ is
  // set, so the descent homes in on the box and the beam fills with
  // entries inside it (all at distance 0) before any outsider. The
  // exact containment filter below keeps false positives out (the
  // backend is approximate only through recall, never precision).
  region_ = &region;
  center_.clear();
  center_.resize(region.ranges.size(), 0.0);  // unused in box mode
  const std::span<const double> q{center_.data(), center_.size()};
  Scored cur{distance(entries, entry_point_, q), entry_point_};
  for (int l = max_level_; l > 0; --l) {
    cur = descend_layer(entries, q, cur, l);
  }
  search_layer(entries, q, cur, ef_search_, 0);
  region_ = nullptr;
  out.reserve(out.size() + found_.size());
  for (const Scored& s : found_) {
    std::span<const double> pt = entries.point(s.second);
    bool inside = true;
    for (std::size_t d = 0; d < pt.size(); ++d) {
      const Interval& r = region.ranges[d];
      if (pt[d] < r.lo || pt[d] > r.hi) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(s.second);
  }
  return scanned_;
}

std::size_t HnswStore::knn(const EntryStore& entries,
                           std::span<const double> focus, std::size_t k,
                           std::vector<std::uint32_t>& out) {
  scanned_ = 0;
  if (k == 0 || size_ == 0) return 0;
  Scored cur{distance(entries, entry_point_, focus), entry_point_};
  for (int l = max_level_; l > 0; --l) {
    cur = descend_layer(entries, focus, cur, l);
  }
  search_layer(entries, focus, cur, std::max(ef_search_, k), 0);
  const std::size_t take = std::min(k, found_.size());
  out.reserve(out.size() + take);
  for (std::size_t t = 0; t < take; ++t) {
    out.push_back(found_[t].second);
  }
  return scanned_;
}
// lmk-hot-path-end

void HnswStore::build(const EntryStore& entries) {
  const auto n = static_cast<std::uint32_t>(entries.size());
  size_ = n;
  max_level_ = -1;
  entry_point_ = 0;
  level_.assign(n, 0);
  links_.assign(n, {});
  visit_mark_.assign(n, 0U);
  visit_epoch_ = 0;
  cand_.reserve(ef_construction_ + m0_ + 1);
  found_.reserve(ef_construction_ + m0_ + 1);
  pool_.reserve(m0_ + 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const int lvl = level_for_object(entries.object(i));
    level_[i] = lvl;
    links_[i].resize(static_cast<std::size_t>(lvl) + 1);
    for (int l = 0; l <= lvl; ++l) {
      links(i, l).reserve((l == 0 ? m0_ : m_) + 1);
    }
    if (max_level_ < 0) {  // first entry seeds the graph
      entry_point_ = i;
      max_level_ = lvl;
      continue;
    }
    const std::span<const double> q = entries.point(i);
    Scored cur{distance(entries, entry_point_, q), entry_point_};
    for (int l = max_level_; l > lvl; --l) {
      cur = descend_layer(entries, q, cur, l);
    }
    for (int l = std::min(lvl, max_level_); l >= 0; --l) {
      search_layer(entries, q, cur, ef_construction_, l);
      cur = found_.front();
      const std::size_t cap = (l == 0) ? m0_ : m_;
      auto& mine = links(i, l);
      const std::size_t take = std::min(cap, found_.size());
      for (std::size_t t = 0; t < take; ++t) {
        const std::uint32_t nb = found_[t].second;
        mine.push_back(nb);
        auto& theirs = links(nb, l);
        theirs.push_back(i);
        if (theirs.size() > cap) shrink_links(entries, nb, l, cap);
      }
    }
    if (lvl > max_level_) {
      max_level_ = lvl;
      entry_point_ = i;
    }
  }
  connect_components(entries);
}

void HnswStore::connect_components(const EntryStore& entries) {
  // Closest-first neighbour selection never links across clusters that
  // sit farther apart than any within-cluster pair, so layer 0 can come
  // out as disconnected islands no beam width reaches. Flood layer 0
  // from the entry point and bridge each unreached component to its
  // nearest reached entry. Deterministic: components are seeded in
  // index order and bridges chosen by (distance, index); the reached
  // set a bridge is chosen against never depends on flood order.
  if (size_ == 0) return;
  std::vector<char> reached(size_, 0);
  std::vector<std::uint32_t> stack;
  auto flood = [&](std::uint32_t from) {
    reached[from] = 1;
    stack.push_back(from);
    while (!stack.empty()) {
      const std::uint32_t cur = stack.back();
      stack.pop_back();
      for (std::uint32_t nb : links(cur, 0)) {
        if (reached[nb] == 0) {
          reached[nb] = 1;
          stack.push_back(nb);
        }
      }
    }
  };
  flood(entry_point_);
  for (std::uint32_t i = 0; i < size_; ++i) {
    if (reached[i] != 0) continue;
    const std::span<const double> p = entries.point(i);
    Scored best{std::numeric_limits<double>::infinity(), 0};
    for (std::uint32_t j = 0; j < size_; ++j) {
      if (reached[j] == 0) continue;
      const Scored cand{distance(entries, j, p), j};
      if (cand < best) best = cand;
    }
    // The bridge is appended past the degree cap on purpose: shrinking
    // by distance would immediately drop the one link that joins the
    // components.
    links(i, 0).push_back(best.second);
    links(best.second, 0).push_back(i);
    flood(i);
  }
}

void HnswStore::shrink_links(const EntryStore& entries, std::uint32_t ei,
                             int layer, std::size_t cap) {
  // Keep the cap closest neighbours by (distance to ei, index): the same
  // selection rule as construction, so the pruned list is deterministic.
  const std::span<const double> p = entries.point(ei);
  auto& list = links(ei, layer);
  pool_.clear();
  for (std::uint32_t nb : list) {
    pool_.emplace_back(distance(entries, nb, p), nb);
  }
  std::sort(pool_.begin(), pool_.end());
  list.clear();
  for (std::size_t t = 0; t < cap; ++t) {
    list.push_back(pool_[t].second);
  }
}

std::size_t HnswStore::memory_bytes() const {
  using Layer = std::vector<std::uint32_t>;
  using PerEntry = std::vector<Layer>;
  std::size_t bytes = level_.capacity() * sizeof(int);
  bytes += links_.capacity() * sizeof(PerEntry);
  for (const PerEntry& per : links_) {
    bytes += per.capacity() * sizeof(Layer);
    for (const Layer& layer : per) {
      bytes += layer.capacity() * sizeof(std::uint32_t);
    }
  }
  bytes += visit_mark_.capacity() * sizeof(std::uint32_t);
  bytes += (cand_.capacity() + found_.capacity() + pool_.capacity()) *
           sizeof(Scored);
  bytes += center_.capacity() * sizeof(double);
  return bytes;
}

}  // namespace lmk
