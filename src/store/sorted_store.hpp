// Baseline LocalStore: per-dimension sorted order indices (the pre-PR-9
// solver structure, re-homed behind the interface). Exact; range probes
// binary-search every dimension and walk only the most selective slice.
#pragma once

#include <utility>
#include <vector>

#include "store/local_store.hpp"

namespace lmk {

class SortedStore final : public LocalStore {
 public:
  [[nodiscard]] LocalStoreKind kind() const override {
    return LocalStoreKind::kSorted;
  }
  [[nodiscard]] bool exact() const override { return true; }

  void build(const EntryStore& entries) override;
  std::size_t range(const EntryStore& entries, const Region& region,
                    std::vector<std::uint32_t>& out) override;
  std::size_t knn(const EntryStore& entries, std::span<const double> focus,
                  std::size_t k, std::vector<std::uint32_t>& out) override;
  [[nodiscard]] std::size_t memory_bytes() const override;

 private:
  // order_[d] holds (coordinate d, entry index) sorted ascending; the
  // pair order breaks value ties by entry index, so the scan order — and
  // therefore the whole simulation — is independent of the sort
  // algorithm's handling of equal values.
  std::vector<std::vector<std::pair<double, std::uint32_t>>> order_;
  // knn scratch: (distance, entry index) max-heap of the current best k.
  std::vector<std::pair<double, std::uint32_t>> best_;
};

}  // namespace lmk
