// Landmark selection (paper §3.1).
//
// The paper evaluates two schemes:
//  * the greedy method (Algorithm 1): farthest-first traversal over a
//    random sample — landmarks are actual data objects, maximally
//    dispersed;
//  * k-means clustering: landmarks are cluster centroids of the sample —
//    only available when centroids are defined (dense vectors, and
//    spherical k-means for sparse term vectors).
// For black-box metric spaces without centroids we additionally provide
// k-medoids, which keeps the "cluster centre" idea while staying inside
// the dataset.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "metric/dense.hpp"
#include "metric/metric_space.hpp"
#include "metric/sparse_vector.hpp"

namespace lmk {

/// Algorithm 1 (GreedySelection): start from a random sample member, then
/// repeatedly add the sample object farthest from the chosen set (the
/// distance of an object to a set being its minimum distance to any
/// member). Works for any metric space whose distance is pure (the
/// per-point set-distance updates fan out over the thread pool; each
/// worker writes only its own dist_to_set slots, so the result is
/// bit-identical for any thread count).
template <MetricSpace S>
[[nodiscard]] std::vector<typename S::Point> greedy_selection(
    const S& space, std::span<const typename S::Point> sample, std::size_t k,
    Rng& rng) {
  LMK_CHECK(k >= 1);
  LMK_CHECK(sample.size() >= k);
  std::vector<typename S::Point> landmarks;
  landmarks.reserve(k);
  std::size_t first = static_cast<std::size_t>(rng.below(sample.size()));
  landmarks.push_back(sample[first]);
  // dist_to_set[i] = min distance from sample[i] to the current set.
  std::vector<double> dist_to_set(sample.size());
  parallel_for(sample.size(), [&](std::size_t i) {
    dist_to_set[i] = space.distance(sample[i], landmarks.back());
  });
  while (landmarks.size() < k) {
    std::size_t far = 0;
    for (std::size_t i = 1; i < sample.size(); ++i) {
      if (dist_to_set[i] > dist_to_set[far]) far = i;
    }
    landmarks.push_back(sample[far]);
    const typename S::Point& newest = landmarks.back();
    parallel_for(sample.size(), [&](std::size_t i) {
      dist_to_set[i] =
          std::min(dist_to_set[i], space.distance(sample[i], newest));
    });
  }
  return landmarks;
}

/// Lloyd's k-means on dense vectors; returns the k centroids (landmarks).
/// Empty clusters are re-seeded from the point farthest from its
/// centroid. Runs at most `max_iters` iterations or until assignments
/// stop changing.
[[nodiscard]] std::vector<DenseVector> kmeans_dense(
    std::span<const DenseVector> sample, std::size_t k, Rng& rng,
    int max_iters = 25);

/// Spherical k-means on sparse term vectors under cosine similarity;
/// centroids are normalized sums of their members — they are *dense in
/// terms relative to members*, which is exactly the property the paper
/// leans on for the TREC experiment (§4.3).
[[nodiscard]] std::vector<SparseVector> kmeans_spherical(
    std::span<const SparseVector> sample, std::size_t k, Rng& rng,
    int max_iters = 15);

/// k-medoids (Voronoi-iteration PAM variant) for black-box metric spaces:
/// like k-means but the "centroid" of a cluster is the member minimizing
/// the sum of distances to the rest of the cluster.
template <MetricSpace S>
[[nodiscard]] std::vector<typename S::Point> kmedoids_selection(
    const S& space, std::span<const typename S::Point> sample, std::size_t k,
    Rng& rng, int max_iters = 10) {
  LMK_CHECK(k >= 1);
  LMK_CHECK(sample.size() >= k);
  std::vector<std::size_t> medoids = rng.sample_indices(sample.size(), k);
  std::vector<std::size_t> assign(sample.size());
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (std::size_t i = 0; i < sample.size(); ++i) {
      std::size_t best = 0;
      double best_d = space.distance(sample[i], sample[medoids[0]]);
      for (std::size_t c = 1; c < k; ++c) {
        double d = space.distance(sample[i], sample[medoids[c]]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best || iter == 0) {
        assign[i] = best;
        changed = true;
      }
    }
    if (!changed) break;
    // Update step: new medoid = member minimizing intra-cluster cost.
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < sample.size(); ++i) {
        if (assign[i] == c) members.push_back(i);
      }
      if (members.empty()) continue;
      std::size_t best = medoids[c];
      double best_cost = -1;
      for (std::size_t cand : members) {
        double cost = 0;
        for (std::size_t m : members) {
          cost += space.distance(sample[cand], sample[m]);
        }
        if (best_cost < 0 || cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
      medoids[c] = best;
    }
  }
  std::vector<typename S::Point> out;
  out.reserve(k);
  for (std::size_t c = 0; c < k; ++c) out.push_back(sample[medoids[c]]);
  return out;
}

}  // namespace lmk
