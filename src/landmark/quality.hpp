// Landmark-set quality evaluation, used for the paper's dynamic-dataset
// extension (§6): "New landmark sets can be periodically generated and
// evaluated. If the new landmark set outperforms the current one
// according to some threshold, the new landmarks will be disseminated."
//
// The score is the *filtering selectivity*: for a batch of probe queries
// (q, r), the fraction of sample objects whose index point falls inside
// the query's index-space cube. Lower is better — a tight filter ships
// fewer useless candidates. A selectivity near 1.0 means the landmarks
// cannot distinguish objects at all (the greedy-on-TREC pathology).
#pragma once

#include <span>

#include "common/check.hpp"
#include "landmark/mapper.hpp"

namespace lmk {

/// Mean fraction of `sample` that survives the index-space filter for
/// the given probe queries at radius r. In [0, 1]; lower filters better.
template <MetricSpace S>
[[nodiscard]] double filter_selectivity(
    const LandmarkMapper<S>& mapper,
    std::span<const typename S::Point> sample,
    std::span<const typename S::Point> probes, double radius) {
  LMK_CHECK(!sample.empty());
  LMK_CHECK(!probes.empty());
  LMK_CHECK(radius >= 0);
  std::vector<IndexPoint> mapped;
  mapped.reserve(sample.size());
  for (const auto& s : sample) mapped.push_back(mapper.map(s));
  double total = 0;
  for (const auto& q : probes) {
    IndexPoint center = mapper.map_unclamped(q);
    std::size_t inside = 0;
    for (const IndexPoint& p : mapped) {
      bool in = true;
      for (std::size_t d = 0; d < p.size(); ++d) {
        if (p[d] < center[d] - radius || p[d] > center[d] + radius) {
          in = false;
          break;
        }
      }
      if (in) ++inside;
    }
    total += static_cast<double>(inside) / static_cast<double>(sample.size());
  }
  return total / static_cast<double>(probes.size());
}

/// Decision rule for landmark refresh: adopt the candidate set when its
/// selectivity beats the incumbent's by at least `threshold` (relative).
template <MetricSpace S>
[[nodiscard]] bool should_adopt_landmarks(
    const LandmarkMapper<S>& incumbent, const LandmarkMapper<S>& candidate,
    std::span<const typename S::Point> sample,
    std::span<const typename S::Point> probes, double radius,
    double threshold = 0.1) {
  double old_score = filter_selectivity(incumbent, sample, probes, radius);
  double new_score = filter_selectivity(candidate, sample, probes, radius);
  return new_score < old_score * (1.0 - threshold);
}

}  // namespace lmk
