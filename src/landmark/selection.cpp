#include "landmark/selection.hpp"

#include <algorithm>
#include <cmath>

namespace lmk {

std::vector<DenseVector> kmeans_dense(std::span<const DenseVector> sample,
                                      std::size_t k, Rng& rng,
                                      int max_iters) {
  LMK_CHECK(k >= 1);
  LMK_CHECK(sample.size() >= k);
  std::size_t dims = sample[0].size();
  L2Space l2;

  // k-means++ style seeding keeps clusters from collapsing onto one mode.
  std::vector<DenseVector> centroids;
  centroids.reserve(k);
  centroids.push_back(sample[rng.below(sample.size())]);
  std::vector<double> d2(sample.size());
  while (centroids.size() < k) {
    double total = 0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      double best = -1;
      for (const auto& c : centroids) {
        double d = l2.distance(sample[i], c);
        double dd = d * d;
        if (best < 0 || dd < best) best = dd;
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0) {
      centroids.push_back(sample[rng.below(sample.size())]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = sample.size() - 1;
    double acc = 0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      acc += d2[i];
      if (acc >= pick) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(sample[chosen]);
  }

  std::vector<std::size_t> assign(sample.size(), k);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      std::size_t best = 0;
      double best_d = l2.distance(sample[i], centroids[0]);
      for (std::size_t c = 1; c < k; ++c) {
        double d = l2.distance(sample[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    if (!changed) break;
    std::vector<DenseVector> sums(k, DenseVector(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      std::size_t c = assign[i];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += sample[i][d];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on a random sample point.
        centroids[c] = sample[rng.below(sample.size())];
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  return centroids;
}

std::vector<SparseVector> kmeans_spherical(std::span<const SparseVector> sample,
                                           std::size_t k, Rng& rng,
                                           int max_iters) {
  LMK_CHECK(k >= 1);
  LMK_CHECK(sample.size() >= k);
  AngularSpace ang;

  std::vector<SparseVector> centroids;
  centroids.reserve(k);
  for (std::size_t idx : rng.sample_indices(sample.size(), k)) {
    centroids.push_back(sample[idx]);
  }

  std::vector<std::size_t> assign(sample.size(), k);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      std::size_t best = 0;
      double best_d = ang.distance(sample[i], centroids[0]);
      for (std::size_t c = 1; c < k; ++c) {
        double d = ang.distance(sample[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    if (!changed) break;
    for (std::size_t c = 0; c < k; ++c) {
      SparseVector sum;
      std::size_t count = 0;
      for (std::size_t i = 0; i < sample.size(); ++i) {
        if (assign[i] != c || sample[i].empty()) continue;
        // Sum of unit vectors: direction of the spherical mean.
        sum.add_scaled(sample[i], 1.0 / sample[i].norm());
        ++count;
      }
      if (count == 0 || sum.norm() == 0) {
        centroids[c] = sample[rng.below(sample.size())];
      } else {
        sum.scale(1.0 / sum.norm());
        centroids[c] = std::move(sum);
      }
    }
  }
  return centroids;
}

}  // namespace lmk
