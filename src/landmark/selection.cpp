#include "landmark/selection.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"

namespace lmk {

std::vector<DenseVector> kmeans_dense(std::span<const DenseVector> sample,
                                      std::size_t k, Rng& rng,
                                      int max_iters) {
  LMK_CHECK(k >= 1);
  LMK_CHECK(sample.size() >= k);
  std::size_t dims = sample[0].size();
  std::size_t n = sample.size();
  // Contiguous copy of the sample: the assignment loops stream rows
  // linearly instead of chasing a pointer per point.
  DenseMatrix pts = DenseMatrix::from_rows(sample);

  // k-means++ style seeding keeps clusters from collapsing onto one
  // mode. d2[i] is maintained incrementally as the min squared distance
  // from sample[i] to the centroids chosen so far — O(k·n) total work
  // instead of recomputing against every centroid each round (O(k²·n)).
  std::vector<DenseVector> centroids;
  centroids.reserve(k);
  centroids.push_back(sample[rng.below(n)]);
  std::vector<double> d2(n);
  parallel_for(n, [&](std::size_t i) {
    d2[i] = l2_squared(pts.row(i), centroids.front());
  });
  while (centroids.size() < k) {
    double total = 0;
    for (double v : d2) total += v;  // index order: deterministic sum
    if (total <= 0) {
      // All remaining mass on chosen points (duplicate-heavy sample):
      // fall back to uniform picks. d2 is all zero, so no update needed.
      centroids.push_back(sample[rng.below(n)]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += d2[i];
      if (acc >= pick) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(sample[chosen]);
    const DenseVector& c = centroids.back();
    parallel_for(n, [&](std::size_t i) {
      d2[i] = std::min(d2[i], l2_squared(pts.row(i), c));
    });
  }

  // Lloyd iterations. Assignment (the O(n·k·dims) hot loop) runs on the
  // pool with squared distances — argmin is unchanged under sqrt, and
  // each worker writes only assign_next[i]; the update step stays
  // sequential so sums accumulate in index order (deterministic) and
  // empty-cluster re-seeds draw from the rng in a fixed order.
  DenseMatrix cent(k, dims);
  for (std::size_t c = 0; c < k; ++c) {
    std::copy(centroids[c].begin(), centroids[c].end(), cent.row(c).begin());
  }
  std::vector<std::size_t> assign(n, k);
  std::vector<std::size_t> assign_next(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    parallel_for(n, [&](std::size_t i) {
      std::span<const double> p = pts.row(i);
      std::size_t best = 0;
      double best_d = l2_squared(p, cent.row(0));
      for (std::size_t c = 1; c < k; ++c) {
        double d = l2_squared(p, cent.row(c));
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      assign_next[i] = best;
    });
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (assign[i] != assign_next[i]) {
        assign[i] = assign_next[i];
        changed = true;
      }
    }
    if (!changed) break;
    std::vector<DenseVector> sums(k, DenseVector(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t c = assign[i];
      std::span<const double> p = pts.row(i);
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += p[d];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      std::span<double> row = cent.row(c);
      if (counts[c] == 0) {
        // Re-seed an empty cluster on a random sample point.
        std::span<const double> p = pts.row(rng.below(n));
        std::copy(p.begin(), p.end(), row.begin());
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        row[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  std::vector<DenseVector> out;
  out.reserve(k);
  for (std::size_t c = 0; c < k; ++c) out.push_back(cent.row_vector(c));
  return out;
}

std::vector<SparseVector> kmeans_spherical(std::span<const SparseVector> sample,
                                           std::size_t k, Rng& rng,
                                           int max_iters) {
  LMK_CHECK(k >= 1);
  LMK_CHECK(sample.size() >= k);
  AngularSpace ang;
  std::size_t n = sample.size();

  std::vector<SparseVector> centroids;
  centroids.reserve(k);
  for (std::size_t idx : rng.sample_indices(n, k)) {
    centroids.push_back(sample[idx]);
  }

  std::vector<std::size_t> assign(n, k);
  std::vector<std::size_t> assign_next(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    // Assignment fans out over the pool (AngularSpace::distance is
    // pure); each worker writes only its own assign_next slots.
    parallel_for(n, [&](std::size_t i) {
      std::size_t best = 0;
      double best_d = ang.distance(sample[i], centroids[0]);
      for (std::size_t c = 1; c < k; ++c) {
        double d = ang.distance(sample[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      assign_next[i] = best;
    });
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (assign[i] != assign_next[i]) {
        assign[i] = assign_next[i];
        changed = true;
      }
    }
    if (!changed) break;
    for (std::size_t c = 0; c < k; ++c) {
      SparseVector sum;
      std::size_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (assign[i] != c || sample[i].empty()) continue;
        // Sum of unit vectors: direction of the spherical mean.
        sum.add_scaled(sample[i], 1.0 / sample[i].norm());
        ++count;
      }
      if (count == 0 || sum.norm() == 0) {
        centroids[c] = sample[rng.below(n)];
      } else {
        sum.scale(1.0 / sum.norm());
        centroids[c] = std::move(sum);
      }
    }
  }
  return centroids;
}

}  // namespace lmk
