// Landmark-based index-space construction (paper §3.1).
//
// Given k landmark points {l1..lk} in a metric space (D, d), every object
// x ∈ D maps to the index point (d(x,l1), …, d(x,lk)) ∈ R^k. By the
// triangle inequality this mapping is contractive under L∞:
//   L∞(I(x), I(y)) = max_i |d(x,li) - d(y,li)| <= d(x, y),
// so a near-neighbour query (q, r) is answered exactly by the k-cube of
// edge 2r centred at I(q) — a superset that the querier then refines.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "metric/metric_space.hpp"

namespace lmk {

/// A point in the k-dimensional landmark index space.
using IndexPoint = std::vector<double>;

/// One dimension's bounds in the index space.
struct Interval {
  double lo = 0;
  double hi = 0;
};

/// Per-dimension bounds of the index space.
using Boundary = std::vector<Interval>;

/// Uniform boundary: every dimension spans [lo, hi] — the "determined by
/// the original metric space" option (a bounded metric's global range).
[[nodiscard]] inline Boundary uniform_boundary(std::size_t dims, double lo,
                                               double hi) {
  LMK_CHECK(hi > lo);
  return Boundary(dims, Interval{lo, hi});
}

/// The landmark mapper: owns the landmark set and the index-space
/// boundary, and maps domain points to (clamped) index points.
template <MetricSpace S>
class LandmarkMapper {
 public:
  using Point = typename S::Point;

  /// `boundary` must have exactly landmarks.size() dimensions.
  LandmarkMapper(const S& space, std::vector<Point> landmarks,
                 Boundary boundary)
      : space_(&space),
        landmarks_(std::move(landmarks)),
        boundary_(std::move(boundary)) {
    LMK_CHECK(!landmarks_.empty());
    LMK_CHECK(boundary_.size() == landmarks_.size());
    for (const Interval& b : boundary_) LMK_CHECK(b.hi > b.lo);
  }

  /// Number of landmarks == index-space dimensionality.
  [[nodiscard]] std::size_t dims() const { return landmarks_.size(); }

  [[nodiscard]] const std::vector<Point>& landmarks() const {
    return landmarks_;
  }

  [[nodiscard]] const Boundary& boundary() const { return boundary_; }

  /// Map a domain point to its index point, clamped to the boundary
  /// ("data objects whose distance to the landmarks goes beyond the
  /// boundary will be mapped to the boundary points", §3.1).
  [[nodiscard]] IndexPoint map(const Point& p) const {
    IndexPoint out(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      double d = space_->distance(p, landmarks_[i]);
      const Interval& b = boundary_[i];
      out[i] = d < b.lo ? b.lo : (d > b.hi ? b.hi : d);
    }
    return out;
  }

  /// Clamped mapping into caller-provided storage — the streaming-load
  /// path maps whole batches into one flat arena-backed buffer, so no
  /// per-point IndexPoint is ever allocated.
  void map_into(const Point& p, std::span<double> out) const {
    LMK_CHECK(out.size() == dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      double d = space_->distance(p, landmarks_[i]);
      const Interval& b = boundary_[i];
      out[i] = d < b.lo ? b.lo : (d > b.hi ? b.hi : d);
    }
  }

  /// Map without boundary clamping — used for query points, whose search
  /// region is clamped as a whole instead (a query just outside the
  /// boundary must still see entries near the edge).
  [[nodiscard]] IndexPoint map_unclamped(const Point& p) const {
    IndexPoint out(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      out[i] = space_->distance(p, landmarks_[i]);
    }
    return out;
  }

  /// Bulk mapping for index builds: map every point, fanned out over the
  /// deterministic thread pool (points × landmarks distance evaluations
  /// are the dominant cost of loading a dataset). Each worker writes
  /// only its own output slots, so the result is bit-identical for any
  /// thread count. Requires a pure (thread-safe) distance.
  [[nodiscard]] std::vector<IndexPoint> map_all(
      std::span<const Point> points) const {
    std::vector<IndexPoint> out(points.size());
    parallel_for(points.size(),
                 [&](std::size_t i) { out[i] = map(points[i]); });
    return out;
  }

 private:
  const S* space_;
  std::vector<Point> landmarks_;
  Boundary boundary_;
};

/// Boundary "determined by the landmark selection procedure" (§3.1,
/// option 2): per dimension, the min and max distance between that
/// landmark and the initially sampled objects. A small relative margin
/// keeps boundary-grazing points strictly inside.
template <MetricSpace S>
[[nodiscard]] Boundary boundary_from_sample(
    const S& space, std::span<const typename S::Point> landmarks,
    std::span<const typename S::Point> sample, double margin = 1e-9) {
  LMK_CHECK(!landmarks.empty());
  LMK_CHECK(!sample.empty());
  Boundary out(landmarks.size());
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    double lo = 0, hi = 0;
    bool first = true;
    for (const auto& s : sample) {
      double d = space.distance(s, landmarks[i]);
      if (first) {
        lo = hi = d;
        first = false;
      } else {
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    }
    double pad = (hi - lo) * margin;
    if (hi <= lo) pad = 1e-9;  // degenerate: all sample equidistant
    out[i] = Interval{lo - pad, hi + pad};
  }
  return out;
}

/// L∞ distance between two index points — the contractive lower bound on
/// the original metric distance, used to rank candidates at index nodes.
/// Span-based so SoA stores can pass coordinate rows without
/// materializing an IndexPoint (std::vector<double> converts
/// implicitly).
[[nodiscard]] inline double index_lower_bound(std::span<const double> a,
                                              std::span<const double> b) {
  LMK_DCHECK(a.size() == b.size());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = std::max(acc, std::abs(a[i] - b[i]));
  }
  return acc;
}

/// Braced-list convenience for tests.
[[nodiscard]] inline double index_lower_bound(
    std::initializer_list<double> a, std::initializer_list<double> b) {
  return index_lower_bound(std::span<const double>(a.begin(), a.size()),
                           std::span<const double>(b.begin(), b.size()));
}

}  // namespace lmk
