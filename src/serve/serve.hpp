// Serving-layer configuration and per-node serving state (ROADMAP
// item 4): hot-result caches, the router's cross-query coalescing
// window, and load-aware admission control. IndexPlatform owns one
// ServeState when any knob is enabled; everything is off by default so
// the fig2/fig3 pipelines stay byte-identical.
//
// All knobs are env-driven (`LMK_SERVE_*`) so any bench or test can
// switch the serving tier on without code changes:
//
//   LMK_SERVE_CACHE=1             enable per-node hot-result caches
//   LMK_SERVE_CACHE_SLOTS=64      LRU slot budget per (node, scheme)
//   LMK_SERVE_CACHE_MAX_ENTRIES=256  largest hit-list worth caching
//   LMK_SERVE_CACHE_TTL_MS=0      virtual-time expiry (0 = none)
//   LMK_SERVE_WINDOW_MS=0         router coalescing window Δt
//   LMK_SERVE_QUEUE_LIMIT=0       admission threshold (0 = off)
//   LMK_SERVE_SERVICE_US=0        modeled per-subquery service time
//   LMK_SERVE_BACKOFF_MS=5        origin retry-after base (doubles)
//   LMK_SERVE_MAX_RETRIES=8       shed ceiling before the drop
//   LMK_SERVE_VERIFY=1            re-solve every cache hit (oracle)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/latency_model.hpp"
#include "serve/result_cache.hpp"

namespace lmk {

struct ServeOptions {
  bool cache_enabled = false;
  std::size_t cache_slots = 64;
  std::size_t cache_max_entries = 256;
  SimTime cache_ttl = 0;       ///< 0 = no TTL
  SimTime coalesce_window = 0; ///< 0 = per-episode flush (unchanged)
  std::uint32_t queue_limit = 0;  ///< solve-queue depth; 0 = admission off
  SimTime service_time = 0;    ///< modeled per-subquery solve occupancy
  SimTime backoff = 0;         ///< retry-after base; set by from_env
  /// Sheds a subquery absorbs before the still-saturated node drops it
  /// (load shedding proper: the query completes without that node's
  /// hits, recorded in QueryOutcome::lost_subqueries).
  int max_retries = 8;
  bool verify_hits = false;    ///< cross-check cache hits vs. a re-solve

  [[nodiscard]] bool cache_on() const {
    return cache_enabled && cache_slots > 0;
  }
  [[nodiscard]] bool admission_on() const { return queue_limit > 0; }
  [[nodiscard]] bool any_enabled() const {
    return cache_on() || admission_on() || coalesce_window > 0 ||
           service_time > 0;
  }

  /// Read every LMK_SERVE_* knob (missing = the defaults above, with
  /// backoff defaulting to 5 ms). Configuration, not entropy: the same
  /// environment always yields the same options.
  [[nodiscard]] static ServeOptions from_env();
};

/// Serving-tier counters aggregated across nodes (cache stats live in
/// the per-node caches and are summed on demand).
struct ServeStats {
  std::uint64_t shed = 0;           ///< subqueries bounced to the origin
  std::uint64_t retries = 0;        ///< retry dispatches scheduled
  std::uint64_t retry_drops = 0;    ///< retries abandoned (origin died)
  std::uint64_t dropped = 0;        ///< retry ceiling reached, dropped
  std::uint64_t forced_admits = 0;  ///< naive routing: cannot shed
  std::uint64_t enqueued = 0;       ///< subqueries through the queue
  std::uint64_t verified_hits = 0;  ///< cache hits oracle-checked
};

/// Per-node serving state: result caches (one per scheme) plus the
/// admission queue gauge. Indexed by HostId; only events tagged with
/// that host touch a node's slot, so the state needs no locking and
/// stays deterministic at any LMK_THREADS.
class ServeState {
 public:
  struct NodeServe {
    std::vector<ResultCache> per_scheme;
    std::uint32_t queue = 0;     ///< admitted but unfinished solves
    SimTime busy_until = 0;      ///< end of the last scheduled solve
    std::uint32_t peak_queue = 0;
  };

  explicit ServeState(ServeOptions opts) : opts_(opts) {}

  [[nodiscard]] const ServeOptions& options() const { return opts_; }

  /// The node's serving slot, growing the table on first touch.
  [[nodiscard]] NodeServe& node(HostId host);

  /// The node's cache for one scheme (growing both tables on demand).
  [[nodiscard]] ResultCache& cache(HostId host, std::uint32_t scheme);

  /// Coverage invalidation fan-in for one mutated point.
  void invalidate_point(HostId host, std::uint32_t scheme,
                        std::span<const double> point);

  /// Conservative wipe of one (node, scheme) cache — bulk moves.
  void invalidate_scheme(HostId host, std::uint32_t scheme);

  [[nodiscard]] ServeStats& stats() { return stats_; }
  [[nodiscard]] const ServeStats& stats() const { return stats_; }

  /// Sum of every per-(node, scheme) cache's counters.
  [[nodiscard]] CacheStats aggregate_cache_stats() const;

 private:
  ServeOptions opts_;
  std::vector<NodeServe> nodes_;  // indexed by HostId
  ServeStats stats_;
};

}  // namespace lmk
