// Per-(node, scheme) hot-result cache for the serving layer (ROADMAP
// item 4). Caches the solved hit-list of a canonicalized subquery
// region so repeated probes of a Zipf-hot hypercuboid skip the local
// store entirely.
//
// Correctness model: a cached hit-list is valid exactly as long as no
// entry whose point *covers* the cached region (L∞ point-to-box
// distance zero — the same predicate the HNSW range beam ranks by) has
// been inserted into or removed from the node since the fill. Every
// mutation path in IndexPlatform therefore either reports the affected
// points (`invalidate_point`) or, for bulk moves where per-point
// reporting would cost more than refilling (drain, transfer, scheme
// clear, replication repair), wipes the whole per-scheme cache
// (`invalidate_all`). Stale hits are a correctness bug, not a quality
// knob: serve_test.cpp cross-checks every cached answer against a
// brute-force oracle, and LMK_SERVE_VERIFY re-solves hits in-line.
//
// Determinism: fixed slot budget, linear probe (slot order never
// depends on pointer values or hash-map iteration), LRU by a local
// uint64 tick. All state is per-node and only touched from events
// tagged with that node's host, so runs are byte-identical at any
// LMK_THREADS.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lph/lph.hpp"

namespace lmk {

/// Aggregated counters, exposed per node and summed by ServeState.
struct CacheStats {
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t point_invalidations = 0;  // slots dropped by cover test
  std::uint64_t wipes = 0;                // invalidate_all calls
  std::uint64_t oversize_skips = 0;       // hit-lists too big to cache

  void add(const CacheStats& o) {
    probes += o.probes;
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    point_invalidations += o.point_invalidations;
    wipes += o.wipes;
    oversize_skips += o.oversize_skips;
  }
};

/// One cached subquery result: the canonical (clamped) region it
/// answers plus copies of the matching entries. Copies, not EntryStore
/// indices — extract_if compacts the SoA store, so indices held across
/// mutations dangle even when the cached region itself stays valid.
class ResultCache {
 public:
  /// `slots`: fixed LRU budget (0 disables). `max_entries`: hit-lists
  /// larger than this are not cached (0 = unlimited). `ttl`: virtual-
  /// time expiry in simulator ticks (0 = no TTL).
  ResultCache(std::size_t slots, std::size_t max_entries, std::int64_t ttl);

  /// Probe for a region filled at or after `now - ttl`. On hit, bumps
  /// LRU and returns the slot's hits via the out spans; on miss (or
  /// expired slot) returns false. The returned spans are valid until
  /// the next non-const call.
  [[nodiscard]] bool probe(const Region& region, std::int64_t now,
                           std::span<const std::uint64_t>* objects,
                           std::span<const double>* coords,
                           std::size_t* dims);

  /// Cache `region -> (objects, flat coords)` at time `now`, evicting
  /// the least-recently-used valid slot when full. Skips (and counts)
  /// hit-lists larger than max_entries. Replaces an existing slot for
  /// the same region instead of duplicating it.
  void insert(const Region& region, std::int64_t now,
              std::span<const std::uint64_t> objects,
              std::span<const double> coords, std::size_t dims);

  /// Coverage-based invalidation: drop every slot whose cached region
  /// contains `point` (linf_box_distance == 0). Called for each point
  /// an insert/remove touches, per replica node.
  void invalidate_point(std::span<const double> point);

  /// Conservative invalidation for bulk mutations (drain, transfer,
  /// clear, replication repair, store rebuild): drop everything.
  void invalidate_all();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_slots() const;

 private:
  struct Slot {
    Region region;
    std::vector<std::uint64_t> objects;
    std::vector<double> coords;  // flat, dims doubles per object
    std::size_t dims = 0;
    std::int64_t filled_at = 0;
    std::uint64_t last_used = 0;
    bool valid = false;
  };

  [[nodiscard]] static std::uint64_t region_digest(const Region& region);
  [[nodiscard]] static bool region_equal(const Region& a, const Region& b);

  std::vector<Slot> slots_;
  std::vector<std::uint64_t> digests_;  // parallel to slots_
  std::size_t budget_;
  std::size_t max_entries_;
  std::int64_t ttl_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace lmk
