#include "serve/result_cache.hpp"

#include <cstring>

#include "common/check.hpp"

namespace lmk {

ResultCache::ResultCache(std::size_t slots, std::size_t max_entries,
                         std::int64_t ttl)
    : budget_(slots), max_entries_(max_entries), ttl_(ttl) {
  slots_.reserve(budget_);
  digests_.reserve(budget_);
}

std::uint64_t ResultCache::region_digest(const Region& region) {
  // FNV-1a over the raw interval bytes. The platform always probes with
  // the clamped (canonical) region it solved, so bit-identical doubles
  // are the equality contract; the digest only short-circuits the exact
  // compare below.
  std::uint64_t h = 1469598103934665603ULL;
  for (const Interval& r : region.ranges) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.lo));
    std::memcpy(&bits, &r.lo, sizeof(bits));
    h = (h ^ bits) * 1099511628211ULL;
    std::memcpy(&bits, &r.hi, sizeof(bits));
    h = (h ^ bits) * 1099511628211ULL;
  }
  return h;
}

bool ResultCache::region_equal(const Region& a, const Region& b) {
  if (a.ranges.size() != b.ranges.size()) return false;
  for (std::size_t d = 0; d < a.ranges.size(); ++d) {
    if (a.ranges[d].lo != b.ranges[d].lo || a.ranges[d].hi != b.ranges[d].hi) {
      return false;
    }
  }
  return true;
}

// lmk-hot-path: probe and invalidate run once per subquery / per
// mutated point on every index node — they must not allocate in steady
// state (the bench_perf serve phase holds them to zero under the PR 7
// alloc gate).
bool ResultCache::probe(const Region& region, std::int64_t now,
                        std::span<const std::uint64_t>* objects,
                        std::span<const double>* coords, std::size_t* dims) {
  if (budget_ == 0) return false;
  stats_.probes += 1;
  const std::uint64_t digest = region_digest(region);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.valid || digests_[i] != digest) continue;
    if (!region_equal(s.region, region)) continue;
    if (ttl_ > 0 && now - s.filled_at > ttl_) {
      s.valid = false;  // expired; fall through to miss so it refills
      break;
    }
    s.last_used = ++tick_;
    stats_.hits += 1;
    *objects = std::span<const std::uint64_t>(s.objects);
    *coords = std::span<const double>(s.coords);
    *dims = s.dims;
    return true;
  }
  stats_.misses += 1;
  return false;
}

void ResultCache::invalidate_point(std::span<const double> point) {
  for (Slot& s : slots_) {
    if (!s.valid) continue;
    if (linf_box_distance(point, s.region) == 0.0) {
      s.valid = false;
      stats_.point_invalidations += 1;
    }
  }
}
// lmk-hot-path-end

void ResultCache::invalidate_all() {
  for (Slot& s : slots_) s.valid = false;
  stats_.wipes += 1;
}

void ResultCache::insert(const Region& region, std::int64_t now,
                         std::span<const std::uint64_t> objects,
                         std::span<const double> coords, std::size_t dims) {
  if (budget_ == 0) return;
  if (max_entries_ > 0 && objects.size() > max_entries_) {
    stats_.oversize_skips += 1;
    return;
  }
  LMK_CHECK(coords.size() == objects.size() * dims);
  const std::uint64_t digest = region_digest(region);
  // Reuse in priority order: same region, then any invalid slot, then
  // (budget permitting) a fresh slot, else evict the LRU valid slot.
  Slot* target = nullptr;
  std::size_t target_i = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && digests_[i] == digest &&
        region_equal(slots_[i].region, region)) {
      target = &slots_[i];
      target_i = i;
      break;
    }
  }
  if (target == nullptr) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].valid) {
        target = &slots_[i];
        target_i = i;
        break;
      }
    }
  }
  if (target == nullptr && slots_.size() < budget_) {
    slots_.emplace_back();
    digests_.push_back(0);
    target = &slots_.back();
    target_i = slots_.size() - 1;
  }
  if (target == nullptr) {
    std::uint64_t oldest = slots_[0].last_used;
    target_i = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < oldest) {
        oldest = slots_[i].last_used;
        target_i = i;
      }
    }
    target = &slots_[target_i];
    stats_.evictions += 1;
  }
  Slot& s = *target;
  s.region = region;
  s.objects.assign(objects.begin(), objects.end());
  s.coords.assign(coords.begin(), coords.end());
  s.dims = dims;
  s.filled_at = now;
  s.last_used = ++tick_;
  s.valid = true;
  digests_[target_i] = digest;
  stats_.insertions += 1;
}

std::size_t ResultCache::live_slots() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.valid) ++n;
  }
  return n;
}

}  // namespace lmk
