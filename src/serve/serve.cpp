#include "serve/serve.hpp"

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace lmk {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  LMK_CHECK_MSG(end != env && *end == '\0',
                "%s must be a non-negative integer, got \"%s\"", name, env);
  return static_cast<std::uint64_t>(v);
}

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

}  // namespace

ServeOptions ServeOptions::from_env() {
  ServeOptions o;
  o.cache_enabled = env_flag("LMK_SERVE_CACHE");
  o.cache_slots = static_cast<std::size_t>(
      env_u64("LMK_SERVE_CACHE_SLOTS", o.cache_slots));
  o.cache_max_entries = static_cast<std::size_t>(
      env_u64("LMK_SERVE_CACHE_MAX_ENTRIES", o.cache_max_entries));
  o.cache_ttl = static_cast<SimTime>(env_u64("LMK_SERVE_CACHE_TTL_MS", 0)) *
                kMillisecond;
  o.coalesce_window =
      static_cast<SimTime>(env_u64("LMK_SERVE_WINDOW_MS", 0)) * kMillisecond;
  o.queue_limit =
      static_cast<std::uint32_t>(env_u64("LMK_SERVE_QUEUE_LIMIT", 0));
  o.service_time = static_cast<SimTime>(env_u64("LMK_SERVE_SERVICE_US", 0));
  o.backoff =
      static_cast<SimTime>(env_u64("LMK_SERVE_BACKOFF_MS", 5)) * kMillisecond;
  o.max_retries =
      static_cast<int>(env_u64("LMK_SERVE_MAX_RETRIES",
                               static_cast<std::uint64_t>(o.max_retries)));
  o.verify_hits = env_flag("LMK_SERVE_VERIFY");
  return o;
}

ServeState::NodeServe& ServeState::node(HostId host) {
  if (host >= nodes_.size()) {
    nodes_.resize(static_cast<std::size_t>(host) + 1);
  }
  return nodes_[host];
}

ResultCache& ServeState::cache(HostId host, std::uint32_t scheme) {
  NodeServe& ns = node(host);
  while (ns.per_scheme.size() <= scheme) {
    ns.per_scheme.emplace_back(opts_.cache_on() ? opts_.cache_slots : 0,
                               opts_.cache_max_entries, opts_.cache_ttl);
  }
  return ns.per_scheme[scheme];
}

void ServeState::invalidate_point(HostId host, std::uint32_t scheme,
                                  std::span<const double> point) {
  if (host >= nodes_.size()) return;  // node never cached anything
  NodeServe& ns = nodes_[host];
  if (scheme >= ns.per_scheme.size()) return;
  ns.per_scheme[scheme].invalidate_point(point);
}

void ServeState::invalidate_scheme(HostId host, std::uint32_t scheme) {
  if (host >= nodes_.size()) return;
  NodeServe& ns = nodes_[host];
  if (scheme >= ns.per_scheme.size()) return;
  ns.per_scheme[scheme].invalidate_all();
}

CacheStats ServeState::aggregate_cache_stats() const {
  CacheStats total;
  for (const NodeServe& ns : nodes_) {
    for (const ResultCache& c : ns.per_scheme) {
      total.add(c.stats());
    }
  }
  return total;
}

}  // namespace lmk
