// Dynamic load migration (paper §3.4).
//
// Each node periodically samples the load of its neighbours (routing
// table entries, expanded transitively to probing level P_l). A node N
// is heavily loaded when L_N > avg * (1 + δ_N). A heavy node finds the
// lightest probed node and asks it to leave and rejoin at a chosen split
// point — the key that divides the heavy node's stored entries in
// halves — so the rejoined node takes over half of N's load. Departing
// nodes hand their entries to their successor; rejoined nodes pull the
// entries they now own from their new successor.
//
// Load is measured in stored index entries, as in the paper; the LoadFn
// hook lets callers fold in other signals (message counts etc.).
#pragma once

#include <functional>

#include "chord/ring.hpp"

namespace lmk {

/// Orchestrates leave/rejoin load migrations over a Ring. Storage stays
/// with the index platform; the balancer drives it through hooks.
class LoadBalancer {
 public:
  struct Options {
    /// Threshold factor δ: heavy when load > neighbourhood avg * (1+δ).
    double delta = 0.0;
    /// Probing level P_l: how many routing-table hops the neighbourhood
    /// sample expands through.
    int probe_level = 4;
    /// Upper bound on probed nodes per round per node (keeps P_l=4
    /// neighbourhoods from degenerating into global knowledge).
    std::size_t max_probe_set = 256;
  };

  struct Hooks {
    /// Current load of a node (index entries stored).
    std::function<double(const ChordNode&)> load;
    /// The split point of a heavy node's key range: an id such that the
    /// entries with (rotated) keys at or below it are half the load.
    std::function<Id(const ChordNode&)> split_key;
    /// Move every entry from `from` to `to` (graceful departure).
    std::function<void(ChordNode& from, ChordNode& to)> drain_to;
    /// After `to` rejoined as `from`'s predecessor: move the entries
    /// `to` now owns (keys in (to's predecessor, to]) from `from`.
    std::function<void(ChordNode& from, ChordNode& to)> pull_owned;
  };

  LoadBalancer(Ring& ring, Options opts, Hooks hooks);

  /// One probing round over every alive node (deterministic order).
  /// Returns the number of migrations performed.
  int run_round();

  /// Rounds until a round performs no migration (or max_rounds).
  /// Returns total migrations.
  int run_until_stable(int max_rounds = 50);

  /// Number of migrations performed so far.
  [[nodiscard]] int migrations() const { return migrations_; }

  /// The probe set of `n`: routing-table neighbours expanded to
  /// probe_level hops (n excluded). Exposed for tests/diagnostics.
  [[nodiscard]] std::vector<ChordNode*> probe_set(ChordNode& n) const;

 private:
  bool try_migrate(ChordNode& heavy);

  Ring& ring_;
  Options opts_;
  Hooks hooks_;
  int migrations_ = 0;
};

}  // namespace lmk
