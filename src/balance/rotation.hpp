// Static load balancing: space-mapping rotation (paper §3.4).
//
// When several index schemes share a hotspot shape in index space (the
// paper's example: high-dimensional hyperball volume concentrating
// entries near the upper boundary), their hot cuboids land on the same
// identifier range and overload the same nodes. Giving each scheme a
// random rotation offset φ — derived by hashing the scheme's name —
// shifts scheme i's key space to [φ_i, φ_i + 2^m - 1] (mod 2^m), so the
// hot ranges of co-hosted schemes land on different parts of the ring.
#pragma once

#include <string_view>

#include "common/ring_math.hpp"
#include "common/rng.hpp"

namespace lmk {

/// The rotation offset for an index scheme: a uniform hash of its name
/// ("the randomness of φ ... can be achieved by hashing the name of the
/// corresponding index").
[[nodiscard]] inline Id rotation_offset(std::string_view index_name) {
  return hash_string(index_name.data(), index_name.size());
}

}  // namespace lmk
