#include "balance/migration.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace lmk {

LoadBalancer::LoadBalancer(Ring& ring, Options opts, Hooks hooks)
    : ring_(ring), opts_(opts), hooks_(std::move(hooks)) {
  LMK_CHECK_MSG(hooks_.load != nullptr, "load hook not supplied");
  LMK_CHECK_MSG(hooks_.split_key != nullptr, "split_key hook not supplied");
  LMK_CHECK_MSG(hooks_.drain_to != nullptr, "drain_to hook not supplied");
  LMK_CHECK_MSG(hooks_.pull_owned != nullptr, "pull_owned hook not supplied");
  LMK_CHECK_MSG(opts_.probe_level >= 1, "probe_level %d must be >= 1",
                opts_.probe_level);
}

std::vector<ChordNode*> LoadBalancer::probe_set(ChordNode& n) const {
  // Membership test only: the BFS order comes from `frontier`, never
  // from iterating `seen`.
  // lmk-lint: allow(pointer-key-unordered)
  std::unordered_set<ChordNode*> seen{&n};
  std::vector<ChordNode*> frontier{&n};
  std::vector<ChordNode*> out;
  for (int level = 0; level < opts_.probe_level && !frontier.empty();
       ++level) {
    std::vector<ChordNode*> next;
    for (ChordNode* cur : frontier) {
      auto consider = [&](const NodeRef& r) {
        if (!r.valid() || seen.count(r.node) != 0) return;
        if (out.size() >= opts_.max_probe_set) return;
        seen.insert(r.node);
        out.push_back(r.node);
        next.push_back(r.node);
      };
      for (const NodeRef& s : cur->successor_list()) consider(s);
      for (const NodeRef& f : cur->finger_table()) consider(f);
      NodeRef p = cur->predecessor();
      consider(p);
    }
    frontier = std::move(next);
  }
  return out;
}

bool LoadBalancer::try_migrate(ChordNode& heavy) {
  std::vector<ChordNode*> probes = probe_set(heavy);
  if (probes.empty()) return false;
  double my_load = hooks_.load(heavy);
  double total = 0;
  ChordNode* lightest = nullptr;
  double lightest_load = 0;
  for (ChordNode* p : probes) {
    double l = hooks_.load(*p);
    total += l;
    if (lightest == nullptr || l < lightest_load) {
      lightest = p;
      lightest_load = l;
    }
  }
  double avg = total / static_cast<double>(probes.size());
  if (my_load <= avg * (1.0 + opts_.delta)) return false;
  // Migrating is only useful if the victim ends up with less than half
  // of the heavy node's load; otherwise we would just swap the hotspot.
  if (lightest_load >= my_load / 2.0) return false;
  LMK_CHECK_MSG(lightest != nullptr,
                "no migration victim among %zu probes of node %016llx "
                "at t=%lld",
                probes.size(),
                static_cast<unsigned long long>(heavy.id()),
                static_cast<long long>(ring_.sim().now()));
  if (lightest == &heavy) return false;
  // The victim must not be the heavy node's current predecessor with no
  // load to shed, and a split key equal to an existing id is nudged.
  Id split = hooks_.split_key(heavy);
  if (!in_open(split, heavy.predecessor().id, heavy.id())) {
    return false;  // degenerate range (e.g. all entries on one key)
  }
  // Collision probe stands in for the paper's out-of-band lookup
  // before the victim rejoins at the split point.
  // lmk-lint: allow(cross-node-touch) modeled out-of-band control plane
  ChordNode* occupied = ring_.oracle_successor(split);
  while (occupied->id() == split) {
    ++split;  // avoid identifier collisions with existing nodes
    if (!in_open(split, heavy.predecessor().id, heavy.id())) return false;
    // lmk-lint: allow(cross-node-touch) same collision probe, next id
    occupied = ring_.oracle_successor(split);
  }
  // Victim leaves: its entries drain to its successor.
  ChordNode* victim_succ = lightest->successor().node;
  if (victim_succ == nullptr || victim_succ == &heavy) {
    // Draining into the heavy node would defeat the purpose unless the
    // victim is empty; allow only the trivial case.
    if (hooks_.load(*lightest) > 0 && victim_succ == &heavy) return false;
  }
  hooks_.drain_to(*lightest, *victim_succ);
  ring_.leave(*lightest);
  // ...and rejoins as the heavy node's predecessor at the split point.
  ring_.rejoin(*lightest, split);
  hooks_.pull_owned(heavy, *lightest);
  ++migrations_;
  return true;
}

int LoadBalancer::run_round() {
  int migrated = 0;
  // Deterministic sweep; each migration immediately repairs the local
  // neighbourhood, so later nodes in the sweep see fresh state.
  // The round driver models the balancer's global probe schedule,
  // not a single node's handler.
  // lmk-lint: allow(cross-node-touch) round driver, not a handler
  for (ChordNode* n : ring_.alive_nodes()) {
    if (!n->alive()) continue;  // may have migrated earlier this round
    if (try_migrate(*n)) ++migrated;
  }
  // Let finger tables catch up with the membership changes (stand-in
  // for the background fix-finger rounds that would run between probes).
  // lmk-lint: allow(cross-node-touch) stand-in for fix-finger rounds
  if (migrated > 0) ring_.refresh_all_fingers();
  return migrated;
}

int LoadBalancer::run_until_stable(int max_rounds) {
  int total = 0;
  for (int r = 0; r < max_rounds; ++r) {
    int m = run_round();
    total += m;
    if (m == 0) break;
  }
  return total;
}

}  // namespace lmk
