// The index platform: the paper's primary contribution assembled.
//
// One platform sits on one Chord overlay and simultaneously hosts any
// number of index schemes (§1: "a general platform to support arbitrary
// number of indexes on different data types") — each scheme being a
// landmark index space with its own dimensionality, boundary and
// optional rotation offset. The platform owns the distributed entry
// stores, drives the query router, models the paper's message sizes, and
// produces the per-query cost metrics of §4.1 (hops, response time,
// maximum latency, bandwidth).
//
// The platform is deliberately type-erased: it deals in IndexPoints
// (already-mapped landmark coordinates) and opaque object ids. The typed
// facade LandmarkIndex<Space> in core/typed_index.hpp performs the
// metric-space mapping and final true-distance refinement.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "balance/migration.hpp"
#include "common/arena.hpp"
#include "core/entry_store.hpp"
#include "routing/naive.hpp"
#include "routing/router.hpp"
#include "serve/serve.hpp"
#include "store/local_store.hpp"

namespace lmk {

/// What an index node sends back for a subquery.
enum class ReplyMode {
  kAllMatches,  ///< every stored entry inside the query region
  kTopK,        ///< the top_k entries nearest the focus (paper's recall
                ///< model: "each queried index node returns the 10-nearest
                ///< local results")
};

/// Which delivery engine resolves range queries.
enum class RoutingMode {
  kTree,   ///< embedded-tree routing (Algorithms 3-5)
  kNaive,  ///< client-side decomposition baseline
};

/// Multi-index platform over one Chord ring.
class IndexPlatform {
 public:
  struct Options {
    std::size_t top_k = 10;  ///< local candidates per node in kTopK mode
    RoutingMode routing = RoutingMode::kTree;
    int naive_split_depth = 10;  ///< client decomposition depth (naive)
    /// Entry replication degree: each entry is stored on its owner and
    /// the next (replication - 1) distinct successors, so crash
    /// failures lose no data until `replication` consecutive nodes die
    /// between repair rounds. Queries deduplicate replica hits. 1 = the
    /// paper's unreplicated setup.
    std::size_t replication = 1;
  };

  /// Everything the caller learns about one finished query — the paper's
  /// cost metrics (§4.1) plus bookkeeping for the analysis scripts.
  struct QueryOutcome {
    std::vector<std::uint64_t> results;  ///< merged object ids
    int hops = 0;                ///< max path length to any index node
    SimTime response_time = 0;   ///< first reply arrival - injection
    SimTime max_latency = 0;     ///< last reply arrival - injection
    std::uint64_t query_messages = 0;  ///< query-delivery messages
    std::uint64_t query_bytes = 0;     ///< query-delivery bandwidth
    std::uint64_t result_messages = 0;
    std::uint64_t result_bytes = 0;    ///< results-delivery bandwidth
    int index_nodes = 0;         ///< distinct nodes that answered
    int subqueries = 0;          ///< local solves performed
    /// Candidates evaluated during distributed refinement: total across
    /// all index nodes, and the busiest single node's share (the
    /// "query processing overhead" the paper charges against greedy
    /// landmark hotspots in §4.3).
    std::uint64_t candidates = 0;
    std::uint64_t max_node_candidates = 0;
    /// Stored entries *examined* across all local solves (the per-node
    /// scan cost). With the sorted-store candidate ranges this is the
    /// number of entries inside the chosen dimension's range, not the
    /// node's whole store — the online-path pruning the perf bench
    /// regresses against.
    std::uint64_t scanned = 0;
    int lost_subqueries = 0;     ///< dropped by churn (0 in steady state)
    /// Serving-layer accounting (0 with the serving tier off): subquery
    /// solves answered from a node's hot-result cache, and admission-
    /// control bounces this query absorbed before completing.
    std::uint64_t cache_hits = 0;
    std::uint64_t shed = 0;
    bool complete = false;
  };

  using QueryCallback = std::function<void(const QueryOutcome&)>;

  /// True metric distance from the query object to a stored object —
  /// used by index nodes to rank their local candidates in kTopK mode
  /// (the paper's distributed refinement: index nodes evaluate the
  /// metric on their local candidates; §4.3 attributes the greedy
  /// scheme's hotspot cost to exactly this per-node query processing).
  /// When absent, nodes fall back to the index-space L∞ lower bound.
  using DistanceFn = std::function<double(std::uint64_t object)>;

  IndexPlatform(Ring& ring, Options opts);
  explicit IndexPlatform(Ring& ring) : IndexPlatform(ring, Options{}) {}

  // ----- scheme registry -----

  /// Register an index scheme; returns its id. `rotate` applies the
  /// static space-mapping rotation φ = hash(name) (§3.4). The scheme's
  /// per-node local stores use the process default backend
  /// (LocalStoreOptions::from_env, i.e. the LMK_LOCAL_STORE knob).
  std::uint32_t register_scheme(const std::string& name, Boundary boundary,
                                bool rotate);

  /// Register with explicit per-scheme local-store configuration
  /// (overrides the LMK_LOCAL_STORE process default).
  std::uint32_t register_scheme(const std::string& name, Boundary boundary,
                                bool rotate,
                                const LocalStoreOptions& store_opts);

  /// Replace a scheme's index-space boundary (same dimensionality) —
  /// part of re-indexing against a refreshed landmark set. The scheme's
  /// store must be empty (clear_scheme first): existing keys were
  /// hashed against the old boundary.
  void update_scheme_boundary(std::uint32_t id, Boundary boundary);

  [[nodiscard]] const SchemeRouting& scheme(std::uint32_t id) const;
  [[nodiscard]] const std::string& scheme_name(std::uint32_t id) const;
  [[nodiscard]] std::size_t scheme_count() const { return schemes_.size(); }

  [[nodiscard]] const Options& options() const { return opts_; }

  // ----- data -----

  /// Bulk-load one entry at its owner (oracle placement; no messages).
  /// Used to initialize experiments, mirroring the paper's setup phase.
  void insert(std::uint32_t scheme, std::uint64_t object,
              const IndexPoint& point);

  /// Bulk-load a whole batch: points[i] is stored for object id
  /// first_object + i. The LPH key computation fans out over the
  /// deterministic thread pool; store mutation stays sequential in
  /// index order, so the resulting placement is byte-identical to
  /// calling insert() in a loop (for any thread count).
  void bulk_insert(std::uint32_t scheme, std::span<const IndexPoint> points,
                   std::uint64_t first_object = 0);

  /// Flat-buffer bulk load: `coords` holds size/dims row-major index
  /// points (row i is stored for object first_object + i). This is the
  /// streaming-construction path — batches of mapped points live in
  /// arena scratch and flow straight into the SoA stores without ever
  /// materializing per-point heap vectors. Placement order is identical
  /// to insert() in a loop for any thread count.
  void bulk_insert_flat(std::uint32_t scheme, std::span<const double> coords,
                        std::size_t dims, std::uint64_t first_object = 0);

  /// Costed insertion: route a store request from `origin` through Chord
  /// to the owner. `done(hops)` fires when stored.
  void insert_via_network(ChordNode& origin, std::uint32_t scheme,
                          std::uint64_t object, IndexPoint point,
                          std::function<void(int hops)> done = {});

  /// Remove one entry (bulk/oracle path): finds the owner by the
  /// entry's index point and erases it. Returns false when the object
  /// was not indexed (or the point does not match what was inserted).
  bool remove(std::uint32_t scheme, std::uint64_t object,
              const IndexPoint& point);

  /// Costed removal routed through Chord from `origin`.
  void remove_via_network(ChordNode& origin, std::uint32_t scheme,
                          std::uint64_t object, IndexPoint point,
                          std::function<void(bool removed, int hops)> done =
                              {});

  /// Drop every entry of one scheme (used when re-indexing against a
  /// new landmark set — the paper's dynamic-dataset future work).
  void clear_scheme(std::uint32_t scheme);

  /// Entries currently stored for one scheme across all nodes.
  [[nodiscard]] std::size_t scheme_entries(std::uint32_t scheme) const;

  /// Total entries across all nodes and schemes.
  [[nodiscard]] std::size_t total_entries() const;

  // ----- queries -----

  /// Near-neighbour query (center, radius): searches the k-cube of edge
  /// 2*radius around `center` (§3.1). Completion fires when replies from
  /// every contacted index node have arrived.
  void range_query(ChordNode& origin, std::uint32_t scheme,
                   const IndexPoint& center, double radius, ReplyMode mode,
                   QueryCallback done, DistanceFn rank = {});

  /// General region query (arbitrary box); `focus` seeds the fallback
  /// top-k ranking when no DistanceFn is supplied.
  void region_query(ChordNode& origin, std::uint32_t scheme, Region region,
                    IndexPoint focus, ReplyMode mode, QueryCallback done,
                    DistanceFn rank = {});

  /// Queries injected but not yet completed.
  [[nodiscard]] std::size_t active_queries() const { return active_.size(); }

  /// Reply messages `n` has accumulated but not yet flushed — the
  /// per-node queue depth the flagship bench samples while the
  /// open-loop workload runs.
  [[nodiscard]] std::size_t pending_reply_depth(const ChordNode& n) const;

  // ----- memory accounting -----

  /// Resident heap bytes of all entry stores plus their local index
  /// structures — order indices, HNSW adjacency, or pivot tables,
  /// whichever backend each scheme runs (the payload the flagship bench
  /// reports).
  [[nodiscard]] std::uint64_t store_bytes() const;

  // ----- local stores -----

  /// The local-store configuration scheme `id` was registered with.
  [[nodiscard]] const LocalStoreOptions& local_store_options(
      std::uint32_t id) const;

  /// Backend name ("sorted" / "hnsw" / "pivot") for scheme `id`.
  [[nodiscard]] const char* local_store_name(std::uint32_t id) const {
    return local_store_kind_name(local_store_options(id).kind);
  }

  /// Cumulative local-store (re)build counters across all nodes and
  /// schemes — migration/rotation churn shows up as extra rebuilds.
  [[nodiscard]] const LocalStoreBuildStats& local_store_stats() const {
    return local_store_stats_;
  }

  /// Counters of the in-flight reply-buffer pool (one buffer per
  /// (query, node) reply under construction).
  [[nodiscard]] const RecyclePoolStats& reply_pool_stats() const {
    return reply_pool_.stats();
  }

  // ----- serving layer (src/serve/) -----

  /// Reconfigure the serving tier: result caches, router coalescing
  /// window, and admission control. Enabling any knob instantiates the
  /// per-node ServeState; a fully-disabled options struct tears it down
  /// (dropping caches and counters — benches use this between rungs).
  /// The constructor applies ServeOptions::from_env(), so the LMK_SERVE_*
  /// environment switches the tier on without code changes.
  void set_serve_options(const ServeOptions& opts);

  /// The live serving state, or nullptr with the tier off.
  [[nodiscard]] const ServeState* serve_state() const { return serve_.get(); }

  /// Cross-query batching gauge: episodes merged into an already-open
  /// coalescing window (each one a message the per-episode flush would
  /// have sent on its own).
  [[nodiscard]] std::uint64_t coalesced_messages() const {
    return router_.coalesced_messages();
  }

  // ----- load & migration (used by LoadBalancer and benches) -----

  /// Entries stored on `n` summed over schemes (the paper's load value).
  [[nodiscard]] std::size_t entries_on(const ChordNode& n) const;

  /// Loads of all alive nodes, unsorted.
  [[nodiscard]] std::vector<std::size_t> load_distribution() const;

  /// Move every entry from `from` to `to` (graceful departure).
  void drain_all(ChordNode& from, ChordNode& to);

  /// Move the entries `to` now owns (keys in (to.predecessor, to]) from
  /// `from` to `to` (post-rejoin pull).
  void transfer_owned(ChordNode& from, ChordNode& to);

  /// The split point dividing `n`'s stored entries in half along the
  /// ring, in ring order from its predecessor. Returns n.predecessor().id
  /// when no useful split exists (empty store, or all entries share one
  /// key — the paper notes single-key load cannot be divided).
  [[nodiscard]] Id median_key(const ChordNode& n) const;

  /// Ready-made hooks wiring this platform to a LoadBalancer: load =
  /// entries_on, split = median_key, drain/pull = the transfer methods.
  [[nodiscard]] LoadBalancer::Hooks balancer_hooks();

  // ----- traffic -----

  [[nodiscard]] const TrafficCounter& query_traffic() const;
  [[nodiscard]] const TrafficCounter& result_traffic() const {
    return result_traffic_;
  }

  // ----- introspection (tests, invariants) -----

  /// The entries of one scheme stored on `n`.
  [[nodiscard]] const EntryStore& store(const ChordNode& n,
                                        std::uint32_t scheme) const;

  /// Mutable access to a node's store, bypassing placement. Exists so
  /// the audit mutation tests can inject protocol faults (misplaced,
  /// dropped or duplicated entries) behind the platform's back; regular
  /// code must go through insert/remove/transfer.
  [[nodiscard]] EntryStore& mutable_store(const ChordNode& n,
                                          std::uint32_t scheme) {
    // Out-of-band mutation: nothing reports the touched points, so the
    // node's result cache can only be wiped wholesale.
    serve_wipe(n, scheme);
    return entries(n, scheme);
  }

  /// Verify placement: with replication = 1, every stored entry sits on
  /// the node owning its key; with replication r, each copy sits on the
  /// owner or one of its r-1 successors, and the owner holds a copy.
  /// Aborts on violation.
  void check_placement_invariant() const;

  /// Re-establish the replication invariant after membership changes:
  /// re-replicates under-replicated entries, pulls entries to their
  /// owner, and drops surplus copies. Call after crashes/migrations
  /// when replication > 1 (a deployment would run this periodically).
  void repair_replication();

 private:
  /// One scheme's entries on one node, plus a lazily rebuilt LocalStore
  /// (sorted order indices, HNSW graph, or pivot table — per-scheme
  /// config). on_solve probes the LocalStore instead of scanning the
  /// whole store. Mutations just bump `version`; the structure is
  /// rebuilt on the first solve that finds it stale (stores churn in
  /// bursts between query batches, so one rebuild amortizes over the
  /// whole batch — this is also what keeps migration/rotation working
  /// unchanged across every backend).
  struct SchemeStore {
    EntryStore entries;
    std::unique_ptr<LocalStore> local;
    std::uint64_t version = 0;
    std::uint64_t indexed_version = ~std::uint64_t{0};
  };
  struct NodeStore {
    std::vector<SchemeStore> per_scheme;
    /// Reply flushes scheduled but not yet fired on this node — the
    /// queue-depth gauge behind pending_reply_depth().
    std::uint32_t pending_replies = 0;
  };
  struct ActiveQuery {
    std::uint32_t scheme = 0;
    HostId origin = 0;
    /// The issuing node, pinned by incarnation — the admission
    /// controller's shed/retry protocol re-injects bounced subqueries
    /// here (and drops them if the origin departed).
    ChordNode* origin_node = nullptr;
    std::uint32_t origin_inc = 0;
    ReplyMode mode = ReplyMode::kAllMatches;
    SimTime t0 = 0;
    int outstanding = 0;
    int replies_pending = 0;
    bool got_first_reply = false;
    QueryOutcome outcome;
    QueryCallback done;
    DistanceFn rank;
    // Per-node tally bumped on solve and read back per node at reply
    // flush; never iterated.
    // lmk-lint: allow(pointer-key-unordered)
    std::unordered_map<const ChordNode*, std::uint64_t> node_candidates;
    std::unordered_set<std::uint64_t> seen;
  };

  /// Reply under construction: candidates a node accumulated for one
  /// query across the subqueries it solved in one processing step. The
  /// flush (a zero-delay self event) applies the per-node top-k cut and
  /// ships ONE result message — the paper's "each queried index node
  /// returns the 10-nearest local results".
  struct PendingReply {
    std::vector<std::pair<double, std::uint64_t>> scored;
    bool flush_scheduled = false;
    bool pooled = false;  ///< scored came from reply_pool_
  };

  [[nodiscard]] std::vector<ChordNode*> replica_nodes(Id key) const;
  NodeStore& store_of(const ChordNode& n);
  SchemeStore& scheme_store(const ChordNode& n, std::uint32_t scheme);
  /// Mutable entry store; bumps the store version so the local store
  /// rebuilds before the next solve. All writers must come through here.
  EntryStore& entries(const ChordNode& n, std::uint32_t scheme);
  /// Instantiate the scheme's configured backend on first use and
  /// rebuild it if the entry store mutated since the last probe.
  void ensure_local_store(SchemeStore& ss, std::uint32_t scheme);
  /// Serving-tier dispatcher: admission control and queueing in front
  /// of the actual solve. With the tier off it is a tail call into
  /// solve_subquery — byte-identical to the pre-serve behavior.
  void on_solve(const RangeQuery& q, ChordNode& node);
  /// The local solve proper (cache probe, store probe, reply staging).
  void solve_subquery(const RangeQuery& q, ChordNode& node);
  /// Bounce an over-admission subquery back to its origin for a
  /// backed-off retry (deterministic exponential backoff).
  void shed_subquery(const RangeQuery& q, ChordNode& node);
  /// Coverage invalidation fan-in for one (node, scheme, point) insert
  /// or removal; no-op with the serving tier off (inline so the bulk
  /// load paths pay one predictable branch).
  void serve_invalidate(const ChordNode& n, std::uint32_t scheme,
                        std::span<const double> point) {
    if (serve_ != nullptr) serve_->invalidate_point(n.host(), scheme, point);
  }
  /// Conservative per-(node, scheme) cache wipe for bulk mutations
  /// (drain, transfer, clear, replication repair, fault injection).
  void serve_wipe(const ChordNode& n, std::uint32_t scheme) {
    if (serve_ != nullptr) serve_->invalidate_scheme(n.host(), scheme);
  }
  void flush_reply(std::uint64_t qid, ChordNode& node);
  void on_fanout(std::uint64_t qid, int delta);
  void on_sent(std::uint64_t qid, std::uint64_t bytes);
  void maybe_complete(std::uint64_t qid);

  Ring& ring_;
  Options opts_;
  std::vector<std::unique_ptr<SchemeRouting>> schemes_;
  std::vector<std::string> scheme_names_;
  std::vector<LocalStoreOptions> scheme_store_opts_;  // parallel to schemes_
  LocalStoreBuildStats local_store_stats_;
  /// on_solve scratch: entry indices the local store surfaced for the
  /// current subquery. One buffer suffices — solves never nest.
  std::vector<std::uint32_t> solve_hits_;
  // Lookup-only store map: every cross-node walk goes through ring
  // order (Ring::nodes), not this map.
  // lmk-lint: allow(pointer-key-unordered)
  std::unordered_map<const ChordNode*, NodeStore> stores_;
  std::unordered_map<std::uint64_t, ActiveQuery> active_;
  // The inner map is looked up by the solving node only; reply flushes
  // are per-(qid, node) events, so no code path iterates it.
  std::unordered_map<std::uint64_t,
                     // lmk-lint: allow(pointer-key-unordered) see above
                     std::unordered_map<const ChordNode*, PendingReply>>
      pending_replies_;
  std::uint64_t next_qid_ = 1;
  QueryRouter router_;
  NaiveRouter naive_;
  TrafficCounter result_traffic_;
  /// Serving tier (nullptr = off, the default: fig pipelines must stay
  /// byte-identical). See src/serve/serve.hpp for the knobs.
  std::unique_ptr<ServeState> serve_;
  /// Gather scratch for cache fills (object ids + flat coords of the
  /// current solve's hits) and for LMK_SERVE_VERIFY re-solves.
  std::vector<std::uint64_t> cache_objs_;
  std::vector<double> cache_coords_;
  std::vector<std::uint32_t> verify_hits_;
  std::vector<std::uint64_t> verify_objs_;
  /// Recycles the scored-candidate buffers of in-flight replies: one
  /// acquire per (query, node) reply, released when the reply ships.
  RecyclePool<std::vector<std::pair<double, std::uint64_t>>> reply_pool_;
};

}  // namespace lmk
