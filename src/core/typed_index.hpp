// Typed facade over the index platform: one LandmarkIndex<Space> binds a
// metric space, a landmark mapper and a platform scheme together, giving
// applications the end-to-end flow of the paper:
//
//   insert:  object --map--> index point --LPH+rotation--> owner node
//   query:   (q, r) --map--> k-cube range query --route--> index nodes
//            candidates --true-distance refinement--> final results
//
// The refinement step runs at the querying node: range results from the
// index are a superset (the mapping is contractive, §3.1), so candidates
// are re-checked with the real metric; in top-k mode the querier merges
// the per-node candidate lists and keeps the k nearest, exactly the
// paper's recall protocol (§4.1).
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/index_platform.hpp"
#include "landmark/mapper.hpp"

namespace lmk {

/// One typed index scheme living on an IndexPlatform.
template <MetricSpace S>
class LandmarkIndex {
 public:
  using Point = typename S::Point;
  /// Resolve an object id to its point (the querier's object access for
  /// refinement; in a deployment this is the application's blob store).
  using ObjectFn = std::function<const Point&(std::uint64_t)>;

  /// Registers a scheme named `name` on `platform`; `rotate` enables the
  /// static space-mapping rotation. Per-node local stores use the
  /// process default backend (the LMK_LOCAL_STORE knob).
  LandmarkIndex(IndexPlatform& platform, const S& space,
                LandmarkMapper<S> mapper, const std::string& name,
                bool rotate = false)
      : platform_(&platform), space_(&space), mapper_(std::move(mapper)) {
    scheme_ = platform_->register_scheme(name, mapper_.boundary(), rotate);
  }

  /// As above with explicit per-scheme local-store configuration
  /// (backend kind and tuning), overriding the process default.
  LandmarkIndex(IndexPlatform& platform, const S& space,
                LandmarkMapper<S> mapper, const std::string& name,
                bool rotate, const LocalStoreOptions& store_opts)
      : platform_(&platform), space_(&space), mapper_(std::move(mapper)) {
    scheme_ = platform_->register_scheme(name, mapper_.boundary(), rotate,
                                         store_opts);
  }

  [[nodiscard]] std::uint32_t scheme_id() const { return scheme_; }
  [[nodiscard]] const LandmarkMapper<S>& mapper() const { return mapper_; }
  [[nodiscard]] IndexPlatform& platform() { return *platform_; }

  /// Bind an object store accessor. When bound, range queries hand index
  /// nodes a true-distance ranking function (distributed refinement, the
  /// paper's recall protocol); when unbound, nodes rank by the
  /// index-space lower bound only.
  void bind_objects(ObjectFn objects) { objects_ = std::move(objects); }

  /// Index one object (bulk load, oracle placement).
  void insert(std::uint64_t object, const Point& p) {
    platform_->insert(scheme_, object, mapper_.map(p));
  }

  /// Bulk-load a whole dataset: objects[i] becomes object id
  /// first_object + i. Landmark mapping and LPH hashing fan out over
  /// the deterministic thread pool; the store placement is identical to
  /// an insert() loop for any thread count.
  void bulk_load(std::span<const Point> objects,
                 std::uint64_t first_object = 0) {
    std::vector<IndexPoint> points = mapper_.map_all(objects);
    platform_->bulk_insert(scheme_, points, first_object);
  }

  /// Stream-load a corpus that is a *function* rather than a container:
  /// `make_point(i, out)` writes object i (ids first_object + i) into
  /// caller storage. The corpus is consumed in batches of `batch`
  /// objects; each batch is landmark-mapped in parallel into flat
  /// scratch from `scratch` (reset between batches, so the arena
  /// high-water mark is one batch regardless of corpus size) and
  /// bulk-inserted. Placement is identical to insert() in a loop, for
  /// any thread count and any batch size.
  template <typename MakePoint>
  void stream_load(std::uint64_t count, MakePoint&& make_point, Arena& scratch,
                   std::size_t batch = 8192, std::uint64_t first_object = 0) {
    LMK_CHECK(batch > 0);
    const std::size_t dims = mapper_.dims();
    std::vector<Point> staged(std::min<std::uint64_t>(batch, count));
    for (std::uint64_t at = 0; at < count; at += batch) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<std::uint64_t>(batch, count - at));
      scratch.reset();
      // Epoch-checked handle: if a future edit hoists this span out of
      // the batch loop (across the reset() above), every access traps
      // under LMK_ARENA_GUARD instead of silently reading recycled
      // bytes.
      ArenaSpan<double> coords = scratch.guarded_span<double>(n * dims);
      // Materialize the batch's domain points (object regeneration may
      // be stateful per point but is index-addressed, so parallel
      // production is deterministic), then map them into the flat
      // coordinate block.
      parallel_for(n, [&](std::size_t i) {
        make_point(at + i, staged[i]);
        mapper_.map_into(staged[i], coords.subspan(i * dims, dims));
      });
      platform_->bulk_insert_flat(scheme_, coords.raw(), dims,
                                  first_object + at);
    }
  }

  /// Index one object through the network from `origin` (costed).
  void insert_via_network(ChordNode& origin, std::uint64_t object,
                          const Point& p,
                          std::function<void(int hops)> done = {}) {
    platform_->insert_via_network(origin, scheme_, object, mapper_.map(p),
                                  std::move(done));
  }

  /// Near-neighbour query: all objects within range r of q (superset
  /// retrieval; run `refine_range` on the outcome for the exact answer).
  void range_query(ChordNode& origin, const Point& q, double r,
                   ReplyMode mode, IndexPlatform::QueryCallback done) {
    IndexPlatform::DistanceFn rank;
    if (objects_) {
      // Shared per-query memo: several index nodes may rank the same
      // candidate, and comparison sorts evaluate repeatedly.
      auto cache =
          std::make_shared<std::unordered_map<std::uint64_t, double>>();
      rank = [this, q, cache](std::uint64_t id) {
        auto it = cache->find(id);
        if (it != cache->end()) return it->second;
        double d = space_->distance(q, objects_(id));
        cache->emplace(id, d);
        return d;
      };
    }
    platform_->range_query(origin, scheme_, mapper_.map_unclamped(q), r,
                           mode, std::move(done), std::move(rank));
  }

  /// Remove an object (oracle path; the point determines its key).
  bool remove(std::uint64_t object, const Point& p) {
    return platform_->remove(scheme_, object, mapper_.map(p));
  }

  /// Everything a finished k-NN search reports: the exact k nearest ids
  /// plus the aggregated cost over all expansion rounds.
  struct KnnOutcome {
    std::vector<std::uint64_t> neighbors;
    int rounds = 0;
    bool exact = false;  ///< false if r_max was hit before k were proven
    IndexPlatform::QueryOutcome totals;  ///< summed over rounds
  };
  using KnnCallback = std::function<void(const KnnOutcome&)>;

  /// k-nearest-neighbour search by radius expansion: issue range
  /// queries of growing radius until at least k candidates lie within
  /// the current radius by *true* distance — at that point the metric
  /// ball of radius r is fully inside the searched cube, so the k
  /// nearest are provably among the candidates. Requires a bound object
  /// store. `r0` seeds the radius; each round multiplies it by
  /// `growth`; `r_max` caps the search (result flagged inexact if hit).
  void knn_query(ChordNode& origin, const Point& q, std::size_t k,
                 double r0, double growth, double r_max, KnnCallback done) {
    LMK_CHECK(objects_ != nullptr);
    LMK_CHECK(r0 > 0 && growth > 1.0 && r_max >= r0);
    LMK_CHECK(done != nullptr);
    auto state = std::make_shared<KnnOutcome>();
    knn_round(origin, q, k, r0, growth, r_max, std::move(done), state);
  }

  /// Re-index against a new landmark set (the paper's dynamic-dataset
  /// future work: "new landmark sets can be periodically generated ...
  /// indices will be recalculated and migrated"). Drops every entry of
  /// this scheme, installs the new mapper, and re-inserts `objects`
  /// (id i = objects[i]). Returns the number of entries rebuilt.
  std::size_t rebuild(LandmarkMapper<S> new_mapper,
                      const std::vector<Point>& objects) {
    LMK_CHECK(new_mapper.dims() == mapper_.dims());
    platform_->clear_scheme(scheme_);
    platform_->update_scheme_boundary(scheme_, new_mapper.boundary());
    mapper_ = std::move(new_mapper);
    bulk_load(objects);
    return objects.size();
  }

  /// Exact refinement of a candidate set for a range query (q, r).
  [[nodiscard]] std::vector<std::uint64_t> refine_range(
      const Point& q, double r, std::span<const std::uint64_t> candidates,
      const ObjectFn& object) const {
    std::vector<std::uint64_t> out;
    for (std::uint64_t id : candidates) {
      if (space_->distance(q, object(id)) <= r) out.push_back(id);
    }
    return out;
  }

  /// Merge-and-refine for top-k retrieval: true metric distances over
  /// the candidate union, keep the k nearest (ties by id for
  /// determinism).
  [[nodiscard]] std::vector<std::uint64_t> refine_knn(
      const Point& q, std::span<const std::uint64_t> candidates,
      const ObjectFn& object, std::size_t k) const {
    std::vector<std::pair<double, std::uint64_t>> scored;
    scored.reserve(candidates.size());
    for (std::uint64_t id : candidates) {
      scored.emplace_back(space_->distance(q, object(id)), id);
    }
    std::sort(scored.begin(), scored.end());
    // Candidate lists merged from several retrieval rounds may repeat
    // ids; duplicates must not occupy top-k slots.
    scored.erase(std::unique(scored.begin(), scored.end(),
                             [](const auto& a, const auto& b) {
                               return a.second == b.second;
                             }),
                 scored.end());
    if (scored.size() > k) scored.resize(k);
    std::vector<std::uint64_t> out;
    out.reserve(scored.size());
    for (const auto& [d, id] : scored) out.push_back(id);
    return out;
  }

 private:
  void knn_round(ChordNode& origin, Point q, std::size_t k, double r,
                 double growth, double r_max, KnnCallback done,
                 std::shared_ptr<KnnOutcome> state) {
    range_query(
        origin, q, r, ReplyMode::kTopK,
        [this, &origin, q, k, r, growth, r_max, done = std::move(done),
         state](const IndexPlatform::QueryOutcome& outcome) mutable {
          state->rounds += 1;
          accumulate(state->totals, outcome);
          // Candidates provably complete when >= k lie within r by true
          // distance (the r-ball is inside the searched cube).
          std::vector<std::pair<double, std::uint64_t>> scored;
          for (std::uint64_t id : outcome.results) {
            scored.emplace_back(space_->distance(q, objects_(id)), id);
          }
          std::sort(scored.begin(), scored.end());
          std::size_t within = 0;
          while (within < scored.size() && scored[within].first <= r) {
            ++within;
          }
          if (within >= k || r >= r_max) {
            state->exact = within >= k;
            std::size_t keep = std::min(k, scored.size());
            for (std::size_t i = 0; i < keep; ++i) {
              state->neighbors.push_back(scored[i].second);
            }
            done(*state);
            return;
          }
          knn_round(origin, std::move(q), k,
                    std::min(r * growth, r_max), growth, r_max,
                    std::move(done), state);
        });
  }

  static void accumulate(IndexPlatform::QueryOutcome& total,
                         const IndexPlatform::QueryOutcome& round) {
    total.hops = std::max(total.hops, round.hops);
    total.response_time = total.response_time == 0
                              ? round.response_time
                              : std::min(total.response_time,
                                         round.response_time);
    total.max_latency += round.max_latency;  // rounds run sequentially
    total.query_messages += round.query_messages;
    total.query_bytes += round.query_bytes;
    total.result_messages += round.result_messages;
    total.result_bytes += round.result_bytes;
    total.index_nodes = std::max(total.index_nodes, round.index_nodes);
    total.subqueries += round.subqueries;
    total.lost_subqueries += round.lost_subqueries;
    total.candidates += round.candidates;
    total.scanned += round.scanned;
    total.max_node_candidates =
        std::max(total.max_node_candidates, round.max_node_candidates);
    total.complete = round.complete;
  }

  IndexPlatform* platform_;
  const S* space_;
  LandmarkMapper<S> mapper_;
  ObjectFn objects_;
  std::uint32_t scheme_ = 0;
};

}  // namespace lmk
