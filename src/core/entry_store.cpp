#include "core/entry_store.hpp"

#include <algorithm>

namespace lmk {

void EntryStore::adopt_dims(std::size_t dims) {
  if (empty()) {
    dims_ = dims;
  } else {
    LMK_CHECK(dims == dims_);
  }
}

void EntryStore::push_back(Id key, std::uint64_t object,
                           std::span<const double> pt) {
  adopt_dims(pt.size());
  keys_.push_back(key);
  objects_.push_back(object);
  coords_.insert(coords_.end(), pt.begin(), pt.end());
  ++mutations_;
}

void EntryStore::push_back(const EntryView& v) {
  scratch_.assign(v.point.begin(), v.point.end());
  push_back(v.key, v.object, scratch_);
}

void EntryStore::pop_back() {
  LMK_CHECK(!empty());
  truncate(size() - 1);
}

void EntryStore::erase_at(std::size_t i) {
  LMK_CHECK(i < size());
  keys_.erase(keys_.begin() + static_cast<long>(i));
  objects_.erase(objects_.begin() + static_cast<long>(i));
  coords_.erase(coords_.begin() + static_cast<long>(i * dims_),
                coords_.begin() + static_cast<long>((i + 1) * dims_));
  ++mutations_;
}

bool EntryStore::erase_first(std::uint64_t object, Id key) {
  for (std::size_t i = 0; i < size(); ++i) {
    if (objects_[i] == object && keys_[i] == key) {
      erase_at(i);
      return true;
    }
  }
  return false;
}

void EntryStore::clear() {
  keys_.clear();
  objects_.clear();
  coords_.clear();
  ++mutations_;
}

void EntryStore::append(const EntryStore& src) {
  if (src.empty()) return;
  adopt_dims(src.dims_);
  keys_.insert(keys_.end(), src.keys_.begin(), src.keys_.end());
  objects_.insert(objects_.end(), src.objects_.begin(), src.objects_.end());
  coords_.insert(coords_.end(), src.coords_.begin(), src.coords_.end());
  ++mutations_;
}

void EntryStore::append_moved(EntryStore& src) {
  if (src.empty()) return;
  if (empty()) {
    dims_ = src.dims_;
    keys_.swap(src.keys_);
    objects_.swap(src.objects_);
    coords_.swap(src.coords_);
    ++mutations_;
    src.clear();
    return;
  }
  append(src);
  src.clear();
}

void EntryStore::truncate(std::size_t n) {
  keys_.resize(n);
  objects_.resize(n);
  coords_.resize(n * dims_);
  ++mutations_;
}

std::size_t EntryStore::memory_bytes() const {
  return keys_.capacity() * sizeof(Id) +
         objects_.capacity() * sizeof(std::uint64_t) +
         (coords_.capacity() + scratch_.capacity()) * sizeof(double);
}

}  // namespace lmk
