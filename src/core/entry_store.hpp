// Struct-of-arrays storage for index entries.
//
// The platform's per-(node, scheme) stores used to hold
// std::vector<IndexEntry>, where every entry carried its own
// heap-allocated IndexPoint. At flagship scale (1M+ entries) that is
// one allocation and one pointer chase per entry; the solver's range
// scans walk point coordinates, so the layout matters. EntryStore keeps
// the same logical content in three parallel arrays — keys, object
// ids, and a single flat coordinate buffer — so a store of n k-dim
// entries is three allocations total and point data is contiguous.
//
// The store preserves entry order exactly like the vector it replaces:
// push_back appends, erase_at shifts, extract_if/append keep relative
// order. Entry order never leaks into query results (replies are
// sorted and deduped downstream), but keeping the semantics simple
// keeps the equivalence argument simple too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/ring_math.hpp"
#include "landmark/mapper.hpp"

namespace lmk {

/// One stored index entry: the (rotated) placement key, the landmark
/// index point, and the application object id it stands for. The
/// materialized (owning) form; EntryStore keeps entries unpacked and
/// hands out EntryView for iteration.
struct IndexEntry {
  Id key = 0;
  std::uint64_t object = 0;
  IndexPoint point;
};

/// Non-owning view of one entry inside an EntryStore. The point span
/// is invalidated by any mutation of the underlying store.
struct EntryView {
  Id key = 0;
  std::uint64_t object = 0;
  std::span<const double> point;
};

class CheckedEntryView;

/// SoA entry container. Dimensionality is fixed by the first push and
/// checked on every subsequent one; an empty store accepts any.
class EntryStore {
 public:
  EntryStore() = default;

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t dims() const { return dims_; }

  // lmk-hot-path: solver range scans call these per candidate entry.
  [[nodiscard]] Id key(std::size_t i) const { return keys_[i]; }
  [[nodiscard]] std::uint64_t object(std::size_t i) const {
    return objects_[i];
  }
  [[nodiscard]] std::span<const double> point(std::size_t i) const {
    return {coords_.data() + i * dims_, dims_};
  }

  [[nodiscard]] EntryView operator[](std::size_t i) const {
    return {keys_[i], objects_[i], point(i)};
  }
  [[nodiscard]] EntryView front() const { return (*this)[0]; }
  [[nodiscard]] EntryView back() const { return (*this)[size() - 1]; }
  // lmk-hot-path-end

  /// Count of mutations ever applied: bumped by every operation that
  /// can invalidate outstanding EntryView point spans (the SoA buffers
  /// reallocate or shift). CheckedEntryView stamps it at grant time.
  [[nodiscard]] std::uint64_t mutations() const { return mutations_; }

  /// Mutation-checked view: accessors verify the store has not been
  /// mutated since the view was granted (LMK_ARENA_GUARD builds only;
  /// a bare index wrapper otherwise). Use where a view outlives more
  /// code than a single expression.
  [[nodiscard]] CheckedEntryView checked_view(std::size_t i) const;

  /// Materialize one entry into the owning form (repair/test paths).
  [[nodiscard]] IndexEntry entry(std::size_t i) const {
    return {keys_[i], objects_[i],
            IndexPoint(point(i).begin(), point(i).end())};
  }

  /// Append an entry. `pt` must not alias this store's own coordinate
  /// buffer (use the EntryView overload for self-copies).
  void push_back(Id key, std::uint64_t object, std::span<const double> pt);
  void push_back(const IndexEntry& e) { push_back(e.key, e.object, e.point); }
  /// Append a copy of a view — safe even when the view points into
  /// this store (the coordinates are staged through scratch space).
  void push_back(const EntryView& v);

  void pop_back();
  /// Remove entry i, shifting later entries down (order-preserving,
  /// like vector::erase).
  void erase_at(std::size_t i);
  /// Remove the first entry matching (object, key); false if absent.
  bool erase_first(std::uint64_t object, Id key);
  void set_key(std::size_t i, Id k) { keys_[i] = k; }
  void clear();

  /// Append copies of all of src's entries, in order.
  void append(const EntryStore& src);
  /// Move src's entries onto the end of this store; src is left empty
  /// (capacity retained). When this store is empty the buffers are
  /// swapped outright.
  void append_moved(EntryStore& src);

  /// Move every entry whose key satisfies `pred` to the end of `dst`,
  /// compacting the survivors in place. Both sides keep relative
  /// order.
  template <typename Pred>
  void extract_if(Pred pred, EntryStore& dst) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < size(); ++i) {
      if (pred(keys_[i])) {
        dst.push_back(keys_[i], objects_[i], point(i));
        continue;
      }
      if (w != i) {
        keys_[w] = keys_[i];
        objects_[w] = objects_[i];
        for (std::size_t d = 0; d < dims_; ++d) {
          coords_[w * dims_ + d] = coords_[i * dims_ + d];
        }
      }
      ++w;
    }
    truncate(w);
  }

  /// Resident heap bytes of the three arrays (capacity, not size).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Forward iteration over views (range-for support).
  class const_iterator {
   public:
    const_iterator(const EntryStore* s, std::size_t i) : s_(s), i_(i) {}
    EntryView operator*() const { return (*s_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    const EntryStore* s_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

 private:
  void adopt_dims(std::size_t dims);
  void truncate(std::size_t n);

  std::vector<Id> keys_;
  std::vector<std::uint64_t> objects_;
  std::vector<double> coords_;  ///< size() * dims_ doubles, row-major
  std::vector<double> scratch_; ///< staging for self-aliasing pushes
  std::size_t dims_ = 0;
  std::uint64_t mutations_ = 0;  ///< see mutations()
};

/// Mutation-checked counterpart of EntryView. Holds (store, index) and
/// re-reads through the store on every access; under LMK_ARENA_GUARD
/// each access verifies the store's mutation counter still matches the
/// value stamped when the view was granted, trapping deterministically
/// on the stale-span bugs that plain EntryView turns into silent reads
/// of shifted or reallocated memory.
class CheckedEntryView {
 public:
  CheckedEntryView() = default;

  [[nodiscard]] Id key() const {
    check_fresh();
    return store_->key(index_);
  }
  [[nodiscard]] std::uint64_t object() const {
    check_fresh();
    return store_->object(index_);
  }
  [[nodiscard]] std::span<const double> point() const {
    check_fresh();
    return store_->point(index_);
  }

 private:
  friend class EntryStore;
#ifdef LMK_ARENA_GUARD
  CheckedEntryView(const EntryStore* store, std::size_t index,
                   std::uint64_t mutations)
      : store_(store), index_(index), mutations_(mutations) {}
  void check_fresh() const {
    LMK_CHECK_MSG(store_->mutations() == mutations_,
                  "stale entry view: store mutated %llu time(s) since the "
                  "view of entry %zu was granted",
                  static_cast<unsigned long long>(store_->mutations() -
                                                 mutations_),
                  index_);
  }
  const EntryStore* store_ = nullptr;
  std::size_t index_ = 0;
  std::uint64_t mutations_ = 0;
#else
  CheckedEntryView(const EntryStore* store, std::size_t index)
      : store_(store), index_(index) {}
  void check_fresh() const {}
  const EntryStore* store_ = nullptr;
  std::size_t index_ = 0;
#endif
};

inline CheckedEntryView EntryStore::checked_view(std::size_t i) const {
  LMK_CHECK(i < size());
#ifdef LMK_ARENA_GUARD
  return {this, i, mutations_};
#else
  return {this, i};
#endif
}

}  // namespace lmk
