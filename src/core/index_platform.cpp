#include "core/index_platform.hpp"

#include <algorithm>
#ifdef LMK_SCHED_MUTATION
#include <map>
#endif

#include "balance/rotation.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"

namespace lmk {

IndexPlatform::IndexPlatform(Ring& ring, Options opts)
    : ring_(ring),
      opts_(opts),
      router_(
          ring,
          [this](const RangeQuery& q, ChordNode& n) { on_solve(q, n); },
          [this](std::uint64_t qid, int d) { on_fanout(qid, d); },
          [this](std::uint64_t qid, std::uint64_t b) { on_sent(qid, b); }),
      naive_(
          ring,
          [this](const RangeQuery& q, ChordNode& n) { on_solve(q, n); },
          [this](std::uint64_t qid, int d) { on_fanout(qid, d); },
          opts.naive_split_depth,
          [this](std::uint64_t qid, std::uint64_t b) { on_sent(qid, b); }) {
  // Serving tier (caches / batching / admission): entirely env-driven,
  // all-off by default so every existing pipeline stays byte-identical.
  ServeOptions serve_opts = ServeOptions::from_env();
  if (serve_opts.any_enabled()) set_serve_options(serve_opts);
}

void IndexPlatform::set_serve_options(const ServeOptions& opts) {
  if (opts.any_enabled()) {
    serve_ = std::make_unique<ServeState>(opts);
  } else {
    serve_.reset();
  }
  router_.set_coalesce_window(opts.coalesce_window);
}


std::uint32_t IndexPlatform::register_scheme(const std::string& name,
                                             Boundary boundary, bool rotate) {
  return register_scheme(name, std::move(boundary), rotate,
                         LocalStoreOptions::from_env());
}

std::uint32_t IndexPlatform::register_scheme(
    const std::string& name, Boundary boundary, bool rotate,
    const LocalStoreOptions& store_opts) {
  LMK_CHECK(!boundary.empty());
  auto scheme = std::make_unique<SchemeRouting>();
  scheme->scheme_id = static_cast<std::uint32_t>(schemes_.size());
  scheme->boundary = std::move(boundary);
  scheme->rotation = rotate ? rotation_offset(name) : 0;
  scheme->query_message_bytes = query_message_size(scheme->boundary.size());
  schemes_.push_back(std::move(scheme));
  scheme_names_.push_back(name);
  scheme_store_opts_.push_back(store_opts);
  // Existing stores grow a slot for the new scheme lazily via entries().
  return schemes_.back()->scheme_id;
}

const LocalStoreOptions& IndexPlatform::local_store_options(
    std::uint32_t id) const {
  LMK_CHECK(id < scheme_store_opts_.size());
  return scheme_store_opts_[id];
}

void IndexPlatform::update_scheme_boundary(std::uint32_t id,
                                           Boundary boundary) {
  LMK_CHECK(id < schemes_.size());
  LMK_CHECK(boundary.size() == schemes_[id]->boundary.size());
  LMK_CHECK(scheme_entries(id) == 0);
  schemes_[id]->boundary = std::move(boundary);
}

const SchemeRouting& IndexPlatform::scheme(std::uint32_t id) const {
  LMK_CHECK(id < schemes_.size());
  return *schemes_[id];
}

const std::string& IndexPlatform::scheme_name(std::uint32_t id) const {
  LMK_CHECK(id < scheme_names_.size());
  return scheme_names_[id];
}

IndexPlatform::NodeStore& IndexPlatform::store_of(const ChordNode& n) {
  NodeStore& s = stores_[&n];
  if (s.per_scheme.size() < schemes_.size()) {
    s.per_scheme.resize(schemes_.size());
  }
  return s;
}

IndexPlatform::SchemeStore& IndexPlatform::scheme_store(const ChordNode& n,
                                                        std::uint32_t scheme) {
  LMK_CHECK(scheme < schemes_.size());
  return store_of(n).per_scheme[scheme];
}

EntryStore& IndexPlatform::entries(const ChordNode& n, std::uint32_t scheme) {
  SchemeStore& ss = scheme_store(n, scheme);
  ++ss.version;  // the caller may mutate; order indices rebuild lazily
  return ss.entries;
}

void IndexPlatform::ensure_local_store(SchemeStore& ss,
                                       std::uint32_t scheme) {
  if (ss.local == nullptr) {
    ss.local = make_local_store(local_store_options(scheme));
    ss.indexed_version = ~std::uint64_t{0};
  }
  if (ss.indexed_version == ss.version) return;
  ss.local->build(ss.entries);
  ss.indexed_version = ss.version;
  ++local_store_stats_.rebuilds;
  local_store_stats_.rebuilt_entries += ss.entries.size();
}

std::vector<ChordNode*> IndexPlatform::replica_nodes(Id key) const {
  std::vector<ChordNode*> out;
  ChordNode* owner = ring_.oracle_successor(key);
  out.push_back(owner);
  // Walk the successor chain for the remaining copies (distinct nodes).
  ChordNode* cur = owner;
  while (out.size() < opts_.replication) {
    cur = ring_.oracle_successor(cur->id() + 1);
    if (cur == owner) break;  // ring smaller than the replication degree
    out.push_back(cur);
  }
  return out;
}

void IndexPlatform::insert(std::uint32_t scheme_id, std::uint64_t object,
                           const IndexPoint& point) {
  const SchemeRouting& sch = scheme(scheme_id);
  Id key = lph_hash(point, sch.boundary) + sch.rotation;
  if (opts_.replication <= 1) {
    // Unreplicated fast path: no per-insert replica-list allocation.
    ChordNode* owner = ring_.oracle_successor(key);
    entries(*owner, scheme_id).push_back(key, object, point);
    serve_invalidate(*owner, scheme_id, point);
    return;
  }
  for (ChordNode* node : replica_nodes(key)) {
    entries(*node, scheme_id).push_back(key, object, point);
    serve_invalidate(*node, scheme_id, point);
  }
}

void IndexPlatform::bulk_insert(std::uint32_t scheme_id,
                                std::span<const IndexPoint> points,
                                std::uint64_t first_object) {
  const SchemeRouting& sch = scheme(scheme_id);
  // Phase 1 (parallel, read-only): hash every point to its placement
  // key. Phase 2 (sequential, index order): mutate the node stores —
  // identical entry order to a plain insert() loop.
  std::vector<Id> keys(points.size());
  parallel_for(points.size(), [&](std::size_t i) {
    keys[i] = lph_hash(points[i], sch.boundary) + sch.rotation;
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (opts_.replication <= 1) {
      ChordNode* owner = ring_.oracle_successor(keys[i]);
      entries(*owner, scheme_id).push_back(keys[i], first_object + i,
                                           points[i]);
      serve_invalidate(*owner, scheme_id, points[i]);
      continue;
    }
    for (ChordNode* node : replica_nodes(keys[i])) {
      entries(*node, scheme_id)
          .push_back(keys[i], first_object + i, points[i]);
      serve_invalidate(*node, scheme_id, points[i]);
    }
  }
}

void IndexPlatform::bulk_insert_flat(std::uint32_t scheme_id,
                                     std::span<const double> coords,
                                     std::size_t dims,
                                     std::uint64_t first_object) {
  const SchemeRouting& sch = scheme(scheme_id);
  LMK_CHECK(dims > 0 && coords.size() % dims == 0);
  LMK_CHECK(dims == sch.boundary.size());
  const std::size_t n = coords.size() / dims;
  // Same two-phase structure as bulk_insert, but the points live in one
  // flat row-major buffer (the streaming-load path hands in arena
  // scratch) — no per-point IndexPoint materialization anywhere.
  std::vector<Id> keys(n);
  parallel_for(n, [&](std::size_t i) {
    keys[i] =
        lph_hash(coords.subspan(i * dims, dims), sch.boundary) + sch.rotation;
  });
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const double> row = coords.subspan(i * dims, dims);
    if (opts_.replication <= 1) {
      ChordNode* owner = ring_.oracle_successor(keys[i]);
      entries(*owner, scheme_id).push_back(keys[i], first_object + i, row);
      serve_invalidate(*owner, scheme_id, row);
      continue;
    }
    for (ChordNode* node : replica_nodes(keys[i])) {
      entries(*node, scheme_id).push_back(keys[i], first_object + i, row);
      serve_invalidate(*node, scheme_id, row);
    }
  }
}

void IndexPlatform::insert_via_network(ChordNode& origin,
                                       std::uint32_t scheme_id,
                                       std::uint64_t object, IndexPoint point,
                                       std::function<void(int hops)> done) {
  const SchemeRouting& sch = scheme(scheme_id);
  Id key = lph_hash(point, sch.boundary) + sch.rotation;
  ring_.find_successor(
      origin, key,
      [this, scheme_id, object, key, point = std::move(point),
       done = std::move(done)](NodeRef owner, int hops) {
        entries(*owner.node, scheme_id).push_back(key, object, point);
        serve_invalidate(*owner.node, scheme_id, point);
        // Replica propagation: the owner pushes copies down its
        // successor chain (modeled as oracle placement; the one-hop
        // store messages are not part of the paper's cost model).
        if (opts_.replication > 1) {
          for (ChordNode* replica : replica_nodes(key)) {
            if (replica == owner.node) continue;
            entries(*replica, scheme_id).push_back(key, object, point);
            serve_invalidate(*replica, scheme_id, point);
          }
        }
        if (done) done(hops);
      });
}

bool IndexPlatform::remove(std::uint32_t scheme_id, std::uint64_t object,
                           const IndexPoint& point) {
  const SchemeRouting& sch = scheme(scheme_id);
  Id key = lph_hash(point, sch.boundary) + sch.rotation;
  bool removed = false;
  for (ChordNode* node : replica_nodes(key)) {
    if (entries(*node, scheme_id).erase_first(object, key)) {
      removed = true;
      serve_invalidate(*node, scheme_id, point);
    }
  }
  return removed;
}

void IndexPlatform::remove_via_network(
    ChordNode& origin, std::uint32_t scheme_id, std::uint64_t object,
    IndexPoint point, std::function<void(bool removed, int hops)> done) {
  const SchemeRouting& sch = scheme(scheme_id);
  Id key = lph_hash(point, sch.boundary) + sch.rotation;
  ring_.find_successor(
      origin, key,
      [this, scheme_id, object, key, point = std::move(point),
       done = std::move(done)](NodeRef owner, int hops) {
        (void)owner;  // replica_nodes(key) starts at the owner
        bool removed = false;
        for (ChordNode* replica : replica_nodes(key)) {
          if (entries(*replica, scheme_id).erase_first(object, key)) {
            removed = true;
            serve_invalidate(*replica, scheme_id, point);
          }
        }
        if (done) done(removed, hops);
      });
}

void IndexPlatform::clear_scheme(std::uint32_t scheme_id) {
  LMK_CHECK(scheme_id < schemes_.size());
  // Every store is cleared unconditionally; order cannot matter.
  // lmk-lint: iteration-order-independent
  for (auto& [node, store] : stores_) {
    if (scheme_id < store.per_scheme.size()) {
      SchemeStore& ss = store.per_scheme[scheme_id];
      ss.entries.clear();
      ++ss.version;
      serve_wipe(*node, scheme_id);
    }
  }
}

std::size_t IndexPlatform::scheme_entries(std::uint32_t scheme_id) const {
  std::size_t total = 0;
  // Integer sum over disjoint stores: commutative, order-free.
  // lmk-lint: iteration-order-independent
  for (const auto& [node, store] : stores_) {
    if (!node->alive()) continue;  // crashed copies are lost
    if (scheme_id < store.per_scheme.size()) {
      total += store.per_scheme[scheme_id].entries.size();
    }
  }
  return total;
}

std::size_t IndexPlatform::total_entries() const {
  std::size_t total = 0;
  // Integer sum over disjoint stores: commutative, order-free.
  // lmk-lint: iteration-order-independent
  for (const auto& [node, store] : stores_) {
    if (!node->alive()) continue;  // crashed copies are lost
    for (const auto& ss : store.per_scheme) total += ss.entries.size();
  }
  return total;
}

void IndexPlatform::range_query(ChordNode& origin, std::uint32_t scheme_id,
                                const IndexPoint& center, double radius,
                                ReplyMode mode, QueryCallback done,
                                DistanceFn rank) {
  region_query(origin, scheme_id, query_region(center, radius), center, mode,
               std::move(done), std::move(rank));
}

void IndexPlatform::region_query(ChordNode& origin, std::uint32_t scheme_id,
                                 Region region, IndexPoint focus,
                                 ReplyMode mode, QueryCallback done,
                                 DistanceFn rank) {
  LMK_CHECK(done != nullptr);
  const SchemeRouting& sch = scheme(scheme_id);
  std::uint64_t qid = next_qid_++;
  RangeQuery q;
  if (!make_query(sch, qid, origin.host(), std::move(region),
                  std::move(focus), &q)) {
    QueryOutcome empty;
    empty.complete = true;
    done(empty);
    return;
  }
  ActiveQuery aq;
  aq.scheme = scheme_id;
  aq.origin = origin.host();
  aq.origin_node = &origin;
  aq.origin_inc = origin.incarnation();
  aq.mode = mode;
  aq.t0 = ring_.sim().now();
  aq.outstanding = 1;
  aq.done = std::move(done);
  aq.rank = std::move(rank);
  active_.emplace(qid, std::move(aq));
  if (opts_.routing == RoutingMode::kTree) {
    router_.start(origin, std::move(q));
  } else {
    naive_.start(origin, std::move(q));
  }
}

void IndexPlatform::on_fanout(std::uint64_t qid, int delta) {
  auto it = active_.find(qid);
  LMK_CHECK(it != active_.end());
  it->second.outstanding += delta;
  if (delta < 0) it->second.outcome.lost_subqueries += -delta;
  LMK_CHECK(it->second.outstanding >= 0);
  maybe_complete(qid);
}

void IndexPlatform::on_sent(std::uint64_t qid, std::uint64_t bytes) {
  auto it = active_.find(qid);
  LMK_CHECK(it != active_.end());
  ++it->second.outcome.query_messages;
  it->second.outcome.query_bytes += bytes;
}

// lmk-hot-path: on_solve + solve_subquery + flush_reply run once per
// subquery per index node — the per-event cost of the whole query
// storm. The alloc-guard bench gate holds this region to zero
// steady-state allocations.
void IndexPlatform::on_solve(const RangeQuery& q, ChordNode& node) {
  if (serve_ == nullptr) {
    solve_subquery(q, node);
    return;
  }
  const ServeOptions& so = serve_->options();
  if (!so.admission_on() && so.service_time <= 0) {
    solve_subquery(q, node);
    return;
  }
  ServeState::NodeServe& ns = serve_->node(node.host());
  if (so.admission_on() && ns.queue >= so.queue_limit) {
    // Overloaded. Tree routing can re-inject a bounced subquery at the
    // origin (it re-routes to wherever the region now lives); the naive
    // client-side splitter cannot, so it always force-admits.
    if (opts_.routing == RoutingMode::kTree) {
      if (q.retries < so.max_retries) {
        shed_subquery(q, node);
        return;
      }
      // Retry budget exhausted and the node is still saturated: drop
      // the subquery — load shedding proper. The fanout tracker
      // completes the query with the loss recorded in lost_subqueries,
      // trading recall for a bounded tail under sustained overload (a
      // work-conserving forced admit could never lower the tail: the
      // queue wait it pays is exactly what shedding exists to avoid).
      serve_->stats().dropped += 1;
      on_fanout(q.qid, -1);
      return;
    }
    serve_->stats().forced_admits += 1;
  }
  if (so.service_time <= 0) {
    // Admission threshold without a service model: the queue gauge
    // never builds (solves are instantaneous), so just solve.
    solve_subquery(q, node);
    return;
  }
  // Modeled solve occupancy: the subquery waits for the node's
  // single-server queue, then solves when its service slot ends.
  ns.queue += 1;
  ns.peak_queue = std::max(ns.peak_queue, ns.queue);
  serve_->stats().enqueued += 1;
  const SimTime now = ring_.sim().now();
  const SimTime start = std::max(now, ns.busy_until);
  ns.busy_until = start + so.service_time;
  ChordNode* node_ptr = &node;
  const std::uint32_t inc = node.incarnation();
  ring_.sim().schedule_at(
      ns.busy_until,
      // lmk-lint: allow(hot-alloc) per-queued-subquery closure copy
      [this, copy = q, node_ptr, inc]() mutable {
        ServeState::NodeServe& slot = serve_->node(node_ptr->host());
        LMK_CHECK(slot.queue > 0);
        slot.queue -= 1;
        if (node_ptr->alive() && node_ptr->incarnation() == inc) {
          solve_subquery(copy, *node_ptr);
        } else {
          // The node died holding the queue: the subquery is lost, the
          // completion tracker still terminates the query.
          on_fanout(copy.qid, -1);
        }
      },
      node.host());
}

void IndexPlatform::shed_subquery(const RangeQuery& q, ChordNode& node) {
  auto it = active_.find(q.qid);
  LMK_CHECK(it != active_.end());
  ActiveQuery& aq = it->second;
  aq.outcome.shed += 1;
  ServeStats& stats = serve_->stats();
  stats.shed += 1;
  RangeQuery retry = q;
  retry.retries += 1;
  // Deterministic exponential backoff: base << (retries - 1), capped so
  // the shift cannot overflow.
  const SimTime delay = serve_->options().backoff
                        << std::min(retry.retries - 1, 16);
  ChordNode* origin = aq.origin_node;
  const std::uint32_t origin_inc = aq.origin_inc;
  stats.retries += 1;
  (void)node;
  // The retry-after timer runs at the origin (the overloaded node just
  // answers "busy"); tagged with the origin host accordingly.
  ring_.sim().schedule_after(
      delay,
      // lmk-lint: allow(hot-alloc) per-shed retry closure
      [this, retry = std::move(retry), origin, origin_inc]() mutable {
        if (origin != nullptr && origin->alive() &&
            origin->incarnation() == origin_inc) {
          // The subquery is still registered with the outstanding
          // tracker (no fanout +1): routing simply starts over.
          router_.start(*origin, std::move(retry));
        } else {
          serve_->stats().retry_drops += 1;
          on_fanout(retry.qid, -1);
        }
      },
      aq.origin);
}

void IndexPlatform::solve_subquery(const RangeQuery& q, ChordNode& node) {
  auto it = active_.find(q.qid);
  LMK_CHECK(it != active_.end());
  ActiveQuery& aq = it->second;

  // Collect the local matches: stored entries whose index point lies in
  // the (closed) query region, scored for the per-node top-k cut —
  // by true metric distance when the query carries a ranking function
  // (distributed refinement), else by the contractive L-inf lower bound.
  //
  // The probe itself is delegated to the scheme's LocalStore backend
  // (sorted order indices, HNSW graph, or pivot table — see src/store/).
  // Every backend surfaces hits in a deterministic order that is a pure
  // function of store contents, and the reply assembly downstream sorts
  // and dedups by (object, score), so results stay byte-identical per
  // backend at any thread count.
  PendingReply& reply = pending_replies_[q.qid][&node];
  if (!reply.pooled) {
    // Fresh (query, node) reply: back its scored buffer with a pooled
    // vector so steady-state query traffic stops allocating.
    reply.scored = reply_pool_.acquire();
    reply.pooled = true;
  }
  std::uint64_t evaluated = 0;
  bool cache_hit = false;
  ResultCache* cache = nullptr;
  if (serve_ != nullptr && serve_->options().cache_on()) {
    cache = &serve_->cache(node.host(), aq.scheme);
    std::span<const std::uint64_t> cobjs;
    std::span<const double> ccoords;
    std::size_t cdims = 0;
    if (cache->probe(q.region, ring_.sim().now(), &cobjs, &ccoords, &cdims)) {
      // Hot-result hit: the cached hit-list is the region's exact match
      // set (coverage invalidation guarantees no mutation touched the
      // region since the fill). Scores are recomputed against THIS
      // query's rank/focus — different queries share a region without
      // sharing a focus. The store is never probed: scanned += 0.
      cache_hit = true;
      if (serve_->options().verify_hits) {
        // Oracle cross-check (LMK_SERVE_VERIFY): re-solve and compare
        // id sets. Sound for the exact backends (sorted, pivot); an
        // approximate HNSW re-solve can legitimately differ after
        // non-covering rebuilds.
        SchemeStore& ss = scheme_store(node, aq.scheme);
        ensure_local_store(ss, aq.scheme);
        verify_hits_.clear();
        ss.local->range(ss.entries, q.region, verify_hits_);
        verify_objs_.clear();
        verify_objs_.reserve(verify_hits_.size());
        for (const std::uint32_t ei : verify_hits_) {
          verify_objs_.push_back(ss.entries.object(ei));
        }
        std::sort(verify_objs_.begin(), verify_objs_.end());
        cache_objs_.assign(cobjs.begin(), cobjs.end());
        std::sort(cache_objs_.begin(), cache_objs_.end());
        LMK_CHECK_MSG(cache_objs_ == verify_objs_,
                      "stale result cache hit: cached ids diverge from a "
                      "fresh solve (coverage invalidation bug)");
        serve_->stats().verified_hits += 1;
      }
      for (std::size_t i = 0; i < cobjs.size(); ++i) {
        std::span<const double> pt = ccoords.subspan(i * cdims, cdims);
        ++evaluated;
        const std::uint64_t object = cobjs[i];
        double score =
            aq.rank ? aq.rank(object) : index_lower_bound(pt, q.focus);
        // lmk-lint: allow(hot-alloc) pooled-buffer capacity warmup
        reply.scored.emplace_back(score, object);
      }
      aq.outcome.cache_hits += 1;
    }
  }
  if (!cache_hit) {
    SchemeStore& ss = scheme_store(node, aq.scheme);
    ensure_local_store(ss, aq.scheme);
    solve_hits_.clear();
    aq.outcome.scanned += ss.local->range(ss.entries, q.region, solve_hits_);
    for (const std::uint32_t ei : solve_hits_) {
      std::span<const double> pt = ss.entries.point(ei);
      ++evaluated;
      std::uint64_t object = ss.entries.object(ei);
      double score =
          aq.rank ? aq.rank(object) : index_lower_bound(pt, q.focus);
      // Pooled buffer (reply_pool_): capacity survives release/acquire,
      // so steady-state query traffic grows nothing.
      // lmk-lint: allow(hot-alloc) pooled-buffer capacity warmup
      reply.scored.emplace_back(score, object);
    }
    if (cache != nullptr) {
      // Fill-on-miss: gather the hit-list into flat scratch (copies —
      // extract_if compacts the SoA store, indices held across
      // mutations would dangle) and hand it to the cache.
      const std::size_t dims = q.scheme->dims();
      cache_objs_.clear();
      cache_objs_.reserve(solve_hits_.size());
      cache_coords_.clear();
      cache_coords_.reserve(solve_hits_.size() * dims);
      for (const std::uint32_t ei : solve_hits_) {
        cache_objs_.push_back(ss.entries.object(ei));
        std::span<const double> pt = ss.entries.point(ei);
        cache_coords_.insert(cache_coords_.end(), pt.begin(), pt.end());
      }
      cache->insert(q.region, ring_.sim().now(), cache_objs_, cache_coords_,
                    dims);
    }
  }

  aq.outcome.subqueries += 1;
  aq.outcome.hops = std::max(aq.outcome.hops, q.hops);
  aq.outcome.candidates += evaluated;
  std::uint64_t& node_cand = aq.node_candidates[&node];
  node_cand += evaluated;
  aq.outcome.max_node_candidates =
      std::max(aq.outcome.max_node_candidates, node_cand);
  aq.outcome.index_nodes = static_cast<int>(aq.node_candidates.size());
  aq.outstanding -= 1;
  LMK_CHECK(aq.outstanding >= 0);

  if (!reply.flush_scheduled) {
    // One reply per (query, node) per processing step: keep it pending
    // until a zero-delay self event fires, so every subquery this node
    // solves in the same step lands in the same result message.
    reply.flush_scheduled = true;
    aq.replies_pending += 1;
    store_of(node).pending_replies += 1;
    std::uint64_t qid = q.qid;
    ChordNode* node_ptr = &node;
    // Tagged with the node's host so the event queue can account for
    // same-(timestamp, node) tie groups (audit race detector).
    ring_.sim().schedule_after(0, [this, qid, node_ptr]() {
      flush_reply(qid, *node_ptr);
    }, node.host());
  }
}

void IndexPlatform::flush_reply(std::uint64_t qid, ChordNode& node) {
  auto it = active_.find(qid);
  LMK_CHECK(it != active_.end());
  ActiveQuery& aq = it->second;
  auto qit = pending_replies_.find(qid);
  LMK_CHECK(qit != pending_replies_.end());
  auto nit = qit->second.find(&node);
  LMK_CHECK(nit != qit->second.end());
  PendingReply reply = std::move(nit->second);
  qit->second.erase(nit);
  if (qit->second.empty()) pending_replies_.erase(qit);
  NodeStore& ns = store_of(node);
  LMK_CHECK(ns.pending_replies > 0);
  ns.pending_replies -= 1;

  // An entry lying exactly on a split plane belongs to both sibling
  // subqueries (closed regions), so it can be scored twice; drop
  // duplicates before the cut or they crowd out distinct candidates.
  std::sort(reply.scored.begin(), reply.scored.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  reply.scored.erase(std::unique(reply.scored.begin(), reply.scored.end(),
                                 [](const auto& a, const auto& b) {
                                   return a.second == b.second;
                                 }),
                     reply.scored.end());
  // Per-node top-k cut (paper: "the 10-nearest local results").
  if (aq.mode == ReplyMode::kTopK && reply.scored.size() > opts_.top_k) {
    auto cut =
        reply.scored.begin() + static_cast<std::ptrdiff_t>(opts_.top_k);
    std::nth_element(reply.scored.begin(), cut, reply.scored.end());
    reply.scored.resize(opts_.top_k);
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(reply.scored.size());
  for (const auto& [score, object] : reply.scored) ids.push_back(object);
  if (reply.pooled) reply_pool_.release(std::move(reply.scored));

  const SchemeRouting& sch = scheme(aq.scheme);
  std::uint64_t bytes =
      sch.result_header_bytes + sch.result_entry_bytes * ids.size();
  aq.outcome.result_messages += 1;
  aq.outcome.result_bytes += bytes;

  // Ship the reply to the querying host.
  ring_.net().send(node.host(), aq.origin, bytes,
                   [this, qid, ids = std::move(ids)]() {
                     auto it2 = active_.find(qid);
                     if (it2 == active_.end()) return;
                     ActiveQuery& a = it2->second;
                     SimTime now = ring_.sim().now();
                     if (!a.got_first_reply) {
                       a.got_first_reply = true;
                       a.outcome.response_time = now - a.t0;
                     }
                     a.outcome.max_latency = now - a.t0;
                     for (std::uint64_t id : ids) {
                       if (a.seen.insert(id).second) {
                         // Per-query result accumulation, freed with
                         // the query — not engine steady state.
                         // lmk-lint: allow(hot-alloc) per-query result set
                         a.outcome.results.push_back(id);
                       }
                     }
                     a.replies_pending -= 1;
                     maybe_complete(qid);
                   },
                   &result_traffic_);
}
// lmk-hot-path-end

void IndexPlatform::maybe_complete(std::uint64_t qid) {
  auto it = active_.find(qid);
  if (it == active_.end()) return;
  ActiveQuery& aq = it->second;
  if (aq.outstanding != 0 || aq.replies_pending != 0) return;
  QueryOutcome outcome = std::move(aq.outcome);
  outcome.complete = true;
  QueryCallback done = std::move(aq.done);
  active_.erase(it);
  done(outcome);
}

std::size_t IndexPlatform::entries_on(const ChordNode& n) const {
  auto it = stores_.find(&n);
  if (it == stores_.end()) return 0;
  std::size_t total = 0;
  for (const auto& ss : it->second.per_scheme) total += ss.entries.size();
  return total;
}

std::vector<std::size_t> IndexPlatform::load_distribution() const {
  std::vector<std::size_t> out;
  for (const ChordNode* n : ring_.alive_nodes()) {
    out.push_back(entries_on(*n));
  }
  return out;
}

void IndexPlatform::drain_all(ChordNode& from, ChordNode& to) {
  NodeStore& src = store_of(from);
  NodeStore& dst = store_of(to);
  for (std::size_t s = 0; s < src.per_scheme.size(); ++s) {
    dst.per_scheme[s].entries.append_moved(src.per_scheme[s].entries);
    ++src.per_scheme[s].version;
    ++dst.per_scheme[s].version;
    // Bulk move: per-point cover tests would scan everything anyway,
    // so both ends' caches are wiped wholesale.
    serve_wipe(from, static_cast<std::uint32_t>(s));
    serve_wipe(to, static_cast<std::uint32_t>(s));
  }
}

void IndexPlatform::transfer_owned(ChordNode& from, ChordNode& to) {
  LMK_CHECK(to.predecessor().valid());
  Id lo = to.predecessor().id;
  Id hi = to.id();
  NodeStore& src = store_of(from);
  NodeStore& dst = store_of(to);
  for (std::size_t s = 0; s < src.per_scheme.size(); ++s) {
    ++src.per_scheme[s].version;
    ++dst.per_scheme[s].version;
    serve_wipe(from, static_cast<std::uint32_t>(s));
    serve_wipe(to, static_cast<std::uint32_t>(s));
    // Stable extraction: entries `to` now owns move over in store
    // order, survivors compact in place. (The old vector store used an
    // unstable std::partition here; store order never reaches query
    // results — replies are sorted and deduped downstream — so the
    // simpler stable order is observably identical.)
    src.per_scheme[s].entries.extract_if(
        [lo, hi](Id key) { return in_open_closed(key, lo, hi); },
        dst.per_scheme[s].entries);
  }
}

Id IndexPlatform::median_key(const ChordNode& n) const {
  LMK_CHECK(n.predecessor().valid());
  Id pred = n.predecessor().id;
  auto it = stores_.find(&n);
  if (it == stores_.end()) return pred;
  // Collect keys in ring order from the predecessor.
  std::vector<Id> offsets;
  for (const auto& ss : it->second.per_scheme) {
    for (std::size_t i = 0; i < ss.entries.size(); ++i) {
      offsets.push_back(clockwise_distance(pred, ss.entries.key(i)));
    }
  }
  if (offsets.empty()) return pred;
  std::sort(offsets.begin(), offsets.end());
  // The split key: the largest entry key in the first half. A node
  // rejoining at pred + offset takes every entry at or below it.
  std::size_t half = offsets.size() / 2;
  if (half == 0) return pred;
  Id split_offset = offsets[half - 1];
  // All entries on one key: the load cannot be divided (paper §4.3).
  if (split_offset == offsets.back() && offsets.front() == offsets.back()) {
    return pred;
  }
  // If the nominal split would take everything, back off to the largest
  // strictly smaller key so the heavy node keeps the top cluster.
  if (split_offset == offsets.back()) {
    auto lower = std::lower_bound(offsets.begin(), offsets.end(),
                                  split_offset);
    LMK_CHECK(lower != offsets.begin());
    split_offset = *(lower - 1);
  }
  return pred + split_offset;
}

LoadBalancer::Hooks IndexPlatform::balancer_hooks() {
  LoadBalancer::Hooks hooks;
  hooks.load = [this](const ChordNode& n) {
    return static_cast<double>(entries_on(n));
  };
  hooks.split_key = [this](const ChordNode& n) { return median_key(n); };
  hooks.drain_to = [this](ChordNode& from, ChordNode& to) {
    drain_all(from, to);
  };
  hooks.pull_owned = [this](ChordNode& from, ChordNode& to) {
    transfer_owned(from, to);
  };
  return hooks;
}

const TrafficCounter& IndexPlatform::query_traffic() const {
  return opts_.routing == RoutingMode::kTree ? router_.traffic()
                                             : naive_.traffic();
}

const EntryStore& IndexPlatform::store(const ChordNode& n,
                                       std::uint32_t scheme) const {
  static const EntryStore kEmpty;
  auto it = stores_.find(&n);
  if (it == stores_.end() || scheme >= it->second.per_scheme.size()) {
    return kEmpty;
  }
  return it->second.per_scheme[scheme].entries;
}

std::size_t IndexPlatform::pending_reply_depth(const ChordNode& n) const {
  auto it = stores_.find(&n);
  return it == stores_.end() ? 0 : it->second.pending_replies;
}

std::uint64_t IndexPlatform::store_bytes() const {
  std::uint64_t total = 0;
  // Integer sum over disjoint stores: commutative, order-free.
  // lmk-lint: iteration-order-independent
  for (const auto& [node, store] : stores_) {
    for (const auto& ss : store.per_scheme) {
      total += ss.entries.memory_bytes();
      if (ss.local != nullptr) total += ss.local->memory_bytes();
    }
  }
  return total;
}

void IndexPlatform::check_placement_invariant() const {
  // Pure assertion sweep: every entry is checked, nothing accumulated.
  // lmk-lint: iteration-order-independent
  for (const auto& [node, store] : stores_) {
    // Dead nodes are skipped: graceful leavers drained to empty, and a
    // crashed node's copies are simply lost (wiped by the next repair).
    if (!node->alive()) continue;
    for (const auto& ss : store.per_scheme) {
      for (std::size_t i = 0; i < ss.entries.size(); ++i) {
        Id key = ss.entries.key(i);
        if (opts_.replication <= 1) {
          LMK_CHECK(node->owns(key));
        } else {
          auto replicas = replica_nodes(key);
          bool member = false;
          for (ChordNode* r : replicas) member |= (r == node);
          LMK_CHECK(member);
        }
      }
    }
  }
}

void IndexPlatform::repair_replication() {
  // Gather the distinct logical entries per scheme, then rebuild every
  // store with oracle-correct replicated placement. O(total entries);
  // a deployment would repair incrementally, but the end state is the
  // same and this keeps the simulator honest after arbitrary churn.
  struct Logical {
    Id key;
    std::uint64_t object;
    IndexPoint point;
  };
  std::vector<std::vector<Logical>> per_scheme(schemes_.size());
  std::vector<std::unordered_map<std::uint64_t, std::unordered_set<Id>>>
      seen(schemes_.size());
#ifdef LMK_SCHED_MUTATION
  // Mutation-gate bookkeeping (see below): which live nodes held a copy
  // of each logical entry before the rebuild.
  std::vector<std::map<std::pair<std::uint64_t, Id>,
                       std::vector<const ChordNode*>>>
      holders(schemes_.size());
#endif
  // The sweep order decides which replica's copy survives dedup and in
  // what order the rebuilt stores are filled — iterating the
  // pointer-keyed hash map directly would tie both to allocation
  // addresses (ASLR), breaking run-to-run determinism. Sweep in node-id
  // order instead.
  std::vector<std::pair<const ChordNode*, NodeStore*>> sweep;
  sweep.reserve(stores_.size());
  // Collection into the sorted sweep list is order-free.
  // lmk-lint: iteration-order-independent
  for (auto& [node, store] : stores_) {
    sweep.emplace_back(node, &store);
  }
  std::sort(sweep.begin(), sweep.end(),
            [](const auto& a, const auto& b) {
              if (a.first->id() != b.first->id()) {
                return a.first->id() < b.first->id();
              }
              return a.first->host() < b.first->host();
            });
  for (auto& [node, store_ptr] : sweep) {
    NodeStore& store = *store_ptr;
    bool dead = !node->alive();
    for (std::size_t sc = 0; sc < store.per_scheme.size(); ++sc) {
      if (!dead) {
        const EntryStore& es = store.per_scheme[sc].entries;
        for (std::size_t i = 0; i < es.size(); ++i) {
#ifdef LMK_SCHED_MUTATION
          holders[sc][{es.object(i), es.key(i)}].push_back(node);
#endif
          if (seen[sc][es.object(i)].insert(es.key(i)).second) {
            IndexEntry e = es.entry(i);
            per_scheme[sc].push_back(
                Logical{e.key, e.object, std::move(e.point)});
          }
        }
      }
      // Dead stores are purged either way: their copies are lost, and a
      // node reviving later must not resurrect stale data.
      store.per_scheme[sc].entries.clear();
      ++store.per_scheme[sc].version;
      serve_wipe(*node, static_cast<std::uint32_t>(sc));
    }
  }
  for (std::size_t sc = 0; sc < per_scheme.size(); ++sc) {
    for (Logical& l : per_scheme[sc]) {
      for (ChordNode* node : replica_nodes(l.key)) {
#ifdef LMK_SCHED_MUTATION
        // Deliberately broken repair, compiled in only for the
        // lmk-sched mutation gate (scripts/check.sh --sched-smoke):
        // copies are refreshed solely on nodes that already held one,
        // never re-replicated onto a replacement successor. Invisible
        // on a fault-free run (every replica already holds its copy);
        // after a crash the entry silently stays under-replicated,
        // which the explorer must catch as a conservation violation
        // and shrink to a minimal fault plan.
        const auto& held = holders[sc][{l.object, l.key}];
        if (std::find(held.begin(), held.end(), node) == held.end()) {
          continue;
        }
#endif
        entries(*node, static_cast<std::uint32_t>(sc))
            .push_back(l.key, l.object, l.point);
      }
    }
  }
}

}  // namespace lmk
