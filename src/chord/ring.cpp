#include "chord/ring.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace lmk {

Ring::Ring(Network& net, Options opts) : net_(net), opts_(opts) {}

ChordNode& Ring::create_node(HostId host) {
  return create_node_with_id(host, node_id_for_host(host, opts_.seed));
}

ChordNode& Ring::create_node_with_id(HostId host, Id id) {
  LMK_CHECK_MSG(host < net_.hosts(),
                "host %llu for node %016llx outside topology of %zu hosts",
                static_cast<unsigned long long>(host),
                static_cast<unsigned long long>(id), net_.hosts());
  nodes_.push_back(std::make_unique<ChordNode>(host, id));
  ChordNode& n = *nodes_.back();
  insert_sorted(n);
  return n;
}

std::vector<ChordNode*> Ring::alive_nodes() const {
  std::vector<ChordNode*> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n->alive()) out.push_back(n.get());
  }
  return out;
}

void Ring::insert_sorted(ChordNode& n) {
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), n.id(),
      [](const ChordNode* a, Id id) { return a->id() < id; });
  // Identifier collisions would make ownership ambiguous; with random
  // 64-bit ids this is effectively impossible, so treat it as a bug.
  LMK_CHECK_MSG(it == sorted_.end() || (*it)->id() != n.id(),
                "id collision on %016llx at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  sorted_.insert(it, &n);
}

void Ring::remove_sorted(ChordNode& n) {
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), n.id(),
      [](const ChordNode* a, Id id) { return a->id() < id; });
  LMK_CHECK_MSG(it != sorted_.end() && *it == &n,
                "node %016llx missing from alive index at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  sorted_.erase(it);
}

std::size_t Ring::sorted_index_of_successor(Id key) const {
  LMK_CHECK(!sorted_.empty());
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const ChordNode* a, Id id) { return a->id() < id; });
  if (it == sorted_.end()) return 0;  // wrap to the smallest id
  return static_cast<std::size_t>(it - sorted_.begin());
}

ChordNode* Ring::oracle_successor(Id key) const {
  return sorted_[sorted_index_of_successor(key)];
}

ChordNode* Ring::oracle_predecessor(Id key) const {
  std::size_t idx = sorted_index_of_successor(key);
  std::size_t n = sorted_.size();
  // The successor of `key` owns it; its predecessor is the previous node,
  // unless `key` exactly equals a node id, in which case that node's
  // *ring* predecessor still precedes the key.
  return sorted_[(idx + n - 1) % n];
}

std::vector<NodeRef> Ring::successor_list_from(std::size_t idx,
                                               ChordNode* skip) const {
  std::vector<NodeRef> list;
  std::size_t n = sorted_.size();
  for (std::size_t step = 0; step < n && list.size() < ChordNode::kSuccessors;
       ++step) {
    ChordNode* cand = sorted_[(idx + step) % n];
    if (cand == skip) continue;
    list.push_back(NodeRef{cand, cand->id()});
  }
  return list;
}

void Ring::fix_neighbors(ChordNode& n) {
  LMK_CHECK_MSG(n.alive(), "fix_neighbors on dead node %016llx at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  std::size_t n_count = sorted_.size();
  std::size_t idx = sorted_index_of_successor(n.id());
  LMK_CHECK_MSG(sorted_[idx] == &n,
                "alive index out of sync for node %016llx",
                static_cast<unsigned long long>(n.id()));
  ChordNode* pred = sorted_[(idx + n_count - 1) % n_count];
  if (pred == &n) {
    // Singleton ring: a node is its own predecessor and successor.
    n.set_predecessor(n.self_ref());
    n.set_successors({});
    return;
  }
  n.set_predecessor(NodeRef{pred, pred->id()});
  n.set_successors(successor_list_from((idx + 1) % n_count, &n));
}

void Ring::fix_fingers(ChordNode& n) {
  LMK_CHECK_MSG(n.alive(), "fix_fingers on dead node %016llx at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  std::size_t ring_size = sorted_.size();
  for (int i = 0; i < kIdBits; ++i) {
    Id start = n.finger_start(i);
    ChordNode* best = oracle_successor(start);
    if (opts_.pns && i < kIdBits - 1) {
      // Any node in [start, start + 2^i) is a valid finger-i candidate;
      // examine up to pns_samples of them and keep the closest by latency.
      Id end = n.id() + (Id{1} << (i + 1));
      std::size_t idx = sorted_index_of_successor(start);
      SimTime best_lat = -1;
      ChordNode* choice = nullptr;
      for (int s = 0; s < opts_.pns_samples &&
                      static_cast<std::size_t>(s) < ring_size;
           ++s) {
        ChordNode* cand = sorted_[(idx + static_cast<std::size_t>(s)) %
                                  ring_size];
        if (!in_closed_open(cand->id(), start, end)) break;
        if (cand == &n) continue;
        SimTime lat = net_.latency(n.host(), cand->host());
        if (choice == nullptr || lat < best_lat) {
          choice = cand;
          best_lat = lat;
        }
      }
      if (choice != nullptr) best = choice;
    }
    n.set_finger(i, NodeRef{best, best->id()});
  }
}

void Ring::bootstrap() {
  for (ChordNode* n : sorted_) fix_neighbors(*n);
  for (ChordNode* n : sorted_) fix_fingers(*n);
}

void Ring::refresh_all_fingers() {
  for (ChordNode* n : sorted_) fix_fingers(*n);
}

// lmk-handler
// Protocol section: everything from rpc() through stabilize() runs
// inside message deliveries, so the handler-discipline lints apply —
// no ring-oracle reads, no shared RNG draws, no raw simulator
// scheduling. The oracle half above (bootstrap, fix_neighbors,
// fix_fingers, ...) and the drivers below (run_stabilization,
// leave/fail/rejoin) are deliberately outside the region: they model
// test-harness omniscience, not node behavior.
void Ring::rpc(HostId from, ChordNode& to, std::function<void(ChordNode&)> fn) {
  ChordNode* target = &to;
  std::uint32_t inc = to.incarnation();
  net_.send(from, to.host(), opts_.control_message_bytes,
            [target, inc, fn = std::move(fn)]() {
              if (target->alive() && target->incarnation() == inc) {
                fn(*target);
              }
            },
            &maintenance_);
}

namespace {

struct PredSearch {
  Id key;
  LookupCallback done;
};

void pred_step(Ring& ring, ChordNode& cur, std::shared_ptr<PredSearch> st,
               int hops) {
  NodeRef succ = cur.successor();
  if (succ.node == &cur || in_open_closed(st->key, cur.id(), succ.id)) {
    st->done(cur.self_ref(), hops);
    return;
  }
  NodeRef hop = cur.next_hop(st->key);
  if (hop.node == &cur) {
    // Routing table is stale enough that nothing precedes the key even
    // though the successor test failed; fall forward along the ring.
    hop = succ;
  }
  ring.rpc(cur.host(), *hop.node, [&ring, st, hops](ChordNode& next) {
    pred_step(ring, next, st, hops + 1);
  });
}

}  // namespace

void Ring::find_predecessor(ChordNode& from, Id key, LookupCallback done) {
  auto st = std::make_shared<PredSearch>(PredSearch{key, std::move(done)});
  pred_step(*this, from, st, 0);
}

void Ring::find_successor(ChordNode& from, Id key, LookupCallback done) {
  find_predecessor(from, key,
                   [done = std::move(done)](NodeRef pred, int hops) {
                     done(pred.node->successor(), hops + 1);
                   });
}

void Ring::protocol_join(ChordNode& n, ChordNode& gateway,
                         std::function<void()> done) {
  LMK_CHECK_MSG(n.alive(), "protocol_join of dead node %016llx at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  LMK_CHECK_MSG(&n != &gateway,
                "node %016llx cannot join through itself",
                static_cast<unsigned long long>(n.id()));
  find_successor(gateway, n.id(), [this, &n, done = std::move(done)](
                                      NodeRef owner, int /*hops*/) {
    if (owner.node == &n) {
      // The oracle index already contains n, so the lookup may resolve to
      // n itself; its true protocol successor is the next node along.
      owner = n.successor().valid() ? n.successor() : owner;
    }
    // Atomic hand-off at the successor: the joiner takes over the
    // successor's old predecessor and slots itself in, so the ring stays
    // routable even before the next stabilization round. The successor's
    // routing state also seeds the joiner's successor list and fingers
    // (a standard join optimization; fix-fingers refines them later).
    rpc(n.host(), *owner.node, [this, &n, done](ChordNode& succ) {
      NodeRef old_pred = succ.predecessor();
      std::vector<NodeRef> list;
      list.push_back(NodeRef{&succ, succ.id()});
      for (const NodeRef& r : succ.successor_list()) {
        if (r.valid() && r.node != &n &&
            list.size() < ChordNode::kSuccessors) {
          list.push_back(r);
        }
      }
      if (!old_pred.valid() || in_open(n.id(), old_pred.id, succ.id())) {
        succ.set_predecessor(NodeRef{&n, n.id()});
        if (old_pred.valid()) n.set_predecessor(old_pred);
      }
      rpc(succ.host(), n, [this, list = std::move(list), done](
                              ChordNode& me) mutable {
        NodeRef pred = me.predecessor();
        me.set_successors(std::move(list));
        for (int i = 0; i < kIdBits; ++i) {
          NodeRef f = me.successor();
          // Seed with the successor's view shifted onto our intervals.
          me.set_finger(i, f);
        }
        // Tell the old predecessor its successor changed so queries
        // routed through it reach the joiner immediately.
        if (pred.valid()) {
          rpc(me.host(), *pred.node, [&me](ChordNode& p) {
            std::vector<NodeRef> plist;
            plist.push_back(NodeRef{&me, me.id()});
            for (const NodeRef& r : p.successor_list()) {
              if (r.valid() && r.node != &me &&
                  plist.size() < ChordNode::kSuccessors) {
                plist.push_back(r);
              }
            }
            p.set_successors(std::move(plist));
          });
        }
        if (done) done();
      });
    });
  });
}

void Ring::stabilize(ChordNode& n) {
  if (!n.alive()) return;
  NodeRef succ = n.successor();
  if (succ.node == &n) return;  // singleton
  // Ask the successor for its predecessor and successor list; then adopt
  // a closer successor if one appeared, and notify.
  rpc(n.host(), *succ.node, [this, &n](ChordNode& s) {
    NodeRef x = s.predecessor();
    std::vector<NodeRef> new_list;
    new_list.push_back(NodeRef{&s, s.id()});
    for (const NodeRef& r : s.successor_list()) {
      if (r.valid() && r.node != &n &&
          new_list.size() < ChordNode::kSuccessors) {
        new_list.push_back(r);
      }
    }
    bool adopt = x.valid() && x.node != &n && in_open(x.id, n.id(), s.id());
    rpc(s.host(), n, [this, x, adopt, new_list = std::move(new_list)](
                         ChordNode& me) mutable {
      if (adopt) {
        new_list.insert(new_list.begin(), x);
        if (new_list.size() > ChordNode::kSuccessors) {
          new_list.resize(ChordNode::kSuccessors);
        }
      }
      me.set_successors(std::move(new_list));
      NodeRef cur_succ = me.successor();
      if (cur_succ.node == &me) return;
      rpc(me.host(), *cur_succ.node, [&me](ChordNode& s2) {
        NodeRef pred = s2.predecessor();
        if (!pred.valid() || in_open(me.id(), pred.id, s2.id())) {
          s2.set_predecessor(NodeRef{&me, me.id()});
        }
      });
    });
  });
  // Refresh one finger per round (round-robin across calls), with
  // protocol-level PNS: the interval's owner reports its successor list
  // and the refresher keeps the latency-closest in-interval candidate
  // (Dabek et al.'s PNS(16) sampling).
  int i = n.take_next_finger_to_fix();
  find_successor(n, n.finger_start(i), [this, &n, i](NodeRef owner,
                                                     int /*hops*/) {
    if (owner.node == &n) return;
    if (!opts_.pns || i >= kIdBits - 1) {
      n.set_finger(i, owner);
      return;
    }
    rpc(n.host(), *owner.node, [this, &n, i](ChordNode& o) {
      Id start = n.finger_start(i);
      Id end = n.id() + (Id{1} << (i + 1));
      NodeRef best{&o, o.id()};
      SimTime best_lat = net_.latency(n.host(), o.host());
      int sampled = 0;
      for (const NodeRef& r : o.successor_list()) {
        if (!r.valid() || r.node == &n) continue;
        if (!in_closed_open(r.id, start, end)) break;
        if (++sampled > opts_.pns_samples) break;
        SimTime lat = net_.latency(n.host(), r.node->host());
        if (lat < best_lat) {
          best_lat = lat;
          best = r;
        }
      }
      rpc(o.host(), n, [i, best](ChordNode& me) { me.set_finger(i, best); });
    });
  });
}
// lmk-handler-end

void Ring::run_stabilization(int rounds, SimTime period) {
  for (int r = 0; r < rounds; ++r) {
    sim().schedule_after(period * (r + 1), [this]() {
      for (const auto& n : nodes_) {
        if (n->alive()) stabilize(*n);
      }
    });
  }
  sim().run();
}

void Ring::leave(ChordNode& n) {
  LMK_CHECK_MSG(n.alive(), "leave of dead node %016llx at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  LMK_CHECK_MSG(sorted_.size() > 1,
                "node %016llx cannot leave a singleton ring at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  std::size_t idx = sorted_index_of_successor(n.id());
  LMK_CHECK_MSG(sorted_[idx] == &n,
                "alive index out of sync for leaving node %016llx",
                static_cast<unsigned long long>(n.id()));
  remove_sorted(n);
  n.kill();
  // Repair the neighbourhood whose successor lists / predecessor
  // pointers referenced n: its kSuccessors ring predecessors plus the
  // node that now owns its position.
  std::size_t n_count = sorted_.size();
  std::size_t repair = std::min(n_count, ChordNode::kSuccessors + 1);
  for (std::size_t back = 0; back < repair; ++back) {
    std::size_t j = (idx + n_count - back) % n_count;
    fix_neighbors(*sorted_[j]);
  }
}

void Ring::fail(ChordNode& n) {
  LMK_CHECK_MSG(n.alive(), "fail of already-dead node %016llx at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<long long>(sim().now()));
  LMK_CHECK_MSG(sorted_.size() > 1,
                "node %016llx cannot fail out of a singleton ring",
                static_cast<unsigned long long>(n.id()));
  remove_sorted(n);
  n.kill();
}

void Ring::rejoin(ChordNode& n, Id new_id) {
  LMK_CHECK_MSG(!n.alive(),
                "rejoin of live node %016llx as %016llx at t=%lld",
                static_cast<unsigned long long>(n.id()),
                static_cast<unsigned long long>(new_id),
                static_cast<long long>(sim().now()));
  n.revive(new_id);
  insert_sorted(n);
  std::size_t n_count = sorted_.size();
  std::size_t idx = sorted_index_of_successor(new_id);
  LMK_CHECK_MSG(sorted_[idx] == &n,
                "alive index out of sync for rejoined node %016llx",
                static_cast<unsigned long long>(new_id));
  // Repair the new node, its successor (whose predecessor pointer must
  // now reference n), and the kSuccessors ring predecessors whose
  // successor lists gain n.
  std::size_t repair = std::min(n_count, ChordNode::kSuccessors + 2);
  for (std::size_t back = 0; back < repair; ++back) {
    std::size_t j = (idx + 1 + n_count - back) % n_count;
    fix_neighbors(*sorted_[j]);
  }
  fix_fingers(n);
}

}  // namespace lmk
