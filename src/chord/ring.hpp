// The Chord overlay: node ownership, oracle construction, protocol
// operations (lookup, join, stabilization), and dynamic membership.
//
// Two construction modes are provided:
//
//  * bootstrap() installs the routing state a fully converged
//    stabilization would produce — correct predecessor/successor lists
//    and (optionally PNS-optimized) finger tables — directly from global
//    knowledge. Experiments start from this state, as the paper measures
//    query performance "after system stabilization".
//
//  * protocol_join() + stabilization rounds implement the actual Chord
//    maintenance protocol over simulated messages; tests verify that it
//    converges to the oracle state, and dynamic load migration uses the
//    same local-repair primitives.
//
// Proximity Neighbour Selection (PNS, per Dabek et al. NSDI'04, used by
// the paper as "Chord-PNS") picks each finger among the candidate nodes
// in the finger's identifier interval by lowest network latency, sampling
// at most `pns_samples` candidates.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "chord/node.hpp"
#include "sim/network.hpp"

namespace lmk {

/// Continuation for lookups: resolved node reference + overlay hop count.
using LookupCallback = std::function<void(NodeRef, int hops)>;

/// Chord overlay container.
class Ring {
 public:
  struct Options {
    bool pns = true;          ///< proximity neighbour selection for fingers
    int pns_samples = 16;     ///< candidates examined per finger
    std::uint64_t seed = 1;   ///< id-assignment seed
    /// Modeled size of one maintenance/control message in bytes
    /// (header + one node reference). Maintenance traffic is counted
    /// separately from query traffic.
    std::uint64_t control_message_bytes = 32;
  };

  Ring(Network& net, Options opts);

  // ----- population -----

  /// Create a node for `host` with id = consistent hash of the host.
  ChordNode& create_node(HostId host);

  /// Create a node with an explicit identifier (tests, load migration).
  ChordNode& create_node_with_id(HostId host, Id id);

  /// Number of nodes ever created (alive or dead).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// All currently alive nodes (unsorted, stable order of creation).
  [[nodiscard]] std::vector<ChordNode*> alive_nodes() const;

  /// Number of alive nodes.
  [[nodiscard]] std::size_t alive_count() const { return sorted_.size(); }

  ChordNode& node(std::size_t index) { return *nodes_[index]; }

  // ----- oracle (global-knowledge) operations -----

  /// Install converged routing state on every alive node.
  void bootstrap();

  /// Successor of `key`: the alive node owning it. Requires >= 1 node.
  [[nodiscard]] ChordNode* oracle_successor(Id key) const;

  /// The alive node immediately preceding `key` (id strictly before it).
  [[nodiscard]] ChordNode* oracle_predecessor(Id key) const;

  /// Oracle-correct successor list / predecessor for one node.
  void fix_neighbors(ChordNode& n);

  /// Oracle-correct finger table for one node (with PNS if enabled).
  void fix_fingers(ChordNode& n);

  // ----- protocol operations (message-driven) -----

  /// Resolve the predecessor of `key` starting at `from`, following
  /// next_hop links; cost: one control message per hop.
  void find_predecessor(ChordNode& from, Id key, LookupCallback done);

  /// Resolve the successor (owner) of `key` starting at `from`.
  void find_successor(ChordNode& from, Id key, LookupCallback done);

  /// Join `n` into the overlay through `gateway` using protocol messages;
  /// `done` fires when the join completes (successor installed,
  /// neighbours notified). Stabilization then refines the state.
  void protocol_join(ChordNode& n, ChordNode& gateway,
                     std::function<void()> done);

  /// One stabilization round for `n`: verify successor, notify, pull the
  /// successor list, refresh one finger (protocol messages).
  void stabilize(ChordNode& n);

  /// Run `rounds` full stabilization sweeps over all alive nodes, spaced
  /// `period` apart in virtual time, then drain the simulator.
  void run_stabilization(int rounds, SimTime period);

  // ----- dynamic membership (load migration building blocks) -----

  /// Graceful departure: the node leaves, neighbours are repaired
  /// immediately (successor lists / predecessors), fingers elsewhere go
  /// stale and are repaired on use / by stabilization.
  void leave(ChordNode& n);

  /// Crash failure: the node dies with NO repair — every reference to
  /// it (successor lists, predecessors, fingers) goes stale and must be
  /// healed by stabilization. In-flight messages to it are dropped by
  /// their incarnation guards. Its stored entries are lost (no
  /// replication, as in the paper).
  void fail(ChordNode& n);

  /// Rejoin a departed node under a new identifier; local neighbourhood
  /// is repaired immediately.
  void rejoin(ChordNode& n, Id new_id);

  /// Refresh every alive node's finger table from the oracle (cheap
  /// stand-in for letting many fix-finger rounds run between migrations).
  void refresh_all_fingers();

  // ----- plumbing -----

  Network& net() { return net_; }
  Simulator& sim() { return net_.sim(); }
  const Options& options() const { return opts_; }

  /// Maintenance traffic accumulated by protocol operations.
  [[nodiscard]] const TrafficCounter& maintenance_traffic() const {
    return maintenance_;
  }

  /// Send a control RPC to `to`; the handler runs only if `to` is still
  /// alive in the same incarnation when the message arrives.
  void rpc(HostId from, ChordNode& to, std::function<void(ChordNode&)> fn);

 private:
  void insert_sorted(ChordNode& n);
  void remove_sorted(ChordNode& n);
  [[nodiscard]] std::size_t sorted_index_of_successor(Id key) const;
  [[nodiscard]] std::vector<NodeRef> successor_list_from(std::size_t idx,
                                                         ChordNode* skip) const;

  Network& net_;
  Options opts_;
  std::vector<std::unique_ptr<ChordNode>> nodes_;
  std::vector<ChordNode*> sorted_;  // alive nodes, ascending id
  TrafficCounter maintenance_;
};

}  // namespace lmk
