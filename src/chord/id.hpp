// Chord identifier helpers.
#pragma once

#include "common/bits.hpp"
#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "net/latency_model.hpp"

namespace lmk {

/// Derive a node identifier from a host address, as consistent hashing
/// would (the paper: "Chord uses consistent hashing, e.g. SHA-1, to map
/// nodes to the identifier space"). A seed decorrelates independent runs.
[[nodiscard]] inline Id node_id_for_host(HostId host, std::uint64_t seed) {
  return mix64((static_cast<std::uint64_t>(host) + 1) * 0x9e3779b97f4a7c15ull ^
               seed);
}

}  // namespace lmk
