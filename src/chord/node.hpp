// A Chord node: identifier, finger table, successor list, predecessor.
//
// The node owns only routing *state*; message-driven behaviour (lookups,
// stabilization, joins) lives in Ring, which owns every node of the
// overlay. This split keeps the state machine unit-testable without a
// simulator.
//
// Parameters match the paper's setup: base-2 fingers, a 16-entry
// successor list, 64-bit identifiers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "chord/id.hpp"

namespace lmk {

class ChordNode;

/// A routing-table entry: a pointer to the referenced node plus the
/// identifier it had when the entry was installed. Entries go stale when
/// the node dies or rejoins under a new identifier; `valid()` detects
/// both, so scans can skip (and later repair) stale entries instead of
/// routing on wrong information.
struct NodeRef {
  ChordNode* node = nullptr;
  Id id = 0;

  [[nodiscard]] bool valid() const;
  [[nodiscard]] explicit operator bool() const { return node != nullptr; }
};

/// Chord routing state for one overlay node.
class ChordNode {
 public:
  /// Successor-list length (paper: "successors=16").
  static constexpr std::size_t kSuccessors = 16;

  ChordNode(HostId host, Id id) : host_(host), id_(id) {}

  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  [[nodiscard]] HostId host() const { return host_; }
  [[nodiscard]] Id id() const { return id_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Incarnation number: bumped on every (re)join so in-flight messages
  /// addressed to a previous life can be recognized and dropped.
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

  /// Reference to this node under its current identifier.
  [[nodiscard]] NodeRef self_ref() { return NodeRef{this, id_}; }

  /// First valid successor (the ring neighbour). Invalid ref when the
  /// node has no live successor (singleton ring: itself is returned).
  [[nodiscard]] NodeRef successor() const;

  [[nodiscard]] const NodeRef& predecessor() const { return predecessor_; }

  [[nodiscard]] std::span<const NodeRef> successor_list() const {
    return successors_;
  }
  [[nodiscard]] std::span<const NodeRef> finger_table() const {
    return fingers_;
  }

  /// True when this node owns `key`: key ∈ (predecessor, me]. Uses the
  /// predecessor's identifier as installed even if that node has since
  /// died — until stabilization repairs the pointer, the range the dead
  /// predecessor covered is genuinely unowned.
  [[nodiscard]] bool owns(Id key) const;

  /// The paper's next_hop (footnote 4): the routing-table entry — finger
  /// table, successor list, or this node itself — whose identifier is
  /// immediately before `key` on the ring. Returns self when no table
  /// entry lies in (me, key), i.e. when this node believes it is the
  /// predecessor of `key`.
  [[nodiscard]] NodeRef next_hop(Id key) const;

  /// Classic Chord closest-preceding-finger: like next_hop but never
  /// returns self; invalid ref when nothing precedes `key`.
  [[nodiscard]] NodeRef closest_preceding(Id key) const;

  // --- Overlay-maintenance API (used by Ring, joins, stabilization) ---

  /// Replace the successor list (index 0 is the immediate successor).
  void set_successors(std::vector<NodeRef> list);

  void set_predecessor(NodeRef p) { predecessor_ = p; }

  /// Install finger i (finger i targets id + 2^i, i ∈ [0, 64)).
  void set_finger(int i, NodeRef f);

  /// The identifier finger i targets: id + 2^i (mod 2^64).
  [[nodiscard]] Id finger_start(int i) const {
    return id_ + (Id{1} << i);
  }

  /// Round-robin index for periodic finger refresh: returns the next
  /// finger to fix and advances (each node cycles through all of its own
  /// fingers regardless of how many peers stabilize concurrently).
  [[nodiscard]] int take_next_finger_to_fix() {
    int i = next_finger_refresh_;
    next_finger_refresh_ = (next_finger_refresh_ + 1) % kIdBits;
    return i;
  }

  /// Mark dead: entries pointing here become invalid; pending messages
  /// addressed to this incarnation are dropped by their guards.
  void kill();

  /// Revive under a (possibly new) identifier with empty tables.
  void revive(Id new_id);

 private:
  HostId host_;
  Id id_;
  bool alive_ = true;
  std::uint32_t incarnation_ = 0;
  NodeRef predecessor_;
  std::vector<NodeRef> successors_;
  std::array<NodeRef, kIdBits> fingers_{};
  int next_finger_refresh_ = 0;
};

inline bool NodeRef::valid() const {
  return node != nullptr && node->alive() && node->id() == id;
}

}  // namespace lmk
