#include "chord/node.hpp"

#include "common/check.hpp"

namespace lmk {

NodeRef ChordNode::successor() const {
  for (const NodeRef& s : successors_) {
    if (s.valid()) return s;
  }
  // Singleton ring (or fully stale list): a node is its own successor.
  return NodeRef{const_cast<ChordNode*>(this), id_};
}

bool ChordNode::owns(Id key) const {
  LMK_DCHECK(predecessor_.node != nullptr);
  return in_open_closed(key, predecessor_.id, id_);
}

NodeRef ChordNode::next_hop(Id key) const {
  // Best = entry in (me, key) closest to key; default = self.
  NodeRef best{const_cast<ChordNode*>(this), id_};
  bool have = false;
  auto consider = [&](const NodeRef& r) {
    if (!r.valid()) return;
    if (!in_open(r.id, id_, key)) return;
    if (!have || in_open(r.id, best.id, key)) {
      best = r;
      have = true;
    }
  };
  for (const NodeRef& f : fingers_) consider(f);
  for (const NodeRef& s : successors_) consider(s);
  return best;
}

NodeRef ChordNode::closest_preceding(Id key) const {
  NodeRef hop = next_hop(key);
  if (hop.node == this) return NodeRef{};
  return hop;
}

void ChordNode::set_successors(std::vector<NodeRef> list) {
  if (list.size() > kSuccessors) list.resize(kSuccessors);
  successors_ = std::move(list);
}

void ChordNode::set_finger(int i, NodeRef f) {
  LMK_CHECK(i >= 0 && i < kIdBits);
  fingers_[static_cast<std::size_t>(i)] = f;
}

void ChordNode::kill() {
  alive_ = false;
  ++incarnation_;
  predecessor_ = NodeRef{};
  successors_.clear();
  fingers_.fill(NodeRef{});
}

void ChordNode::revive(Id new_id) {
  LMK_CHECK(!alive_);
  alive_ = true;
  ++incarnation_;
  id_ = new_id;
  predecessor_ = NodeRef{};
  successors_.clear();
  fingers_.fill(NodeRef{});
}

}  // namespace lmk
