// Range-query resolving and routing over the Chord embedded trees
// (paper §3.3, Algorithms 3 and 5).
//
// QueryRouting delivers a subquery toward the *predecessor* of its
// prefix key, splitting it only when the two halves would take different
// next hops; once the predecessor is reached, the subquery is handed to
// the surrogate (the successor, i.e. the owner of the prefix key), which
// progressively prunes it: parts of the cuboid key span covered by the
// surrogate are solved locally, parts beyond its identifier are
// forwarded onward with QueryRouting.
//
// Note on Algorithm 5: the paper's listing extends the query prefix along
// me.id (lines 10-11) without narrowing the region, which loses results
// whenever the region still straddles one of the skipped split planes
// (the spilled part would be solved against a node that does not store
// it). We implement the evidently intended semantics — refine level by
// level: at each level the child cuboid whose keys precede me.id is
// fully covered and solved locally, the child beyond me.id is forwarded,
// and the child containing me.id is refined further. This preserves the
// region-inside-prefix-cuboid invariant and is validated against a
// brute-force owner oracle in tests/routing_test.cpp.
//
// Message batching: all subqueries a node emits toward the same next hop
// while processing one incoming message are shipped as ONE message — the
// paper's byte model (20 + 4 + n·(4k+9)) explicitly carries n subqueries
// per message. Surrogate refinement routinely produces several siblings
// bound for the successor, so batching matters.
//
// Rotation (§3.4) is handled by routing on key + φ and comparing
// prefixes against the node's *virtual* identifier id − φ, which maps
// the rotated ring back onto the unrotated k-d prefix tree.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "chord/ring.hpp"
#include "routing/query.hpp"

namespace lmk {

/// Delivery engine for range queries. One router serves all schemes.
class QueryRouter {
 public:
  /// Called when `node` must solve `q` locally: report every stored
  /// entry of q's scheme whose index point lies in q.region back to
  /// q.origin. The callback is also responsible for completion
  /// accounting (the platform tracks outstanding subqueries).
  using SolveFn = std::function<void(const RangeQuery& q, ChordNode& node)>;

  /// Called whenever one subquery becomes `n` subqueries (n >= 1 at
  /// every split/descend; n == 1 means the subquery survives). Lets the
  /// platform keep an outstanding-subquery count per query id.
  using FanoutFn = std::function<void(std::uint64_t qid, int delta)>;

  /// Optional per-query accounting: called for every query message sent
  /// with the query id and modeled byte size.
  using SentFn = std::function<void(std::uint64_t qid, std::uint64_t bytes)>;

  QueryRouter(Ring& ring, SolveFn solve, FanoutFn fanout, SentFn sent = {});

  /// Inject a query at its origin node (Algorithm 3 runs locally first).
  /// The caller must have registered the query with the completion
  /// tracker (fanout(qid, +1)) before calling.
  void start(ChordNode& origin_node, RangeQuery q);

  /// Query-delivery traffic (paper metric 4a) accumulated so far.
  [[nodiscard]] const TrafficCounter& traffic() const { return traffic_; }

  /// Safety valve: routing a single subquery over more hops than this
  /// aborts (indicates a routing-logic bug; default 512).
  void set_hop_limit(int limit) { hop_limit_ = limit; }

  /// Cross-query coalescing window Δt (serving layer): with a non-zero
  /// window, parcels bound for the same next hop accumulate at the
  /// sender for Δt of virtual time and ship as ONE message — across
  /// queries, not just within one processing episode — trading latency
  /// for bytes under the paper's n-subqueries-per-message model. 0
  /// (default) keeps the per-episode flush byte-identical to before.
  void set_coalesce_window(SimTime window) { window_ = window; }

  /// Messages whose parcels came from more than one coalesced episode
  /// (each one is a message the per-episode flush would have sent).
  [[nodiscard]] std::uint64_t coalesced_messages() const {
    return coalesced_messages_;
  }

 private:
  /// One batched subquery en route to a node.
  struct Parcel {
    RangeQuery q;
    bool to_surrogate;
  };

  /// Parcels accumulating at `from` for `target` during a coalescing
  /// window; `from_inc` pins the sender incarnation at window start so
  /// the retry path never resurrects a rejoined node's state.
  struct PendingBatch {
    ChordNode* from = nullptr;
    std::uint32_t from_inc = 0;
    ChordNode* target = nullptr;
    std::vector<Parcel> parcels;
    std::uint64_t episodes = 0;  ///< flushes merged into this batch
  };

  void query_routing(ChordNode& at, RangeQuery q);
  void surrogate_refine(ChordNode& at, RangeQuery q);
  void enqueue(NodeRef to, RangeQuery q, bool to_surrogate);
  void process(ChordNode& at, Parcel parcel);

  /// Run `work` as one message-processing episode at `at`: all enqueued
  /// parcels are grouped by target and flushed as one message each when
  /// the episode ends.
  template <typename Fn>
  void episode(ChordNode& at, Fn&& work);
  void flush(ChordNode& from);

  /// Ship one grouped batch from `from` (pinned at `from_inc`) to
  /// `target` as a single message, with per-qid byte attribution and
  /// the in-flight incarnation-guarded retry.
  void ship(ChordNode* from, std::uint32_t from_inc, ChordNode* target,
            std::vector<Parcel> batch);

  /// Window expiry for the (from, target) pending batch.
  void ship_pending(ChordNode* from, ChordNode* target);

  Ring& ring_;
  SolveFn solve_;
  FanoutFn fanout_;
  SentFn sent_;
  TrafficCounter traffic_;
  int hop_limit_ = 512;
  SimTime window_ = 0;
  std::uint64_t coalesced_messages_ = 0;

  bool in_episode_ = false;
  std::vector<std::pair<NodeRef, Parcel>> outbox_;
  std::vector<PendingBatch> pending_;
  /// ship() scratch: (qid, bytes) attribution in first-appearance order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> qid_bytes_;
};

}  // namespace lmk
