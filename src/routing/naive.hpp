// Naive range-query baseline (paper §3.3's strawman, MAAN-style).
//
// "A naive approach is to subdivide a range query into many subqueries,
// each of which is covered by only one of the 2^m hypercuboids, and to
// route each subquery to the corresponding index node." A literal 2^m
// decomposition is infeasible, so — like MAAN and SCRAP — the client
// splits the region down to a fixed tree depth, routes every resulting
// subquery independently through Chord (no shared delivery paths), and
// each owner walks its successors over any remainder of the subquery's
// key span it does not cover. Correct, but pays one full O(log N)
// lookup per subquery: the cost the embedded-tree router amortizes.
#pragma once

#include <functional>

#include "chord/ring.hpp"
#include "routing/query.hpp"

namespace lmk {

/// Client-side-decomposition router used as the ablation baseline.
class NaiveRouter {
 public:
  using SolveFn = std::function<void(const RangeQuery&, ChordNode&)>;
  using FanoutFn = std::function<void(std::uint64_t qid, int delta)>;
  using SentFn = std::function<void(std::uint64_t qid, std::uint64_t bytes)>;

  /// `split_depth`: the k-d depth the client decomposes to before
  /// routing; sensible values are around log2(#nodes) + 2.
  NaiveRouter(Ring& ring, SolveFn solve, FanoutFn fanout, int split_depth,
              SentFn sent = {});

  /// Issue the query: decompose locally at the origin, then route each
  /// piece independently. Caller pre-registers one outstanding unit.
  void start(ChordNode& origin_node, RangeQuery q);

  [[nodiscard]] const TrafficCounter& traffic() const { return traffic_; }

  void set_hop_limit(int limit) { hop_limit_ = limit; }

 private:
  enum class Step { kRoute, kDeliver, kWalk };

  void route(ChordNode& at, RangeQuery q);
  void deliver(ChordNode& owner, RangeQuery q);
  void walk(ChordNode& at, RangeQuery q);
  void send(ChordNode& from, NodeRef to, RangeQuery q, Step step);

  Ring& ring_;
  SolveFn solve_;
  FanoutFn fanout_;
  SentFn sent_;
  TrafficCounter traffic_;
  int split_depth_;
  int hop_limit_ = 512;
};

}  // namespace lmk
