// Range-query representation and QuerySplit (paper §3.3, Algorithm 4).
//
// A near-neighbour query (q, r) in the metric space becomes a range
// query: the k-cube of edge 2r centred on q's index point, clamped to
// the index-space boundary. The query carries a k-d prefix — the code of
// the smallest cuboid enclosing its region — which doubles as its Chord
// routing key (after adding the scheme's rotation offset).
//
// Invariant maintained everywhere: a query's region lies inside its
// prefix cuboid. QuerySplit preserves it; the surrogate-refinement in
// router.cpp is written to preserve it too (see the note there about the
// paper's Algorithm 5).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "lph/lph.hpp"
#include "net/latency_model.hpp"

namespace lmk {

/// The routing-relevant description of one index scheme, shared by every
/// query against that scheme. Owned by the platform's scheme registry.
struct SchemeRouting {
  std::uint32_t scheme_id = 0;
  Boundary boundary;
  /// Space-mapping rotation offset φ (0 = rotation disabled). Cuboid
  /// keys are placed at key + φ on the ring (§3.4).
  Id rotation = 0;
  /// Modeled size of one query message carrying one subquery, from the
  /// paper's byte model: 20 + 4 + (2*2*k + 8 + 1).
  std::uint64_t query_message_bytes = 0;
  /// Result-message header size (paper: 20) and per-entry size (6).
  std::uint64_t result_header_bytes = 20;
  std::uint64_t result_entry_bytes = 6;

  [[nodiscard]] std::size_t dims() const { return boundary.size(); }
};

/// Compute the paper's query-message size for a k-landmark scheme.
[[nodiscard]] inline std::uint64_t query_message_size(std::size_t k,
                                                      std::size_t subqueries =
                                                          1) {
  return 20 + 4 + subqueries * (2 * 2 * k + 8 + 1);
}

/// One (sub)query in flight.
struct RangeQuery {
  const SchemeRouting* scheme = nullptr;
  std::uint64_t qid = 0;       ///< per-run unique query id
  HostId origin = 0;           ///< host that issued the query
  Region region;               ///< clamped region, inside the prefix cuboid
  Prefix prefix;               ///< enclosing-cuboid code + valid length
  int hops = 0;                ///< network hops taken so far
  /// Admission-control bounce count (serving layer): how many times an
  /// overloaded index node shed this subquery back to its origin for a
  /// backed-off retry. At the retry ceiling the node admits it anyway.
  int retries = 0;
  /// The query's index point (unclamped) — index nodes rank their local
  /// candidates by L∞ distance to it when answering in top-k mode.
  IndexPoint focus;

  /// Chord key this subquery routes toward: prefix key rotated by φ.
  [[nodiscard]] Id routing_key() const {
    return prefix.key + scheme->rotation;
  }
};

/// Build the initial query for a region: clamp to the boundary (regions
/// outside it snap to the edge, where out-of-boundary entries live) and
/// compute the enclosing prefix. Always succeeds; the bool return is
/// kept for callers that treat construction as fallible.
[[nodiscard]] bool make_query(const SchemeRouting& scheme, std::uint64_t qid,
                              HostId origin, Region region, IndexPoint focus,
                              RangeQuery* out);

/// Split decision for query q at division p, computed without touching
/// the query's region or focus storage: the child count, the split
/// plane, and both children's prefix keys. The keys make the children
/// routable (routing_key = key + rotation) before — or without —
/// materializing them, so the router's descend and shared-next-hop
/// cases move the original query along instead of copying it.
struct QuerySplitPlan {
  int children = 1;    ///< 1 (region fits one half) or 2 (straddles)
  int dim = 0;         ///< dimension the division-p plane cuts
  double mid = 0.0;    ///< plane coordinate in that dimension
  bool upper = false;  ///< children == 1: region lies in the upper half
  int p = 0;           ///< division the plan was computed for
  Id upper_key = 0;    ///< child prefix key with bit p set
  Id lower_key = 0;    ///< child prefix key with bit p clear (== q's)
};

/// Plan the Algorithm 4 split of q at division p (1-based,
/// p == q.prefix.length + 1 in normal use).
[[nodiscard]] QuerySplitPlan plan_query_split(const RangeQuery& q, int p);

/// Apply a one-child plan in place: the prefix descends, the region and
/// focus are untouched (zero allocation).
void descend_query(RangeQuery& q, const QuerySplitPlan& plan);

/// Materialize a two-child plan, consuming q: the lower child steals
/// q's region and focus storage, only the upper child copies them.
/// Returned upper-first, as in the paper's listing.
[[nodiscard]] std::pair<RangeQuery, RangeQuery> split_query(
    RangeQuery q, const QuerySplitPlan& plan);

/// Algorithm 4 (QuerySplit) convenience form: returns one subquery when
/// the region lies entirely in one half (prefix descends, region kept),
/// or two (upper first, as in the paper) when it straddles the plane.
/// The routers use the plan/descend/split primitives above to avoid the
/// copies; this wrapper serves tests and the naive client-side splitter.
[[nodiscard]] std::vector<RangeQuery> query_split(const RangeQuery& q, int p);

}  // namespace lmk
