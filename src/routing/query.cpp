#include "routing/query.hpp"

#include "common/check.hpp"

namespace lmk {

bool make_query(const SchemeRouting& scheme, std::uint64_t qid, HostId origin,
                Region region, IndexPoint focus, RangeQuery* out) {
  LMK_CHECK(out != nullptr);
  LMK_CHECK(region.dims() == scheme.dims());
  clamp_region(region, scheme.boundary);
  out->scheme = &scheme;
  out->qid = qid;
  out->origin = origin;
  out->prefix = enclosing_prefix(region, scheme.boundary);
  out->region = std::move(region);
  out->focus = std::move(focus);
  out->hops = 0;
  return true;
}

std::vector<RangeQuery> query_split(const RangeQuery& q, int p) {
  LMK_CHECK(p >= 1 && p <= kIdBits);
  LMK_CHECK(p == q.prefix.length + 1);
  int j = 0;
  double mid = split_plane(q.prefix.key, p, q.scheme->boundary, &j);
  const Interval& range = q.region.ranges[static_cast<std::size_t>(j)];

  std::vector<RangeQuery> out;
  if (range.lo > mid) {
    // Entirely in the upper half: descend, set bit p.
    RangeQuery nq = q;
    nq.prefix.key = set_bit(nq.prefix.key, p);
    nq.prefix.length = p;
    out.push_back(std::move(nq));
  } else if (range.hi <= mid) {
    // Entirely in the lower half (points on the plane hash low).
    RangeQuery nq = q;
    nq.prefix.length = p;
    out.push_back(std::move(nq));
  } else {
    // Straddles: split the region at the plane. Upper child first, as in
    // the paper's listing.
    RangeQuery upper = q;
    upper.prefix.key = set_bit(upper.prefix.key, p);
    upper.prefix.length = p;
    upper.region.ranges[static_cast<std::size_t>(j)].lo = mid;
    RangeQuery lower = q;
    lower.prefix.length = p;
    lower.region.ranges[static_cast<std::size_t>(j)].hi = mid;
    out.push_back(std::move(upper));
    out.push_back(std::move(lower));
  }
  return out;
}

}  // namespace lmk
