#include "routing/query.hpp"

#include "common/check.hpp"

namespace lmk {

bool make_query(const SchemeRouting& scheme, std::uint64_t qid, HostId origin,
                Region region, IndexPoint focus, RangeQuery* out) {
  LMK_CHECK(out != nullptr);
  LMK_CHECK(region.dims() == scheme.dims());
  clamp_region(region, scheme.boundary);
  out->scheme = &scheme;
  out->qid = qid;
  out->origin = origin;
  out->prefix = enclosing_prefix(region, scheme.boundary);
  out->region = std::move(region);
  out->focus = std::move(focus);
  out->hops = 0;
  return true;
}

QuerySplitPlan plan_query_split(const RangeQuery& q, int p) {
  LMK_CHECK(p >= 1 && p <= kIdBits);
  LMK_CHECK(p == q.prefix.length + 1);
  QuerySplitPlan plan;
  plan.p = p;
  plan.mid = split_plane(q.prefix.key, p, q.scheme->boundary, &plan.dim);
  plan.lower_key = q.prefix.key;
  plan.upper_key = set_bit(q.prefix.key, p);
  const Interval& range =
      q.region.ranges[static_cast<std::size_t>(plan.dim)];
  if (range.lo > plan.mid) {
    plan.children = 1;
    plan.upper = true;  // entirely in the upper half: descend, set bit p
  } else if (range.hi <= plan.mid) {
    plan.children = 1;
    plan.upper = false;  // entirely in the lower (points on the plane
                         // hash low)
  } else {
    plan.children = 2;
  }
  return plan;
}

void descend_query(RangeQuery& q, const QuerySplitPlan& plan) {
  LMK_CHECK(plan.children == 1);
  if (plan.upper) q.prefix.key = plan.upper_key;
  q.prefix.length = plan.p;
}

std::pair<RangeQuery, RangeQuery> split_query(RangeQuery q,
                                              const QuerySplitPlan& plan) {
  LMK_CHECK(plan.children == 2);
  const auto dim = static_cast<std::size_t>(plan.dim);
  RangeQuery upper = q;  // the one unavoidable region/focus copy
  upper.prefix.key = plan.upper_key;
  upper.prefix.length = plan.p;
  upper.region.ranges[dim].lo = plan.mid;
  RangeQuery lower = std::move(q);  // steals q's storage
  lower.prefix.length = plan.p;
  lower.region.ranges[dim].hi = plan.mid;
  return {std::move(upper), std::move(lower)};
}

std::vector<RangeQuery> query_split(const RangeQuery& q, int p) {
  QuerySplitPlan plan = plan_query_split(q, p);
  std::vector<RangeQuery> out;
  if (plan.children == 1) {
    RangeQuery nq = q;
    descend_query(nq, plan);
    out.push_back(std::move(nq));
  } else {
    auto [upper, lower] = split_query(q, plan);
    out.push_back(std::move(upper));
    out.push_back(std::move(lower));
  }
  return out;
}

}  // namespace lmk
