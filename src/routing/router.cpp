#include "routing/router.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace lmk {

QueryRouter::QueryRouter(Ring& ring, SolveFn solve, FanoutFn fanout,
                         SentFn sent)
    : ring_(ring),
      solve_(std::move(solve)),
      fanout_(std::move(fanout)),
      sent_(std::move(sent)) {
  LMK_CHECK(solve_ != nullptr);
  LMK_CHECK(fanout_ != nullptr);
}

template <typename Fn>
void QueryRouter::episode(ChordNode& at, Fn&& work) {
  if (in_episode_) {
    // Nested call (surrogate refinement forwarding through
    // query_routing): stay in the enclosing episode so its flush batches
    // everything.
    work();
    return;
  }
  in_episode_ = true;
  work();
  in_episode_ = false;
  flush(at);
}

void QueryRouter::start(ChordNode& origin_node, RangeQuery q) {
  episode(origin_node,
          [&]() { query_routing(origin_node, std::move(q)); });
}

void QueryRouter::enqueue(NodeRef to, RangeQuery q, bool to_surrogate) {
  LMK_CHECK(to.node != nullptr);
  LMK_CHECK(in_episode_);
  outbox_.emplace_back(to, Parcel{std::move(q), to_surrogate});
}

void QueryRouter::flush(ChordNode& from) {
  LMK_CHECK(!in_episode_);
  // Group parcels by target node; one message per target, sized by the
  // paper's model for n subqueries. Grouping preserves enqueue order.
  std::vector<std::pair<NodeRef, Parcel>> box = std::move(outbox_);
  outbox_.clear();
  while (!box.empty()) {
    ChordNode* target = box.front().first.node;
    std::vector<Parcel> batch;
    std::vector<std::pair<NodeRef, Parcel>> rest;
    for (auto& [to, parcel] : box) {
      if (to.node == target) {
        batch.push_back(std::move(parcel));
      } else {
        rest.emplace_back(to, std::move(parcel));
      }
    }
    box = std::move(rest);

    if (window_ <= 0) {
      ship(&from, from.incarnation(), target, std::move(batch));
      continue;
    }
    // Coalescing window: hold the group at the sender; the first group
    // for a (sender, target) pair opens the window and schedules its
    // expiry, later groups (this or other queries) pile in for free.
    PendingBatch* pending = nullptr;
    for (PendingBatch& pb : pending_) {
      if (pb.from == &from && pb.target == target) {
        pending = &pb;
        break;
      }
    }
    if (pending == nullptr) {
      pending_.emplace_back();
      pending = &pending_.back();
      pending->from = &from;
      pending->from_inc = from.incarnation();
      pending->target = target;
      // Node-local coalescing timer: the sender holds its own outbox
      // for Δt; no inter-node effect until the expiry goes through
      // Network::send in ship().
      // lmk-lint: allow(raw-schedule)
      ring_.sim().schedule_after(
          window_, [this, f = &from, t = target]() { ship_pending(f, t); },
          from.host());
    }
    pending->episodes += 1;
    for (Parcel& p : batch) {
      pending->parcels.push_back(std::move(p));
    }
  }
}

void QueryRouter::ship_pending(ChordNode* from, ChordNode* target) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].from != from || pending_[i].target != target) continue;
    PendingBatch pb = std::move(pending_[i]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    if (pb.episodes > 1) coalesced_messages_ += pb.episodes - 1;
    if (!from->alive() || from->incarnation() != pb.from_inc) {
      // The sender departed while holding the window: its buffered
      // parcels go down with it, exactly like unsent outbox state on a
      // real node. Completion accounting still terminates every query.
      for (Parcel& p : pb.parcels) fanout_(p.q.qid, -1);
      return;
    }
    ship(from, pb.from_inc, target, std::move(pb.parcels));
    return;
  }
  // Window expired after the batch already shipped (cannot happen with
  // one expiry event per batch) — tolerated as a no-op.
}

void QueryRouter::ship(ChordNode* from, std::uint32_t from_inc,
                       ChordNode* target, std::vector<Parcel> batch) {
  LMK_CHECK(!batch.empty());
  // One wire message for the whole group, sized by the paper's model:
  // one 24-byte header plus (4k+9) bytes per subquery. With the
  // coalescing window the group can span queries (and schemes), so
  // bytes are attributed per qid — each query pays for its own
  // subqueries, the header is charged to the first parcel's query (the
  // one whose flush opened the message).
  std::uint64_t bytes = query_message_size(batch.front().q.scheme->dims(), 0);
  qid_bytes_.clear();
  for (Parcel& p : batch) {
    const std::size_t k = p.q.scheme->dims();
    const std::uint64_t sub = query_message_size(k, 1) - query_message_size(k, 0);
    bytes += sub;
    std::uint64_t* acc = nullptr;
    for (auto& [qid, b] : qid_bytes_) {
      if (qid == p.q.qid) {
        acc = &b;
        break;
      }
    }
    if (acc == nullptr) {
      qid_bytes_.emplace_back(p.q.qid, 0);
      acc = &qid_bytes_.back().second;
    }
    *acc += sub;
    p.q.hops += 1;
    LMK_CHECK(p.q.hops <= hop_limit_);
  }
  qid_bytes_.front().second += query_message_size(batch.front().q.scheme->dims(), 0);
  if (sent_) {
    for (const auto& [qid, b] : qid_bytes_) sent_(qid, b);
  }

  ChordNode* sender = from;
  std::uint32_t sender_inc = from_inc;
  std::uint32_t target_inc = target->incarnation();
  ring_.net().send(
      from->host(), target->host(), bytes,
      [this, target, target_inc, sender, sender_inc,
       batch = std::move(batch)]() mutable {
        if (target->alive() && target->incarnation() == target_inc) {
          episode(*target, [&]() {
            for (Parcel& p : batch) process(*target, std::move(p));
          });
          return;
        }
        // The target departed (or rejoined under a new identifier)
        // while the message was in flight. Retry from the sender,
        // whose stale routing entry is now detectably invalid.
        if (sender->alive() && sender->incarnation() == sender_inc) {
          episode(*sender, [&]() {
            for (Parcel& p : batch) {
              query_routing(*sender, std::move(p.q));
            }
          });
        } else {
          for (Parcel& p : batch) fanout_(p.q.qid, -1);
        }
      },
      &traffic_);
}

void QueryRouter::process(ChordNode& at, Parcel parcel) {
  if (parcel.to_surrogate) {
    surrogate_refine(at, std::move(parcel.q));
  } else {
    query_routing(at, std::move(parcel.q));
  }
}

void QueryRouter::query_routing(ChordNode& at, RangeQuery q) {
  LMK_CHECK(q.hops <= hop_limit_);
  auto dispatch = [&](RangeQuery&& sq) {
    NodeRef n = at.next_hop(sq.routing_key());
    if (n.node == &at) {
      // This node is the predecessor of the prefix key: hand the query
      // to the surrogate (our successor) for refinement.
      enqueue(at.successor(), std::move(sq), /*to_surrogate=*/true);
    } else {
      enqueue(n, std::move(sq), /*to_surrogate=*/false);
    }
  };
  if (q.prefix.length == kIdBits) {
    dispatch(std::move(q));
    return;
  }
  // Plan the split first: the children's routing keys come from the
  // plan, so the descend and shared-next-hop cases ship the original
  // query onward without ever copying its region or focus.
  QuerySplitPlan plan = plan_query_split(q, q.prefix.length + 1);
  if (plan.children == 1) {
    // Region fits one half: descend without splitting (the paper's
    // listing assumes a two-way split; a single-child descend is the
    // degenerate case after surrogate pruning).
    descend_query(q, plan);
    dispatch(std::move(q));
    return;
  }
  const Id rot = q.scheme->rotation;
  NodeRef n1 = at.next_hop(plan.upper_key + rot);
  NodeRef n2 = at.next_hop(plan.lower_key + rot);
  if (n1.node == n2.node) {
    // Both halves share the next hop: ship the larger query onward
    // and let a later node split it (Alg. 3 lines 8-9).
    dispatch(std::move(q));
    return;
  }
  fanout_(q.qid, +1);
  auto [upper, lower] = split_query(std::move(q), plan);
  dispatch(std::move(upper));  // upper first, as in the paper's listing
  dispatch(std::move(lower));
}

void QueryRouter::surrogate_refine(ChordNode& me, RangeQuery q) {
  LMK_CHECK(q.hops <= hop_limit_);
  if (!me.owns(q.routing_key())) {
    // Stale delivery (the sender's successor pointer lagged a
    // membership change): keep routing from here.
    query_routing(me, std::move(q));
    return;
  }
  // Virtual identifier: undo the scheme rotation so prefix logic works
  // on the unrotated k-d tree.
  const Id vid = me.id() - q.scheme->rotation;
  RangeQuery cur = std::move(q);
  while (true) {
    if (cur.prefix.length == kIdBits ||
        !same_prefix(cur.prefix.key, vid, cur.prefix.length)) {
      // Either the cuboid is a single leaf owned by me, or my identifier
      // lies beyond the cuboid's key span — every remaining key of the
      // cuboid falls in (predecessor, me]: solve the whole query here.
      solve_(cur, me);
      return;
    }
    int p = cur.prefix.length + 1;
    QuerySplitPlan plan = plan_query_split(cur, p);
    const int vbit = get_bit(vid, p);
    if (plan.children == 1) {
      descend_query(cur, plan);
      int qbit = get_bit(cur.prefix.key, p);
      if (qbit == vbit) continue;  // the child containing my identifier
      if (qbit == 0) {
        // Child cuboid's keys all precede my identifier (and follow my
        // predecessor): fully covered, solve locally.
        solve_(cur, me);
      } else {
        // Child cuboid's keys all exceed my identifier: forward it
        // (Alg. 5 line 17) — QueryRouting runs locally; the episode's
        // flush batches siblings bound for the same next hop.
        query_routing(me, std::move(cur));
      }
      return;
    }
    fanout_(cur.qid, +1);
    auto [upper, lower] = split_query(std::move(cur), plan);
    // Matching the two-child walk order of the paper's listing (upper
    // first): the half containing my identifier refines further; its
    // sibling is solved locally (keys below vid) or forwarded (above).
    if (vbit == 1) {
      solve_(lower, me);
      cur = std::move(upper);
    } else {
      query_routing(me, std::move(upper));
      cur = std::move(lower);
    }
  }
}

}  // namespace lmk
