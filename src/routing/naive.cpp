#include "routing/naive.hpp"

#include "common/check.hpp"

namespace lmk {

NaiveRouter::NaiveRouter(Ring& ring, SolveFn solve, FanoutFn fanout,
                         int split_depth, SentFn sent)
    : ring_(ring),
      solve_(std::move(solve)),
      fanout_(std::move(fanout)),
      sent_(std::move(sent)),
      split_depth_(split_depth) {
  LMK_CHECK(solve_ != nullptr);
  LMK_CHECK(fanout_ != nullptr);
  LMK_CHECK(split_depth_ >= 0 && split_depth_ <= kIdBits);
}

void NaiveRouter::start(ChordNode& origin_node, RangeQuery q) {
  // Client-side decomposition: split to the target depth, accumulating
  // the independent subqueries.
  std::vector<RangeQuery> pieces;
  std::vector<RangeQuery> work;
  work.push_back(std::move(q));
  while (!work.empty()) {
    RangeQuery cur = std::move(work.back());
    work.pop_back();
    if (cur.prefix.length >= split_depth_) {
      pieces.push_back(std::move(cur));
      continue;
    }
    QuerySplitPlan plan = plan_query_split(cur, cur.prefix.length + 1);
    if (plan.children == 1) {
      descend_query(cur, plan);  // prefix-only descend, no copies
      work.push_back(std::move(cur));
    } else {
      fanout_(cur.qid, +1);
      auto [upper, lower] = split_query(std::move(cur), plan);
      work.push_back(std::move(upper));
      work.push_back(std::move(lower));
    }
  }
  for (auto& piece : pieces) route(origin_node, std::move(piece));
}

void NaiveRouter::route(ChordNode& at, RangeQuery q) {
  LMK_CHECK(q.hops <= hop_limit_);
  Id key = q.routing_key();
  if (at.owns(key)) {
    walk(at, std::move(q));
    return;
  }
  NodeRef hop = at.next_hop(key);
  if (hop.node == &at) {
    // We are the predecessor: the owner is our successor.
    send(at, at.successor(), std::move(q), Step::kDeliver);
  } else {
    send(at, hop, std::move(q), Step::kRoute);
  }
}

void NaiveRouter::deliver(ChordNode& owner, RangeQuery q) {
  LMK_CHECK(q.hops <= hop_limit_);
  if (!owner.owns(q.routing_key())) {
    route(owner, std::move(q));  // stale hand-off: keep routing
    return;
  }
  walk(owner, std::move(q));
}

void NaiveRouter::walk(ChordNode& at, RangeQuery q) {
  LMK_CHECK(q.hops <= hop_limit_);
  // `at` holds part of the subquery's cuboid key span; report local
  // matches, and continue along the successor chain until the node
  // owning the span's end is reached — one hop per additional owner, no
  // tree sharing (the cost the embedded-tree router avoids).
  KeySpan span = prefix_span(q.prefix.key, q.prefix.length);
  Id span_end = span.hi + q.scheme->rotation;
  if (at.owns(span_end)) {
    solve_(q, at);
    return;
  }
  fanout_(q.qid, +1);
  solve_(q, at);
  send(at, at.successor(), std::move(q), Step::kWalk);
}

void NaiveRouter::send(ChordNode& from, NodeRef to, RangeQuery q, Step step) {
  LMK_CHECK(to.node != nullptr);
  ChordNode* target = to.node;
  ChordNode* sender = &from;
  std::uint32_t target_inc = target->incarnation();
  std::uint32_t sender_inc = from.incarnation();
  q.hops += 1;
  if (sent_) sent_(q.qid, q.scheme->query_message_bytes);
  ring_.net().send(
      from.host(), target->host(), q.scheme->query_message_bytes,
      [this, target, target_inc, sender, sender_inc, step,
       q = std::move(q)]() mutable {
        if (target->alive() && target->incarnation() == target_inc) {
          switch (step) {
            case Step::kRoute:
              route(*target, std::move(q));
              break;
            case Step::kDeliver:
              deliver(*target, std::move(q));
              break;
            case Step::kWalk:
              walk(*target, std::move(q));
              break;
          }
          return;
        }
        if (sender->alive() && sender->incarnation() == sender_inc) {
          route(*sender, std::move(q));
        } else {
          fanout_(q.qid, -1);
        }
      },
      &traffic_);
}

}  // namespace lmk
