#include "metric/edit_distance.hpp"

#include <algorithm>
#include <vector>

namespace lmk {

unsigned edit_distance(const std::string& a, const std::string& b) {
  const std::string& s = a.size() <= b.size() ? a : b;
  const std::string& t = a.size() <= b.size() ? b : a;
  std::size_t n = s.size();
  std::size_t m = t.size();
  if (n == 0) return static_cast<unsigned>(m);
  // Two-row DP over the shorter string.
  std::vector<unsigned> prev(n + 1), cur(n + 1);
  for (std::size_t i = 0; i <= n; ++i) prev[i] = static_cast<unsigned>(i);
  for (std::size_t j = 1; j <= m; ++j) {
    cur[0] = static_cast<unsigned>(j);
    for (std::size_t i = 1; i <= n; ++i) {
      unsigned sub = prev[i - 1] + (s[i - 1] == t[j - 1] ? 0u : 1u);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

unsigned edit_distance_bounded(const std::string& a, const std::string& b,
                               unsigned bound) {
  const std::string& s = a.size() <= b.size() ? a : b;
  const std::string& t = a.size() <= b.size() ? b : a;
  std::size_t n = s.size();
  std::size_t m = t.size();
  if (m - n > bound) return bound + 1;
  if (n == 0) return static_cast<unsigned>(m);
  const unsigned kInf = bound + 1;
  // Banded DP: only cells with |i - j| <= bound can be <= bound.
  std::vector<unsigned> prev(n + 1, kInf), cur(n + 1, kInf);
  for (std::size_t i = 0; i <= std::min<std::size_t>(n, bound); ++i) {
    prev[i] = static_cast<unsigned>(i);
  }
  for (std::size_t j = 1; j <= m; ++j) {
    std::size_t lo = j > bound ? j - bound : 1;
    std::size_t hi = std::min(n, j + bound);
    if (lo > hi) return bound + 1;
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 1 && j <= bound) cur[0] = static_cast<unsigned>(j);
    unsigned row_min = cur[0];
    for (std::size_t i = lo; i <= hi; ++i) {
      unsigned sub = prev[i - 1] + (s[i - 1] == t[j - 1] ? 0u : 1u);
      unsigned del = prev[i] >= kInf ? kInf : prev[i] + 1;
      unsigned ins = cur[i - 1] >= kInf ? kInf : cur[i - 1] + 1;
      cur[i] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, cur[i]);
    }
    if (row_min > bound) return bound + 1;
    std::swap(prev, cur);
  }
  return std::min(prev[n], kInf);
}

}  // namespace lmk
