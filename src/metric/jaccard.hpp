// Jaccard distance on finite sets: d(A,B) = 1 - |A∩B| / |A∪B|.
//
// A proper metric (it satisfies the triangle inequality — Levandowsky &
// Winter 1971), bounded in [0, 1], and a natural fit for the platform's
// "any metric space" claim: tag sets, shingled documents, feature sets.
#pragma once

#include <cstdint>
#include <vector>

namespace lmk {

/// A set of item ids, kept sorted and deduplicated.
class ItemSet {
 public:
  ItemSet() = default;

  /// Build from arbitrary ids; sorts and deduplicates.
  explicit ItemSet(std::vector<std::uint32_t> items);

  [[nodiscard]] const std::vector<std::uint32_t>& items() const {
    return items_;
  }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// |this ∩ other| via merge join.
  [[nodiscard]] std::size_t intersection_size(const ItemSet& other) const;

 private:
  std::vector<std::uint32_t> items_;
};

/// Jaccard distance; two empty sets are identical (distance 0), an
/// empty set is at distance 1 from any non-empty set.
[[nodiscard]] double jaccard_distance(const ItemSet& a, const ItemSet& b);

/// Metric-space adapter.
struct JaccardSpace {
  using Point = ItemSet;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    return jaccard_distance(a, b);
  }
};

}  // namespace lmk
