// Hausdorff distance between 2-D point sets — the metric the paper cites
// for image similarity (Huttenlocher et al., §2 example 3). An image is
// abstracted as the set of its feature/edge points.
#pragma once

#include <array>
#include <vector>

namespace lmk {

/// A 2-D feature point.
using Point2D = std::array<double, 2>;

/// A shape: a non-empty set of feature points.
using PointSet = std::vector<Point2D>;

/// Symmetric Hausdorff distance:
/// H(A,B) = max( max_{a∈A} min_{b∈B} |a-b|, max_{b∈B} min_{a∈A} |a-b| ).
/// A metric on non-empty compact sets. Empty sets: H(∅,∅)=0, else +inf
/// is clamped to a large sentinel — callers should avoid empty shapes.
[[nodiscard]] double hausdorff_distance(const PointSet& a, const PointSet& b);

/// Metric-space adapter.
struct HausdorffSpace {
  using Point = PointSet;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    return hausdorff_distance(a, b);
  }
};

}  // namespace lmk
