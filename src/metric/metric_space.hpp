// The generic metric space abstraction (paper §2, Definition 1).
//
// A metric space is a point type plus a "black box" distance function
// satisfying positivity, reflexivity, symmetry and the triangle
// inequality. Anything modelling the MetricSpace concept below can be
// indexed on the platform; the library ships L1/L2/L∞ on dense vectors,
// angular (cosine) distance on sparse TF-IDF vectors, Levenshtein edit
// distance on strings, and Hausdorff distance on 2-D point sets.
#pragma once

#include <concepts>
#include <cstddef>

namespace lmk {

/// A type usable as a similarity-search domain: exposes a Point type and
/// a symmetric, non-negative, triangle-inequality-respecting distance.
template <typename S>
concept MetricSpace = requires(const S& s, const typename S::Point& a,
                               const typename S::Point& b) {
  typename S::Point;
  { s.distance(a, b) } -> std::convertible_to<double>;
};

/// Adapter turning an unbounded metric into a bounded one via
/// d' = d / (1 + d) (paper §3.1, "Boundary of index space"). The map is
/// monotone and preserves the metric axioms; the image lies in [0, 1).
template <typename S>
class BoundedSpace {
 public:
  using Point = typename S::Point;

  explicit BoundedSpace(S inner) : inner_(std::move(inner)) {}

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    double d = inner_.distance(a, b);
    return d / (1.0 + d);
  }

  [[nodiscard]] const S& inner() const { return inner_; }

 private:
  S inner_;
};

}  // namespace lmk
