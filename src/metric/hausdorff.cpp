#include "metric/hausdorff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lmk {

namespace {

double directed(const PointSet& a, const PointSet& b) {
  double worst = 0;
  for (const Point2D& p : a) {
    double best = std::numeric_limits<double>::infinity();
    for (const Point2D& q : b) {
      double dx = p[0] - q[0];
      double dy = p[1] - q[1];
      best = std::min(best, dx * dx + dy * dy);
      // Early break: once p's running min cannot exceed the running max
      // over previous points, p cannot change the directed distance —
      // its true min is <= best <= worst. Bit-identical to the full
      // scan, since pruned points never contribute to `worst`.
      if (best <= worst) break;
    }
    worst = std::max(worst, best);
  }
  return std::sqrt(worst);
}

}  // namespace

double hausdorff_distance(const PointSet& a, const PointSet& b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1e18;  // sentinel for degenerate input
  return std::max(directed(a, b), directed(b, a));
}

}  // namespace lmk
