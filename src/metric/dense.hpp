// Dense-vector metric spaces: the Minkowski family L1 / L2 / L∞.
//
// These are the metrics of the paper's synthetic evaluation (Euclidean on
// 100-dimensional clustered data) and of the vocal-pattern / time-series
// application examples (L1, L2).
#pragma once

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace lmk {

/// A dense point in R^d.
using DenseVector = std::vector<double>;

/// Euclidean distance (L2): d(x,y) = sqrt(sum (x_i - y_i)^2).
struct L2Space {
  using Point = DenseVector;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    LMK_DCHECK(a.size() == b.size());
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      double d = a[i] - b[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  }
};

/// Hamilton / Manhattan distance (L1): d(x,y) = sum |x_i - y_i|.
struct L1Space {
  using Point = DenseVector;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    LMK_DCHECK(a.size() == b.size());
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc += std::abs(a[i] - b[i]);
    }
    return acc;
  }
};

/// Chebyshev distance (L∞): d(x,y) = max |x_i - y_i|. Also the lower
/// bound used for candidate ranking in the landmark index space.
struct LInfSpace {
  using Point = DenseVector;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    LMK_DCHECK(a.size() == b.size());
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc = std::max(acc, std::abs(a[i] - b[i]));
    }
    return acc;
  }
};

}  // namespace lmk
