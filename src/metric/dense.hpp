// Dense-vector metric spaces: the Minkowski family L1 / L2 / L∞.
//
// These are the metrics of the paper's synthetic evaluation (Euclidean on
// 100-dimensional clustered data) and of the vocal-pattern / time-series
// application examples (L1, L2).
//
// The distance kernels operate on std::span so they run identically over
// std::vector<double> points and over rows of the contiguous DenseMatrix
// storage below. l2_squared is the comparison-only fast path: ranking by
// squared distance is ranking by distance (sqrt is monotone and preserves
// ties), so argmin/top-k consumers defer the sqrt entirely.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace lmk {

/// A dense point in R^d.
using DenseVector = std::vector<double>;

/// Squared Euclidean distance — the sqrt-free comparison kernel.
[[nodiscard]] inline double l2_squared(std::span<const double> a,
                                       std::span<const double> b) {
  LMK_DCHECK(a.size() == b.size());
  double acc = 0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = pa[i] - pb[i];
    acc += d * d;
  }
  return acc;
}

[[nodiscard]] inline double l2_distance(std::span<const double> a,
                                        std::span<const double> b) {
  return std::sqrt(l2_squared(a, b));
}

[[nodiscard]] inline double l1_distance(std::span<const double> a,
                                        std::span<const double> b) {
  LMK_DCHECK(a.size() == b.size());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(a[i] - b[i]);
  }
  return acc;
}

[[nodiscard]] inline double linf_distance(std::span<const double> a,
                                          std::span<const double> b) {
  LMK_DCHECK(a.size() == b.size());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = std::max(acc, std::abs(a[i] - b[i]));
  }
  return acc;
}

/// Euclidean distance (L2): d(x,y) = sqrt(sum (x_i - y_i)^2).
struct L2Space {
  using Point = DenseVector;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    return l2_distance(a, b);
  }
};

/// Hamilton / Manhattan distance (L1): d(x,y) = sum |x_i - y_i|.
struct L1Space {
  using Point = DenseVector;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    return l1_distance(a, b);
  }
};

/// Chebyshev distance (L∞): d(x,y) = max |x_i - y_i|. Also the lower
/// bound used for candidate ranking in the landmark index space.
struct LInfSpace {
  using Point = DenseVector;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    return linf_distance(a, b);
  }
};

/// Contiguous row-major storage for a set of equal-dimension dense
/// points. One allocation instead of rows+1, so row scans (the oracle,
/// k-means assignment, landmark mapping) stream linearly through memory
/// rather than chasing a pointer per point.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Copy a vector-of-vectors point set into contiguous storage. Every
  /// row must have the same dimension.
  static DenseMatrix from_rows(std::span<const DenseVector> rows) {
    DenseMatrix m;
    if (rows.empty()) return m;
    m.rows_ = rows.size();
    m.cols_ = rows[0].size();
    m.data_.resize(m.rows_ * m.cols_);
    for (std::size_t r = 0; r < m.rows_; ++r) {
      LMK_CHECK(rows[r].size() == m.cols_);
      std::copy(rows[r].begin(), rows[r].end(),
                m.data_.begin() + static_cast<std::ptrdiff_t>(r * m.cols_));
    }
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0; }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    LMK_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    LMK_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy one row out as an owning DenseVector.
  [[nodiscard]] DenseVector row_vector(std::size_t r) const {
    auto s = row(r);
    return DenseVector(s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lmk
