#include "metric/jaccard.hpp"

#include <algorithm>

namespace lmk {

ItemSet::ItemSet(std::vector<std::uint32_t> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

std::size_t ItemSet::intersection_size(const ItemSet& other) const {
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < items_.size() && j < other.items_.size()) {
    if (items_[i] < other.items_[j]) {
      ++i;
    } else if (items_[i] > other.items_[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double jaccard_distance(const ItemSet& a, const ItemSet& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t inter = a.intersection_size(b);
  std::size_t uni = a.size() + b.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace lmk
