#include "metric/sparse_vector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace lmk {

SparseVector::SparseVector(std::vector<SparseEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.term < b.term;
            });
  // Merge duplicate terms, drop non-positive weights.
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    std::uint32_t term = entries_[i].term;
    double w = 0;
    while (i < entries_.size() && entries_[i].term == term) {
      w += entries_[i].weight;
      ++i;
    }
    if (w > 0) entries_[out++] = SparseEntry{term, w};
  }
  entries_.resize(out);
  recompute_norm();
}

void SparseVector::recompute_norm() {
  double acc = 0;
  for (const auto& e : entries_) acc += e.weight * e.weight;
  norm_ = std::sqrt(acc);
}

double SparseVector::dot(const SparseVector& other) const {
  double acc = 0;
  std::size_t i = 0, j = 0;
  const auto& a = entries_;
  const auto& b = other.entries_;
  while (i < a.size() && j < b.size()) {
    if (a[i].term < b[j].term) {
      ++i;
    } else if (a[i].term > b[j].term) {
      ++j;
    } else {
      acc += a[i].weight * b[j].weight;
      ++i;
      ++j;
    }
  }
  return acc;
}

void SparseVector::scale(double factor) {
  LMK_CHECK(factor > 0);
  for (auto& e : entries_) e.weight *= factor;
  norm_ *= factor;
}

void SparseVector::add_scaled(const SparseVector& other, double factor) {
  std::vector<SparseEntry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0, j = 0;
  const auto& a = entries_;
  const auto& b = other.entries_;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].term < b[j].term)) {
      merged.push_back(a[i++]);
    } else if (i >= a.size() || b[j].term < a[i].term) {
      merged.push_back(SparseEntry{b[j].term, b[j].weight * factor});
      ++j;
    } else {
      merged.push_back(
          SparseEntry{a[i].term, a[i].weight + b[j].weight * factor});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
  recompute_norm();
}

double AngularSpace::distance(const Point& a, const Point& b) const {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return std::numbers::pi / 2.0;
  double cosine = a.dot(b) / (a.norm() * b.norm());
  // Clamp: floating point can push the ratio slightly out of [-1, 1].
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine);
}

}  // namespace lmk
