// Sparse term vectors and the angular (cosine) metric for document
// similarity (paper §4.3: VSM with TF/IDF weights, distance =
// arccos(X·Y / |X||Y|)).
//
// The arccos of the cosine similarity — the angle between the vectors —
// is a proper metric on the unit sphere (unlike "1 - cosine"), which is
// why the paper uses it: the landmark mapping needs the triangle
// inequality to be contractive.
#pragma once

#include <cstdint>
#include <vector>

namespace lmk {

/// One (term, weight) component of a sparse vector.
struct SparseEntry {
  std::uint32_t term;
  double weight;
};

/// A sparse vector: entries sorted by ascending term id, weights > 0.
class SparseVector {
 public:
  SparseVector() = default;

  /// Build from possibly unsorted entries; sorts, merges duplicates
  /// (weights add), drops zero weights, and caches the norm.
  explicit SparseVector(std::vector<SparseEntry> entries);

  [[nodiscard]] const std::vector<SparseEntry>& entries() const {
    return entries_;
  }

  /// Number of non-zero terms ("document vector size" in Table 2).
  [[nodiscard]] std::size_t term_count() const { return entries_.size(); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Euclidean norm (cached).
  [[nodiscard]] double norm() const { return norm_; }

  /// Dot product with another sparse vector (merge join).
  [[nodiscard]] double dot(const SparseVector& other) const;

  /// Scale all weights in place (renormalization, centroid averaging).
  void scale(double factor);

  /// Accumulate `other * factor` into this vector (used by spherical
  /// k-means centroid updates). Result stays sorted/merged.
  void add_scaled(const SparseVector& other, double factor);

 private:
  void recompute_norm();

  std::vector<SparseEntry> entries_;
  double norm_ = 0;
};

/// Angular distance: the angle between two term vectors, in [0, π/2] for
/// non-negative weights. Defined as π/2 for a zero vector against a
/// non-zero one (maximally dissimilar), 0 for two zero vectors.
struct AngularSpace {
  using Point = SparseVector;

  [[nodiscard]] double distance(const Point& a, const Point& b) const;
};

}  // namespace lmk
