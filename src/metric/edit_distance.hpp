// Levenshtein edit distance on strings — the metric for DNA/protein
// sequence search and "similar sentences" (paper §2, examples 1 and 6).
#pragma once

#include <string>

namespace lmk {

/// Minimum number of point mutations (insert, delete, substitute) turning
/// `a` into `b`.
[[nodiscard]] unsigned edit_distance(const std::string& a,
                                     const std::string& b);

/// Banded variant: exact when the true distance is <= `bound`, otherwise
/// returns bound + 1. O(bound * min(|a|,|b|)) — the filter step of the
/// index uses it to refine candidates cheaply.
[[nodiscard]] unsigned edit_distance_bounded(const std::string& a,
                                             const std::string& b,
                                             unsigned bound);

/// Metric-space adapter over edit_distance.
struct EditDistanceSpace {
  using Point = std::string;

  [[nodiscard]] double distance(const Point& a, const Point& b) const {
    return static_cast<double>(edit_distance(a, b));
  }
};

}  // namespace lmk
