#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lmk {

namespace {

DenseVector sample_point(const SyntheticConfig& cfg, const DenseVector& center,
                         Rng& rng) {
  DenseVector p(cfg.dims);
  for (std::size_t d = 0; d < cfg.dims; ++d) {
    double v = center[d] + rng.normal(0.0, cfg.deviation);
    p[d] = std::clamp(v, cfg.range_lo, cfg.range_hi);
  }
  return p;
}

}  // namespace

SyntheticDataset generate_clustered(const SyntheticConfig& cfg, Rng& rng) {
  LMK_CHECK(cfg.objects > 0);
  LMK_CHECK(cfg.dims > 0);
  LMK_CHECK(cfg.clusters > 0);
  LMK_CHECK(cfg.range_hi > cfg.range_lo);
  SyntheticDataset out;
  out.centers.reserve(cfg.clusters);
  for (std::size_t c = 0; c < cfg.clusters; ++c) {
    DenseVector center(cfg.dims);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      center[d] = rng.uniform(cfg.range_lo, cfg.range_hi);
    }
    out.centers.push_back(std::move(center));
  }
  out.points.reserve(cfg.objects);
  out.assignments.reserve(cfg.objects);
  for (std::size_t i = 0; i < cfg.objects; ++i) {
    auto c = static_cast<std::uint32_t>(rng.below(cfg.clusters));
    out.assignments.push_back(c);
    out.points.push_back(sample_point(cfg, out.centers[c], rng));
  }
  return out;
}

std::vector<DenseVector> generate_queries(const SyntheticConfig& cfg,
                                          const SyntheticDataset& dataset,
                                          std::size_t count, Rng& rng) {
  LMK_CHECK(!dataset.centers.empty());
  std::vector<DenseVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const DenseVector& center =
        dataset.centers[rng.below(dataset.centers.size())];
    out.push_back(sample_point(cfg, center, rng));
  }
  return out;
}

double max_theoretical_distance(const SyntheticConfig& cfg) {
  double edge = cfg.range_hi - cfg.range_lo;
  return std::sqrt(static_cast<double>(cfg.dims) * edge * edge);
}

}  // namespace lmk
