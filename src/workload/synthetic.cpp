#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lmk {

namespace {

DenseVector sample_point(const SyntheticConfig& cfg, const DenseVector& center,
                         Rng& rng) {
  DenseVector p(cfg.dims);
  for (std::size_t d = 0; d < cfg.dims; ++d) {
    double v = center[d] + rng.normal(0.0, cfg.deviation);
    p[d] = std::clamp(v, cfg.range_lo, cfg.range_hi);
  }
  return p;
}

}  // namespace

SyntheticDataset generate_clustered(const SyntheticConfig& cfg, Rng& rng) {
  LMK_CHECK(cfg.objects > 0);
  LMK_CHECK(cfg.dims > 0);
  LMK_CHECK(cfg.clusters > 0);
  LMK_CHECK(cfg.range_hi > cfg.range_lo);
  SyntheticDataset out;
  out.centers.reserve(cfg.clusters);
  for (std::size_t c = 0; c < cfg.clusters; ++c) {
    DenseVector center(cfg.dims);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      center[d] = rng.uniform(cfg.range_lo, cfg.range_hi);
    }
    out.centers.push_back(std::move(center));
  }
  out.points.reserve(cfg.objects);
  out.assignments.reserve(cfg.objects);
  for (std::size_t i = 0; i < cfg.objects; ++i) {
    auto c = static_cast<std::uint32_t>(rng.below(cfg.clusters));
    out.assignments.push_back(c);
    out.points.push_back(sample_point(cfg, out.centers[c], rng));
  }
  return out;
}

std::vector<DenseVector> generate_queries(const SyntheticConfig& cfg,
                                          const SyntheticDataset& dataset,
                                          std::size_t count, Rng& rng) {
  LMK_CHECK(!dataset.centers.empty());
  std::vector<DenseVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const DenseVector& center =
        dataset.centers[rng.below(dataset.centers.size())];
    out.push_back(sample_point(cfg, center, rng));
  }
  return out;
}

SyntheticStream::SyntheticStream(const SyntheticConfig& cfg,
                                 std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  LMK_CHECK(cfg_.objects > 0);
  LMK_CHECK(cfg_.dims > 0);
  LMK_CHECK(cfg_.clusters > 0);
  LMK_CHECK(cfg_.range_hi > cfg_.range_lo);
  // Only the centres are materialized; everything else is a function
  // of (seed, index).
  Rng rng(mix64(seed_ ^ 0x636c7573746572ull));  // centre stream
  centers_.reserve(cfg_.clusters);
  for (std::size_t c = 0; c < cfg_.clusters; ++c) {
    DenseVector center(cfg_.dims);
    for (std::size_t d = 0; d < cfg_.dims; ++d) {
      center[d] = rng.uniform(cfg_.range_lo, cfg_.range_hi);
    }
    centers_.push_back(std::move(center));
  }
}

Rng SyntheticStream::rng_for(std::uint64_t i) const {
  return Rng(mix64(seed_ ^ (i + 1) * 0x9e3779b97f4a7c15ull));
}

std::uint32_t SyntheticStream::cluster_of(std::uint64_t i) const {
  Rng rng = rng_for(i);
  return static_cast<std::uint32_t>(rng.below(cfg_.clusters));
}

void SyntheticStream::point_into(std::uint64_t i, std::span<double> out) const {
  LMK_CHECK(i < cfg_.objects);
  LMK_CHECK(out.size() == cfg_.dims);
  Rng rng = rng_for(i);
  const DenseVector& center = centers_[rng.below(cfg_.clusters)];
  for (std::size_t d = 0; d < cfg_.dims; ++d) {
    double v = center[d] + rng.normal(0.0, cfg_.deviation);
    out[d] = std::clamp(v, cfg_.range_lo, cfg_.range_hi);
  }
}

DenseVector SyntheticStream::point(std::uint64_t i) const {
  DenseVector out(cfg_.dims);
  point_into(i, out);
  return out;
}

DenseVector SyntheticStream::query_near(std::uint32_t topic,
                                        std::uint64_t salt) const {
  // Queries draw from their own stream keyed by (topic, salt) so the
  // same topic can be queried many times with distinct foci.
  Rng rng(mix64(seed_ ^ 0x7175657279ull ^
                mix64(topic * 0x100000001b3ull + salt)));
  const DenseVector& center = centers_[topic % cfg_.clusters];
  DenseVector out(cfg_.dims);
  for (std::size_t d = 0; d < cfg_.dims; ++d) {
    double v = center[d] + rng.normal(0.0, cfg_.deviation);
    out[d] = std::clamp(v, cfg_.range_lo, cfg_.range_hi);
  }
  return out;
}

double max_theoretical_distance(const SyntheticConfig& cfg) {
  double edge = cfg.range_hi - cfg.range_lo;
  return std::sqrt(static_cast<double>(cfg.dims) * edge * edge);
}

}  // namespace lmk
