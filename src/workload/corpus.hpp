// Synthetic TREC-like document corpus (substitute for TREC-1,2-AP).
//
// The paper's §4.3 experiment uses 157,021 AP Newswire documents as
// TF/IDF term vectors: 233,640 distinct terms, 155.4 terms per document
// on average (Table 2 gives the full size distribution), SMART's 571
// stop words removed, queries averaging 3.5 unique terms. The corpus is
// not redistributable, so this generator reproduces the properties the
// experiment actually depends on:
//
//  * Zipfian term frequencies over a large vocabulary (so IDF varies
//    realistically and most vectors are extremely sparse);
//  * topical clustering at two levels: topics (broad term distributions
//    that landmarks can separate) and stories within topics (small
//    shared vocabularies — the mechanism that gives a document true
//    near neighbours under TF/IDF cosine, where purely independent
//    draws would leave everything near-orthogonal);
//  * document lengths matched to Table 2 (log-normal, clamped to
//    [1, 676], median ≈ 146, mean ≈ 155);
//  * stop-word removal modeled by excluding the top `stop_words` Zipf
//    ranks from documents and queries;
//  * short queries (~3.5 unique terms on average) drawn from topics,
//    mirroring the TREC-3 ad hoc topics 151-200.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "metric/sparse_vector.hpp"

namespace lmk {

/// Generator parameters; defaults mirror the paper's corpus statistics.
struct CorpusConfig {
  std::size_t documents = 157021;
  std::size_t vocabulary = 233640;
  std::size_t stop_words = 571;   ///< top Zipf ranks removed (SMART list)
  std::size_t topics = 100;       ///< latent topical clusters
  std::size_t stories_per_topic = 50;  ///< sub-topic clusters
  std::size_t story_vocab = 40;   ///< shared terms per story
  double story_share = 0.45;      ///< fraction of terms from the story
  double topic_share = 0.35;      ///< fraction of terms from the topic
  double zipf_exponent = 1.05;    ///< term-frequency skew
  double length_log_mu = 4.984;   ///< log-normal doc length: ln(146)
  double length_log_sigma = 0.52;
  std::size_t min_terms = 1;      ///< Table 2: minimum vector size
  std::size_t max_terms = 676;    ///< Table 2: maximum vector size
};

/// A generated corpus: TF/IDF-weighted sparse document vectors plus the
/// latent topic of each document (used by tests and query generation).
class Corpus {
 public:
  Corpus(const CorpusConfig& cfg, Rng& rng);

  [[nodiscard]] const std::vector<SparseVector>& documents() const {
    return docs_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& topics() const {
    return topic_of_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& stories() const {
    return story_of_;
  }
  [[nodiscard]] const CorpusConfig& config() const { return cfg_; }

  /// Number of distinct terms actually used across the corpus.
  [[nodiscard]] std::size_t distinct_terms() const { return distinct_terms_; }

  /// Generate `count` query vectors: each picks a topic and draws a
  /// Poisson(mean_terms)-sized set of topical terms (≥1), TF/IDF
  /// weighted with the corpus' IDF. The paper repeats 50 topics to get
  /// 2000 queries; callers do the repetition.
  [[nodiscard]] std::vector<SparseVector> make_queries(std::size_t count,
                                                       double mean_terms,
                                                       Rng& rng) const;

  /// Document vector sizes (term counts) — the Table 2 statistic.
  [[nodiscard]] std::vector<double> vector_sizes() const;

 private:
  std::uint32_t draw_term(std::uint32_t topic, std::uint32_t story,
                          Rng& rng) const;
  std::uint32_t story_term(std::uint32_t topic, std::uint32_t story,
                           std::size_t i) const;

  CorpusConfig cfg_;
  std::vector<SparseVector> docs_;
  std::vector<std::uint32_t> topic_of_;
  std::vector<std::uint32_t> story_of_;
  std::vector<double> idf_;  ///< per term (0 when unused)
  ZipfSampler zipf_;
  std::size_t distinct_terms_ = 0;
};

}  // namespace lmk
