#include "workload/open_loop.hpp"

#include "common/check.hpp"

namespace lmk {

std::vector<Arrival> open_loop_schedule(const OpenLoopConfig& cfg) {
  LMK_CHECK(cfg.arrivals_per_sec > 0.0);
  LMK_CHECK(cfg.topics > 0);
  LMK_CHECK(cfg.count > 0);
  // Two decorrelated streams: arrival clock and topic choice. Forking
  // keeps the schedule stable if either draw pattern ever changes.
  Rng root(cfg.seed);
  Rng clock = root.fork();
  Rng choice = root.fork();
  ZipfSampler zipf(cfg.topics, cfg.zipf_s);
  const double mean_gap = 1.0 / cfg.arrivals_per_sec;
  std::vector<Arrival> out;
  out.reserve(cfg.count);
  double t = 0;
  for (std::uint64_t i = 0; i < cfg.count; ++i) {
    t += clock.exponential(mean_gap);
    out.push_back(
        Arrival{t, static_cast<std::uint32_t>(zipf(choice))});
  }
  return out;
}

std::vector<std::uint64_t> topic_histogram(std::span<const Arrival> arrivals,
                                           std::size_t topics) {
  std::vector<std::uint64_t> out(topics, 0);
  for (const Arrival& a : arrivals) {
    LMK_CHECK(a.topic < topics);
    ++out[a.topic];
  }
  return out;
}

}  // namespace lmk
