// Open-loop workload generation for the flagship scenario.
//
// The fig benches are closed-loop: a fixed query batch, each arrival
// scheduled by exponential interarrival but completion-independent
// only at small scale. A production-shaped load test needs an
// *open-loop* stream — arrivals fire on their own clock regardless of
// how far behind the system is, so queue depth and tail latency are
// observable instead of being hidden by back-pressure.
//
// The stream models skewed interest: arrivals are Poisson in time
// (exponential interarrivals at a configured rate) and each arrival
// targets a *topic* drawn from a Zipf distribution — NearBucket-LSH-
// style query popularity where a few topics absorb most traffic. The
// flagship bench maps topics onto the synthetic dataset's clusters, so
// popular topics hammer the same index region.
//
// Generation is sequential from two forked Rng streams and never
// touches the thread pool: the schedule is byte-identical for any
// LMK_THREADS and reproducible from the config seed alone.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace lmk {

/// Parameters of one open-loop arrival stream.
struct OpenLoopConfig {
  double arrivals_per_sec = 50.0;  ///< Poisson rate λ
  std::size_t topics = 10;         ///< Zipf support (dataset clusters)
  double zipf_s = 0.9;             ///< Zipf exponent (0 = uniform-ish)
  std::uint64_t count = 10000;     ///< arrivals to generate
  std::uint64_t seed = 42;         ///< generation seed
};

/// One query arrival: absolute time (seconds from stream start) and
/// the Zipf-popular topic it targets.
struct Arrival {
  double at_sec = 0;
  std::uint32_t topic = 0;

  bool operator==(const Arrival&) const = default;
};

/// Generate the full arrival schedule, sorted by time by construction.
[[nodiscard]] std::vector<Arrival> open_loop_schedule(
    const OpenLoopConfig& cfg);

/// Arrivals per topic (tests assert the Zipf head dominates).
[[nodiscard]] std::vector<std::uint64_t> topic_histogram(
    std::span<const Arrival> arrivals, std::size_t topics);

}  // namespace lmk
