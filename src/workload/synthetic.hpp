// Synthetic clustered dataset generator (paper §4.2, Table 1).
//
// "Each dataset contains 10^5 data objects which are clustered in the
// data space. Data in each data cluster are modeled as normal
// distribution." Fewer clusters / smaller deviation = more skew. Query
// sets are generated with the same method.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "metric/dense.hpp"

namespace lmk {

/// Table 1 parameters (defaults are the paper's values).
struct SyntheticConfig {
  std::size_t objects = 100000;   ///< dataset size
  std::size_t dims = 100;         ///< dimensionality
  double range_lo = 0.0;          ///< per-dimension lower bound
  double range_hi = 100.0;        ///< per-dimension upper bound
  std::size_t clusters = 10;      ///< number of clusters
  double deviation = 20.0;        ///< per-cluster, per-dimension std dev
};

/// A generated clustered dataset plus the cluster structure (tests use
/// the assignments; experiments only need the points).
struct SyntheticDataset {
  std::vector<DenseVector> points;
  std::vector<DenseVector> centers;          ///< one per cluster
  std::vector<std::uint32_t> assignments;    ///< cluster of each point
};

/// Generate a clustered dataset: uniform cluster centres, Gaussian
/// points clamped to the configured range.
[[nodiscard]] SyntheticDataset generate_clustered(const SyntheticConfig& cfg,
                                                  Rng& rng);

/// Generate a query set from the same distribution, reusing the
/// dataset's cluster centres ("the corresponding query sets are
/// generated with the same method").
[[nodiscard]] std::vector<DenseVector> generate_queries(
    const SyntheticConfig& cfg, const SyntheticDataset& dataset,
    std::size_t count, Rng& rng);

/// The paper's theoretical maximum distance for a config:
/// sqrt(dims * (hi - lo)^2) — 1000 for the Table 1 values. Query range
/// factors are expressed relative to this.
[[nodiscard]] double max_theoretical_distance(const SyntheticConfig& cfg);

}  // namespace lmk
