// Synthetic clustered dataset generator (paper §4.2, Table 1).
//
// "Each dataset contains 10^5 data objects which are clustered in the
// data space. Data in each data cluster are modeled as normal
// distribution." Fewer clusters / smaller deviation = more skew. Query
// sets are generated with the same method.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "metric/dense.hpp"

namespace lmk {

/// Table 1 parameters (defaults are the paper's values).
struct SyntheticConfig {
  std::size_t objects = 100000;   ///< dataset size
  std::size_t dims = 100;         ///< dimensionality
  double range_lo = 0.0;          ///< per-dimension lower bound
  double range_hi = 100.0;        ///< per-dimension upper bound
  std::size_t clusters = 10;      ///< number of clusters
  double deviation = 20.0;        ///< per-cluster, per-dimension std dev
};

/// A generated clustered dataset plus the cluster structure (tests use
/// the assignments; experiments only need the points).
struct SyntheticDataset {
  std::vector<DenseVector> points;
  std::vector<DenseVector> centers;          ///< one per cluster
  std::vector<std::uint32_t> assignments;    ///< cluster of each point
};

/// Generate a clustered dataset: uniform cluster centres, Gaussian
/// points clamped to the configured range.
[[nodiscard]] SyntheticDataset generate_clustered(const SyntheticConfig& cfg,
                                                  Rng& rng);

/// Generate a query set from the same distribution, reusing the
/// dataset's cluster centres ("the corresponding query sets are
/// generated with the same method").
[[nodiscard]] std::vector<DenseVector> generate_queries(
    const SyntheticConfig& cfg, const SyntheticDataset& dataset,
    std::size_t count, Rng& rng);

/// Random-access view of a clustered synthetic dataset that is never
/// materialized: point i is regenerated on demand from (seed, i), so a
/// 1M+ object corpus is a function, not 800 MB of vectors. Streaming
/// index construction walks it in batches, and the sampled
/// ground-truth oracle re-walks it independently — both see the exact
/// same objects. Per-point generation derives a private Rng from the
/// point's index, so any access order (or thread count) yields
/// identical data.
///
/// The cluster structure matches generate_clustered (uniform centres,
/// Gaussian points clamped to the range); the draw *sequence* differs,
/// so streams are their own datasets, not a replay of the batch
/// generator.
class SyntheticStream {
 public:
  SyntheticStream(const SyntheticConfig& cfg, std::uint64_t seed);

  [[nodiscard]] std::uint64_t size() const { return cfg_.objects; }
  [[nodiscard]] std::size_t dims() const { return cfg_.dims; }
  [[nodiscard]] const SyntheticConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<DenseVector>& centers() const {
    return centers_;
  }

  /// Cluster of object i (the topic the open-loop workload targets).
  [[nodiscard]] std::uint32_t cluster_of(std::uint64_t i) const;

  /// Regenerate object i into caller storage (no allocation).
  void point_into(std::uint64_t i, std::span<double> out) const;

  /// Regenerate object i as an owning vector.
  [[nodiscard]] DenseVector point(std::uint64_t i) const;

  /// A query point near `topic`'s cluster centre; `salt` decorrelates
  /// successive queries against the same topic.
  [[nodiscard]] DenseVector query_near(std::uint32_t topic,
                                       std::uint64_t salt) const;

 private:
  [[nodiscard]] Rng rng_for(std::uint64_t i) const;

  SyntheticConfig cfg_;
  std::uint64_t seed_;
  std::vector<DenseVector> centers_;
};

/// The paper's theoretical maximum distance for a config:
/// sqrt(dims * (hi - lo)^2) — 1000 for the Table 1 values. Query range
/// factors are expressed relative to this.
[[nodiscard]] double max_theoretical_distance(const SyntheticConfig& cfg);

}  // namespace lmk
