#include "workload/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace lmk {

namespace {

/// Small-count term frequency: 1 + geometric tail, capped. Matches the
/// empirical shape of within-document term counts (most terms appear
/// once or twice).
std::uint32_t draw_tf(Rng& rng) {
  std::uint32_t tf = 1;
  while (tf < 10 && rng.uniform() < 0.35) ++tf;
  return tf;
}

std::size_t draw_poisson(double mean, Rng& rng) {
  // Knuth's algorithm; mean is small (~3.5) so this is fast.
  double l = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > l);
  return k - 1;
}

}  // namespace

Corpus::Corpus(const CorpusConfig& cfg, Rng& rng)
    : cfg_(cfg), zipf_(cfg.vocabulary, cfg.zipf_exponent) {
  LMK_CHECK(cfg.documents > 0);
  LMK_CHECK(cfg.vocabulary > cfg.stop_words + cfg.topics);
  LMK_CHECK(cfg.topics > 0);
  LMK_CHECK(cfg.stories_per_topic > 0);
  LMK_CHECK(cfg.story_vocab > 0);
  LMK_CHECK(cfg.story_share + cfg.topic_share <= 1.0);
  LMK_CHECK(cfg.max_terms >= cfg.min_terms && cfg.min_terms >= 1);

  docs_.reserve(cfg.documents);
  topic_of_.reserve(cfg.documents);
  story_of_.reserve(cfg.documents);

  // Pass 1: raw term-frequency documents + document frequencies.
  std::vector<std::vector<SparseEntry>> raw(cfg.documents);
  std::unordered_map<std::uint32_t, std::uint32_t> df;
  for (std::size_t d = 0; d < cfg.documents; ++d) {
    auto topic = static_cast<std::uint32_t>(rng.below(cfg.topics));
    auto story = static_cast<std::uint32_t>(rng.below(cfg.stories_per_topic));
    topic_of_.push_back(topic);
    story_of_.push_back(story);
    double len = std::exp(rng.normal(cfg.length_log_mu, cfg.length_log_sigma));
    auto target = static_cast<std::size_t>(std::llround(len));
    target = std::clamp(target, cfg.min_terms, cfg.max_terms);
    std::unordered_set<std::uint32_t> terms;
    std::size_t attempts = 0;
    while (terms.size() < target && attempts < target * 30 + 100) {
      ++attempts;
      terms.insert(draw_term(topic, story, rng));
    }
    // Sorted term order: each term costs one draw_tf() rng draw, so the
    // draw order (and with it every downstream value) must not depend on
    // the unordered_set's implementation-defined iteration order.
    std::vector<std::uint32_t> doc_terms(terms.begin(), terms.end());
    std::sort(doc_terms.begin(), doc_terms.end());
    raw[d].reserve(doc_terms.size());
    for (std::uint32_t t : doc_terms) {
      raw[d].push_back(SparseEntry{t, static_cast<double>(draw_tf(rng))});
      ++df[t];
    }
  }
  distinct_terms_ = df.size();

  // IDF = ln(N / df) — terms in every document get weight 0 and drop out.
  idf_.assign(cfg.vocabulary, 0.0);
  auto n_docs = static_cast<double>(cfg.documents);
  // Each term writes its own idf_ slot exactly once; no draw, sum or
  // output depends on the visit order.
  // lmk-lint: iteration-order-independent
  for (const auto& [term, count] : df) {
    idf_[term] = std::log(n_docs / static_cast<double>(count));
  }

  // Pass 2: TF/IDF weighting.
  for (std::size_t d = 0; d < cfg.documents; ++d) {
    for (SparseEntry& e : raw[d]) e.weight *= idf_[e.term];
    docs_.emplace_back(std::move(raw[d]));
  }
}

std::uint32_t Corpus::story_term(std::uint32_t topic, std::uint32_t story,
                                 std::size_t i) const {
  // Deterministic story vocabulary carved out of the topic's block; the
  // same (topic, story, i) always names the same term, which is what
  // makes same-story documents (and the queries targeting the story)
  // share concrete mid-frequency terms.
  std::size_t block = (cfg_.vocabulary - cfg_.stop_words) / cfg_.topics;
  std::uint64_t h = mix64((static_cast<std::uint64_t>(topic) << 40) ^
                          (static_cast<std::uint64_t>(story) << 20) ^ i);
  return static_cast<std::uint32_t>(cfg_.stop_words + topic * block +
                                    (h % block));
}

std::uint32_t Corpus::draw_term(std::uint32_t topic, std::uint32_t story,
                                Rng& rng) const {
  auto stop = static_cast<std::uint32_t>(cfg_.stop_words);
  std::size_t block =
      (cfg_.vocabulary - cfg_.stop_words) / cfg_.topics;
  double u = rng.uniform();
  if (u < cfg_.story_share) {
    // Story draw: a term from the story's small shared vocabulary.
    return story_term(topic, story, rng.below(cfg_.story_vocab));
  }
  if (u < cfg_.story_share + cfg_.topic_share) {
    // Topical draw: Zipf rank folded into the topic's vocabulary block,
    // so within-topic term use is skewed too.
    std::size_t r = zipf_(rng) % block;
    return static_cast<std::uint32_t>(cfg_.stop_words + topic * block + r);
  }
  // Global draw; stop-word ranks are rejected (the SMART-list removal).
  for (int tries = 0; tries < 64; ++tries) {
    std::size_t r = zipf_(rng);
    if (r >= stop) return static_cast<std::uint32_t>(r);
  }
  return stop;  // Zipf tail virtually never needs this fallback
}

std::vector<SparseVector> Corpus::make_queries(std::size_t count,
                                               double mean_terms,
                                               Rng& rng) const {
  LMK_CHECK(mean_terms >= 1.0);
  std::vector<SparseVector> out;
  out.reserve(count);
  auto n_docs = static_cast<double>(cfg_.documents);
  for (std::size_t i = 0; i < count; ++i) {
    auto topic = static_cast<std::uint32_t>(rng.below(cfg_.topics));
    auto story = static_cast<std::uint32_t>(rng.below(cfg_.stories_per_topic));
    std::size_t target = std::max<std::size_t>(
        1, draw_poisson(mean_terms - 1.0, rng) + 1);
    std::unordered_set<std::uint32_t> terms;
    std::size_t attempts = 0;
    while (terms.size() < target && attempts < target * 30 + 50) {
      ++attempts;
      // Queries name the subject they seek: draw from the story's
      // vocabulary (a TREC topic asks about one concrete subject).
      std::uint32_t t = story_term(topic, story, rng.below(cfg_.story_vocab));
      if (idf_[t] <= 0.0) t = draw_term(topic, story, rng);
      // Prefer terms the corpus actually uses; unseen terms cannot match
      // any document and would just dilute the query vector.
      if (idf_[t] > 0.0) terms.insert(t);
    }
    // Sorted order: the entries feed an ordered output (the query
    // vector); SparseVector re-sorts, but the lint rule wants the
    // source order deterministic too, and sorting here is free.
    std::vector<std::uint32_t> query_terms(terms.begin(), terms.end());
    std::sort(query_terms.begin(), query_terms.end());
    std::vector<SparseEntry> entries;
    entries.reserve(query_terms.size());
    for (std::uint32_t t : query_terms) {
      double w = idf_[t] > 0.0 ? idf_[t] : std::log(n_docs);
      entries.push_back(SparseEntry{t, w});
    }
    if (entries.empty()) {
      entries.push_back(SparseEntry{static_cast<std::uint32_t>(
                                        cfg_.stop_words),
                                    std::log(n_docs)});
    }
    out.emplace_back(std::move(entries));
  }
  return out;
}

std::vector<double> Corpus::vector_sizes() const {
  std::vector<double> out;
  out.reserve(docs_.size());
  for (const SparseVector& d : docs_) {
    out.push_back(static_cast<double>(d.term_count()));
  }
  return out;
}

}  // namespace lmk
