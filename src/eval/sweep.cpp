#include "eval/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace lmk {

namespace {

std::size_t env_resident_cap() {
  const char* v = std::getenv("LMK_SWEEP_RESIDENT");
  if (v != nullptr && *v != '\0') {
    long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  return 0;
}

}  // namespace

std::size_t SweepDriver::resident_cap() const {
  std::size_t cap = opts_.max_resident;
  if (cap == 0) cap = env_resident_cap();
  if (cap == 0) cap = thread_count();
  return cap == 0 ? 1 : cap;
}

std::vector<CellOutput> SweepDriver::run() {
  std::vector<CellOutput> outputs(cells_.size());
  std::atomic<std::size_t> resident{0};
  std::atomic<std::size_t> peak{0};
  parallel_tasks(
      cells_.size(),
      [&](std::size_t i) {
        std::size_t now = resident.fetch_add(1, std::memory_order_acq_rel) + 1;
        std::size_t seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
        outputs[i] = cells_[i]();
        resident.fetch_sub(1, std::memory_order_acq_rel);
      },
      resident_cap());
  peak_resident_ = peak.load(std::memory_order_relaxed);
  LMK_CHECK(peak_resident_ <= resident_cap());
  return outputs;
}

void SweepDriver::run_into(TablePrinter& table) {
  std::vector<CellOutput> outputs = run();
  for (const CellOutput& out : outputs) {
    for (const std::string& line : out.lines) {
      std::printf("%s\n", line.c_str());
    }
  }
  for (CellOutput& out : outputs) {
    for (auto& row : out.rows) table.add_row(std::move(row));
  }
}

}  // namespace lmk
