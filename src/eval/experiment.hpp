// Shared experiment driver: assembles the full stack (topology →
// simulator → Chord → platform → typed index), loads a dataset, applies
// optional load balancing, and replays query batches with the paper's
// arrival process, collecting QueryStats. Every figure bench is a thin
// parameter sweep over this driver.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "balance/migration.hpp"
#include "core/typed_index.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"

namespace lmk {

/// Stack-wide experiment configuration (defaults follow §4.1).
struct ExperimentConfig {
  std::size_t nodes = 256;           ///< overlay size (paper topology: 1740)
  std::uint64_t seed = 42;
  SimTime target_mean_rtt = 180 * kMillisecond;
  SimTime mean_interarrival = 150 * kSecond;  ///< exp. query arrivals
  std::size_t top_k = 10;            ///< per-node local results & recall k
  bool pns = true;                   ///< Chord-PNS (paper default)
  bool rotate = false;               ///< static space-mapping rotation
  bool load_balance = false;         ///< dynamic load migration
  double delta = 0.0;                ///< balancing threshold factor δ
  int probe_level = 4;               ///< balancing probing level P_l
  RoutingMode routing = RoutingMode::kTree;
  int naive_split_depth = 10;        ///< client decomposition (naive mode)
  /// Per-node local store backend (sorted / hnsw / pivot) and tuning.
  /// Defaults to the LMK_LOCAL_STORE process knob; benches set it
  /// explicitly to run backend ablation cells side by side.
  LocalStoreOptions local_store = LocalStoreOptions::from_env();
};

/// A delay-space topology built once and shared read-only across
/// concurrently running experiment cells (DelaySpaceModel is immutable
/// after construction). The build options ride along so an experiment
/// can verify the handle matches what it would have built itself.
struct SharedTopology {
  DelaySpaceModel::Options opts;
  DelaySpaceModel model;

  explicit SharedTopology(const DelaySpaceModel::Options& o)
      : opts(o), model(o) {}
};

/// End-to-end experiment over one metric space / one index scheme.
///
/// Sweep-cell contract (src/eval/sweep.hpp): the heavyweight inputs —
/// dataset, query set, precomputed ground truth, topology — are held
/// behind shared_ptr-to-const handles, so N concurrent cells over the
/// same corpus keep one copy, not N. All mutable state (simulator,
/// ring, platform, index, RNG) is per-instance; two instances never
/// share mutable state, which is what makes interleaved and concurrent
/// cells produce stats identical to isolated runs.
template <MetricSpace S>
class SimilarityExperiment {
 public:
  using Point = typename S::Point;
  using DatasetHandle = std::shared_ptr<const std::vector<Point>>;
  using TruthHandle =
      std::shared_ptr<const std::vector<std::vector<std::uint64_t>>>;

  /// The topology this config would build: options identical to the
  /// constructor's own derivation (seed from the first fork of the
  /// config-seeded RNG), so cells with equal (nodes, rtt, seed) can
  /// share one instance.
  [[nodiscard]] static std::shared_ptr<const SharedTopology> make_topology(
      const ExperimentConfig& cfg) {
    DelaySpaceModel::Options topo;
    topo.hosts = cfg.nodes;
    topo.target_mean_rtt = cfg.target_mean_rtt;
    topo.seed = Rng(cfg.seed).fork().next();
    return std::make_shared<const SharedTopology>(topo);
  }

  /// Builds the whole stack and bulk-loads `dataset`. The mapper (and
  /// thus the landmark selection) is provided by the caller so benches
  /// can sweep selection schemes. If cfg.load_balance is set, dynamic
  /// migration runs to stability before any queries. `topology` (from
  /// make_topology) is used when its options match what this config
  /// derives — the experiment's own random draws are identical either
  /// way — and silently rebuilt per-instance when they do not.
  SimilarityExperiment(
      ExperimentConfig cfg, const S& space, DatasetHandle dataset,
      LandmarkMapper<S> mapper, const std::string& scheme_name,
      std::shared_ptr<const SharedTopology> topology = nullptr)
      : cfg_(cfg),
        space_(space),
        dataset_(std::move(dataset)),
        rng_(cfg.seed) {
    DelaySpaceModel::Options topo;
    topo.hosts = cfg.nodes;
    topo.target_mean_rtt = cfg.target_mean_rtt;
    topo.seed = rng_.fork().next();  // always drawn: draws stay identical
    if (topology != nullptr && topology->opts.hosts == topo.hosts &&
        topology->opts.target_mean_rtt == topo.target_mean_rtt &&
        topology->opts.seed == topo.seed &&
        topology->opts.access_delay_fraction ==
            topo.access_delay_fraction) {
      topology_ = std::shared_ptr<const DelaySpaceModel>(topology,
                                                         &topology->model);
    } else {
      topology_ = std::make_shared<const DelaySpaceModel>(topo);
    }
    net_ = std::make_unique<Network>(sim_, *topology_);
    Ring::Options ring_opts;
    ring_opts.pns = cfg.pns;
    ring_opts.seed = rng_.fork().next();
    ring_ = std::make_unique<Ring>(*net_, ring_opts);
    for (std::size_t h = 0; h < cfg.nodes; ++h) {
      ring_->create_node(static_cast<HostId>(h));
    }
    ring_->bootstrap();
    IndexPlatform::Options popts;
    popts.top_k = cfg.top_k;
    popts.routing = cfg.routing;
    popts.naive_split_depth = cfg.naive_split_depth;
    platform_ = std::make_unique<IndexPlatform>(*ring_, popts);
    index_ = std::make_unique<LandmarkIndex<S>>(*platform_, space_,
                                                std::move(mapper), scheme_name,
                                                cfg.rotate, cfg.local_store);
    index_->bind_objects([this](std::uint64_t id) -> const Point& {
      return (*dataset_)[static_cast<std::size_t>(id)];
    });
    // Parallel offline build: landmark mapping + LPH hashing fan out
    // over the pool; placement is identical to a per-object insert loop.
    index_->bulk_load(*dataset_);
    if (cfg.load_balance) {
      LoadBalancer::Options bopts;
      bopts.delta = cfg.delta;
      bopts.probe_level = cfg.probe_level;
      balancer_ = std::make_unique<LoadBalancer>(*ring_, bopts,
                                                 platform_->balancer_hooks());
      balancer_->run_until_stable();
      platform_->check_placement_invariant();
    }
    // Audit-enabled runs (LMK_AUDIT=1; the scripts/check.sh --audit
    // leg): verify the full invariant catalogue on a virtual-time
    // cadence while batches run, plus sampled query-completeness
    // cross-checks after each batch. fail_fast aborts with the
    // violation diagnostics, failing the test that drove the run.
    if (audit::audit_env_enabled()) {
      audit::Auditor::Options aopts;
      // Query batches span hours of virtual time (mean interarrival is
      // minutes); a 10-minute cadence still yields dozens of mid-run
      // passes per batch while keeping the audited suite within ~2x of
      // the unaudited wall-clock (full passes are O(nodes * fingers)).
      aopts.cadence = 600 * kSecond;
      aopts.fail_fast = true;
      // Derived from the config seed, not rng_, so the experiment's own
      // random draws are identical with and without auditing.
      aopts.seed = cfg.seed ^ 0xa0d17a0d17ull;
      auditor_ = std::make_unique<audit::Auditor>(*ring_, platform_.get(),
                                                  aopts);
      auditor_->install_standard_checkers();
      auditor_->capture_baseline();
      auditor_->attach();
    }
  }

  /// Convenience overload: takes the dataset by value and wraps it in a
  /// private handle (tests and single-cell callers that do not share).
  SimilarityExperiment(ExperimentConfig cfg, const S& space,
                       std::vector<Point> dataset, LandmarkMapper<S> mapper,
                       const std::string& scheme_name)
      : SimilarityExperiment(
            cfg, space,
            std::make_shared<const std::vector<Point>>(std::move(dataset)),
            std::move(mapper), scheme_name) {}

  /// Install a shared query workload; ground-truth k-NN sets are
  /// computed lazily per query and cached across batches (they do not
  /// depend on the radius).
  void set_queries(std::shared_ptr<const std::vector<Point>> queries) {
    queries_ = std::move(queries);
    shared_truth_ = nullptr;
    truth_cache_.assign(queries_->size(), std::nullopt);
  }

  /// Shared queries plus shared precomputed ground truth: N sweep cells
  /// over the same corpus hold one truth table, not N copies.
  void set_queries(std::shared_ptr<const std::vector<Point>> queries,
                   TruthHandle truth) {
    LMK_CHECK(truth != nullptr && truth->size() == queries->size());
    queries_ = std::move(queries);
    shared_truth_ = std::move(truth);
    truth_cache_.clear();
  }

  /// By-value conveniences (wrap into private handles).
  void set_queries(std::vector<Point> queries) {
    set_queries(
        std::make_shared<const std::vector<Point>>(std::move(queries)));
  }
  void set_queries(std::vector<Point> queries,
                   std::vector<std::vector<std::uint64_t>> truth) {
    set_queries(
        std::make_shared<const std::vector<Point>>(std::move(queries)),
        std::make_shared<const std::vector<std::vector<std::uint64_t>>>(
            std::move(truth)));
  }

  /// Compute the brute-force k-NN truth for a query set over a dataset
  /// (shareable across experiments; see set_queries overload). The
  /// oracle fans out per query over the deterministic thread pool.
  static std::vector<std::vector<std::uint64_t>> compute_truth(
      const S& space, const std::vector<Point>& dataset,
      const std::vector<Point>& queries, std::size_t k) {
    return knn_bruteforce_batch(space, dataset, queries, k);
  }

  /// Run every installed query once as a range query of the given
  /// radius: exponential interarrivals, random origin nodes, per-node
  /// top-k replies, querier-side true-distance refinement, recall@k
  /// against brute force.
  [[nodiscard]] QueryStats run_batch(double radius) {
    QueryStats stats;
    std::vector<ChordNode*> nodes = ring_->alive_nodes();
    Rng arrivals = rng_.fork();
    SimTime t = sim_.now();
    for (std::size_t i = 0; i < queries_->size(); ++i) {
      t += static_cast<SimTime>(
          arrivals.exponential(static_cast<double>(cfg_.mean_interarrival)));
      ChordNode* origin = nodes[arrivals.below(nodes.size())];
      sim_.schedule_at(t, [this, i, radius, origin, &stats]() {
        index_->range_query(
            *origin, (*queries_)[i], radius, ReplyMode::kTopK,
            [this, i, &stats](const IndexPlatform::QueryOutcome& outcome) {
              auto object = [this](std::uint64_t id) -> const Point& {
                return (*dataset_)[static_cast<std::size_t>(id)];
              };
              std::vector<std::uint64_t> retrieved = index_->refine_knn(
                  (*queries_)[i], outcome.results, object, cfg_.top_k);
              stats.add(outcome, recall(truth(i), retrieved));
            });
      });
    }
    sim_.run();
    if (auditor_) {
      auditor_->audit_queries(index_->scheme_id());
    }
    return stats;
  }

  /// The auditor driving LMK_AUDIT runs (null otherwise).
  [[nodiscard]] audit::Auditor* auditor() { return auditor_.get(); }

  /// Node loads (index entries), sorted descending — the paper's load
  /// distribution figures (4 and 6).
  [[nodiscard]] std::vector<std::size_t> load_curve() const {
    std::vector<std::size_t> loads = platform_->load_distribution();
    std::sort(loads.begin(), loads.end(), std::greater<>());
    return loads;
  }

  [[nodiscard]] const std::vector<Point>& dataset() const {
    return *dataset_;
  }
  [[nodiscard]] const std::vector<Point>& queries() const {
    return *queries_;
  }
  IndexPlatform& platform() { return *platform_; }
  Ring& ring() { return *ring_; }
  Simulator& sim() { return sim_; }
  LandmarkIndex<S>& index() { return *index_; }
  [[nodiscard]] int migrations() const {
    return balancer_ ? balancer_->migrations() : 0;
  }

 private:
  [[nodiscard]] const std::vector<std::uint64_t>& truth(std::size_t qi) {
    if (shared_truth_ != nullptr) return (*shared_truth_)[qi];
    auto& slot = truth_cache_[qi];
    if (!slot.has_value()) {
      const Point& q = (*queries_)[qi];
      slot = knn_bruteforce_with(
          dataset_->size(),
          [this, &q](std::size_t j) {
            return space_.distance(q, (*dataset_)[j]);
          },
          cfg_.top_k);
    }
    return *slot;
  }

  ExperimentConfig cfg_;
  const S& space_;
  DatasetHandle dataset_;
  std::shared_ptr<const std::vector<Point>> queries_ =
      std::make_shared<const std::vector<Point>>();
  TruthHandle shared_truth_;
  std::vector<std::optional<std::vector<std::uint64_t>>> truth_cache_;
  Rng rng_;
  Simulator sim_;
  std::shared_ptr<const DelaySpaceModel> topology_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Ring> ring_;
  std::unique_ptr<IndexPlatform> platform_;
  std::unique_ptr<LandmarkIndex<S>> index_;
  std::unique_ptr<LoadBalancer> balancer_;
  std::unique_ptr<audit::Auditor> auditor_;
};

}  // namespace lmk
