// Aggregation of the paper's per-query cost metrics over a batch.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/index_platform.hpp"

namespace lmk {

/// Means (and extremes) of the §4.1 metrics over a query batch.
struct QueryStats {
  Accumulator recall;           ///< recall@k against brute force
  Accumulator hops;             ///< max path length per query
  Accumulator response_ms;      ///< first-result latency, milliseconds
  Accumulator max_latency_ms;   ///< all-results latency, milliseconds
  Accumulator query_bytes;      ///< query-delivery bandwidth per query
  Accumulator result_bytes;     ///< results-delivery bandwidth per query
  Accumulator total_bytes;      ///< both directions
  Accumulator query_messages;   ///< query-delivery messages per query
  Accumulator index_nodes;      ///< distinct index nodes contacted
  Accumulator subqueries;       ///< local solves per query
  Accumulator candidates;       ///< refinement candidates, total
  Accumulator scanned;          ///< stored entries examined, total
  Accumulator max_node_cand;    ///< busiest node's refinement share
  std::size_t incomplete = 0;   ///< queries that lost subqueries
  std::vector<double> latency_samples_ms;  ///< raw max-latency samples

  /// 95th-percentile all-results latency over the batch (ms).
  [[nodiscard]] double p95_latency_ms() const;

  /// Fold one finished query into the batch statistics.
  void add(const IndexPlatform::QueryOutcome& outcome, double recall_value);

  /// Header cells matching `row()` (for TablePrinter).
  [[nodiscard]] static std::vector<std::string> header();

  /// One formatted row: label followed by the metric means.
  [[nodiscard]] std::vector<std::string> row(const std::string& label) const;
};

}  // namespace lmk
