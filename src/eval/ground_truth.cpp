#include "eval/ground_truth.hpp"

#include <unordered_set>

#include "common/rng.hpp"

namespace lmk {

std::vector<std::size_t> sample_query_indices(std::size_t n_queries,
                                              std::size_t sample,
                                              std::uint64_t seed) {
  LMK_CHECK(sample <= n_queries);
  Rng rng(seed);
  std::vector<std::size_t> out = rng.sample_indices(n_queries, sample);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> knn_bruteforce(
    std::size_t n, const std::function<double(std::size_t)>& distance_to,
    std::size_t k) {
  LMK_CHECK(distance_to != nullptr);
  return knn_bruteforce_with(n, distance_to, k);
}

std::vector<std::uint64_t> range_bruteforce(
    std::size_t n, const std::function<double(std::size_t)>& distance_to,
    double radius) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (distance_to(i) <= radius) out.push_back(static_cast<std::uint64_t>(i));
  }
  return out;
}

double recall(std::span<const std::uint64_t> truth,
              std::span<const std::uint64_t> retrieved) {
  if (truth.empty()) return 1.0;
  std::unordered_set<std::uint64_t> got(retrieved.begin(), retrieved.end());
  std::size_t hit = 0;
  for (std::uint64_t t : truth) {
    if (got.count(t) != 0) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

}  // namespace lmk
