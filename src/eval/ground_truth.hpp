// Exact brute-force answers used to score the distributed index
// (paper §4.1: "the k-nearest data objects obtained by searching the
// whole dataset ... are considered as the theoretical results").
//
// The oracle is the single most expensive offline phase of a bench run
// (queries × objects true-distance evaluations), so the hot path is a
// templated kernel (no per-point std::function indirection) and the
// batch driver fans queries out over the deterministic thread pool —
// each query's truth vector is computed independently and written to
// its own slot, so results are bit-identical for any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "metric/dense.hpp"

namespace lmk {

/// The k nearest object ids among {0..n-1} by the given distance
/// callable, ascending distance, ties broken by id (deterministic).
/// The callable is invoked exactly once per object, in index order, so
/// monotone surrogates (e.g. squared L2) yield identical rankings.
template <typename DistanceFn>
[[nodiscard]] std::vector<std::uint64_t> knn_bruteforce_with(
    std::size_t n, DistanceFn&& distance_to, std::size_t k) {
  // Sized construction + direct stores: push_back's per-element size
  // bookkeeping measurably slows the scan loop (~2x at bench scale).
  std::vector<std::pair<double, std::uint64_t>> scored(n);
  for (std::size_t i = 0; i < n; ++i) {
    scored[i] = {distance_to(i), static_cast<std::uint64_t>(i)};
  }
  std::size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end());
  std::vector<std::uint64_t> out;
  out.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) out.push_back(scored[i].second);
  return out;
}

/// Type-erased convenience wrapper (kept for callers that already hold a
/// std::function; the templated overload avoids the per-point virtual
/// call on hot paths).
[[nodiscard]] std::vector<std::uint64_t> knn_bruteforce(
    std::size_t n, const std::function<double(std::size_t)>& distance_to,
    std::size_t k);

/// Brute-force k-NN truth for a whole query batch over one dataset,
/// parallelized per query over the deterministic pool. `space` must be a
/// MetricSpace over `Point` (read-only; distance calls must be pure).
template <typename S, typename Point = typename S::Point>
[[nodiscard]] std::vector<std::vector<std::uint64_t>> knn_bruteforce_batch(
    const S& space, const std::vector<Point>& dataset,
    const std::vector<Point>& queries, std::size_t k) {
  std::vector<std::vector<std::uint64_t>> out(queries.size());
  parallel_for(
      queries.size(),
      [&](std::size_t qi) {
        const Point& q = queries[qi];
        out[qi] = knn_bruteforce_with(
            dataset.size(),
            [&](std::size_t j) { return space.distance(q, dataset[j]); },
            k);
      },
      /*grain=*/1);
  return out;
}

/// Dense-L2 specialization of the batch oracle: copies both sides into
/// contiguous row-major DenseMatrix storage once and ranks by squared
/// distance (sqrt is monotone, so the ids are identical to the generic
/// path — with neither the per-point pointer chase nor the sqrt).
[[nodiscard]] inline std::vector<std::vector<std::uint64_t>>
knn_bruteforce_batch(const L2Space&, const std::vector<DenseVector>& dataset,
                     const std::vector<DenseVector>& queries, std::size_t k) {
  DenseMatrix data = DenseMatrix::from_rows(dataset);
  DenseMatrix qm = DenseMatrix::from_rows(queries);
  std::vector<std::vector<std::uint64_t>> out(queries.size());
  parallel_for(
      queries.size(),
      [&](std::size_t qi) {
        std::span<const double> q = qm.row(qi);
        out[qi] = knn_bruteforce_with(
            data.rows(),
            [&](std::size_t j) { return l2_squared(q, data.row(j)); }, k);
      },
      /*grain=*/1);
  return out;
}

/// Seeded selection of a query sample: `sample` distinct indices from
/// [0, n_queries), ascending. The flagship bench scores recall on this
/// sample only, so oracle cost is O(sample · n) instead of O(n²).
[[nodiscard]] std::vector<std::size_t> sample_query_indices(
    std::size_t n_queries, std::size_t sample, std::uint64_t seed);

/// Exact k-NN truth for a set of (already sampled) query points over a
/// *streamed* corpus: `fill(first, out)` regenerates objects
/// first … first+out.size()-1 into caller storage, and the corpus is
/// consumed once in batches — resident memory is one batch plus one
/// k-slot heap per query, never the whole dataset.
///
/// Each query keeps the k smallest (distance, id) pairs in a bounded
/// max-heap; that set is unique under the lexicographic total order,
/// so the result is exact and independent of batch size and thread
/// count — identical to knn_bruteforce_batch over the materialized
/// corpus.
template <typename S, typename FillBatch, typename Point = typename S::Point>
[[nodiscard]] std::vector<std::vector<std::uint64_t>> knn_truth_streamed(
    const S& space, std::uint64_t n_objects, FillBatch&& fill,
    std::span<const Point> queries, std::size_t k,
    std::size_t batch = 8192) {
  LMK_CHECK(batch > 0);
  using Scored = std::pair<double, std::uint64_t>;
  std::vector<std::vector<Scored>> heaps(queries.size());
  for (auto& h : heaps) h.reserve(k + 1);
  std::vector<Point> staged(
      static_cast<std::size_t>(std::min<std::uint64_t>(batch, n_objects)));
  for (std::uint64_t at = 0; at < n_objects; at += batch) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(batch, n_objects - at));
    fill(at, std::span<Point>(staged.data(), n));
    // One task per query (grain 1): each owns its heap outright.
    parallel_for(
        queries.size(),
        [&](std::size_t qi) {
          auto& heap = heaps[qi];
          for (std::size_t j = 0; j < n; ++j) {
            Scored cand{space.distance(queries[qi], staged[j]), at + j};
            if (heap.size() < k) {
              heap.push_back(cand);
              std::push_heap(heap.begin(), heap.end());
            } else if (k > 0 && cand < heap.front()) {
              std::pop_heap(heap.begin(), heap.end());
              heap.back() = cand;
              std::push_heap(heap.begin(), heap.end());
            }
          }
        },
        /*grain=*/1);
  }
  std::vector<std::vector<std::uint64_t>> out(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    std::sort(heaps[qi].begin(), heaps[qi].end());
    out[qi].reserve(heaps[qi].size());
    for (const auto& [d, id] : heaps[qi]) out[qi].push_back(id);
  }
  return out;
}

/// All object ids within `radius` (inclusive) of the query.
[[nodiscard]] std::vector<std::uint64_t> range_bruteforce(
    std::size_t n, const std::function<double(std::size_t)>& distance_to,
    double radius);

/// Recall = |truth ∩ retrieved| / |truth| (paper §4.1). 1.0 when the
/// truth set is empty (nothing to find).
[[nodiscard]] double recall(std::span<const std::uint64_t> truth,
                            std::span<const std::uint64_t> retrieved);

}  // namespace lmk
