// Exact brute-force answers used to score the distributed index
// (paper §4.1: "the k-nearest data objects obtained by searching the
// whole dataset ... are considered as the theoretical results").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace lmk {

/// The k nearest object ids among {0..n-1} by the given distance
/// functional, ascending distance, ties broken by id (deterministic).
[[nodiscard]] std::vector<std::uint64_t> knn_bruteforce(
    std::size_t n, const std::function<double(std::size_t)>& distance_to,
    std::size_t k);

/// All object ids within `radius` (inclusive) of the query.
[[nodiscard]] std::vector<std::uint64_t> range_bruteforce(
    std::size_t n, const std::function<double(std::size_t)>& distance_to,
    double radius);

/// Recall = |truth ∩ retrieved| / |truth| (paper §4.1). 1.0 when the
/// truth set is empty (nothing to find).
[[nodiscard]] double recall(std::span<const std::uint64_t> truth,
                            std::span<const std::uint64_t> retrieved);

}  // namespace lmk
