#include "eval/metrics.hpp"

#include "common/stats.hpp"
#include "common/table.hpp"

namespace lmk {

void QueryStats::add(const IndexPlatform::QueryOutcome& outcome,
                     double recall_value) {
  recall.add(recall_value);
  hops.add(outcome.hops);
  response_ms.add(static_cast<double>(outcome.response_time) / kMillisecond);
  max_latency_ms.add(static_cast<double>(outcome.max_latency) / kMillisecond);
  latency_samples_ms.push_back(static_cast<double>(outcome.max_latency) /
                               kMillisecond);
  query_bytes.add(static_cast<double>(outcome.query_bytes));
  result_bytes.add(static_cast<double>(outcome.result_bytes));
  total_bytes.add(
      static_cast<double>(outcome.query_bytes + outcome.result_bytes));
  query_messages.add(static_cast<double>(outcome.query_messages));
  index_nodes.add(outcome.index_nodes);
  subqueries.add(outcome.subqueries);
  candidates.add(static_cast<double>(outcome.candidates));
  scanned.add(static_cast<double>(outcome.scanned));
  max_node_cand.add(static_cast<double>(outcome.max_node_candidates));
  if (outcome.lost_subqueries > 0) ++incomplete;
}

double QueryStats::p95_latency_ms() const {
  if (latency_samples_ms.empty()) return 0.0;
  return percentile(latency_samples_ms, 95);
}

std::vector<std::string> QueryStats::header() {
  return {"label",     "recall", "hops",  "resp_ms",    "maxlat_ms",
          "qry_B",     "res_B",  "total_B", "qry_msgs", "nodes",
          "subqueries", "cand",  "node_cand"};
}

std::vector<std::string> QueryStats::row(const std::string& label) const {
  return {label,
          fmt(recall.mean(), 3),
          fmt(hops.mean(), 2),
          fmt(response_ms.mean(), 1),
          fmt(max_latency_ms.mean(), 1),
          fmt(query_bytes.mean(), 0),
          fmt(result_bytes.mean(), 0),
          fmt(total_bytes.mean(), 0),
          fmt(query_messages.mean(), 1),
          fmt(index_nodes.mean(), 1),
          fmt(subqueries.mean(), 1),
          fmt(candidates.mean(), 0),
          fmt(max_node_cand.mean(), 0)};
}

}  // namespace lmk
