// Deterministic parallel sweep engine (see DESIGN.md, "Sweep engine").
//
// Every figure/table bench is a loop over mutually independent sweep
// cells — one (scheme × config) experiment stack each, sharing only
// immutable inputs (dataset, query set, precomputed ground truth,
// topology). SweepDriver runs those cells concurrently on the chunked
// thread pool (common/parallel, parallel_tasks) while keeping the
// emitted output byte-identical to the serial loop it replaced:
//
//  * Cells never print. Everything a cell would have written to stdout
//    goes into its CellOutput, and the driver emits the outputs in
//    declaration order after every cell finished.
//  * Cells derive all randomness from seeds baked into their config at
//    add_cell time — never from RNG state shared across cells — so a
//    cell's result does not depend on which cells ran before or beside
//    it.
//  * Nested parallel_for calls inside a cell (bulk load, oracle) run
//    inline on the cell's worker with unchanged chunk boundaries, so
//    intra-cell results are bit-identical at any LMK_THREADS.
//  * At most `resident_cap()` cells are resident (constructed, running,
//    not yet destroyed) at once, bounding peak memory to
//    cap × stack-size even at full paper scale. The cap comes from
//    Options::max_resident, else LMK_SWEEP_RESIDENT, else the pool
//    thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace lmk {

/// Everything one sweep cell would have printed, in print order.
struct CellOutput {
  /// Free-form lines (e.g. "## scheme: N migrations"), emitted before
  /// any table rows, each followed by a newline.
  std::vector<std::string> lines;
  /// Rows appended to the bench's TablePrinter in declaration order.
  std::vector<std::vector<std::string>> rows;
};

/// Runs registered cells concurrently, collects outputs in declaration
/// order. A driver is single-use: add cells, run once.
class SweepDriver {
 public:
  struct Options {
    /// Maximum cells resident at once (0 = LMK_SWEEP_RESIDENT env var,
    /// else the pool thread count). Clamped to >= 1.
    std::size_t max_resident = 0;
  };

  using Cell = std::function<CellOutput()>;

  SweepDriver() = default;
  explicit SweepDriver(Options opts) : opts_(opts) {}

  /// Register a cell. The callable must own (or share immutably) every
  /// input it touches and derive its seeds from its own config.
  void add_cell(Cell fn) { cells_.push_back(std::move(fn)); }

  /// Run every cell (bounded-concurrency, see resident_cap) and return
  /// the outputs in declaration order.
  [[nodiscard]] std::vector<CellOutput> run();

  /// run(), then print every cell's lines in declaration order followed
  /// by every cell's rows appended to `table` (the bench prints the
  /// table afterwards) — the exact emission order of the serial loop.
  void run_into(TablePrinter& table);

  [[nodiscard]] std::size_t cells() const { return cells_.size(); }

  /// Effective resident-cell cap this driver will run with.
  [[nodiscard]] std::size_t resident_cap() const;

  /// Highest number of cells simultaneously resident during the last
  /// run() (<= resident_cap()).
  [[nodiscard]] std::size_t peak_resident() const { return peak_resident_; }

 private:
  Options opts_;
  std::vector<Cell> cells_;
  std::size_t peak_resident_ = 0;
};

}  // namespace lmk
