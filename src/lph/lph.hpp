// Locality-preserving hashing of the k-dimensional index space onto the
// m-bit Chord key space (paper §3.2, Algorithm 2).
//
// The index space is split m times, cycling through the dimensions
// (division i splits dimension (i-1) mod k at the midpoint of the
// current range); a point's key collects one bit per division — 1 when
// the point falls in the upper half. The 2^m resulting hypercuboids are
// exactly the leaves of a balanced k-d tree, and every prefix of length
// p identifies an internal tree node / larger cuboid. Nearby index
// points therefore share long key prefixes, which Chord's successor
// mapping turns into placement on the same or neighbouring nodes.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "landmark/mapper.hpp"

namespace lmk {

/// An axis-aligned box in the index space (a query region, or a cuboid).
struct Region {
  std::vector<Interval> ranges;

  [[nodiscard]] std::size_t dims() const { return ranges.size(); }
};

/// A k-d tree prefix: the first `length` bits of `key` identify a
/// hypercuboid; the remaining bits of `key` are zero-padding.
struct Prefix {
  Id key = 0;
  int length = 0;
};

/// Algorithm 2 (LPH_Function): the m-bit key of the leaf cuboid holding
/// `point`. Points are clamped to the boundary first (the mapper already
/// clamps, but queries may construct off-boundary points). Points
/// exactly on a split plane fall in the *lower* half (the algorithm
/// tests `point[j] > mid`). Span-based so flat coordinate rows (SoA
/// stores, streaming loads) hash without materializing an IndexPoint.
[[nodiscard]] Id lph_hash(std::span<const double> point,
                          const Boundary& boundary);

/// Braced-list convenience (tests write lph_hash({0.75, 0.25}, b)).
[[nodiscard]] inline Id lph_hash(std::initializer_list<double> point,
                                 const Boundary& boundary) {
  return lph_hash(std::span<const double>(point.begin(), point.size()),
                  boundary);
}

/// The prefix (code of the smallest enclosing cuboid) for a query
/// region: split until the region no longer fits entirely inside one
/// half (paper §3.3, "the code of the smallest hypercuboid that can
/// completely hold the query region"). The region is clamped to the
/// boundary. length == kIdBits means the region fits in one leaf.
[[nodiscard]] Prefix enclosing_prefix(const Region& region,
                                      const Boundary& boundary);

/// Geometry of the cuboid identified by `prefix`: walk the splits encoded
/// in the prefix bits and return the resulting box.
[[nodiscard]] Region cuboid_region(Prefix prefix, const Boundary& boundary);

/// The split midpoint used at division `p` (1-based) for a query that has
/// already fixed the first p-1 bits of `prefix_key` — the value QuerySplit
/// (Algorithm 4) computes by replaying prior splits of dimension
/// (p-1) mod k. Also returns the dimension being split via `dim_out`.
[[nodiscard]] double split_plane(Id prefix_key, int p, const Boundary& boundary,
                                 int* dim_out);

/// True when `region` (already clamped) intersects the cuboid of
/// `prefix`; closed-interval semantics on both sides.
[[nodiscard]] bool region_intersects_cuboid(const Region& region,
                                            Prefix prefix,
                                            const Boundary& boundary);

/// Clamp a region to the boundary. A dimension lying entirely outside
/// collapses to a degenerate interval on the nearest edge — matching the
/// storage rule that out-of-boundary points are mapped to the boundary
/// (§3.1), so such queries still see the edge-mapped entries.
void clamp_region(Region& region, const Boundary& boundary);

/// The cube of edge 2r centred on `center` (a near-neighbour query's
/// index-space region before clamping).
[[nodiscard]] Region query_region(const IndexPoint& center, double radius);

/// L∞ distance from `point` to the axis-aligned box (0 for any point
/// inside it, closed-interval semantics). Shared by the HNSW box-guided
/// range beam (src/store/hnsw_store.cpp) and the serving layer's
/// coverage-based cache invalidation (src/serve/): a mutated entry
/// whose point is at distance 0 from a cached query region covers it,
/// so the cached hit-list must be dropped.
[[nodiscard]] inline double linf_box_distance(std::span<const double> point,
                                              const Region& box) {
  double dist = 0.0;
  for (std::size_t d = 0; d < point.size(); ++d) {
    const Interval& r = box.ranges[d];
    dist = std::max({dist, r.lo - point[d], point[d] - r.hi});
  }
  return dist;
}

}  // namespace lmk
