#include "lph/lph.hpp"

#include <algorithm>

namespace lmk {

Id lph_hash(std::span<const double> point, const Boundary& boundary) {
  std::size_t k = boundary.size();
  LMK_CHECK(point.size() == k);
  LMK_CHECK(k >= 1);
  std::vector<Interval> r(boundary.begin(), boundary.end());
  Id key = 0;
  for (int i = 1; i <= kIdBits; ++i) {
    std::size_t j = static_cast<std::size_t>(i - 1) % k;
    double v = std::clamp(point[j], boundary[j].lo, boundary[j].hi);
    double mid = (r[j].lo + r[j].hi) / 2.0;
    if (v > mid) {
      r[j].lo = mid;
      key = (key << 1) | 1u;
    } else {
      r[j].hi = mid;
      key = key << 1;
    }
  }
  return key;
}

void clamp_region(Region& region, const Boundary& boundary) {
  LMK_CHECK(region.dims() == boundary.size());
  for (std::size_t j = 0; j < boundary.size(); ++j) {
    Interval& q = region.ranges[j];
    LMK_CHECK(q.lo <= q.hi);
    // A region entirely outside the boundary snaps to the nearest edge
    // rather than failing: out-of-boundary *entries* are stored at the
    // boundary point (§3.1), so an out-of-boundary query must still see
    // them (degenerate edge interval).
    q.lo = std::clamp(q.lo, boundary[j].lo, boundary[j].hi);
    q.hi = std::clamp(q.hi, boundary[j].lo, boundary[j].hi);
  }
}

Prefix enclosing_prefix(const Region& region, const Boundary& boundary) {
  std::size_t k = boundary.size();
  LMK_CHECK(region.dims() == k);
  std::vector<Interval> r(boundary.begin(), boundary.end());
  Prefix pre;
  for (int i = 1; i <= kIdBits; ++i) {
    std::size_t j = static_cast<std::size_t>(i - 1) % k;
    double mid = (r[j].lo + r[j].hi) / 2.0;
    const Interval& q = region.ranges[j];
    if (q.lo > mid) {
      r[j].lo = mid;
      pre.key = set_bit(pre.key, i);
      pre.length = i;
    } else if (q.hi <= mid) {
      // Points exactly on the plane hash to the lower half, so a region
      // with hi == mid still fits entirely in the lower child. (The
      // paper's Alg. 4 tests `hi < mid`, which is equivalent up to a
      // measure-zero boundary and strictly tighter this way.)
      r[j].hi = mid;
      pre.length = i;
    } else {
      break;  // straddles the plane: previous prefix is the answer
    }
  }
  return pre;
}

Region cuboid_region(Prefix prefix, const Boundary& boundary) {
  std::size_t k = boundary.size();
  LMK_CHECK(prefix.length >= 0 && prefix.length <= kIdBits);
  Region out;
  out.ranges.assign(boundary.begin(), boundary.end());
  for (int i = 1; i <= prefix.length; ++i) {
    std::size_t j = static_cast<std::size_t>(i - 1) % k;
    double mid = (out.ranges[j].lo + out.ranges[j].hi) / 2.0;
    if (get_bit(prefix.key, i) == 1) {
      out.ranges[j].lo = mid;
    } else {
      out.ranges[j].hi = mid;
    }
  }
  return out;
}

double split_plane(Id prefix_key, int p, const Boundary& boundary,
                   int* dim_out) {
  std::size_t k = boundary.size();
  LMK_CHECK(p >= 1 && p <= kIdBits);
  std::size_t j = static_cast<std::size_t>(p - 1) % k;
  if (dim_out != nullptr) *dim_out = static_cast<int>(j);
  // Replay the earlier splits of dimension j (divisions j+1, j+1+k, …
  // strictly before p) to reconstruct its current range, exactly as
  // Algorithm 4 lines 1-11 do.
  Interval r = boundary[j];
  for (int i = static_cast<int>(j) + 1; i < p; i += static_cast<int>(k)) {
    double mid = (r.lo + r.hi) / 2.0;
    if (get_bit(prefix_key, i) == 1) {
      r.lo = mid;
    } else {
      r.hi = mid;
    }
  }
  return (r.lo + r.hi) / 2.0;
}

bool region_intersects_cuboid(const Region& region, Prefix prefix,
                              const Boundary& boundary) {
  Region cub = cuboid_region(prefix, boundary);
  for (std::size_t j = 0; j < boundary.size(); ++j) {
    if (region.ranges[j].hi < cub.ranges[j].lo ||
        region.ranges[j].lo > cub.ranges[j].hi) {
      return false;
    }
  }
  return true;
}

Region query_region(const IndexPoint& center, double radius) {
  LMK_CHECK(radius >= 0);
  Region out;
  out.ranges.reserve(center.size());
  for (double c : center) {
    out.ranges.push_back(Interval{c - radius, c + radius});
  }
  return out;
}

}  // namespace lmk
