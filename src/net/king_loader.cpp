#include "net/king_loader.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

namespace lmk {

std::unique_ptr<MatrixLatencyModel> parse_king_matrix(
    const std::string& content, std::size_t hosts, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return nullptr;
  };
  if (hosts < 2) return fail("need at least 2 hosts");
  std::vector<SimTime> matrix(hosts * hosts, -1);
  std::vector<SimTime> seen;
  std::istringstream in(content);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    long long a = 0, b = 0;
    std::string rtt_tok;
    if (!(ls >> a)) continue;  // blank/comment-only line
    if (!(ls >> b >> rtt_tok)) {
      return fail("line " + std::to_string(line_no) + ": expected 'a b rtt'");
    }
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= hosts ||
        static_cast<std::size_t>(b) >= hosts) {
      return fail("line " + std::to_string(line_no) + ": host out of range");
    }
    // Parse the rtt with from_chars so an out-of-range value (the King
    // files carry raw microsecond integers; a corrupt line can exceed
    // int64) gets its own message instead of a generic parse failure.
    SimTime rtt = 0;
    auto [end, ec] = std::from_chars(
        rtt_tok.data(), rtt_tok.data() + rtt_tok.size(), rtt);
    if (ec == std::errc::result_out_of_range) {
      return fail("line " + std::to_string(line_no) + ": rtt '" + rtt_tok +
                  "' overflows SimTime");
    }
    if (ec != std::errc() || end != rtt_tok.data() + rtt_tok.size()) {
      return fail("line " + std::to_string(line_no) + ": expected 'a b rtt'");
    }
    if (rtt < 0) {
      return fail("line " + std::to_string(line_no) + ": negative rtt");
    }
    SimTime one_way = rtt / 2;
    SimTime& cell = matrix[static_cast<std::size_t>(a) * hosts +
                           static_cast<std::size_t>(b)];
    if (cell >= 0) {
      // The pair was already measured (directly or via symmetry).
      // Identical repeats are tolerated; conflicting ones are rejected
      // rather than silently letting the last line win.
      if (cell != one_way) {
        return fail("line " + std::to_string(line_no) +
                    ": conflicting duplicate measurement for pair " +
                    std::to_string(a) + " " + std::to_string(b) +
                    " (one-way " + std::to_string(one_way) +
                    " vs earlier " + std::to_string(cell) + ")");
      }
      continue;  // identical duplicate: do not re-count in the median
    }
    cell = one_way;
    matrix[static_cast<std::size_t>(b) * hosts +
           static_cast<std::size_t>(a)] = one_way;
    if (a != b) seen.push_back(one_way);
  }
  if (seen.empty()) return fail("no measurements in input");
  // Median fallback for unmeasured pairs (the King dataset is not a
  // complete matrix).
  std::nth_element(seen.begin(), seen.begin() + seen.size() / 2, seen.end());
  SimTime median = seen[seen.size() / 2];
  for (std::size_t a = 0; a < hosts; ++a) {
    for (std::size_t b = 0; b < hosts; ++b) {
      SimTime& v = matrix[a * hosts + b];
      if (a == b) {
        v = 0;
      } else if (v < 0) {
        v = median;
      }
    }
  }
  return std::make_unique<MatrixLatencyModel>(hosts, std::move(matrix));
}

std::unique_ptr<MatrixLatencyModel> load_king_matrix(const std::string& path,
                                                     std::size_t hosts,
                                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_king_matrix(buf.str(), hosts, error);
}

}  // namespace lmk
