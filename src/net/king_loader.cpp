#include "net/king_loader.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace lmk {

std::unique_ptr<MatrixLatencyModel> parse_king_matrix(
    const std::string& content, std::size_t hosts, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return nullptr;
  };
  if (hosts < 2) return fail("need at least 2 hosts");
  std::vector<SimTime> matrix(hosts * hosts, -1);
  std::vector<SimTime> seen;
  std::istringstream in(content);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    long long a = 0, b = 0, rtt = 0;
    if (!(ls >> a)) continue;  // blank/comment-only line
    if (!(ls >> b >> rtt)) {
      return fail("line " + std::to_string(line_no) + ": expected 'a b rtt'");
    }
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= hosts ||
        static_cast<std::size_t>(b) >= hosts) {
      return fail("line " + std::to_string(line_no) + ": host out of range");
    }
    if (rtt < 0) {
      return fail("line " + std::to_string(line_no) + ": negative rtt");
    }
    SimTime one_way = static_cast<SimTime>(rtt) / 2;
    matrix[static_cast<std::size_t>(a) * hosts +
           static_cast<std::size_t>(b)] = one_way;
    matrix[static_cast<std::size_t>(b) * hosts +
           static_cast<std::size_t>(a)] = one_way;
    if (a != b) seen.push_back(one_way);
  }
  if (seen.empty()) return fail("no measurements in input");
  // Median fallback for unmeasured pairs (the King dataset is not a
  // complete matrix).
  std::nth_element(seen.begin(), seen.begin() + seen.size() / 2, seen.end());
  SimTime median = seen[seen.size() / 2];
  for (std::size_t a = 0; a < hosts; ++a) {
    for (std::size_t b = 0; b < hosts; ++b) {
      SimTime& v = matrix[a * hosts + b];
      if (a == b) {
        v = 0;
      } else if (v < 0) {
        v = median;
      }
    }
  }
  return std::make_unique<MatrixLatencyModel>(hosts, std::move(matrix));
}

std::unique_ptr<MatrixLatencyModel> load_king_matrix(const std::string& path,
                                                     std::size_t hosts,
                                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_king_matrix(buf.str(), hosts, error);
}

}  // namespace lmk
