#include "net/latency_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lmk {

SimTime LatencyModel::mean_rtt() const {
  std::size_t n = size();
  if (n < 2) return 0;
  // For large n, sample pairs; exact over all pairs is O(n^2) and only
  // used in tests and setup diagnostics, which is acceptable up to the
  // default 1740-host topology.
  long double total = 0;
  std::size_t pairs = 0;
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = a + 1; b < n; ++b) {
      total += static_cast<long double>(latency(a, b)) * 2;
      ++pairs;
    }
  }
  return static_cast<SimTime>(total / static_cast<long double>(pairs));
}

DelaySpaceModel::DelaySpaceModel(const Options& opts) {
  LMK_CHECK(opts.hosts >= 2);
  LMK_CHECK(opts.target_mean_rtt > 0);
  LMK_CHECK(opts.access_delay_fraction >= 0 &&
            opts.access_delay_fraction < 1);
  Rng rng(opts.seed);
  std::size_t n = opts.hosts;
  x_.resize(n);
  y_.resize(n);
  access_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_[i] = rng.uniform();
    y_[i] = rng.uniform();
    // Log-normal-ish access delays: most hosts are fast, a tail is slow.
    access_[i] = std::exp(rng.normal(0.0, 0.7));
  }
  // Compute the unscaled mean one-way latency, then rescale the embedding
  // and access components so the overall mean RTT hits the target.
  long double sum_dist = 0, sum_access = 0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      double dx = x_[a] - x_[b];
      double dy = y_[a] - y_[b];
      sum_dist += std::sqrt(dx * dx + dy * dy);
      sum_access += access_[a] + access_[b];
      ++pairs;
    }
  }
  double mean_dist = static_cast<double>(sum_dist / pairs);
  double mean_access = static_cast<double>(sum_access / pairs);
  double target_one_way = static_cast<double>(opts.target_mean_rtt) / 2.0;
  double want_access = target_one_way * opts.access_delay_fraction;
  double want_dist = target_one_way - want_access;
  double dist_scale = want_dist / mean_dist;
  double access_scale = mean_access > 0 ? want_access / mean_access : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x_[i] *= dist_scale;
    y_[i] *= dist_scale;
    access_[i] *= access_scale;
  }
}

SimTime DelaySpaceModel::latency(HostId a, HostId b) const {
  LMK_DCHECK(a < x_.size() && b < x_.size());
  if (a == b) return 0;
  double dx = x_[a] - x_[b];
  double dy = y_[a] - y_[b];
  double one_way = std::sqrt(dx * dx + dy * dy) + access_[a] + access_[b];
  return std::max<SimTime>(1, static_cast<SimTime>(std::llround(one_way)));
}

MatrixLatencyModel::MatrixLatencyModel(std::size_t size,
                                       std::vector<SimTime> matrix)
    : n_(size), m_(std::move(matrix)) {
  LMK_CHECK(m_.size() == n_ * n_);
  for (std::size_t a = 0; a < n_; ++a) {
    m_[a * n_ + a] = 0;
    for (std::size_t b = a + 1; b < n_; ++b) {
      SimTime sym = std::max(m_[a * n_ + b], m_[b * n_ + a]);
      LMK_CHECK(sym >= 0);
      m_[a * n_ + b] = m_[b * n_ + a] = sym;
    }
  }
}

SimTime MatrixLatencyModel::latency(HostId a, HostId b) const {
  LMK_DCHECK(a < n_ && b < n_);
  return m_[static_cast<std::size_t>(a) * n_ + b];
}

}  // namespace lmk
