// Network latency models.
//
// The paper's simulations use the King dataset: measured pairwise RTTs
// between 1740 DNS servers, with a mean simulated RTT of 180 ms. That
// dataset is not redistributable here, so we substitute a synthetic
// *delay-space* model: hosts are embedded in a low-dimensional Euclidean
// space, one-way latency is the embedding distance plus a per-host access
// delay, and the whole matrix is rescaled so the mean RTT matches a
// target (180 ms by default). This preserves the properties the
// experiments actually depend on — a realistic spread of pairwise
// latencies with (approximate) triangle inequality, which is what
// proximity neighbour selection exploits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace lmk {

/// Simulated time in microseconds (integral: event ordering must be exact).
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Address of a simulated host (dense index into the topology).
using HostId = std::uint32_t;

/// Interface: one-way network latency between two hosts.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way latency from `a` to `b` in microseconds. Must be symmetric
  /// and zero for a == b.
  [[nodiscard]] virtual SimTime latency(HostId a, HostId b) const = 0;

  /// Number of hosts the model covers.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Mean round-trip time over all distinct pairs, in microseconds.
  [[nodiscard]] SimTime mean_rtt() const;
};

/// Fixed one-way latency between every distinct pair (unit tests, micro
/// benches where topology is irrelevant).
class ConstantLatencyModel final : public LatencyModel {
 public:
  ConstantLatencyModel(std::size_t hosts, SimTime one_way)
      : hosts_(hosts), one_way_(one_way) {}

  SimTime latency(HostId a, HostId b) const override {
    return a == b ? 0 : one_way_;
  }
  std::size_t size() const override { return hosts_; }

 private:
  std::size_t hosts_;
  SimTime one_way_;
};

/// Synthetic King-like model: hosts embedded in a 2-D delay plane with a
/// per-host access delay, scaled to a target mean RTT.
class DelaySpaceModel final : public LatencyModel {
 public:
  struct Options {
    std::size_t hosts = 1740;        ///< King dataset size.
    SimTime target_mean_rtt = 180 * kMillisecond;
    double access_delay_fraction = 0.2;  ///< share of latency from last-mile.
    std::uint64_t seed = 1;
  };

  explicit DelaySpaceModel(const Options& opts);

  SimTime latency(HostId a, HostId b) const override;
  std::size_t size() const override { return x_.size(); }

 private:
  std::vector<double> x_, y_;      // embedding coordinates (microseconds)
  std::vector<double> access_;     // per-host access delay (microseconds)
};

/// Explicit full-matrix model (property tests can hand-craft topologies).
class MatrixLatencyModel final : public LatencyModel {
 public:
  /// `matrix` is a row-major size x size matrix of one-way latencies;
  /// it is symmetrized (max of the two directions) and the diagonal
  /// forced to zero.
  MatrixLatencyModel(std::size_t size, std::vector<SimTime> matrix);

  SimTime latency(HostId a, HostId b) const override;
  std::size_t size() const override { return n_; }

 private:
  std::size_t n_;
  std::vector<SimTime> m_;
};

}  // namespace lmk
