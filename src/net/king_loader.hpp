// Loader for measured pairwise-latency matrices in the King-dataset
// text format, for users who have the original data: one line per pair,
//
//   <host_a> <host_b> <rtt_microseconds>
//
// (comments starting with '#' and blank lines are ignored; hosts are
// 0-based indices). One-way latency is modeled as rtt/2; missing pairs
// fall back to the median latency so a partially measured matrix still
// yields a usable topology.
#pragma once

#include <memory>
#include <string>

#include "net/latency_model.hpp"

namespace lmk {

/// Parse a King-format latency file into a MatrixLatencyModel.
/// `hosts` — matrix dimension (indices in the file must be < hosts).
/// Returns nullptr and fills *error on malformed input.
[[nodiscard]] std::unique_ptr<MatrixLatencyModel> load_king_matrix(
    const std::string& path, std::size_t hosts, std::string* error);

/// Same, but parsing from an in-memory string (tests, embedded data).
[[nodiscard]] std::unique_ptr<MatrixLatencyModel> parse_king_matrix(
    const std::string& content, std::size_t hosts, std::string* error);

}  // namespace lmk
