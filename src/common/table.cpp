#include "common/table.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace lmk {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LMK_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  LMK_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::csv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += ',';
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

void TablePrinter::print() const {
  std::fputs(str().c_str(), stdout);
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace lmk
