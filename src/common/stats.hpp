// Streaming and batch statistics used by the evaluation harness.
#pragma once

#include <cstddef>
#include <vector>

namespace lmk {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class Accumulator {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Mean of the observations (0 when empty).
  double mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Batch percentile with linear interpolation; p in [0, 100].
/// Copies and sorts internally (callers keep their data).
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Gini coefficient of a non-negative load vector — the load-imbalance
/// summary used by the load-balancing benches (0 = perfectly even,
/// -> 1 = one node holds everything).
[[nodiscard]] double gini(std::vector<double> values);

}  // namespace lmk
