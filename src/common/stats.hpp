// Streaming and batch statistics used by the evaluation harness.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace lmk {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class Accumulator {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Mean of the observations (0 when empty).
  double mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Batch percentile with linear interpolation; p in [0, 100].
/// Copies internally (callers keep their data).
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// In-place percentile: same value as percentile() but partially orders
/// `values` with nth_element instead of copying and fully sorting — use
/// this on large sample vectors the caller no longer needs ordered.
[[nodiscard]] double percentile_nth(std::vector<double>& values, double p);

/// Bounded-memory streaming quantile estimator (the P² algorithm of
/// Jain & Chlamtac, 1985): five markers adjusted by parabolic
/// interpolation, O(1) memory regardless of stream length. Exact for
/// fewer than five observations. Intended for tail quantiles (p999)
/// over sample streams too large to buffer.
class P2Quantile {
 public:
  /// q is the quantile in (0, 1), e.g. 0.999 for p999.
  explicit P2Quantile(double q);

  /// Add one observation.
  void add(double x);

  /// Current estimate (exact while fewer than five observations).
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double quantile() const { return q_; }

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> h_{};     ///< marker heights
  std::array<double, 5> pos_{};   ///< actual marker positions (1-based)
  std::array<double, 5> want_{};  ///< desired marker positions
  std::array<double, 5> dpos_{};  ///< desired-position increments
};

/// Gini coefficient of a non-negative load vector — the load-imbalance
/// summary used by the load-balancing benches (0 = perfectly even,
/// -> 1 = one node holds everything).
[[nodiscard]] double gini(std::vector<double> values);

}  // namespace lmk
