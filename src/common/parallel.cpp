#include "common/parallel.hpp"

#include <algorithm>

#include "common/alloc_guard.hpp"
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lmk {
namespace {

/// One fan-out of chunks over [0, n). Heap-allocated and shared with the
/// workers so a straggler waking after completion still reads valid
/// state.
struct Job {
  static constexpr std::size_t kUnboundedSlots = ~std::size_t{0};

  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};   ///< next chunk to claim
  std::atomic<std::size_t> done{0};   ///< chunks completed
  /// Executor slots still free (bounded-concurrency jobs; see
  /// parallel_tasks). A thread that finds no free slot simply does not
  /// join the job — the slot holders drain the remaining chunks.
  std::atomic<std::size_t> slots{kUnboundedSlots};
  /// The submitting thread's allocation phase, re-installed on every
  /// worker for the job's duration so per-phase allocation accounting
  /// and arena-guard diagnostics attribute worker allocations to the
  /// phase that fanned the work out (common/alloc_guard.hpp).
  const char* alloc_phase = nullptr;
  std::mutex err_mu;
  std::exception_ptr error;
};

/// Set while a thread is executing chunks, so nested parallel_for calls
/// degrade to inline execution instead of deadlocking on the pool.
/// Never crosses threads and carries no cross-run state.
// lmk-lint: allow(mutable-global) per-thread nesting flag
thread_local bool g_in_job = false;

class Pool {
 public:
  explicit Pool(std::size_t threads) {
    // The calling thread always participates, so spawn threads - 1.
    for (std::size_t i = 1; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  void run(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = job;
      ++epoch_;
    }
    cv_.notify_all();
    execute(*job);  // the caller works too
    // Wait for straggler chunks still running on workers.
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) >= job->chunks;
    });
    job_ = nullptr;
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        job = job_;
      }
      if (job) execute(*job);
    }
  }

  void execute(Job& job) {
    // Bounded-concurrency jobs: take an executor slot or leave the job
    // to the current slot holders (they loop until every chunk is
    // claimed, so progress never depends on this thread).
    bool bounded = false;
    std::size_t s = job.slots.load(std::memory_order_relaxed);
    while (s != Job::kUnboundedSlots) {
      if (s == 0) return;
      if (job.slots.compare_exchange_weak(s, s - 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        bounded = true;
        break;
      }
    }
    g_in_job = true;
    const char* prev_phase = exchange_alloc_phase(job.alloc_phase);
    for (;;) {
      std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) break;
      std::size_t begin = c * job.grain;
      std::size_t end = std::min(job.n, begin + job.grain);
      try {
        (*job.fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.err_mu);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.chunks) {
        std::lock_guard<std::mutex> lk(mu_);
        done_cv_.notify_all();
      }
    }
    exchange_alloc_phase(prev_phase);
    g_in_job = false;
    if (bounded) job.slots.fetch_add(1, std::memory_order_release);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

std::size_t env_threads() {
  const char* v = std::getenv("LMK_THREADS");
  if (v != nullptr && *v != '\0') {
    long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Protects the process-wide worker pool; holds no experiment state.
// lmk-lint: allow(mutable-global) pool singleton guard
std::mutex g_pool_mu;
/// The process-wide worker pool itself (lazily sized); work
/// distribution is chunk-deterministic by contract.
// lmk-lint: allow(mutable-global) pool singleton
std::unique_ptr<Pool> g_pool;
/// set_threads override (0 = auto); written only by test/bench
/// harnesses between parallel regions.
// lmk-lint: allow(mutable-global) thread-count override
std::size_t g_override = 0;

Pool& pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  std::size_t want = g_override != 0 ? g_override : env_threads();
  if (!g_pool || g_pool->threads() != want) {
    g_pool.reset();  // join the old workers before replacing
    g_pool = std::make_unique<Pool>(want);
  }
  return *g_pool;
}

}  // namespace

std::size_t thread_count() {
  return g_override != 0 ? g_override : env_threads();
}

void set_threads(std::size_t n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_override = n;
}

void parallel_tasks(std::size_t n,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t max_concurrent) {
  if (n == 0) return;
  std::function<void(std::size_t, std::size_t)> wrapper =
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      };
  detail::run_chunks(n, /*grain=*/1, wrapper,
                     max_concurrent == 0 ? thread_count() : max_concurrent);
}

namespace detail {

std::size_t default_grain(std::size_t n) {
  // A fixed target chunk count keeps boundaries a pure function of n
  // while leaving enough chunks for any plausible thread count to
  // load-balance; a floor keeps tiny work items from over-fragmenting.
  constexpr std::size_t kTargetChunks = 256;
  constexpr std::size_t kMinGrain = 16;
  return std::max(kMinGrain, (n + kTargetChunks - 1) / kTargetChunks);
}

void run_chunks(std::size_t n, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& fn,
                std::size_t max_active) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::size_t chunks = (n + grain - 1) / grain;
  if (g_in_job || chunks <= 1 || thread_count() <= 1 || max_active == 1) {
    // Inline: single chunk, single-threaded config, a concurrency cap
    // of one, or a nested call from inside a pool worker. Same chunk
    // boundaries, same results.
    for (std::size_t c = 0; c < chunks; ++c) {
      std::size_t begin = c * grain;
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->grain = grain;
  job->chunks = chunks;
  job->fn = &fn;
  job->alloc_phase = current_alloc_phase();
  if (max_active != 0) {
    job->slots.store(max_active, std::memory_order_relaxed);
  }
  pool().run(job);
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace detail
}  // namespace lmk
