// Column-aligned table printing for benchmark/experiment output.
//
// Each bench binary regenerates one of the paper's tables or figure
// series; TablePrinter gives them a uniform, diff-friendly text format
// (and an optional CSV dump for plotting).
#pragma once

#include <string>
#include <vector>

namespace lmk {

/// Accumulates rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  /// Create a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render to a column-aligned string (header, rule, rows).
  [[nodiscard]] std::string str() const;

  /// Render as CSV (header row plus data rows).
  [[nodiscard]] std::string csv() const;

  /// Print `str()` to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given number of decimals (bench output).
[[nodiscard]] std::string fmt(double v, int decimals = 3);

}  // namespace lmk
