// Prefix/bit helpers for m-bit identifiers.
//
// The locality-preserving hash and the query-routing algorithms index
// bits *from the left* (most significant first), 1-based, exactly as the
// paper's pseudocode does: "the i-th bit is the one in the i-th position
// (from the left) of the m bits identifier".
#pragma once

#include <bit>
#include <cstdint>

#include "common/check.hpp"
#include "common/ring_math.hpp"

namespace lmk {

/// Bit i (1-based from the most significant bit) of the m-bit id x.
[[nodiscard]] constexpr int get_bit(Id x, int i) {
  LMK_DCHECK(i >= 1 && i <= kIdBits);
  return static_cast<int>((x >> (kIdBits - i)) & 1u);
}

/// Return x with bit i (1-based from the MSB) set to 1.
[[nodiscard]] constexpr Id set_bit(Id x, int i) {
  LMK_DCHECK(i >= 1 && i <= kIdBits);
  return x | (Id{1} << (kIdBits - i));
}

/// Return x with bit i (1-based from the MSB) cleared.
[[nodiscard]] constexpr Id clear_bit(Id x, int i) {
  LMK_DCHECK(i >= 1 && i <= kIdBits);
  return x & ~(Id{1} << (kIdBits - i));
}

/// The first `len` bits of x, kept in place (remaining bits zeroed).
/// prefix(x, 0) == 0; prefix(x, 64) == x.
[[nodiscard]] constexpr Id prefix(Id x, int len) {
  LMK_DCHECK(len >= 0 && len <= kIdBits);
  if (len == 0) return 0;
  return x & (~Id{0} << (kIdBits - len));
}

/// True when x and y agree on their first `len` bits.
[[nodiscard]] constexpr bool same_prefix(Id x, Id y, int len) {
  return prefix(x, len) == prefix(y, len);
}

/// Length of the longest common prefix of x and y, in bits (0..64).
[[nodiscard]] constexpr int common_prefix_length(Id x, Id y) {
  Id diff = x ^ y;
  return diff == 0 ? kIdBits : std::countl_zero(diff);
}

/// Position (1-based from the MSB) of the first 0 bit of x in bit
/// positions [from, to], or 0 when every bit in the range is 1.
/// This is the scan used by SurrogateRefine (Alg. 5, line 5).
[[nodiscard]] constexpr int first_zero_bit(Id x, int from, int to) {
  LMK_DCHECK(from >= 1 && to <= kIdBits);
  for (int i = from; i <= to; ++i) {
    if (get_bit(x, i) == 0) return i;
  }
  return 0;
}

/// Inclusive key span [lo, hi] of the cuboid identified by a prefix of
/// `len` bits (stored left-aligned in `prefix_key`). A depth-len cuboid
/// owns the 2^(64-len) keys sharing its prefix.
struct KeySpan {
  Id lo;
  Id hi;
};

[[nodiscard]] constexpr KeySpan prefix_span(Id prefix_key, int len) {
  LMK_DCHECK(len >= 0 && len <= kIdBits);
  Id lo = prefix(prefix_key, len);
  Id hi = len == 0 ? ~Id{0} : (lo | (~Id{0} >> len));
  return {lo, hi};
}

}  // namespace lmk
