// Lightweight invariant checking used across the library.
//
// LMK_CHECK is active in all build types (experiments are only meaningful
// when the protocol invariants actually hold), while LMK_DCHECK compiles
// out in NDEBUG builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lmk {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "LMK_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace lmk

#define LMK_CHECK(expr)                                 \
  do {                                                  \
    if (!(expr)) ::lmk::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define LMK_DCHECK(expr) ((void)0)
#else
#define LMK_DCHECK(expr) LMK_CHECK(expr)
#endif
