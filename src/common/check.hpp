// Lightweight invariant checking used across the library.
//
// LMK_CHECK is active in all build types (experiments are only meaningful
// when the protocol invariants actually hold), while LMK_DCHECK compiles
// out in NDEBUG builds and is meant for hot paths. LMK_CHECK_MSG carries
// printf-formatted context (node id, virtual time, ...) so a failure in a
// long simulation pinpoints the offending node and instant.
//
// This header is the only place in src/ allowed to terminate the process
// (enforced by the banned-abort lint rule in tools/lint).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lmk {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "LMK_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
#define LMK_PRINTF_LIKE(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define LMK_PRINTF_LIKE(fmt_idx, arg_idx)
#endif

[[noreturn]] LMK_PRINTF_LIKE(4, 5) inline void check_failed_msg(
    const char* expr, const char* file, int line, const char* fmt, ...) {
  std::fprintf(stderr, "LMK_CHECK failed: %s at %s:%d: ", expr, file, line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace lmk

#define LMK_CHECK(expr)                                 \
  do {                                                  \
    if (!(expr)) ::lmk::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#define LMK_CHECK_MSG(expr, ...)                              \
  do {                                                        \
    if (!(expr)) {                                            \
      ::lmk::check_failed_msg(#expr, __FILE__, __LINE__, __VA_ARGS__); \
    }                                                         \
  } while (0)

#ifdef NDEBUG
#define LMK_DCHECK(expr) ((void)0)
#else
#define LMK_DCHECK(expr) LMK_CHECK(expr)
#endif
