#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace lmk {

std::uint64_t Rng::below(std::uint64_t n) {
  LMK_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  LMK_CHECK(lo <= hi);
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  // Box–Muller; u1 in (0,1] avoids log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  LMK_CHECK(mean > 0);
  double u = 1.0 - uniform();
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  LMK_CHECK(k <= n);
  // Partial Fisher–Yates over an index vector: O(n) setup, fine for our
  // sample sizes (thousands out of ~10^5).
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_string(const char* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  // Finalize with mix64 so short names still spread over the whole ring.
  return mix64(h);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  LMK_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace lmk
