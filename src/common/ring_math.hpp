// Circular arithmetic on the 64-bit Chord identifier ring.
//
// Identifiers live in Z_{2^64}; uint64_t overflow gives the modular
// arithmetic for free. The non-trivial part is circular interval
// membership, which every Chord predicate (successor ownership,
// closest-preceding-finger, stabilization) is built from.
#pragma once

#include <cstdint>

namespace lmk {

/// A Chord identifier: an m-bit integer with m = 64, matching the paper's
/// simulation setup ("the number of bits in the key/node identifiers in
/// the simulator is 64").
using Id = std::uint64_t;

/// Number of bits in an identifier.
inline constexpr int kIdBits = 64;

/// x in (a, b) on the circle. Empty when a == b (the interval (a, a) is
/// the whole ring minus {a} in Chord's convention; we follow Chord:
/// when a == b the interval covers everything except a itself).
[[nodiscard]] constexpr bool in_open(Id x, Id a, Id b) {
  if (a == b) return x != a;
  if (a < b) return a < x && x < b;
  return x > a || x < b;
}

/// x in (a, b] on the circle. When a == b the interval is the full ring.
[[nodiscard]] constexpr bool in_open_closed(Id x, Id a, Id b) {
  if (a == b) return true;
  if (a < b) return a < x && x <= b;
  return x > a || x <= b;
}

/// x in [a, b) on the circle. When a == b the interval is the full ring.
[[nodiscard]] constexpr bool in_closed_open(Id x, Id a, Id b) {
  if (a == b) return true;
  if (a < b) return a <= x && x < b;
  return x >= a || x < b;
}

/// Clockwise distance from a to b (how far b is "ahead" of a on the ring).
[[nodiscard]] constexpr Id clockwise_distance(Id a, Id b) { return b - a; }

}  // namespace lmk
