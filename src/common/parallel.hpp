// Deterministic chunked parallelism for the offline (non-simulated) hot
// phases: ground-truth oracle computation, landmark selection, bulk
// index-space mapping — and, via parallel_tasks, whole experiment cells
// (src/eval/sweep.hpp).
//
// Design contract (see DESIGN.md, "Parallel offline phases & determinism
// contract"):
//  * Work over [0, n) is split into chunks whose boundaries depend ONLY
//    on n and the explicit grain — never on the thread count. Workers
//    race for whole chunks, so which thread runs a chunk is
//    nondeterministic, but chunk contents are not.
//  * Callers either write results into disjoint per-index slots
//    (parallel_for) or reduce per-chunk partials that the caller then
//    combines in chunk order (parallel_chunks + sequential merge).
//    Under that discipline results are bit-identical for any thread
//    count, including 1.
//  * parallel_tasks submits coarse independent tasks (one simulator
//    stack each) to the same pool, capped to a maximum number in
//    flight. A parallel_for/parallel_chunks issued from inside a task
//    runs inline with unchanged chunk boundaries — no pool re-entry,
//    no deadlock, and per-task results identical to a serial run.
//  * Each discrete-event simulator instance is single-threaded; a task
//    owns its simulator exclusively, so simulators never migrate
//    between concurrently running tasks.
//
// Thread count resolution: explicit set_threads(n) override, else the
// LMK_THREADS environment variable, else std::thread::hardware_concurrency.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

namespace lmk {

/// Number of worker threads parallel_for/parallel_chunks will use
/// (>= 1; includes the calling thread, which always participates).
[[nodiscard]] std::size_t thread_count();

/// Override the thread count for subsequent parallel_for calls
/// (0 restores the LMK_THREADS / hardware default). Not safe to call
/// concurrently with a running parallel_for; intended for tests and
/// benchmark harnesses that compare thread counts in one process.
void set_threads(std::size_t n);

/// Run `n` independent coarse tasks fn(i) on the pool with at most
/// `max_concurrent` in flight at once (0 = thread count; always clamped
/// to the thread count). Tasks are claimed in index order, so with a
/// cap of 1 (or a single-threaded pool) execution degrades to the plain
/// serial loop. Nested parallel_for/parallel_chunks calls issued from
/// inside a task run inline with unchanged chunk boundaries, so each
/// task's results are bit-identical to a serial run regardless of the
/// thread count or cap. Blocks until every task finished; rethrows the
/// first exception (remaining tasks still run).
void parallel_tasks(std::size_t n,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t max_concurrent = 0);

namespace detail {
/// Runs fn(begin, end) over deterministic chunks covering [0, n),
/// distributing chunks across the pool; blocks until every chunk
/// completed. Rethrows the first exception thrown by fn (every other
/// chunk still runs or is abandoned; the pool stays usable).
/// `max_active` caps how many pool threads may execute chunks at once
/// (0 = unbounded).
void run_chunks(std::size_t n, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& fn,
                std::size_t max_active = 0);

/// Deterministic default grain: targets a fixed maximum chunk count so
/// chunk boundaries are a pure function of n.
[[nodiscard]] std::size_t default_grain(std::size_t n);
}  // namespace detail

/// Apply fn(i) for every i in [0, n). fn must only write state owned by
/// index i (or be pure); under that rule the result is deterministic for
/// any thread count. `grain` bounds the chunk size (0 = automatic,
/// derived from n only).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = detail::default_grain(n);
  detail::run_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Apply fn(begin, end) over deterministic chunks covering [0, n).
/// Chunk boundaries depend only on n and grain, so per-chunk partial
/// results (e.g. sums) merged by the caller in chunk order reproduce
/// bit-identically for any thread count.
template <typename Fn>
void parallel_chunks(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = detail::default_grain(n);
  detail::run_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
    fn(begin, end);
  });
}

}  // namespace lmk
