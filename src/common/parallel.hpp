// Deterministic chunked parallelism for the offline (non-simulated) hot
// phases: ground-truth oracle computation, landmark selection, and bulk
// index-space mapping.
//
// Design contract (see DESIGN.md, "Parallel offline phases & determinism
// contract"):
//  * Work over [0, n) is split into chunks whose boundaries depend ONLY
//    on n and the explicit grain — never on the thread count. Workers
//    race for whole chunks, so which thread runs a chunk is
//    nondeterministic, but chunk contents are not.
//  * Callers either write results into disjoint per-index slots
//    (parallel_for) or reduce per-chunk partials that the caller then
//    combines in chunk order (parallel_chunks + sequential merge).
//    Under that discipline results are bit-identical for any thread
//    count, including 1.
//  * The discrete-event simulator itself NEVER runs on the pool; only
//    read-only offline phases do.
//
// Thread count resolution: explicit set_threads(n) override, else the
// LMK_THREADS environment variable, else std::thread::hardware_concurrency.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

namespace lmk {

/// Number of worker threads parallel_for/parallel_chunks will use
/// (>= 1; includes the calling thread, which always participates).
[[nodiscard]] std::size_t thread_count();

/// Override the thread count for subsequent parallel_for calls
/// (0 restores the LMK_THREADS / hardware default). Not safe to call
/// concurrently with a running parallel_for; intended for tests and
/// benchmark harnesses that compare thread counts in one process.
void set_threads(std::size_t n);

namespace detail {
/// Runs fn(begin, end) over deterministic chunks covering [0, n),
/// distributing chunks across the pool; blocks until every chunk
/// completed. Rethrows the first exception thrown by fn (every other
/// chunk still runs or is abandoned; the pool stays usable).
void run_chunks(std::size_t n, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& fn);

/// Deterministic default grain: targets a fixed maximum chunk count so
/// chunk boundaries are a pure function of n.
[[nodiscard]] std::size_t default_grain(std::size_t n);
}  // namespace detail

/// Apply fn(i) for every i in [0, n). fn must only write state owned by
/// index i (or be pure); under that rule the result is deterministic for
/// any thread count. `grain` bounds the chunk size (0 = automatic,
/// derived from n only).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = detail::default_grain(n);
  detail::run_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Apply fn(begin, end) over deterministic chunks covering [0, n).
/// Chunk boundaries depend only on n and grain, so per-chunk partial
/// results (e.g. sums) merged by the caller in chunk order reproduce
/// bit-identically for any thread count.
template <typename Fn>
void parallel_chunks(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = detail::default_grain(n);
  detail::run_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
    fn(begin, end);
  });
}

}  // namespace lmk
