#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lmk {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  return percentile_nth(values, p);
}

double percentile_nth(std::vector<double>& values, double p) {
  LMK_CHECK(!values.empty());
  LMK_CHECK(p >= 0.0 && p <= 100.0);
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) {
    return *std::max_element(values.begin(), values.end());
  }
  // nth_element leaves [lo+1, end) all >= values[lo]; the smallest of
  // that suffix is the (lo+1)-th order statistic, so the interpolated
  // value matches the sort-based definition exactly.
  std::nth_element(values.begin(), values.begin() + static_cast<long>(lo),
                   values.end());
  double v_lo = values[lo];
  if (frac == 0.0) return v_lo;
  double v_hi =
      *std::min_element(values.begin() + static_cast<long>(lo) + 1,
                        values.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  LMK_CHECK(q > 0.0 && q < 1.0);
  dpos_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    h_[n_++] = x;
    if (n_ == 5) {
      std::sort(h_.begin(), h_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        pos_[i] = static_cast<double>(i + 1);
        want_[i] = 1.0 + 4.0 * dpos_[i];
      }
    }
    return;
  }
  // Locate the cell containing x, extending the extremes if needed.
  std::size_t k;
  if (x < h_[0]) {
    h_[0] = x;
    k = 0;
  } else if (x >= h_[4]) {
    h_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= h_[k + 1]) ++k;
  }
  ++n_;
  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) want_[i] += dpos_[i];
  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    double d = want_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      double s = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) height update; fall back to linear
      // interpolation when the parabola leaves the bracketing heights.
      double qp =
          h_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + s) * (h_[i + 1] - h_[i]) /
                           (pos_[i + 1] - pos_[i]) +
                       (pos_[i + 1] - pos_[i] - s) * (h_[i] - h_[i - 1]) /
                           (pos_[i] - pos_[i - 1]));
      if (qp <= h_[i - 1] || qp >= h_[i + 1]) {
        std::size_t j = d >= 0 ? i + 1 : i - 1;
        qp = h_[i] + s * (h_[j] - h_[i]) / (pos_[j] - pos_[i]);
      }
      h_[i] = qp;
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  LMK_CHECK(n_ > 0);
  if (n_ < 5) {
    std::vector<double> buf(h_.begin(), h_.begin() + static_cast<long>(n_));
    return percentile_nth(buf, q_ * 100.0);
  }
  return h_[2];
}

double gini(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum = 0;
  double weighted = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    LMK_CHECK(values[i] >= 0.0);
    weighted += static_cast<double>(i + 1) * values[i];
    cum += values[i];
  }
  if (cum == 0) return 0.0;
  auto n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace lmk
