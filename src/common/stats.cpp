#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lmk {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  LMK_CHECK(!values.empty());
  LMK_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double gini(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum = 0;
  double weighted = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    LMK_CHECK(values[i] >= 0.0);
    weighted += static_cast<double>(i + 1) * values[i];
    cum += values[i];
  }
  if (cum == 0) return 0.0;
  auto n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace lmk
