// Dynamic allocation-discipline instrumentation (LMK_ALLOC_GUARD).
//
// The flagship memory architecture (arenas, recycle pools, SoA stores —
// see DESIGN.md "Allocation discipline") only pays off while the engine
// steady state stays off the allocator. The static lmk-lint rules catch
// allocation *sites*; this guard catches allocation *behavior*: when the
// build is configured with -DLMK_ALLOC_GUARD=ON, the global operator
// new/delete family is replaced with a counting interposer, and code
// brackets its measured regions with AllocPhaseScope:
//
//   AllocPhaseScope phase("engine-steady-state");
//   ... hot loop ...
//   AllocCounters d = phase.delta();   // allocs/frees/bytes since open
//
// Counters are per-thread (plain thread_local loads/stores, no atomics,
// no contention), so a scope measures exactly the work its own thread
// did. The bench harnesses report per-phase deltas into their JSON and
// scripts/bench_diff.py enforces a hard gate of zero steady-state
// allocations in the engine storm phase.
//
// Without the CMake option everything here compiles to no-ops:
// alloc_guard_enabled() is false, counters stay zero, and AllocPhaseScope
// only maintains the phase-name stack (which the arena lifetime
// sanitizer also uses for its diagnostics, so the name plumbing is kept
// in both modes).
#pragma once

#include <cstdint>

namespace lmk {

/// Per-thread allocation counter snapshot.
struct AllocCounters {
  std::uint64_t allocs = 0;       ///< operator new calls
  std::uint64_t frees = 0;        ///< operator delete calls
  std::uint64_t alloc_bytes = 0;  ///< usable bytes handed out
  std::uint64_t free_bytes = 0;   ///< usable bytes returned

  AllocCounters operator-(const AllocCounters& o) const {
    return {allocs - o.allocs, frees - o.frees, alloc_bytes - o.alloc_bytes,
            free_bytes - o.free_bytes};
  }
};

/// True when the build interposes operator new/delete
/// (-DLMK_ALLOC_GUARD=ON).
[[nodiscard]] bool alloc_guard_enabled();

/// This thread's counters since thread start (all-zero without the
/// guard).
[[nodiscard]] AllocCounters alloc_counters();

/// Innermost active phase name on this thread, nullptr outside any
/// scope. Maintained in both build modes; the arena guard stamps it
/// into ArenaRef/ArenaSpan grants for use-after-reset diagnostics.
[[nodiscard]] const char* current_alloc_phase();

/// Install `name` as this thread's current phase and return the
/// previous one — the low-level primitive behind AllocPhaseScope. The
/// thread pool uses it to carry the submitting thread's phase onto
/// workers for the duration of a job.
const char* exchange_alloc_phase(const char* name);

/// RAII measured region. `name` must outlive the scope (string
/// literals in practice). Scopes nest; delta() reports this thread's
/// counter movement since the scope opened.
class AllocPhaseScope {
 public:
  explicit AllocPhaseScope(const char* name)
      : name_(name),
        prev_(exchange_alloc_phase(name)),
        at_open_(alloc_counters()) {}

  ~AllocPhaseScope() { exchange_alloc_phase(prev_); }

  AllocPhaseScope(const AllocPhaseScope&) = delete;
  AllocPhaseScope& operator=(const AllocPhaseScope&) = delete;

  [[nodiscard]] const char* name() const { return name_; }

  /// Counters accumulated on this thread since the scope opened.
  [[nodiscard]] AllocCounters delta() const {
    return alloc_counters() - at_open_;
  }

 private:
  const char* name_;
  const char* prev_;
  AllocCounters at_open_;
};

}  // namespace lmk
