#include "common/arena.hpp"

#ifdef LMK_ARENA_GUARD
#include <cstring>
#endif

namespace lmk {

namespace {

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  LMK_CHECK(chunk_bytes_ > 0);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  LMK_CHECK(align > 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  ++stats_.allocations;
  stats_.requested_bytes += bytes;
  // Find a chunk with room, starting from the current one; chunks
  // before `current_` are full, chunks after it were retained by
  // reset() and are empty.
  while (current_ < chunks_.size()) {
    Chunk& c = chunks_[current_];
    // Align the absolute address, not the offset: new[] only guarantees
    // alignof(max_align_t) for the chunk base, so an offset-aligned
    // pointer is under-aligned whenever align exceeds that guarantee.
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    std::size_t at = align_up(base + c.used, align) - base;
    if (at + bytes <= c.size) {
      c.used = at + bytes;
      stats_.live_bytes += bytes;
      stats_.high_water_bytes =
          std::max(stats_.high_water_bytes, stats_.live_bytes);
      return c.data.get() + at;
    }
    ++current_;
  }
  // Oversized requests get a dedicated chunk; normal ones a fresh
  // default-sized chunk. align <= alignof(max_align_t) is guaranteed
  // by new[], larger alignments pad.
  std::size_t want = std::max(chunk_bytes_, bytes + align);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(want);
  c.size = want;
  stats_.reserved_bytes += want;
  chunks_.push_back(std::move(c));
  current_ = chunks_.size() - 1;
  Chunk& back = chunks_.back();
  std::size_t at =
      align_up(reinterpret_cast<std::uintptr_t>(back.data.get()), align) -
      reinterpret_cast<std::uintptr_t>(back.data.get());
  back.used = at + bytes;
  LMK_CHECK(back.used <= back.size);
  stats_.live_bytes += bytes;
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes, stats_.live_bytes);
  return back.data.get() + at;
}

void Arena::reset() {
#ifdef LMK_ARENA_GUARD
  // Poison the recycled bytes so a stale raw pointer that dodges the
  // epoch check still reads a recognizable 0xDE pattern instead of the
  // previous batch's plausible-looking data.
  for (Chunk& c : chunks_) {
    if (c.used > 0) std::memset(c.data.get(), 0xDE, c.used);
  }
#endif
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  stats_.live_bytes = 0;
  ++stats_.resets;
  ++epoch_;
}

void Arena::release() {
  chunks_.clear();
  current_ = 0;
  stats_.live_bytes = 0;
  stats_.reserved_bytes = 0;
  ++epoch_;
}

}  // namespace lmk
