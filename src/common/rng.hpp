// Deterministic random number generation.
//
// All randomness in the library flows from a single seeded root so that
// every experiment is reproducible bit-for-bit. The generator is
// SplitMix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
// quality for simulation purposes, and trivially splittable — `fork()`
// derives an independent child stream, which lets concurrent subsystems
// (topology, dataset, query schedule, protocol timers) draw from
// decorrelated streams regardless of evaluation order.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace lmk {

/// Splittable deterministic PRNG (SplitMix64 core).
class Rng {
 public:
  /// Result type requirements of std::uniform_random_bit_generator, so the
  /// generator can also be handed to <random> distributions if desired.
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  std::uint64_t operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Independent child stream; deterministic given the parent state.
  [[nodiscard]] Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean (inter-arrival times etc.).
  double exponential(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix of a 64-bit value (used for hashing index names
/// into rotation offsets and node addresses into identifiers).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// 64-bit FNV-1a hash of a byte string (rotation offsets from index names).
[[nodiscard]] std::uint64_t hash_string(const char* data, std::size_t len);

/// Zipf-distributed integer sampler over ranks {0, …, n-1} with exponent s.
/// Used by the synthetic corpus generator to model term frequencies.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draw one rank; rank 0 is the most frequent.
  std::size_t operator()(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

}  // namespace lmk
