// Bump and pool allocation for flagship-scale runs.
//
// Flagship scenarios (10k nodes, 1M+ objects) die by a thousand small
// heap allocations: per-batch mapping scratch during streaming index
// construction and per-query reply buffers in flight inside the
// platform. Two shapes cover both:
//
//   - Arena: a chunked bump allocator. allocate() is a pointer bump;
//     reset() recycles every chunk without returning memory to the
//     heap, so a steady-state batch loop allocates from the OS only
//     until the high-water mark is reached.
//   - RecyclePool<T>: a free list of cleared containers that keep
//     their capacity across uses (acquire/release), for in-flight
//     buffers whose lifetime is one message.
//
// Both carry byte/high-water counters so allocation traffic is a
// first-class reported number in benches (see ArenaStats /
// RecyclePoolStats).
//
// Lifetime sanitizer (-DLMK_ARENA_GUARD=ON): arena memory is recycled,
// never freed, so a dangling span across a reset() is invisible to
// ASan — the bytes stay mapped and readable, silently holding the next
// batch's data. Under the guard every reset()/release() bumps a
// monotone epoch and poisons the recycled bytes with 0xDE, and the
// checked handles (ArenaRef<T>, ArenaSpan<T>) stamp the epoch and the
// current allocation phase (common/alloc_guard.hpp) at grant time; any
// dereference after the arena moved on traps deterministically through
// LMK_CHECK_MSG with both diagnostics. Without the option the handles
// collapse to a bare pointer/span — zero overhead on the hot path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/alloc_guard.hpp"
#include "common/check.hpp"

namespace lmk {

template <typename T>
class ArenaRef;
template <typename T>
class ArenaSpan;

/// Counter snapshot for one Arena.
struct ArenaStats {
  std::uint64_t allocations = 0;      ///< allocate() calls ever
  std::uint64_t requested_bytes = 0;  ///< cumulative bytes requested
  std::uint64_t live_bytes = 0;       ///< bytes handed out since last reset
  std::uint64_t high_water_bytes = 0; ///< max live_bytes ever observed
  std::uint64_t reserved_bytes = 0;   ///< chunk capacity owned from the heap
  std::uint64_t resets = 0;           ///< reset() calls
};

/// Chunked bump allocator. Not thread-safe; each user owns its arena.
/// Allocations are never individually freed — reset() reclaims
/// everything at once while keeping the chunks for reuse.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with the given alignment (power of two).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Typed helper: an uninitialized span of n trivially-destructible
  /// elements (callers write every slot before reading).
  template <typename T>
  std::span<T> allocate_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    auto* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  /// Recycle all allocations: live bytes drop to zero, chunks are kept
  /// so the next fill pattern reuses the same heap memory. Bumps the
  /// epoch; under LMK_ARENA_GUARD also poisons the recycled bytes.
  void reset();

  /// Return all chunk memory to the heap (reserved bytes drop to zero).
  /// Bumps the epoch: outstanding checked handles become invalid.
  void release();

  /// Monotone generation counter: incremented by every reset() and
  /// release(). Checked handles stamp it at grant time; a mismatch at
  /// dereference means the memory has been recycled underneath them.
  std::uint64_t epoch() const { return epoch_; }

  /// Construct a T in arena memory and hand back a checked reference
  /// (plain pointer wrapper unless LMK_ARENA_GUARD is on).
  template <typename T, typename... Args>
  ArenaRef<T> make(Args&&... args);

  /// allocate_span with an epoch-checked handle: element access and
  /// subspan() trap after reset()/release() under LMK_ARENA_GUARD.
  template <typename T>
  ArenaSpan<T> guarded_span(std::size_t n);

  const ArenaStats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< index of the chunk being bumped
  std::size_t chunk_bytes_;
  std::uint64_t epoch_ = 0;
  ArenaStats stats_;
};

/// Epoch-checked reference to a single arena-allocated T. Under
/// LMK_ARENA_GUARD every dereference verifies the arena has not been
/// reset since the reference was granted, trapping with the allocating
/// phase and the epoch pair when it has. Without the guard this is a
/// bare pointer: same size, no checks, no arena back-pointer.
template <typename T>
class ArenaRef {
 public:
  ArenaRef() = default;

  T& operator*() const {
    check_live();
    return *ptr_;
  }
  T* operator->() const {
    check_live();
    return ptr_;
  }
  /// The raw pointer, unchecked: for handing into code that manages
  /// lifetime itself. Prefer operator*/-> on anything long-lived.
  T* get() const { return ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

 private:
  friend class Arena;
#ifdef LMK_ARENA_GUARD
  ArenaRef(T* ptr, const Arena* arena, std::uint64_t epoch,
           const char* phase)
      : ptr_(ptr), arena_(arena), epoch_(epoch), phase_(phase) {}
  void check_live() const {
    LMK_CHECK_MSG(arena_ == nullptr || arena_->epoch() == epoch_,
                  "arena use-after-reset: ref granted in phase '%s' at "
                  "epoch %llu, arena now at epoch %llu",
                  phase_ != nullptr ? phase_ : "(none)",
                  static_cast<unsigned long long>(epoch_),
                  static_cast<unsigned long long>(arena_->epoch()));
  }
  T* ptr_ = nullptr;
  const Arena* arena_ = nullptr;
  std::uint64_t epoch_ = 0;
  const char* phase_ = nullptr;
#else
  explicit ArenaRef(T* ptr) : ptr_(ptr) {}
  void check_live() const {}
  T* ptr_ = nullptr;
#endif
};

/// Epoch-checked span over arena-allocated elements. Element access
/// and subspan() verify liveness under LMK_ARENA_GUARD; subspan()
/// returns a plain std::span so a hot loop pays one check per batch,
/// not one per element. Without the guard this is a bare std::span.
template <typename T>
class ArenaSpan {
 public:
  ArenaSpan() = default;

  std::size_t size() const { return span_.size(); }
  bool empty() const { return span_.empty(); }

  T& operator[](std::size_t i) const {
    check_live();
    return span_[i];
  }

  /// Checked once, then raw: the returned std::span carries no guard.
  std::span<T> subspan(std::size_t offset, std::size_t count) const {
    check_live();
    return span_.subspan(offset, count);
  }

  /// The whole region as a raw span (one liveness check).
  std::span<T> raw() const {
    check_live();
    return span_;
  }

 private:
  friend class Arena;
#ifdef LMK_ARENA_GUARD
  ArenaSpan(std::span<T> span, const Arena* arena, std::uint64_t epoch,
            const char* phase)
      : span_(span), arena_(arena), epoch_(epoch), phase_(phase) {}
  void check_live() const {
    LMK_CHECK_MSG(arena_ == nullptr || arena_->epoch() == epoch_,
                  "arena use-after-reset: span granted in phase '%s' at "
                  "epoch %llu, arena now at epoch %llu",
                  phase_ != nullptr ? phase_ : "(none)",
                  static_cast<unsigned long long>(epoch_),
                  static_cast<unsigned long long>(arena_->epoch()));
  }
  std::span<T> span_;
  const Arena* arena_ = nullptr;
  std::uint64_t epoch_ = 0;
  const char* phase_ = nullptr;
#else
  explicit ArenaSpan(std::span<T> span) : span_(span) {}
  void check_live() const {}
  std::span<T> span_;
#endif
};

template <typename T, typename... Args>
ArenaRef<T> Arena::make(Args&&... args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "arena memory is reclaimed without running destructors");
  T* p = ::new (allocate(sizeof(T), alignof(T)))
      T(std::forward<Args>(args)...);
#ifdef LMK_ARENA_GUARD
  return ArenaRef<T>(p, this, epoch_, current_alloc_phase());
#else
  return ArenaRef<T>(p);
#endif
}

template <typename T>
ArenaSpan<T> Arena::guarded_span(std::size_t n) {
#ifdef LMK_ARENA_GUARD
  return ArenaSpan<T>(allocate_span<T>(n), this, epoch_,
                      current_alloc_phase());
#else
  return ArenaSpan<T>(allocate_span<T>(n));
#endif
}

/// Counter snapshot for one RecyclePool.
struct RecyclePoolStats {
  std::uint64_t acquires = 0;    ///< acquire() calls ever
  std::uint64_t hits = 0;        ///< acquires served from the free list
  std::uint64_t live = 0;        ///< buffers currently checked out
  std::uint64_t high_water = 0;  ///< max simultaneously checked out
  std::uint64_t pooled = 0;      ///< buffers parked on the free list
};

/// Free list of containers that keep their capacity between uses. T
/// must be default-constructible, movable, and have clear(). Used for
/// in-flight buffers (e.g. per-query reply accumulators) whose churn
/// would otherwise be one heap allocation per message.
template <typename T>
class RecyclePool {
 public:
  /// Hand out a cleared container, reusing a parked one when possible.
  T acquire() {
    ++stats_.acquires;
    ++stats_.live;
    stats_.high_water = std::max(stats_.high_water, stats_.live);
    if (free_.empty()) return T{};
    ++stats_.hits;
    T out = std::move(free_.back());
    free_.pop_back();
    --stats_.pooled;
    return out;
  }

  /// Park a container for reuse; its contents are cleared, its
  /// capacity is retained.
  void release(T&& v) {
    LMK_CHECK(stats_.live > 0);
    --stats_.live;
    v.clear();
    free_.push_back(std::move(v));
    ++stats_.pooled;
  }

  const RecyclePoolStats& stats() const { return stats_; }

 private:
  std::vector<T> free_;
  RecyclePoolStats stats_;
};

}  // namespace lmk
