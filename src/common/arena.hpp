// Bump and pool allocation for flagship-scale runs.
//
// Flagship scenarios (10k nodes, 1M+ objects) die by a thousand small
// heap allocations: per-batch mapping scratch during streaming index
// construction and per-query reply buffers in flight inside the
// platform. Two shapes cover both:
//
//   - Arena: a chunked bump allocator. allocate() is a pointer bump;
//     reset() recycles every chunk without returning memory to the
//     heap, so a steady-state batch loop allocates from the OS only
//     until the high-water mark is reached.
//   - RecyclePool<T>: a free list of cleared containers that keep
//     their capacity across uses (acquire/release), for in-flight
//     buffers whose lifetime is one message.
//
// Both carry byte/high-water counters so allocation traffic is a
// first-class reported number in benches (see ArenaStats /
// RecyclePoolStats).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace lmk {

/// Counter snapshot for one Arena.
struct ArenaStats {
  std::uint64_t allocations = 0;      ///< allocate() calls ever
  std::uint64_t requested_bytes = 0;  ///< cumulative bytes requested
  std::uint64_t live_bytes = 0;       ///< bytes handed out since last reset
  std::uint64_t high_water_bytes = 0; ///< max live_bytes ever observed
  std::uint64_t reserved_bytes = 0;   ///< chunk capacity owned from the heap
  std::uint64_t resets = 0;           ///< reset() calls
};

/// Chunked bump allocator. Not thread-safe; each user owns its arena.
/// Allocations are never individually freed — reset() reclaims
/// everything at once while keeping the chunks for reuse.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with the given alignment (power of two).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Typed helper: an uninitialized span of n trivially-destructible
  /// elements (callers write every slot before reading).
  template <typename T>
  std::span<T> allocate_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    auto* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  /// Recycle all allocations: live bytes drop to zero, chunks are kept
  /// so the next fill pattern reuses the same heap memory.
  void reset();

  /// Return all chunk memory to the heap (reserved bytes drop to zero).
  void release();

  const ArenaStats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< index of the chunk being bumped
  std::size_t chunk_bytes_;
  ArenaStats stats_;
};

/// Counter snapshot for one RecyclePool.
struct RecyclePoolStats {
  std::uint64_t acquires = 0;    ///< acquire() calls ever
  std::uint64_t hits = 0;        ///< acquires served from the free list
  std::uint64_t live = 0;        ///< buffers currently checked out
  std::uint64_t high_water = 0;  ///< max simultaneously checked out
  std::uint64_t pooled = 0;      ///< buffers parked on the free list
};

/// Free list of containers that keep their capacity between uses. T
/// must be default-constructible, movable, and have clear(). Used for
/// in-flight buffers (e.g. per-query reply accumulators) whose churn
/// would otherwise be one heap allocation per message.
template <typename T>
class RecyclePool {
 public:
  /// Hand out a cleared container, reusing a parked one when possible.
  T acquire() {
    ++stats_.acquires;
    ++stats_.live;
    stats_.high_water = std::max(stats_.high_water, stats_.live);
    if (free_.empty()) return T{};
    ++stats_.hits;
    T out = std::move(free_.back());
    free_.pop_back();
    --stats_.pooled;
    return out;
  }

  /// Park a container for reuse; its contents are cleared, its
  /// capacity is retained.
  void release(T&& v) {
    LMK_CHECK(stats_.live > 0);
    --stats_.live;
    v.clear();
    free_.push_back(std::move(v));
    ++stats_.pooled;
  }

  const RecyclePoolStats& stats() const { return stats_; }

 private:
  std::vector<T> free_;
  RecyclePoolStats stats_;
};

}  // namespace lmk
