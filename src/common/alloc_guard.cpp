#include "common/alloc_guard.hpp"

#ifdef LMK_ALLOC_GUARD
#include <cstddef>
#include <cstdlib>
#include <new>
#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define LMK_HAVE_MALLOC_USABLE_SIZE 1
#endif
#endif

namespace lmk {
namespace {

// Per-thread counters and phase name. Zero-initialized (trivial types),
// so touching them from inside operator new cannot recurse into dynamic
// TLS construction.
// lmk-lint: allow(mutable-global) per-thread counters, never shared across threads
thread_local AllocCounters g_counters;
// lmk-lint: allow(mutable-global) per-thread innermost phase name
thread_local const char* g_phase = nullptr;

}  // namespace

bool alloc_guard_enabled() {
#ifdef LMK_ALLOC_GUARD
  return true;
#else
  return false;
#endif
}

AllocCounters alloc_counters() { return g_counters; }

const char* current_alloc_phase() { return g_phase; }

const char* exchange_alloc_phase(const char* name) {
  const char* prev = g_phase;
  g_phase = name;
  return prev;
}

#ifdef LMK_ALLOC_GUARD
namespace detail {

void* guarded_alloc(std::size_t size, std::size_t align) {
  void* p;
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    std::size_t padded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, padded);
  } else {
    p = std::malloc(size == 0 ? 1 : size);
  }
  if (p != nullptr) {
    ++g_counters.allocs;
#ifdef LMK_HAVE_MALLOC_USABLE_SIZE
    g_counters.alloc_bytes += malloc_usable_size(p);
#else
    g_counters.alloc_bytes += size;
#endif
  }
  return p;
}

void guarded_free(void* p) noexcept {
  if (p == nullptr) return;
  ++g_counters.frees;
#ifdef LMK_HAVE_MALLOC_USABLE_SIZE
  g_counters.free_bytes += malloc_usable_size(p);
#endif
  std::free(p);
}

}  // namespace detail
#endif  // LMK_ALLOC_GUARD

}  // namespace lmk

#ifdef LMK_ALLOC_GUARD
// Global replacement of the allocation functions ([new.delete]): every
// operator new in the process — library, tests, benches — is counted on
// the calling thread. The replacements live in exactly one TU, so the
// one-definition rule holds for any link order.

void* operator new(std::size_t size) {
  void* p = lmk::detail::guarded_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = lmk::detail::guarded_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p =
      lmk::detail::guarded_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p =
      lmk::detail::guarded_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return lmk::detail::guarded_alloc(size, alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return lmk::detail::guarded_alloc(size, alignof(std::max_align_t));
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return lmk::detail::guarded_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return lmk::detail::guarded_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { lmk::detail::guarded_free(p); }
void operator delete[](void* p) noexcept { lmk::detail::guarded_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  lmk::detail::guarded_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  lmk::detail::guarded_free(p);
}
#endif  // LMK_ALLOC_GUARD
