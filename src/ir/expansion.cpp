#include "ir/expansion.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace lmk {

SparseVector rocchio_expand(const SparseVector& query,
                            std::span<const SparseVector> feedback,
                            const RocchioOptions& opts) {
  LMK_CHECK(opts.alpha > 0);
  LMK_CHECK(opts.beta >= 0);
  if (feedback.empty() || opts.beta == 0) return query;

  // Centroid of the (unit-normalized) feedback documents.
  SparseVector centroid;
  std::size_t used = 0;
  for (const SparseVector& doc : feedback) {
    if (used >= opts.feedback_docs) break;
    if (doc.empty()) continue;
    centroid.add_scaled(doc, 1.0 / doc.norm());
    ++used;
  }
  if (centroid.empty()) return query;
  centroid.scale(1.0 / static_cast<double>(used));

  // Keep only the strongest `expansion_terms` centroid terms that are
  // new to the query; the original terms always contribute fully.
  std::unordered_set<std::uint32_t> original;
  for (const SparseEntry& e : query.entries()) original.insert(e.term);
  std::vector<SparseEntry> new_terms;
  for (const SparseEntry& e : centroid.entries()) {
    if (original.count(e.term) == 0) new_terms.push_back(e);
  }
  if (new_terms.size() > opts.expansion_terms) {
    std::nth_element(new_terms.begin(),
                     new_terms.begin() +
                         static_cast<std::ptrdiff_t>(opts.expansion_terms),
                     new_terms.end(),
                     [](const SparseEntry& a, const SparseEntry& b) {
                       return a.weight > b.weight;
                     });
    new_terms.resize(opts.expansion_terms);
  }

  std::vector<SparseEntry> combined;
  for (const SparseEntry& e : query.entries()) {
    combined.push_back(SparseEntry{e.term, opts.alpha * e.weight});
  }
  for (const SparseEntry& e : centroid.entries()) {
    if (original.count(e.term) != 0) {
      combined.push_back(SparseEntry{e.term, opts.beta * e.weight});
    }
  }
  for (const SparseEntry& e : new_terms) {
    combined.push_back(SparseEntry{e.term, opts.beta * e.weight});
  }
  return SparseVector(std::move(combined));
}

}  // namespace lmk
