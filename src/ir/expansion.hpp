// Automatic query expansion (paper §6, future work #2): pseudo-relevance
// feedback in the Rocchio style. After a first retrieval round, the
// query vector is enriched with the strongest terms of the top-ranked
// documents and re-issued — "already an effective technique to improve
// recall and precision in centralized information retrieval systems"
// (Mitra, Singhal, Buckley; the paper's reference [15]).
#pragma once

#include <span>

#include "metric/sparse_vector.hpp"

namespace lmk {

/// Rocchio expansion parameters.
struct RocchioOptions {
  double alpha = 1.0;        ///< weight of the original query
  double beta = 0.5;         ///< weight of the feedback centroid
  std::size_t feedback_docs = 5;   ///< top documents to learn from
  std::size_t expansion_terms = 10;  ///< strongest new terms to add
};

/// Expand `query` with the dominant terms of `feedback` (the documents
/// retrieved in round one, best first). The result is
/// alpha*query + beta*centroid(feedback), truncated so that at most
/// `expansion_terms` terms not present in the original query survive.
[[nodiscard]] SparseVector rocchio_expand(
    const SparseVector& query, std::span<const SparseVector> feedback,
    const RocchioOptions& opts = RocchioOptions{});

}  // namespace lmk
