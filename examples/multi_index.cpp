// The platform's headline feature: several index schemes of different
// data types living on ONE overlay simultaneously, with space-mapping
// rotation keeping their hot regions apart — no per-index routing
// structures (§1, §3.4).
//
// Hosts three indexes side by side: 2-D geo points (L2), strings (edit
// distance), and shapes as point sets (Hausdorff), then queries each and
// prints the per-scheme load spread with and without rotation.
#include <algorithm>
#include <cstdio>

#include "core/typed_index.hpp"
#include "landmark/selection.hpp"
#include "metric/edit_distance.hpp"
#include "metric/hausdorff.hpp"
#include "metric/jaccard.hpp"

using namespace lmk;

int main() {
  Simulator sim;
  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = 64;
  DelaySpaceModel topology(topo_opts);
  Network net(sim, topology);
  Ring::Options ring_opts;
  Ring ring(net, ring_opts);
  for (HostId h = 0; h < 64; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform platform(ring);
  Rng rng(23);

  // ---- Scheme 1: geo points under Euclidean distance ----
  L2Space geo_space;
  std::vector<DenseVector> places;
  for (int i = 0; i < 1500; ++i) {
    // Hot cluster near one corner (cities cluster!).
    places.push_back({90 + rng.normal(0, 3), 90 + rng.normal(0, 3)});
  }
  auto geo_lm = greedy_selection(geo_space,
                                 std::span<const DenseVector>(places), 3, rng);
  LandmarkIndex<L2Space> geo(
      platform, geo_space,
      LandmarkMapper<L2Space>(geo_space, std::move(geo_lm),
                              uniform_boundary(3, 0, 142)),
      "geo", /*rotate=*/true);
  for (std::size_t i = 0; i < places.size(); ++i) geo.insert(i, places[i]);

  // ---- Scheme 2: words under edit distance ----
  EditDistanceSpace word_space;
  std::vector<std::string> words;
  const char* stems[] = {"search", "query", "index", "metric"};
  for (int i = 0; i < 1200; ++i) {
    std::string w = stems[rng.below(4)];
    if (rng.uniform() < 0.7) w.push_back(static_cast<char>('a' + rng.below(26)));
    if (rng.uniform() < 0.4) w[rng.below(w.size())] = 'z';
    words.push_back(w);
  }
  auto word_lm =
      greedy_selection(word_space, std::span<const std::string>(words), 4, rng);
  LandmarkIndex<EditDistanceSpace> lex(
      platform, word_space,
      LandmarkMapper<EditDistanceSpace>(word_space, std::move(word_lm),
                                        uniform_boundary(4, 0, 12)),
      "lexicon", /*rotate=*/true);
  for (std::size_t i = 0; i < words.size(); ++i) lex.insert(i, words[i]);

  // ---- Scheme 3: shapes under Hausdorff distance ----
  HausdorffSpace shape_space;
  std::vector<PointSet> shapes;
  for (int i = 0; i < 800; ++i) {
    PointSet s;
    double cx = rng.uniform(0, 10), cy = rng.uniform(0, 10);
    for (int p = 0; p < 6; ++p) {
      s.push_back(Point2D{cx + rng.normal(0, 0.5), cy + rng.normal(0, 0.5)});
    }
    shapes.push_back(std::move(s));
  }
  auto shape_lm = greedy_selection(shape_space,
                                   std::span<const PointSet>(shapes), 3, rng);
  LandmarkIndex<HausdorffSpace> gallery(
      platform, shape_space,
      LandmarkMapper<HausdorffSpace>(shape_space, std::move(shape_lm),
                                     uniform_boundary(3, 0, 16)),
      "gallery", /*rotate=*/true);
  for (std::size_t i = 0; i < shapes.size(); ++i) gallery.insert(i, shapes[i]);

  // ---- Scheme 4: user tag sets under Jaccard distance ----
  JaccardSpace tag_space;
  std::vector<ItemSet> profiles;
  for (int i = 0; i < 1000; ++i) {
    // Each profile draws tags around one of 10 interest groups.
    std::uint32_t base = static_cast<std::uint32_t>(rng.below(10)) * 50;
    std::vector<std::uint32_t> tags;
    for (int t = 0; t < 8; ++t) {
      tags.push_back(base + static_cast<std::uint32_t>(rng.below(50)));
    }
    profiles.emplace_back(std::move(tags));
  }
  auto tag_lm = greedy_selection(tag_space,
                                 std::span<const ItemSet>(profiles), 4, rng);
  LandmarkIndex<JaccardSpace> social(
      platform, tag_space,
      LandmarkMapper<JaccardSpace>(tag_space, std::move(tag_lm),
                                   uniform_boundary(4, 0, 1)),
      "social", /*rotate=*/true);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    social.insert(i, profiles[i]);
  }

  std::printf("one overlay (%zu nodes), four indexes: geo (%zu), lexicon "
              "(%zu), gallery (%zu), social (%zu)\n",
              ring.alive_count(), places.size(), words.size(), shapes.size(),
              profiles.size());

  // How many nodes carry entries of each scheme, and how much the three
  // schemes' hot nodes coincide (rotation should decorrelate them).
  int overlap = 0, any = 0;
  for (ChordNode* n : ring.alive_nodes()) {
    int held = 0;
    held += platform.store(*n, geo.scheme_id()).empty() ? 0 : 1;
    held += platform.store(*n, lex.scheme_id()).empty() ? 0 : 1;
    held += platform.store(*n, gallery.scheme_id()).empty() ? 0 : 1;
    held += platform.store(*n, social.scheme_id()).empty() ? 0 : 1;
    if (held > 0) ++any;
    if (held > 1) ++overlap;
  }
  std::printf("nodes storing any index: %d; nodes hosting 2+ schemes: %d "
              "(rotation spreads the hot regions)\n",
              any, overlap);

  // One query against each scheme, all sharing the same routing fabric.
  geo.range_query(ring.node(3), DenseVector{91, 89}, 2.0,
                  ReplyMode::kAllMatches,
                  [&](const IndexPlatform::QueryOutcome& o) {
                    std::printf("geo query: %zu places within 2.0 "
                                "(%d hops)\n",
                                o.results.size(), o.hops);
                  });
  lex.range_query(ring.node(9), std::string("querry"), 2.0,
                  ReplyMode::kAllMatches,
                  [&](const IndexPlatform::QueryOutcome& o) {
                    std::printf("lexicon query 'querry' r=2: %zu candidate "
                                "words (%d hops)\n",
                                o.results.size(), o.hops);
                  });
  gallery.range_query(ring.node(20), shapes[0], 1.5, ReplyMode::kAllMatches,
                      [&](const IndexPlatform::QueryOutcome& o) {
                        std::printf("gallery query: %zu shapes within "
                                    "Hausdorff 1.5 (%d hops)\n",
                                    o.results.size(), o.hops);
                      });
  social.range_query(ring.node(31), profiles[0], 0.6, ReplyMode::kAllMatches,
                     [&](const IndexPlatform::QueryOutcome& o) {
                       std::printf("social query: %zu profiles within "
                                   "Jaccard 0.6 (%d hops)\n",
                                   o.results.size(), o.hops);
                     });
  sim.run();
  return 0;
}
