// DNA sequence similarity search (§2 example 1): the metric space of
// strings under edit distance. Landmarks are picked with the generic
// greedy method (no coordinates needed — the distance is a black box),
// and near-neighbour queries find sequences within a mutation budget.
#include <cstdio>
#include <string>

#include "core/typed_index.hpp"
#include "landmark/selection.hpp"
#include "metric/edit_distance.hpp"

using namespace lmk;

namespace {

std::string random_dna(std::size_t len, Rng& rng) {
  static const char kBases[] = "ACGT";
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) s.push_back(kBases[rng.below(4)]);
  return s;
}

std::string mutate(std::string s, int mutations, Rng& rng) {
  static const char kBases[] = "ACGT";
  for (int m = 0; m < mutations && !s.empty(); ++m) {
    std::size_t pos = rng.below(s.size());
    switch (rng.below(3)) {
      case 0:  // substitution
        s[pos] = kBases[rng.below(4)];
        break;
      case 1:  // deletion
        s.erase(pos, 1);
        break;
      default:  // insertion
        s.insert(pos, 1, kBases[rng.below(4)]);
        break;
    }
  }
  return s;
}

}  // namespace

int main() {
  Simulator sim;
  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = 48;
  DelaySpaceModel topology(topo_opts);
  Network net(sim, topology);
  Ring::Options ring_opts;
  Ring ring(net, ring_opts);
  for (HostId h = 0; h < 48; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform platform(ring);

  // A "gene database": 60 base sequences, each with a family of noisy
  // copies (1-6 mutations) — the structure a sequence search exploits.
  Rng rng(13);
  std::vector<std::string> sequences;
  for (int fam = 0; fam < 60; ++fam) {
    std::string base = random_dna(40 + rng.below(20), rng);
    sequences.push_back(base);
    for (int copy = 0; copy < 24; ++copy) {
      sequences.push_back(mutate(base, 1 + static_cast<int>(rng.below(6)),
                                 rng));
    }
  }
  std::printf("gene database: %zu sequences\n", sequences.size());

  EditDistanceSpace space;
  auto landmarks = greedy_selection(
      space, std::span<const std::string>(sequences), 6, rng);
  // Boundary from the metric space: sequences are <= ~66 chars, so edit
  // distance is bounded by the longest length.
  LandmarkIndex<EditDistanceSpace> index(
      platform, space,
      LandmarkMapper<EditDistanceSpace>(space, std::move(landmarks),
                                        uniform_boundary(6, 0, 70)),
      "genes");
  index.bind_objects([&sequences](std::uint64_t id) -> const std::string& {
    return sequences[id];
  });
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    index.insert(i, sequences[i]);
  }

  // Query: a freshly mutated copy of family 7's base sequence; find
  // every stored sequence within 8 mutations.
  std::string query = mutate(sequences[7 * 25], 3, rng);
  const double radius = 8.0;
  index.range_query(
      ring.node(5), query, radius, ReplyMode::kAllMatches,
      [&](const IndexPlatform::QueryOutcome& outcome) {
        auto object = [&sequences](std::uint64_t id) -> const std::string& {
          return sequences[id];
        };
        auto exact = index.refine_range(query, radius, outcome.results,
                                        object);
        std::printf("query len %zu, radius %.0f: %zu candidates -> %zu "
                    "within %.0f mutations (%d hops, %d nodes)\n",
                    query.size(), radius, outcome.results.size(),
                    exact.size(), radius, outcome.hops,
                    outcome.index_nodes);
        int shown = 0;
        for (std::uint64_t id : exact) {
          if (shown++ >= 5) break;
          std::printf("  seq %-5llu edit distance %u\n",
                      static_cast<unsigned long long>(id),
                      edit_distance(query, sequences[id]));
        }
      });
  sim.run();
  return 0;
}
