// Document similarity search (§2 example 5): index a TF/IDF corpus
// under the angular (cosine) metric with spherical-k-means landmarks,
// then run short keyword-style queries and print the top matches —
// the paper's TREC scenario at example scale.
#include <cstdio>

#include "core/typed_index.hpp"
#include "landmark/selection.hpp"
#include "workload/corpus.hpp"

using namespace lmk;

int main() {
  Simulator sim;
  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = 64;
  DelaySpaceModel topology(topo_opts);
  Network net(sim, topology);
  Ring::Options ring_opts;
  Ring ring(net, ring_opts);
  for (HostId h = 0; h < 64; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform platform(ring);

  // A small synthetic newswire corpus (Zipf vocabulary, topical
  // stories, TF/IDF weights, stop words removed).
  CorpusConfig ccfg;
  ccfg.documents = 5000;
  ccfg.vocabulary = 30000;
  ccfg.topics = 25;
  ccfg.stories_per_topic = 20;
  Rng rng(11);
  Corpus corpus(ccfg, rng);
  const auto& docs = corpus.documents();
  std::printf("corpus: %zu documents, %zu distinct terms, mean %.1f "
              "terms/doc\n",
              docs.size(), corpus.distinct_terms(),
              [&] {
                double s = 0;
                for (const auto& d : docs) s += d.term_count();
                return s / static_cast<double>(docs.size());
              }());

  // Landmarks: spherical k-means centroids of a 600-document sample —
  // the selection the paper found necessary for sparse text (§4.3).
  AngularSpace space;
  auto sample_idx = rng.sample_indices(docs.size(), 600);
  std::vector<SparseVector> sample;
  for (auto i : sample_idx) sample.push_back(docs[i]);
  auto landmarks =
      kmeans_spherical(std::span<const SparseVector>(sample), 8, rng);
  Boundary boundary =
      boundary_from_sample(space, std::span<const SparseVector>(landmarks),
                           std::span<const SparseVector>(sample));
  LandmarkIndex<AngularSpace> index(platform, space,
                                    LandmarkMapper<AngularSpace>(
                                        space, std::move(landmarks),
                                        std::move(boundary)),
                                    "newswire");
  index.bind_objects(
      [&docs](std::uint64_t id) -> const SparseVector& { return docs[id]; });
  for (std::size_t i = 0; i < docs.size(); ++i) index.insert(i, docs[i]);

  // Three short queries, like TREC ad hoc topics (~3.5 unique terms).
  auto queries = corpus.make_queries(3, 3.5, rng);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const SparseVector& q = queries[qi];
    ChordNode& origin = ring.node(qi % 64);
    index.range_query(
        origin, q, 0.25 * 3.14159 / 2, ReplyMode::kTopK,
        [&, qi](const IndexPlatform::QueryOutcome& outcome) {
          auto object = [&docs](std::uint64_t id) -> const SparseVector& {
            return docs[id];
          };
          auto top = index.refine_knn(q, outcome.results, object, 5);
          std::printf("\nquery %zu (%zu terms): %zu candidates from %d "
                      "nodes in %d hops\n",
                      qi, q.term_count(), outcome.results.size(),
                      outcome.index_nodes, outcome.hops);
          for (std::uint64_t id : top) {
            std::printf("  doc %-6llu angle %.3f rad (topic %u, story %u)\n",
                        static_cast<unsigned long long>(id),
                        space.distance(q, docs[id]), corpus.topics()[id],
                        corpus.stories()[id]);
          }
        });
  }
  sim.run();
  return 0;
}
