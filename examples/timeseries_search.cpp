// Approximate time-series search (§2 example 4): fixed-length series
// compared under the L1 (Hamilton) metric, with k-medoids landmark
// selection — the generic scheme for spaces where centroids are not
// meaningful but representative members are.
#include <cmath>
#include <cstdio>

#include "core/typed_index.hpp"
#include "landmark/selection.hpp"

using namespace lmk;

namespace {

// A daily "load curve": base sinusoid + one of a few archetype shapes +
// noise. 48 half-hourly samples.
DenseVector make_series(int archetype, Rng& rng) {
  DenseVector s(48);
  double phase = archetype * 0.9;
  double peak = 1.0 + 0.4 * archetype;
  for (int t = 0; t < 48; ++t) {
    double x = 2 * 3.14159265 * t / 48.0;
    s[static_cast<std::size_t>(t)] =
        10 + peak * 5 * std::sin(x + phase) +
        (archetype % 2 == 0 ? 2.0 * std::sin(3 * x) : 0.0) +
        rng.normal(0, 0.5);
  }
  return s;
}

}  // namespace

int main() {
  Simulator sim;
  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = 40;
  DelaySpaceModel topology(topo_opts);
  Network net(sim, topology);
  Ring::Options ring_opts;
  Ring ring(net, ring_opts);
  for (HostId h = 0; h < 40; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform platform(ring);

  Rng rng(17);
  std::vector<DenseVector> series;
  std::vector<int> archetype_of;
  for (int i = 0; i < 3000; ++i) {
    int a = static_cast<int>(rng.below(6));
    archetype_of.push_back(a);
    series.push_back(make_series(a, rng));
  }
  std::printf("time-series library: %zu curves of length 48, 6 archetypes\n",
              series.size());

  L1Space space;
  auto sample_idx = rng.sample_indices(series.size(), 400);
  std::vector<DenseVector> sample;
  for (auto i : sample_idx) sample.push_back(series[i]);
  auto landmarks =
      kmedoids_selection(space, std::span<const DenseVector>(sample), 6, rng);
  Boundary boundary =
      boundary_from_sample(space, std::span<const DenseVector>(landmarks),
                           std::span<const DenseVector>(sample));
  LandmarkIndex<L1Space> index(
      platform, space,
      LandmarkMapper<L1Space>(space, std::move(landmarks),
                              std::move(boundary)),
      "load-curves");
  index.bind_objects([&series](std::uint64_t id) -> const DenseVector& {
    return series[id];
  });
  for (std::size_t i = 0; i < series.size(); ++i) index.insert(i, series[i]);

  // Query: a new curve of archetype 3; retrieve the 10 most similar.
  DenseVector q = make_series(3, rng);
  index.range_query(
      ring.node(1), q, 60.0, ReplyMode::kTopK,
      [&](const IndexPlatform::QueryOutcome& outcome) {
        auto object = [&series](std::uint64_t id) -> const DenseVector& {
          return series[id];
        };
        auto top = index.refine_knn(q, outcome.results, object, 10);
        std::printf("10-NN of an archetype-3 curve (from %zu candidates, "
                    "%d nodes, %d hops):\n",
                    outcome.results.size(), outcome.index_nodes,
                    outcome.hops);
        int same = 0;
        for (std::uint64_t id : top) {
          if (archetype_of[static_cast<std::size_t>(id)] == 3) ++same;
          std::printf("  curve %-5llu L1 distance %6.1f (archetype %d)\n",
                      static_cast<unsigned long long>(id),
                      space.distance(q, series[id]),
                      archetype_of[static_cast<std::size_t>(id)]);
        }
        std::printf("%d/10 neighbours share the query's archetype\n", same);
      });
  sim.run();
  return 0;
}
