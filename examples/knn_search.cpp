// k-nearest-neighbour search by radius expansion: the index answers
// range queries natively (§3.1), so k-NN is built on top by growing the
// search radius until k neighbours are *provably* inside the searched
// cube — exactly the iterative strategy centralized metric trees use.
#include <cstdio>

#include "core/typed_index.hpp"
#include "landmark/selection.hpp"
#include "workload/synthetic.hpp"

using namespace lmk;

int main() {
  Simulator sim;
  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = 64;
  DelaySpaceModel topology(topo_opts);
  Network net(sim, topology);
  Ring::Options ring_opts;
  Ring ring(net, ring_opts);
  for (HostId h = 0; h < 64; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform platform(ring);

  // A clustered dataset (Table 1 shape, smaller).
  SyntheticConfig cfg;
  cfg.objects = 8000;
  cfg.dims = 32;
  cfg.clusters = 8;
  cfg.deviation = 10;
  Rng rng(31);
  SyntheticDataset data = generate_clustered(cfg, rng);
  double max_dist = max_theoretical_distance(cfg);

  L2Space space;
  auto sample_idx = rng.sample_indices(data.points.size(), 600);
  std::vector<DenseVector> sample;
  for (auto i : sample_idx) sample.push_back(data.points[i]);
  auto landmarks = kmeans_dense(std::span<const DenseVector>(sample), 8, rng);
  LandmarkIndex<L2Space> index(
      platform, space,
      LandmarkMapper<L2Space>(space, std::move(landmarks),
                              uniform_boundary(8, 0, max_dist)),
      "knn-demo");
  index.bind_objects([&data](std::uint64_t id) -> const DenseVector& {
    return data.points[id];
  });
  for (std::size_t i = 0; i < data.points.size(); ++i) {
    index.insert(i, data.points[i]);
  }
  std::printf("indexed %zu points (%zu dims) over %zu nodes\n",
              data.points.size(), cfg.dims, ring.alive_count());

  auto queries = generate_queries(cfg, data, 3, rng);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    index.knn_query(
        ring.node(qi * 7 % 64), queries[qi], /*k=*/5,
        /*r0=*/0.002 * max_dist, /*growth=*/3.0, /*r_max=*/max_dist,
        [&, qi](const LandmarkIndex<L2Space>::KnnOutcome& out) {
          std::printf("\nquery %zu: exact=%s after %d expansion rounds "
                      "(%llu messages, %.0f ms total)\n",
                      qi, out.exact ? "yes" : "no", out.rounds,
                      static_cast<unsigned long long>(
                          out.totals.query_messages),
                      static_cast<double>(out.totals.max_latency) /
                          kMillisecond);
          for (std::uint64_t id : out.neighbors) {
            std::printf("  point %-6llu distance %7.2f (cluster %u)\n",
                        static_cast<unsigned long long>(id),
                        space.distance(queries[qi], data.points[id]),
                        data.assignments[id]);
          }
        });
  }
  sim.run();
  return 0;
}
