// Quickstart: index 2-D points on a small simulated overlay and run a
// near-neighbour query end to end.
//
//   build/examples/quickstart
//
// Walks through the whole pipeline: topology -> simulator -> Chord ring
// -> index platform -> landmark index -> range query -> refinement.
#include <cstdio>

#include "core/typed_index.hpp"
#include "landmark/selection.hpp"

using namespace lmk;

int main() {
  // 1. A simulated network of 32 hosts with ~180 ms mean RTT.
  Simulator sim;
  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = 32;
  DelaySpaceModel topology(topo_opts);
  Network net(sim, topology);

  // 2. A Chord overlay with one node per host, bootstrapped to the
  //    converged routing state.
  Ring::Options ring_opts;
  Ring ring(net, ring_opts);
  for (HostId h = 0; h < 32; ++h) ring.create_node(h);
  ring.bootstrap();

  // 3. The index platform on top of the overlay.
  IndexPlatform platform(ring);

  // 4. A dataset: 2-D points in [0, 100]^2 under Euclidean distance.
  L2Space space;
  Rng rng(7);
  std::vector<DenseVector> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }

  // 5. Landmarks via greedy (farthest-first) selection over a sample,
  //    and the landmark index with a metric-space boundary [0, sqrt(2)*100].
  auto landmarks =
      greedy_selection(space, std::span<const DenseVector>(points), 4, rng);
  LandmarkMapper<L2Space> mapper(space, std::move(landmarks),
                                 uniform_boundary(4, 0, 142.0));
  LandmarkIndex<L2Space> index(platform, space, std::move(mapper),
                               "quickstart");
  index.bind_objects(
      [&points](std::uint64_t id) -> const DenseVector& { return points[id]; });

  // 6. Insert everything (bulk load at the owners).
  for (std::size_t i = 0; i < points.size(); ++i) index.insert(i, points[i]);
  std::printf("indexed %zu points over %zu nodes\n", points.size(),
              ring.alive_count());

  // 7. A near-neighbour query: everything within distance 5 of (50, 50).
  DenseVector q{50, 50};
  ChordNode& origin = ring.node(0);
  index.range_query(
      origin, q, 5.0, ReplyMode::kAllMatches,
      [&](const IndexPlatform::QueryOutcome& outcome) {
        // The index returns a superset (contractive mapping); refine
        // with the true metric.
        auto object = [&points](std::uint64_t id) -> const DenseVector& {
          return points[id];
        };
        auto exact = index.refine_range(q, 5.0, outcome.results, object);
        std::printf("query (50,50) r=5: %zu candidates -> %zu exact "
                    "matches\n",
                    outcome.results.size(), exact.size());
        std::printf("cost: %d hops, %.1f ms to first result, %.1f ms to "
                    "last, %llu bytes\n",
                    outcome.hops,
                    static_cast<double>(outcome.response_time) / kMillisecond,
                    static_cast<double>(outcome.max_latency) / kMillisecond,
                    static_cast<unsigned long long>(outcome.query_bytes +
                                                    outcome.result_bytes));
        for (std::uint64_t id : exact) {
          std::printf("  match %llu at (%.1f, %.1f), distance %.2f\n",
                      static_cast<unsigned long long>(id), points[id][0],
                      points[id][1], space.distance(q, points[id]));
        }
      });

  // 8. Drive the simulation until the query completes.
  sim.run();
  return 0;
}
