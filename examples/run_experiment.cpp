// Command-line experiment runner: a configurable version of the figure
// benches for custom sweeps, e.g.
//
//   run_experiment --nodes 512 --objects 20000 --queries 300
//                  --selection kmeans --landmarks 10 --balance
//                  --factors 0.01,0.05,0.1 [--naive] [--rotate] [--csv]
//
// Prints the §4.1 metrics per range factor (or CSV with --csv).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "eval/experiment.hpp"
#include "landmark/selection.hpp"
#include "workload/synthetic.hpp"

using namespace lmk;

namespace {

struct Args {
  std::size_t nodes = 256;
  std::size_t objects = 10000;
  std::size_t queries = 150;
  std::size_t sample = 800;
  std::size_t landmarks = 10;
  std::uint64_t seed = 42;
  bool kmeans = true;
  bool balance = false;
  bool rotate = false;
  bool naive = false;
  bool csv = false;
  std::vector<double> factors{0.01, 0.05, 0.10};
};

std::vector<double> parse_factors(const char* s) {
  std::vector<double> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(std::stod(cur));
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--nodes")) {
      const char* v = next("--nodes");
      if (!v) return false;
      a->nodes = std::stoul(v);
    } else if (!std::strcmp(argv[i], "--objects")) {
      const char* v = next("--objects");
      if (!v) return false;
      a->objects = std::stoul(v);
    } else if (!std::strcmp(argv[i], "--queries")) {
      const char* v = next("--queries");
      if (!v) return false;
      a->queries = std::stoul(v);
    } else if (!std::strcmp(argv[i], "--sample")) {
      const char* v = next("--sample");
      if (!v) return false;
      a->sample = std::stoul(v);
    } else if (!std::strcmp(argv[i], "--landmarks")) {
      const char* v = next("--landmarks");
      if (!v) return false;
      a->landmarks = std::stoul(v);
    } else if (!std::strcmp(argv[i], "--seed")) {
      const char* v = next("--seed");
      if (!v) return false;
      a->seed = std::stoull(v);
    } else if (!std::strcmp(argv[i], "--selection")) {
      const char* v = next("--selection");
      if (!v) return false;
      a->kmeans = !std::strcmp(v, "kmeans");
    } else if (!std::strcmp(argv[i], "--factors")) {
      const char* v = next("--factors");
      if (!v) return false;
      a->factors = parse_factors(v);
    } else if (!std::strcmp(argv[i], "--balance")) {
      a->balance = true;
    } else if (!std::strcmp(argv[i], "--rotate")) {
      a->rotate = true;
    } else if (!std::strcmp(argv[i], "--naive")) {
      a->naive = true;
    } else if (!std::strcmp(argv[i], "--csv")) {
      a->csv = true;
    } else if (!std::strcmp(argv[i], "--help")) {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: run_experiment [--nodes N] [--objects N] [--queries N]\n"
        "    [--sample N] [--landmarks K] [--seed S]\n"
        "    [--selection greedy|kmeans] [--factors f1,f2,...]\n"
        "    [--balance] [--rotate] [--naive] [--csv]\n");
    return 1;
  }

  SyntheticConfig cfg;  // Table 1 shape at the requested size
  cfg.objects = args.objects;
  Rng rng(args.seed);
  SyntheticDataset data = generate_clustered(cfg, rng);
  auto queries = generate_queries(cfg, data, args.queries, rng);
  double max_dist = max_theoretical_distance(cfg);
  L2Space space;

  Rng lm_rng(args.seed + 1);
  auto idx = lm_rng.sample_indices(
      data.points.size(), std::min(args.sample, data.points.size()));
  std::vector<DenseVector> sample;
  for (auto i : idx) sample.push_back(data.points[i]);
  std::vector<DenseVector> landmarks =
      args.kmeans ? kmeans_dense(std::span<const DenseVector>(sample),
                                 args.landmarks, lm_rng)
                  : greedy_selection(space,
                                     std::span<const DenseVector>(sample),
                                     args.landmarks, lm_rng);

  ExperimentConfig ecfg;
  ecfg.nodes = args.nodes;
  ecfg.seed = args.seed;
  ecfg.load_balance = args.balance;
  ecfg.rotate = args.rotate;
  ecfg.routing = args.naive ? RoutingMode::kNaive : RoutingMode::kTree;
  SimilarityExperiment<L2Space> exp(
      ecfg, space, data.points,
      LandmarkMapper<L2Space>(space, std::move(landmarks),
                              uniform_boundary(args.landmarks, 0, max_dist)),
      "cli");
  exp.set_queries(queries);
  if (args.balance) {
    std::fprintf(stderr, "# balancing performed %d migrations\n",
                 exp.migrations());
  }

  TablePrinter table(QueryStats::header());
  for (double f : args.factors) {
    QueryStats stats = exp.run_batch(f * max_dist);
    table.add_row(stats.row("@" + fmt(f * 100, 2) + "%"));
  }
  if (args.csv) {
    std::fputs(table.csv().c_str(), stdout);
  } else {
    table.print();
  }
  return 0;
}
