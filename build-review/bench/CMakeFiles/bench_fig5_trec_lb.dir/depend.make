# Empty dependencies file for bench_fig5_trec_lb.
# This may be replaced when dependencies are built.
