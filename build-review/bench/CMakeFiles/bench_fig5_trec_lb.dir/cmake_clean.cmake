file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_trec_lb.dir/bench_fig5_trec_lb.cpp.o"
  "CMakeFiles/bench_fig5_trec_lb.dir/bench_fig5_trec_lb.cpp.o.d"
  "bench_fig5_trec_lb"
  "bench_fig5_trec_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_trec_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
