file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rotation.dir/bench_ablation_rotation.cpp.o"
  "CMakeFiles/bench_ablation_rotation.dir/bench_ablation_rotation.cpp.o.d"
  "bench_ablation_rotation"
  "bench_ablation_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
