# Empty compiler generated dependencies file for bench_ablation_rotation.
# This may be replaced when dependencies are built.
