# Empty dependencies file for bench_fig2_synthetic_nolb.
# This may be replaced when dependencies are built.
