file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_synthetic_nolb.dir/bench_fig2_synthetic_nolb.cpp.o"
  "CMakeFiles/bench_fig2_synthetic_nolb.dir/bench_fig2_synthetic_nolb.cpp.o.d"
  "bench_fig2_synthetic_nolb"
  "bench_fig2_synthetic_nolb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_synthetic_nolb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
