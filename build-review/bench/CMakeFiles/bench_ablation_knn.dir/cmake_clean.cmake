file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_knn.dir/bench_ablation_knn.cpp.o"
  "CMakeFiles/bench_ablation_knn.dir/bench_ablation_knn.cpp.o.d"
  "bench_ablation_knn"
  "bench_ablation_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
