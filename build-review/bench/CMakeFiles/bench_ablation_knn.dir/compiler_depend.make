# Empty compiler generated dependencies file for bench_ablation_knn.
# This may be replaced when dependencies are built.
