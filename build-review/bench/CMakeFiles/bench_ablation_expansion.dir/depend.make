# Empty dependencies file for bench_ablation_expansion.
# This may be replaced when dependencies are built.
