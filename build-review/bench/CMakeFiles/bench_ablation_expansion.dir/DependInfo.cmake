
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_expansion.cpp" "bench/CMakeFiles/bench_ablation_expansion.dir/bench_ablation_expansion.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_expansion.dir/bench_ablation_expansion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lmk_eval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_routing.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_lph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_balance.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_chord.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_landmark.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_metric.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lmk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
