file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_balance.dir/bench_ablation_balance.cpp.o"
  "CMakeFiles/bench_ablation_balance.dir/bench_ablation_balance.cpp.o.d"
  "bench_ablation_balance"
  "bench_ablation_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
