# Empty dependencies file for bench_ablation_balance.
# This may be replaced when dependencies are built.
