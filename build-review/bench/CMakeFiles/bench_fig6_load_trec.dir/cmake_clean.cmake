file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_load_trec.dir/bench_fig6_load_trec.cpp.o"
  "CMakeFiles/bench_fig6_load_trec.dir/bench_fig6_load_trec.cpp.o.d"
  "bench_fig6_load_trec"
  "bench_fig6_load_trec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_load_trec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
