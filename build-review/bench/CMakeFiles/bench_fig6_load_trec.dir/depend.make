# Empty dependencies file for bench_fig6_load_trec.
# This may be replaced when dependencies are built.
