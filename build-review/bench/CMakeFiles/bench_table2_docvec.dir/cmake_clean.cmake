file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_docvec.dir/bench_table2_docvec.cpp.o"
  "CMakeFiles/bench_table2_docvec.dir/bench_table2_docvec.cpp.o.d"
  "bench_table2_docvec"
  "bench_table2_docvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_docvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
