# Empty dependencies file for bench_fig3_synthetic_lb.
# This may be replaced when dependencies are built.
