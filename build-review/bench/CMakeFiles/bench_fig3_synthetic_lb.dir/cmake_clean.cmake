file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_synthetic_lb.dir/bench_fig3_synthetic_lb.cpp.o"
  "CMakeFiles/bench_fig3_synthetic_lb.dir/bench_fig3_synthetic_lb.cpp.o.d"
  "bench_fig3_synthetic_lb"
  "bench_fig3_synthetic_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_synthetic_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
