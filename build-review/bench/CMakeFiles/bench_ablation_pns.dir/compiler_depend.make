# Empty compiler generated dependencies file for bench_ablation_pns.
# This may be replaced when dependencies are built.
