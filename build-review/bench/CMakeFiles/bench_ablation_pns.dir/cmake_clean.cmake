file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pns.dir/bench_ablation_pns.cpp.o"
  "CMakeFiles/bench_ablation_pns.dir/bench_ablation_pns.cpp.o.d"
  "bench_ablation_pns"
  "bench_ablation_pns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
