# Empty compiler generated dependencies file for bench_fig4_load_synthetic.
# This may be replaced when dependencies are built.
