file(REMOVE_RECURSE
  "liblmk_lph.a"
)
