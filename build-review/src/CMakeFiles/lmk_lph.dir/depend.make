# Empty dependencies file for lmk_lph.
# This may be replaced when dependencies are built.
