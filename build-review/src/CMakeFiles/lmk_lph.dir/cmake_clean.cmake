file(REMOVE_RECURSE
  "CMakeFiles/lmk_lph.dir/lph/lph.cpp.o"
  "CMakeFiles/lmk_lph.dir/lph/lph.cpp.o.d"
  "liblmk_lph.a"
  "liblmk_lph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_lph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
