# Empty compiler generated dependencies file for lmk_eval.
# This may be replaced when dependencies are built.
