file(REMOVE_RECURSE
  "CMakeFiles/lmk_eval.dir/eval/ground_truth.cpp.o"
  "CMakeFiles/lmk_eval.dir/eval/ground_truth.cpp.o.d"
  "CMakeFiles/lmk_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/lmk_eval.dir/eval/metrics.cpp.o.d"
  "liblmk_eval.a"
  "liblmk_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
