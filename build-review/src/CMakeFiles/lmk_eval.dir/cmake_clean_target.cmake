file(REMOVE_RECURSE
  "liblmk_eval.a"
)
