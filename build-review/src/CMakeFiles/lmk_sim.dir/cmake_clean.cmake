file(REMOVE_RECURSE
  "CMakeFiles/lmk_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/lmk_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/lmk_sim.dir/sim/network.cpp.o"
  "CMakeFiles/lmk_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/lmk_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/lmk_sim.dir/sim/simulator.cpp.o.d"
  "liblmk_sim.a"
  "liblmk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
