file(REMOVE_RECURSE
  "liblmk_sim.a"
)
