# Empty compiler generated dependencies file for lmk_sim.
# This may be replaced when dependencies are built.
