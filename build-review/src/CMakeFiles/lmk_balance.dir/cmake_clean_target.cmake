file(REMOVE_RECURSE
  "liblmk_balance.a"
)
