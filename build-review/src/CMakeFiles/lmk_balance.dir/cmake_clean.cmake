file(REMOVE_RECURSE
  "CMakeFiles/lmk_balance.dir/balance/migration.cpp.o"
  "CMakeFiles/lmk_balance.dir/balance/migration.cpp.o.d"
  "liblmk_balance.a"
  "liblmk_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
