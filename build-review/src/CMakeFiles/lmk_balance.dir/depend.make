# Empty dependencies file for lmk_balance.
# This may be replaced when dependencies are built.
