file(REMOVE_RECURSE
  "liblmk_net.a"
)
