# Empty dependencies file for lmk_net.
# This may be replaced when dependencies are built.
