file(REMOVE_RECURSE
  "CMakeFiles/lmk_net.dir/net/king_loader.cpp.o"
  "CMakeFiles/lmk_net.dir/net/king_loader.cpp.o.d"
  "CMakeFiles/lmk_net.dir/net/latency_model.cpp.o"
  "CMakeFiles/lmk_net.dir/net/latency_model.cpp.o.d"
  "liblmk_net.a"
  "liblmk_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
