file(REMOVE_RECURSE
  "liblmk_common.a"
)
