file(REMOVE_RECURSE
  "CMakeFiles/lmk_common.dir/common/parallel.cpp.o"
  "CMakeFiles/lmk_common.dir/common/parallel.cpp.o.d"
  "CMakeFiles/lmk_common.dir/common/rng.cpp.o"
  "CMakeFiles/lmk_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/lmk_common.dir/common/stats.cpp.o"
  "CMakeFiles/lmk_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/lmk_common.dir/common/table.cpp.o"
  "CMakeFiles/lmk_common.dir/common/table.cpp.o.d"
  "liblmk_common.a"
  "liblmk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
