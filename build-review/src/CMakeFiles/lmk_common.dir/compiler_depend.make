# Empty compiler generated dependencies file for lmk_common.
# This may be replaced when dependencies are built.
