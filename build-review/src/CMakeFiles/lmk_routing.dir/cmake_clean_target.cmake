file(REMOVE_RECURSE
  "liblmk_routing.a"
)
