# Empty dependencies file for lmk_routing.
# This may be replaced when dependencies are built.
