file(REMOVE_RECURSE
  "CMakeFiles/lmk_routing.dir/routing/naive.cpp.o"
  "CMakeFiles/lmk_routing.dir/routing/naive.cpp.o.d"
  "CMakeFiles/lmk_routing.dir/routing/query.cpp.o"
  "CMakeFiles/lmk_routing.dir/routing/query.cpp.o.d"
  "CMakeFiles/lmk_routing.dir/routing/router.cpp.o"
  "CMakeFiles/lmk_routing.dir/routing/router.cpp.o.d"
  "liblmk_routing.a"
  "liblmk_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
