file(REMOVE_RECURSE
  "liblmk_metric.a"
)
