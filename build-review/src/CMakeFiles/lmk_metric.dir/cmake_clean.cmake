file(REMOVE_RECURSE
  "CMakeFiles/lmk_metric.dir/metric/edit_distance.cpp.o"
  "CMakeFiles/lmk_metric.dir/metric/edit_distance.cpp.o.d"
  "CMakeFiles/lmk_metric.dir/metric/hausdorff.cpp.o"
  "CMakeFiles/lmk_metric.dir/metric/hausdorff.cpp.o.d"
  "CMakeFiles/lmk_metric.dir/metric/jaccard.cpp.o"
  "CMakeFiles/lmk_metric.dir/metric/jaccard.cpp.o.d"
  "CMakeFiles/lmk_metric.dir/metric/sparse_vector.cpp.o"
  "CMakeFiles/lmk_metric.dir/metric/sparse_vector.cpp.o.d"
  "liblmk_metric.a"
  "liblmk_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
