# Empty dependencies file for lmk_metric.
# This may be replaced when dependencies are built.
