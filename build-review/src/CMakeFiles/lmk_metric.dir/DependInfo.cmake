
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metric/edit_distance.cpp" "src/CMakeFiles/lmk_metric.dir/metric/edit_distance.cpp.o" "gcc" "src/CMakeFiles/lmk_metric.dir/metric/edit_distance.cpp.o.d"
  "/root/repo/src/metric/hausdorff.cpp" "src/CMakeFiles/lmk_metric.dir/metric/hausdorff.cpp.o" "gcc" "src/CMakeFiles/lmk_metric.dir/metric/hausdorff.cpp.o.d"
  "/root/repo/src/metric/jaccard.cpp" "src/CMakeFiles/lmk_metric.dir/metric/jaccard.cpp.o" "gcc" "src/CMakeFiles/lmk_metric.dir/metric/jaccard.cpp.o.d"
  "/root/repo/src/metric/sparse_vector.cpp" "src/CMakeFiles/lmk_metric.dir/metric/sparse_vector.cpp.o" "gcc" "src/CMakeFiles/lmk_metric.dir/metric/sparse_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lmk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
