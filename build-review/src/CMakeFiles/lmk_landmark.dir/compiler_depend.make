# Empty compiler generated dependencies file for lmk_landmark.
# This may be replaced when dependencies are built.
