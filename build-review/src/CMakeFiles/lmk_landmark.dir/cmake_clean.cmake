file(REMOVE_RECURSE
  "CMakeFiles/lmk_landmark.dir/landmark/selection.cpp.o"
  "CMakeFiles/lmk_landmark.dir/landmark/selection.cpp.o.d"
  "liblmk_landmark.a"
  "liblmk_landmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_landmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
