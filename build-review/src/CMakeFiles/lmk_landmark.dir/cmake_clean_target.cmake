file(REMOVE_RECURSE
  "liblmk_landmark.a"
)
