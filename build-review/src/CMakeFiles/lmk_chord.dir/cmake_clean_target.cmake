file(REMOVE_RECURSE
  "liblmk_chord.a"
)
