# Empty dependencies file for lmk_chord.
# This may be replaced when dependencies are built.
