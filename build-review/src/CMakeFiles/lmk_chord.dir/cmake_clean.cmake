file(REMOVE_RECURSE
  "CMakeFiles/lmk_chord.dir/chord/node.cpp.o"
  "CMakeFiles/lmk_chord.dir/chord/node.cpp.o.d"
  "CMakeFiles/lmk_chord.dir/chord/ring.cpp.o"
  "CMakeFiles/lmk_chord.dir/chord/ring.cpp.o.d"
  "liblmk_chord.a"
  "liblmk_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
