file(REMOVE_RECURSE
  "liblmk_workload.a"
)
