# Empty compiler generated dependencies file for lmk_workload.
# This may be replaced when dependencies are built.
