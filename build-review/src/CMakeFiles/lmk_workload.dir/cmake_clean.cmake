file(REMOVE_RECURSE
  "CMakeFiles/lmk_workload.dir/workload/corpus.cpp.o"
  "CMakeFiles/lmk_workload.dir/workload/corpus.cpp.o.d"
  "CMakeFiles/lmk_workload.dir/workload/synthetic.cpp.o"
  "CMakeFiles/lmk_workload.dir/workload/synthetic.cpp.o.d"
  "liblmk_workload.a"
  "liblmk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
