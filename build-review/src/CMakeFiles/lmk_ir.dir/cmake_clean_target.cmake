file(REMOVE_RECURSE
  "liblmk_ir.a"
)
