# Empty compiler generated dependencies file for lmk_ir.
# This may be replaced when dependencies are built.
