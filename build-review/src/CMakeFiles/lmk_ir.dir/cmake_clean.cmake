file(REMOVE_RECURSE
  "CMakeFiles/lmk_ir.dir/ir/expansion.cpp.o"
  "CMakeFiles/lmk_ir.dir/ir/expansion.cpp.o.d"
  "liblmk_ir.a"
  "liblmk_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
