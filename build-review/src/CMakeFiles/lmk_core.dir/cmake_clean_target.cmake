file(REMOVE_RECURSE
  "liblmk_core.a"
)
