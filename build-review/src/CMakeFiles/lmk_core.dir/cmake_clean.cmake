file(REMOVE_RECURSE
  "CMakeFiles/lmk_core.dir/core/index_platform.cpp.o"
  "CMakeFiles/lmk_core.dir/core/index_platform.cpp.o.d"
  "liblmk_core.a"
  "liblmk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
