# Empty compiler generated dependencies file for lmk_core.
# This may be replaced when dependencies are built.
