# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for typed_index_test.
