# Empty dependencies file for typed_index_test.
# This may be replaced when dependencies are built.
