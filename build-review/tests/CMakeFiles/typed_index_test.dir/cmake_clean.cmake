file(REMOVE_RECURSE
  "CMakeFiles/typed_index_test.dir/typed_index_test.cpp.o"
  "CMakeFiles/typed_index_test.dir/typed_index_test.cpp.o.d"
  "typed_index_test"
  "typed_index_test.pdb"
  "typed_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
