file(REMOVE_RECURSE
  "CMakeFiles/chord_test.dir/chord_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord_test.cpp.o.d"
  "chord_test"
  "chord_test.pdb"
  "chord_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
