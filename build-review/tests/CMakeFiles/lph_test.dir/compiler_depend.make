# Empty compiler generated dependencies file for lph_test.
# This may be replaced when dependencies are built.
