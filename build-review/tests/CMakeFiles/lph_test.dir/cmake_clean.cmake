file(REMOVE_RECURSE
  "CMakeFiles/lph_test.dir/lph_test.cpp.o"
  "CMakeFiles/lph_test.dir/lph_test.cpp.o.d"
  "lph_test"
  "lph_test.pdb"
  "lph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
