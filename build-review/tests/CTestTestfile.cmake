# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_test[1]_include.cmake")
include("/root/repo/build-review/tests/parallel_test[1]_include.cmake")
include("/root/repo/build-review/tests/metric_test[1]_include.cmake")
include("/root/repo/build-review/tests/lph_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/chord_test[1]_include.cmake")
include("/root/repo/build-review/tests/routing_test[1]_include.cmake")
include("/root/repo/build-review/tests/landmark_test[1]_include.cmake")
include("/root/repo/build-review/tests/balance_test[1]_include.cmake")
include("/root/repo/build-review/tests/workload_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/platform_test[1]_include.cmake")
include("/root/repo/build-review/tests/typed_index_test[1]_include.cmake")
include("/root/repo/build-review/tests/churn_test[1]_include.cmake")
include("/root/repo/build-review/tests/eval_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
include("/root/repo/build-review/tests/replication_test[1]_include.cmake")
