file(REMOVE_RECURSE
  "CMakeFiles/knn_search.dir/knn_search.cpp.o"
  "CMakeFiles/knn_search.dir/knn_search.cpp.o.d"
  "knn_search"
  "knn_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
