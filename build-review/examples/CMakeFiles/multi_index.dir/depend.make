# Empty dependencies file for multi_index.
# This may be replaced when dependencies are built.
