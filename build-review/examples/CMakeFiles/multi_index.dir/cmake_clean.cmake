file(REMOVE_RECURSE
  "CMakeFiles/multi_index.dir/multi_index.cpp.o"
  "CMakeFiles/multi_index.dir/multi_index.cpp.o.d"
  "multi_index"
  "multi_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
