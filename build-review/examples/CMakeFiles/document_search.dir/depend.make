# Empty dependencies file for document_search.
# This may be replaced when dependencies are built.
