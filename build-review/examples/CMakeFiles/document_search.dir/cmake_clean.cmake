file(REMOVE_RECURSE
  "CMakeFiles/document_search.dir/document_search.cpp.o"
  "CMakeFiles/document_search.dir/document_search.cpp.o.d"
  "document_search"
  "document_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
