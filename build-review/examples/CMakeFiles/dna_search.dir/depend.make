# Empty dependencies file for dna_search.
# This may be replaced when dependencies are built.
