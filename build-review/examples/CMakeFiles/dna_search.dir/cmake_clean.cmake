file(REMOVE_RECURSE
  "CMakeFiles/dna_search.dir/dna_search.cpp.o"
  "CMakeFiles/dna_search.dir/dna_search.cpp.o.d"
  "dna_search"
  "dna_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
