// Ablation: static space-mapping rotation (§3.4).
//
// Several co-hosted index schemes share the same skewed entry
// distribution (entries dense near the upper boundary — the paper's
// high-dimensional hyperball effect). Without rotation their hot cuboids
// map to the same identifier range and pile onto the same nodes; with
// rotation (φ = hash of the index name) the hot ranges spread. The two
// settings run as concurrent sweep cells over the shared topology.
#include <algorithm>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/index_platform.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: space-mapping rotation with co-hosted indexes");

  const std::size_t kSchemes = 6;
  const std::size_t kEntriesPerScheme = scale.objects / 4;
  const ConstantLatencyModel topo(scale.nodes, 20 * kMillisecond);

  TablePrinter table({"rotation", "schemes", "max_node_load", "p99", "gini",
                      "hot_overlap"});
  SweepDriver sweep;
  for (bool rotate : {false, true}) {
    sweep.add_cell([&scale, &topo, kSchemes, kEntriesPerScheme, rotate]() {
      Simulator sim;
      Network net(sim, topo);
      Ring::Options ropts;
      ropts.seed = scale.seed;
      Ring ring(net, ropts);
      for (HostId h = 0; h < scale.nodes; ++h) ring.create_node(h);
      ring.bootstrap();
      IndexPlatform platform(ring);

      Rng rng(scale.seed + 9);
      std::vector<std::uint32_t> scheme_ids;
      for (std::size_t s = 0; s < kSchemes; ++s) {
        scheme_ids.push_back(platform.register_scheme(
            "hot-scheme-" + std::to_string(s), uniform_boundary(3, 0, 1),
            rotate));
      }
      for (std::size_t s = 0; s < kSchemes; ++s) {
        for (std::size_t i = 0; i < kEntriesPerScheme; ++i) {
          // Skewed towards the upper corner in every dimension.
          IndexPoint p(3);
          for (auto& v : p) v = 1.0 - std::abs(rng.normal(0, 0.04));
          platform.insert(scheme_ids[s], i, p);
        }
      }

      std::vector<double> loads;
      for (std::size_t l : platform.load_distribution()) {
        loads.push_back(static_cast<double>(l));
      }
      // Hot overlap: of the 10 most loaded nodes of each scheme, how many
      // appear in the hot-10 of more than one scheme?
      std::vector<std::vector<const ChordNode*>> hot(kSchemes);
      for (std::size_t s = 0; s < kSchemes; ++s) {
        std::vector<std::pair<std::size_t, const ChordNode*>> per_node;
        for (ChordNode* n : ring.alive_nodes()) {
          per_node.emplace_back(platform.store(*n, scheme_ids[s]).size(), n);
        }
        std::sort(per_node.rbegin(), per_node.rend());
        for (int i = 0; i < 10; ++i) hot[s].push_back(per_node[i].second);
      }
      int overlap = 0;
      for (std::size_t a = 0; a < kSchemes; ++a) {
        for (std::size_t b = a + 1; b < kSchemes; ++b) {
          for (const ChordNode* n : hot[a]) {
            if (std::find(hot[b].begin(), hot[b].end(), n) != hot[b].end()) {
              ++overlap;
            }
          }
        }
      }
      CellOutput out;
      out.rows.push_back(
          {rotate ? "on" : "off", std::to_string(kSchemes),
           fmt(*std::max_element(loads.begin(), loads.end()), 0),
           fmt(percentile(loads, 99), 0), fmt(gini(loads), 3),
           std::to_string(overlap)});
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: rotation cuts the combined max node load and the hot-set "
      "overlap sharply.\n");
  return 0;
}
