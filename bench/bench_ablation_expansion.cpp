// Ablation: automatic query expansion (paper §6, future work #2) —
// pseudo-relevance feedback on the TREC-like corpus. Round one
// retrieves candidates for the raw ~3.5-term query; Rocchio expansion
// folds the strongest terms of the top documents into the query, which
// is re-issued. Measured: recall@10 before/after and the second round's
// extra cost. Both modes intentionally share one index stack (sim time
// accumulates across them), so the bench is a single sweep cell.
#include <optional>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/typed_index.hpp"
#include "eval/ground_truth.hpp"
#include "ir/expansion.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: Rocchio query expansion on the TREC-like corpus");
  CorpusWorkload w(scale);
  const auto& docs = w.corpus->documents();

  TablePrinter table({"mode", "recall@10", "avg_total_B", "avg_maxlat_ms"});
  SweepDriver sweep;
  sweep.add_cell([&w, &scale, &docs]() {
    Simulator sim;
    DelaySpaceModel::Options topo_opts;
    topo_opts.hosts = scale.nodes;
    topo_opts.seed = scale.seed;
    DelaySpaceModel topo(topo_opts);
    Network net(sim, topo);
    Ring::Options ropts;
    ropts.seed = scale.seed;
    Ring ring(net, ropts);
    for (HostId h = 0; h < scale.nodes; ++h) ring.create_node(h);
    ring.bootstrap();
    IndexPlatform platform(ring);
    std::size_t sample =
        full_scale() ? 3000 : std::min<std::size_t>(1000, scale.docs / 4);
    LandmarkIndex<AngularSpace> index(
        platform, w.space,
        w.make_mapper(Selection::kKMeans, 10, sample, scale.seed + 7),
        "expansion");
    index.bind_objects([&docs](std::uint64_t id) -> const SparseVector& {
      return docs[id];
    });
    for (std::size_t i = 0; i < docs.size(); ++i) index.insert(i, docs[i]);

    // Small enough that the raw ~3.5-term query misses part of its true
    // neighbourhood — the regime expansion exists for.
    const double radius = 0.12 * 3.14159 / 2;
    std::size_t probe_count = std::min<std::size_t>(40, w.queries.size());
    auto object = [&docs](std::uint64_t id) -> const SparseVector& {
      return docs[id];
    };

    CellOutput out;
    for (bool expand : {false, true}) {
      double recall_sum = 0, bytes = 0, lat = 0;
      auto nodes = ring.alive_nodes();
      Rng rng(scale.seed + 31);
      for (std::size_t qi = 0; qi < probe_count; ++qi) {
        const SparseVector& q = w.queries[qi];
        auto truth = knn_bruteforce(
            docs.size(),
            [&](std::size_t j) { return w.space.distance(q, docs[j]); }, 10);
        ChordNode* origin = nodes[rng.below(nodes.size())];
        std::optional<IndexPlatform::QueryOutcome> round1;
        index.range_query(*origin, q, radius, ReplyMode::kTopK,
                          [&](const auto& o) { round1 = o; });
        sim.run();
        bytes += static_cast<double>(round1->query_bytes +
                                     round1->result_bytes);
        lat += static_cast<double>(round1->max_latency) / kMillisecond;
        auto top1 = index.refine_knn(q, round1->results, object, 10);
        if (!expand) {
          recall_sum += recall(truth, top1);
          continue;
        }
        // Feedback: the best documents of round one (by true distance).
        std::vector<SparseVector> feedback;
        for (std::uint64_t id : top1) {
          if (feedback.size() >= 5) break;
          feedback.push_back(docs[id]);
        }
        RocchioOptions rocchio;
        rocchio.beta = 1.5;         // strong feedback: the raw query is tiny
        rocchio.expansion_terms = 25;
        SparseVector expanded = rocchio_expand(
            q, std::span<const SparseVector>(feedback), rocchio);
        std::optional<IndexPlatform::QueryOutcome> round2;
        index.range_query(*origin, expanded, radius, ReplyMode::kTopK,
                          [&](const auto& o) { round2 = o; });
        sim.run();
        bytes += static_cast<double>(round2->query_bytes +
                                     round2->result_bytes);
        lat += static_cast<double>(round2->max_latency) / kMillisecond;
        // Merge both rounds' candidates; final ranking by distance to the
        // ORIGINAL query (recall is judged against the user's question).
        std::vector<std::uint64_t> merged = round1->results;
        merged.insert(merged.end(), round2->results.begin(),
                      round2->results.end());
        auto top = index.refine_knn(q, merged, object, 10);
        recall_sum += recall(truth, top);
      }
      auto n = static_cast<double>(probe_count);
      out.rows.push_back({expand ? "expanded (2 rounds)" : "raw query",
                          fmt(recall_sum / n, 3), fmt(bytes / n, 0),
                          fmt(lat / n, 0)});
    }
    return out;
  });
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: expansion recovers documents the sparse raw query "
      "misses, at roughly double the per-query cost.\n");
  return 0;
}
