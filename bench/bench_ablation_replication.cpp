// Ablation: entry replication vs crash tolerance. Crashes wipe a
// fraction of the overlay; replicated entries survive as long as no
// `replication` consecutive nodes die before repair. Measured: result
// coverage after the crash wave (before and after repair), and the
// storage overhead replication costs. Each (degree, crash fraction)
// pair is one sweep cell over the shared constant-latency topology.
#include <optional>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/index_platform.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: replication degree vs crash tolerance");

  const std::size_t degrees[] = {1, 2, 3};
  const double crash_fractions[] = {0.05, 0.15, 0.30};
  std::size_t object_count = scale.objects / 4;
  const ConstantLatencyModel topo(scale.nodes, 20 * kMillisecond);

  TablePrinter table({"replication", "storage_x", "crash_frac",
                      "coverage_after_crash", "coverage_after_repair"});
  SweepDriver sweep;
  for (std::size_t r : degrees) {
    for (double frac : crash_fractions) {
      sweep.add_cell([&scale, &topo, object_count, r, frac]() {
        Simulator sim;
        Network net(sim, topo);
        Ring::Options ropts;
        ropts.seed = scale.seed;
        Ring ring(net, ropts);
        for (HostId h = 0; h < scale.nodes; ++h) ring.create_node(h);
        ring.bootstrap();
        IndexPlatform::Options popts;
        popts.replication = r;
        IndexPlatform platform(ring, popts);
        std::uint32_t scheme = platform.register_scheme(
            "repl", uniform_boundary(2, 0, 1), false);
        Rng rng(scale.seed + 60);
        for (std::size_t i = 0; i < object_count; ++i) {
          platform.insert(scheme, i,
                          IndexPoint{rng.uniform(), rng.uniform()});
        }
        double storage =
            static_cast<double>(platform.scheme_entries(scheme)) /
            static_cast<double>(object_count);

        // Crash wave.
        auto kill_count = static_cast<std::size_t>(
            static_cast<double>(scale.nodes) * frac);
        for (std::size_t k = 0; k < kill_count; ++k) {
          auto alive = ring.alive_nodes();
          if (alive.size() <= 3) break;
          ring.fail(*alive[rng.below(alive.size())]);
        }
        for (ChordNode* n : ring.alive_nodes()) ring.fix_neighbors(*n);
        ring.refresh_all_fingers();

        auto coverage = [&]() {
          std::optional<IndexPlatform::QueryOutcome> outcome;
          platform.region_query(*ring.alive_nodes()[0], scheme,
                                Region{{Interval{0, 1}, Interval{0, 1}}},
                                IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                                [&](const auto& o) { outcome = o; });
          sim.run();
          return static_cast<double>(outcome->results.size()) /
                 static_cast<double>(object_count);
        };
        double after_crash = coverage();
        platform.repair_replication();
        double after_repair = coverage();
        CellOutput out;
        out.rows.push_back({std::to_string(r), fmt(storage, 2),
                            fmt(frac * 100, 0) + "%", fmt(after_crash, 4),
                            fmt(after_repair, 4)});
        return out;
      });
    }
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: r=1 loses ~the crash fraction of entries permanently; "
      "r>=2 keeps coverage near 1.0 (losses only where consecutive nodes "
      "died), and repair cannot resurrect what every replica lost.\n");
  return 0;
}
