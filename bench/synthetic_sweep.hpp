// The Figure 2 / Figure 3 sweep: the four landmark selection schemes
// {Greedy-5, Greedy-10, Kmean-5, Kmean-10} against the query-range
// factor, with or without dynamic load migration. Each scheme is one
// sweep cell; the cells run concurrently over one shared dataset /
// query set / truth table / topology and emit byte-identically to the
// serial loop.
#pragma once

#include "bench_common.hpp"
#include "common/table.hpp"

namespace lmk::bench {

inline void run_synthetic_sweep(const char* title, bool load_balance) {
  Scale scale = Scale::resolve();
  scale.print(title);
  SyntheticWorkload w(scale);

  auto dataset = share(w.data.points);
  auto queries = share(w.queries);
  // One brute-force truth pass shared by all four schemes.
  auto truth = share(SimilarityExperiment<L2Space>::compute_truth(
      w.space, *dataset, *queries, 10));

  struct SchemeAxis {
    Selection sel;
    std::size_t k;
  };
  const SchemeAxis axes[] = {{Selection::kGreedy, 5},
                             {Selection::kGreedy, 10},
                             {Selection::kKMeans, 5},
                             {Selection::kKMeans, 10}};

  ExperimentConfig proto;
  proto.nodes = scale.nodes;
  proto.seed = scale.seed;
  proto.load_balance = load_balance;
  proto.delta = 0.0;     // §4.2: δ = 0 ...
  proto.probe_level = 4;  // ... and P_l = 4 (maximum balancing effect)
  auto topology = SimilarityExperiment<L2Space>::make_topology(proto);

  TablePrinter table(QueryStats::header());
  SweepDriver sweep;
  for (const SchemeAxis& ax : axes) {
    sweep.add_cell([&w, &scale, dataset, queries, truth, topology, proto,
                    load_balance, ax]() {
      std::string name = std::string(selection_name(ax.sel)) + "-" +
                         std::to_string(ax.k);
      SimilarityExperiment<L2Space> exp(
          proto, w.space, dataset,
          w.make_mapper(ax.sel, ax.k, scale.sample, scale.seed + ax.k +
                                          (ax.sel == Selection::kKMeans
                                               ? 1000
                                               : 0)),
          name, topology);
      exp.set_queries(queries, truth);
      CellOutput out;
      if (load_balance) {
        out.lines.push_back("## " + name + ": " +
                            std::to_string(exp.migrations()) +
                            " migrations during balancing");
      }
      for (double f : kRangeFactors) {
        QueryStats stats = exp.run_batch(f * w.max_dist);
        out.rows.push_back(stats.row(name + " @" + fmt(f * 100, 1) + "%"));
      }
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
}

}  // namespace lmk::bench
