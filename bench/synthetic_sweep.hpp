// The Figure 2 / Figure 3 sweep: the four landmark selection schemes
// {Greedy-5, Greedy-10, Kmean-5, Kmean-10} against the query-range
// factor, with or without dynamic load migration.
#pragma once

#include "bench_common.hpp"
#include "common/table.hpp"

namespace lmk::bench {

inline void run_synthetic_sweep(const char* title, bool load_balance) {
  Scale scale = Scale::resolve();
  scale.print(title);
  SyntheticWorkload w(scale);

  // One brute-force truth pass shared by all four schemes.
  auto truth = SimilarityExperiment<L2Space>::compute_truth(
      w.space, w.data.points, w.queries, 10);

  struct SchemeAxis {
    Selection sel;
    std::size_t k;
  };
  const SchemeAxis axes[] = {{Selection::kGreedy, 5},
                             {Selection::kGreedy, 10},
                             {Selection::kKMeans, 5},
                             {Selection::kKMeans, 10}};

  TablePrinter table(QueryStats::header());
  for (const SchemeAxis& ax : axes) {
    ExperimentConfig ecfg;
    ecfg.nodes = scale.nodes;
    ecfg.seed = scale.seed;
    ecfg.load_balance = load_balance;
    ecfg.delta = 0.0;     // §4.2: δ = 0 ...
    ecfg.probe_level = 4;  // ... and P_l = 4 (maximum balancing effect)
    std::string name = std::string(selection_name(ax.sel)) + "-" +
                       std::to_string(ax.k);
    SimilarityExperiment<L2Space> exp(
        ecfg, w.space, w.data.points,
        w.make_mapper(ax.sel, ax.k, scale.sample, scale.seed + ax.k +
                                        (ax.sel == Selection::kKMeans
                                             ? 1000
                                             : 0)),
        name);
    exp.set_queries(w.queries, truth);
    if (load_balance) {
      std::printf("## %s: %d migrations during balancing\n", name.c_str(),
                  exp.migrations());
    }
    for (double f : kRangeFactors) {
      QueryStats stats = exp.run_batch(f * w.max_dist);
      table.add_row(stats.row(name + " @" + fmt(f * 100, 1) + "%"));
    }
  }
  table.print();
}

}  // namespace lmk::bench
