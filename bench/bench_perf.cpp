// Offline-phase performance baseline: times the four phases every
// figure/table bench pays for — brute-force k-NN oracle, landmark
// selection, index build (mapping + bulk insert), and the simulated
// query batch — and writes BENCH_perf.json (phase → seconds, plus the
// thread counts used).
//
// The three offline phases run twice, with 1 thread and with the
// configured pool width (LMK_THREADS, default = hardware concurrency),
// so the JSON records the parallel speedup on this machine. The query
// phase is the discrete-event simulator: single-threaded by contract,
// timed once. Outputs are checked to be identical across thread counts
// before the file is written.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "core/index_platform.hpp"
#include "eval/experiment.hpp"

namespace lmk::bench {
namespace {

template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct PhaseTimes {
  double oracle = 0;
  double kmeans = 0;
  double greedy = 0;
  double build = 0;
};

int run() {
  Scale s = Scale::resolve();
  s.print("bench_perf");
  std::size_t pool_threads = thread_count();
  std::printf("pool threads: %zu\n", pool_threads);

  SyntheticWorkload w(s);
  std::size_t k = 10;  // landmarks (paper's synthetic default)
  std::size_t sample_size = std::min(s.sample, w.data.points.size());

  auto measure = [&](std::size_t threads,
                     std::vector<std::vector<std::uint64_t>>* truth_out,
                     std::vector<DenseVector>* kmeans_out) {
    set_threads(threads);
    PhaseTimes t;
    t.oracle = time_s([&] {
      *truth_out = knn_bruteforce_batch(w.space, w.data.points, w.queries,
                                        /*k=*/10);
    });
    Rng sel_rng(s.seed + 7);
    auto idx = sel_rng.sample_indices(w.data.points.size(), sample_size);
    std::vector<DenseVector> sample;
    sample.reserve(idx.size());
    for (auto i : idx) sample.push_back(w.data.points[i]);
    t.kmeans = time_s([&] {
      Rng rng(s.seed + 8);
      *kmeans_out =
          kmeans_dense(std::span<const DenseVector>(sample), k, rng);
    });
    std::vector<DenseVector> greedy_lm;
    t.greedy = time_s([&] {
      Rng rng(s.seed + 9);
      greedy_lm = greedy_selection(
          w.space, std::span<const DenseVector>(sample), k, rng);
    });
    LandmarkMapper<L2Space> mapper(w.space, *kmeans_out,
                                   uniform_boundary(k, 0, w.max_dist));
    t.build = time_s([&] {
      Simulator sim;
      ConstantLatencyModel topo(s.nodes, kMillisecond);
      Network net(sim, topo);
      Ring ring(net, Ring::Options{});
      for (HostId h = 0; h < static_cast<HostId>(s.nodes); ++h) {
        ring.create_node(h);
      }
      ring.bootstrap();
      IndexPlatform platform(ring);
      std::uint32_t sc = platform.register_scheme(
          "perf", uniform_boundary(k, 0, w.max_dist), false);
      auto points =
          mapper.map_all(std::span<const DenseVector>(w.data.points));
      platform.bulk_insert(sc, points);
      LMK_CHECK(platform.scheme_entries(sc) == w.data.points.size());
    });
    return t;
  };

  std::vector<std::vector<std::uint64_t>> truth1, truthN;
  std::vector<DenseVector> kmeans1, kmeansN;
  PhaseTimes t1 = measure(1, &truth1, &kmeans1);
  PhaseTimes tN = measure(pool_threads, &truthN, &kmeansN);
  LMK_CHECK(truth1 == truthN);    // determinism contract, enforced
  LMK_CHECK(kmeans1 == kmeansN);

  // Query phase: the simulated batch, single-threaded by contract.
  set_threads(pool_threads);
  ExperimentConfig cfg;
  cfg.nodes = s.nodes;
  cfg.seed = s.seed;
  double query_s = 0;
  double recall_sum = 0;
  {
    SimilarityExperiment<L2Space> exp(
        cfg, w.space, w.data.points,
        w.make_mapper(Selection::kKMeans, k, s.sample, s.seed + 8),
        "perf-query");
    exp.set_queries(w.queries, truthN);
    query_s = time_s([&] {
      QueryStats stats = exp.run_batch(0.05 * w.max_dist);
      recall_sum = stats.recall.mean();
    });
  }
  set_threads(0);

  double off1 = t1.oracle + t1.kmeans + t1.greedy + t1.build;
  double offN = tN.oracle + tN.kmeans + tN.greedy + tN.build;
  std::printf("phase           1 thread      %zu threads\n", pool_threads);
  std::printf("oracle      %10.3fs   %10.3fs\n", t1.oracle, tN.oracle);
  std::printf("kmeans      %10.3fs   %10.3fs\n", t1.kmeans, tN.kmeans);
  std::printf("greedy      %10.3fs   %10.3fs\n", t1.greedy, tN.greedy);
  std::printf("build       %10.3fs   %10.3fs\n", t1.build, tN.build);
  std::printf("offline sum %10.3fs   %10.3fs   (speedup %.2fx)\n", off1,
              offN, offN > 0 ? off1 / offN : 0.0);
  std::printf("query       %10.3fs  (simulated, single-threaded; "
              "mean recall %.3f)\n",
              query_s, recall_sum);

  const char* out_path = std::getenv("LMK_PERF_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_perf.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"threads\": %zu,\n"
               "  \"scale\": {\"nodes\": %zu, \"objects\": %zu, "
               "\"queries\": %zu, \"sample\": %zu, \"seed\": %llu},\n"
               "  \"phases\": {\n"
               "    \"oracle\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"kmeans\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"greedy\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"build\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"query\": {\"tN\": %.6f}\n"
               "  },\n"
               "  \"offline_seconds_1_thread\": %.6f,\n"
               "  \"offline_seconds_n_threads\": %.6f,\n"
               "  \"offline_speedup\": %.4f\n"
               "}\n",
               pool_threads, s.nodes, s.objects, s.queries, sample_size,
               static_cast<unsigned long long>(s.seed), t1.oracle, tN.oracle,
               t1.kmeans, tN.kmeans, t1.greedy, tN.greedy, t1.build,
               tN.build, query_s, off1, offN,
               offN > 0 ? off1 / offN : 0.0);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace lmk::bench

int main() { return lmk::bench::run(); }
