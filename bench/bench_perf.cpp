// Performance baseline: times the offline phases every figure/table
// bench pays for — brute-force k-NN oracle, landmark selection, index
// build (mapping + bulk insert) — plus the *online* hot path (event
// dispatch through the simulator, end-to-end query throughput, and
// per-subquery candidate-scan counters), and writes BENCH_perf.json.
//
// The three offline phases run twice, with 1 thread and with the
// configured pool width (LMK_THREADS, default = hardware concurrency),
// so the JSON records the parallel speedup on this machine. The online
// phase is the discrete-event simulator: single-threaded by contract,
// timed once:
//   - engine_events_per_sec: a pure dispatch storm (self-rescheduling
//     chains, LMK_ONLINE_EVENTS events) isolating the event queue;
//   - sim_events_per_sec / queries_per_sec: the simulated query batch;
//   - candidates/scanned per subquery: per-node local-solve cost.
// A fourth phase times the parallel sweep engine (src/eval/sweep.hpp):
// identical experiment cells over shared immutable inputs, run strictly
// serial and at the pool width, reporting cells/sec and the speedup
// (results are checked bit-identical between the two runs).
// When LMK_PERF_BASELINE names an earlier BENCH_perf.json (the
// committed bench/BENCH_perf.baseline.json), its "online" section is
// embedded verbatim as "online_baseline" so one file carries both
// sides of the regression check (scripts/bench_diff.py).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "common/alloc_guard.hpp"
#include "common/parallel.hpp"
#include "core/index_platform.hpp"
#include "eval/experiment.hpp"
#include "serve/result_cache.hpp"

namespace lmk::bench {
namespace {

template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct PhaseTimes {
  double oracle = 0;
  double kmeans = 0;
  double greedy = 0;
  double build = 0;
};

struct OnlineNumbers {
  std::uint64_t engine_events = 0;
  double engine_s = 0;          ///< dispatch-storm wall time
  std::uint64_t sim_events = 0; ///< events fired by the query batch
  double query_s = 0;           ///< query-batch wall time
  std::uint64_t queries = 0;
  double subqueries = 0;        ///< local solves across the batch
  double candidates = 0;        ///< region-matching entries, total
  double scanned = 0;           ///< entries examined, total

  [[nodiscard]] double engine_eps() const {
    return engine_s > 0 ? static_cast<double>(engine_events) / engine_s : 0;
  }
  [[nodiscard]] double sim_eps() const {
    return query_s > 0 ? static_cast<double>(sim_events) / query_s : 0;
  }
  [[nodiscard]] double qps() const {
    return query_s > 0 ? static_cast<double>(queries) / query_s : 0;
  }
  [[nodiscard]] double cand_per_subquery() const {
    return subqueries > 0 ? candidates / subqueries : 0;
  }
  [[nodiscard]] double scan_per_subquery() const {
    return subqueries > 0 ? scanned / subqueries : 0;
  }
};

struct SweepNumbers {
  std::size_t cells = 0;
  double t1 = 0;                ///< wall time, strictly serial (1 thread)
  double tN = 0;                ///< wall time at the pool width
  std::size_t peak_resident = 0;
  std::size_t resident_cap = 0;

  [[nodiscard]] double cps1() const {
    return t1 > 0 ? static_cast<double>(cells) / t1 : 0;
  }
  [[nodiscard]] double cpsN() const {
    return tN > 0 ? static_cast<double>(cells) / tN : 0;
  }
  [[nodiscard]] double speedup() const { return tN > 0 ? t1 / tN : 0; }
};

/// Pure event-engine throughput: `chains` self-rescheduling events
/// hammer push/pop/dispatch with small (SBO-sized) closures, mixed
/// delays (heavy same-timestamp ties included) and actor tags, until
/// `budget` events have fired. No protocol work — this isolates the
/// queue + closure machinery the simulator core pays for per event.
struct DispatchStorm {
  Simulator sim;
  std::uint64_t remaining;

  void arm(SimTime delay, std::uint64_t salt) {
    // The capture is sized like the tree router's batched delivery
    // closure (~56 bytes: this, qid/incarnation words, hop bookkeeping)
    // so the storm exercises the same callable-storage path the real
    // simulation does. The payload feeds back into the delay stream so
    // the optimizer cannot shed it.
    std::uint64_t payload[5] = {salt ^ 0xa076'1d64'78bd'642full,
                                salt * 0xe703'7ed1'a0b4'28dbull,
                                salt + 0x8ebc'6af0'9c88'c6e3ull,
                                salt ^ (salt >> 33),
                                ~salt};
    sim.schedule_after(delay,
                       [this, salt, payload] {
                         fire(salt ^ payload[salt & 3]);
                       },
                       /*actor=*/salt & 1023);
  }

  void fire(std::uint64_t salt) {
    if (remaining == 0) return;
    --remaining;
    // xorshift keeps the delay pattern (and heap shape) churning.
    salt ^= salt << 13;
    salt ^= salt >> 7;
    salt ^= salt << 17;
    arm(static_cast<SimTime>(salt % 5), salt);
  }

  explicit DispatchStorm(std::uint64_t budget, std::size_t chains)
      : remaining(budget) {
    for (std::size_t c = 0; c < chains; ++c) {
      arm(static_cast<SimTime>(c % 7), 0x9e3779b97f4a7c15ull + c);
    }
  }
};

/// Extract the balanced-brace object following `"key":` in `json`.
/// Empty when absent — the baseline file is optional.
std::string extract_object(const std::string& json, const std::string& key) {
  std::size_t k = json.find("\"" + key + "\"");
  if (k == std::string::npos) return {};
  std::size_t open = json.find('{', k);
  if (open == std::string::npos) return {};
  int depth = 0;
  for (std::size_t i = open; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) {
      return json.substr(open, i - open + 1);
    }
  }
  return {};
}

/// Pull `"field": <number>` out of a JSON object snippet (0 if absent).
double extract_number(const std::string& obj, const std::string& field) {
  std::size_t k = obj.find("\"" + field + "\"");
  if (k == std::string::npos) return 0;
  std::size_t colon = obj.find(':', k);
  if (colon == std::string::npos) return 0;
  return std::strtod(obj.c_str() + colon + 1, nullptr);
}

int run() {
  Scale s = Scale::resolve();
  s.print("bench_perf");
  std::size_t pool_threads = thread_count();
  std::printf("pool threads: %zu\n", pool_threads);

  SyntheticWorkload w(s);
  std::size_t k = 10;  // landmarks (paper's synthetic default)
  std::size_t sample_size = std::min(s.sample, w.data.points.size());

  auto measure = [&](std::size_t threads,
                     std::vector<std::vector<std::uint64_t>>* truth_out,
                     std::vector<DenseVector>* kmeans_out) {
    set_threads(threads);
    PhaseTimes t;
    t.oracle = time_s([&] {
      *truth_out = knn_bruteforce_batch(w.space, w.data.points, w.queries,
                                        /*k=*/10);
    });
    Rng sel_rng(s.seed + 7);
    auto idx = sel_rng.sample_indices(w.data.points.size(), sample_size);
    std::vector<DenseVector> sample;
    sample.reserve(idx.size());
    for (auto i : idx) sample.push_back(w.data.points[i]);
    t.kmeans = time_s([&] {
      Rng rng(s.seed + 8);
      *kmeans_out =
          kmeans_dense(std::span<const DenseVector>(sample), k, rng);
    });
    std::vector<DenseVector> greedy_lm;
    t.greedy = time_s([&] {
      Rng rng(s.seed + 9);
      greedy_lm = greedy_selection(
          w.space, std::span<const DenseVector>(sample), k, rng);
    });
    LandmarkMapper<L2Space> mapper(w.space, *kmeans_out,
                                   uniform_boundary(k, 0, w.max_dist));
    t.build = time_s([&] {
      Simulator sim;
      ConstantLatencyModel topo(s.nodes, kMillisecond);
      Network net(sim, topo);
      Ring ring(net, Ring::Options{});
      for (HostId h = 0; h < static_cast<HostId>(s.nodes); ++h) {
        ring.create_node(h);
      }
      ring.bootstrap();
      IndexPlatform platform(ring);
      std::uint32_t sc = platform.register_scheme(
          "perf", uniform_boundary(k, 0, w.max_dist), false);
      auto points =
          mapper.map_all(std::span<const DenseVector>(w.data.points));
      platform.bulk_insert(sc, points);
      LMK_CHECK(platform.scheme_entries(sc) == w.data.points.size());
    });
    return t;
  };

  std::vector<std::vector<std::uint64_t>> truth1, truthN;
  std::vector<DenseVector> kmeans1, kmeansN;
  PhaseTimes t1 = measure(1, &truth1, &kmeans1);
  PhaseTimes tN = measure(pool_threads, &truthN, &kmeansN);
  LMK_CHECK(truth1 == truthN);    // determinism contract, enforced
  LMK_CHECK(kmeans1 == kmeansN);

  // Online phase 1: event-engine dispatch storm (no protocol work).
  // Under LMK_ALLOC_GUARD the storm splits into a warmup quarter (the
  // bucket/heap/closure pools reach their high-water capacity — the
  // allocations here are the expected one-time warmup) and the steady
  // state, whose allocation delta the bench_diff gate requires to be
  // exactly zero.
  OnlineNumbers online;
  online.engine_events =
      env_size("LMK_ONLINE_EVENTS", full_scale() ? 16000000 : 4000000);
  AllocCounters engine_warmup;
  AllocCounters engine_steady;
  {
    DispatchStorm storm(online.engine_events, /*chains=*/4096);
    online.engine_s = time_s([&] {
      {
        AllocPhaseScope phase("engine-warmup");
        storm.sim.run(online.engine_events / 4);
        engine_warmup = phase.delta();
      }
      {
        AllocPhaseScope phase("engine-steady-state");
        storm.sim.run();
        engine_steady = phase.delta();
      }
    });
    LMK_CHECK(storm.remaining == 0);
  }
  if (alloc_guard_enabled()) {
    std::printf("alloc guard: engine warmup %llu allocs / %llu bytes, "
                "steady state %llu allocs / %llu frees\n",
                static_cast<unsigned long long>(engine_warmup.allocs),
                static_cast<unsigned long long>(engine_warmup.alloc_bytes),
                static_cast<unsigned long long>(engine_steady.allocs),
                static_cast<unsigned long long>(engine_steady.frees));
  }

  // Online phase 2: the simulated query batch, single-threaded by
  // contract — end-to-end events/sec and queries/sec through the full
  // stack, plus the per-subquery local-solve scan counters.
  set_threads(pool_threads);
  ExperimentConfig cfg;
  cfg.nodes = s.nodes;
  cfg.seed = s.seed;
  double recall_sum = 0;
  {
    SimilarityExperiment<L2Space> exp(
        cfg, w.space, w.data.points,
        w.make_mapper(Selection::kKMeans, k, s.sample, s.seed + 8),
        "perf-query");
    exp.set_queries(w.queries, truthN);
    std::uint64_t ev0 = exp.sim().events_executed();
    online.query_s = time_s([&] {
      QueryStats stats = exp.run_batch(0.05 * w.max_dist);
      recall_sum = stats.recall.mean();
      online.subqueries = stats.subqueries.sum();
      online.candidates = stats.candidates.sum();
      online.scanned = stats.scanned.sum();
    });
    online.sim_events = exp.sim().events_executed() - ev0;
    online.queries = s.queries;
  }
  set_threads(0);
  double query_s = online.query_s;

  // Sweep phase: the parallel sweep engine (src/eval/sweep.hpp) running
  // the shape every figure bench now has — independent experiment cells
  // over shared immutable inputs — timed strictly serial (1 thread) and
  // at the pool width. The cells share one config, so they also share
  // one topology instance; outputs must match bit-for-bit between the
  // two runs (enforced below).
  SweepNumbers sweep;
  sweep.cells = 8;
  {
    std::size_t cell_nodes = std::max<std::size_t>(32, s.nodes / 4);
    std::size_t cell_objects =
        std::min(w.data.points.size(), std::max<std::size_t>(500,
                                                             s.objects / 4));
    std::size_t cell_queries = std::min<std::size_t>(20, w.queries.size());
    auto cell_dataset = share(std::vector<DenseVector>(
        w.data.points.begin(),
        w.data.points.begin() + static_cast<std::ptrdiff_t>(cell_objects)));
    auto cell_queryset = share(std::vector<DenseVector>(
        w.queries.begin(),
        w.queries.begin() + static_cast<std::ptrdiff_t>(cell_queries)));
    auto cell_truth = share(SimilarityExperiment<L2Space>::compute_truth(
        w.space, *cell_dataset, *cell_queryset, 10));
    ExperimentConfig proto;
    proto.nodes = cell_nodes;
    proto.seed = s.seed;
    auto topology = SimilarityExperiment<L2Space>::make_topology(proto);

    auto run_cells = [&](std::size_t threads, double* wall,
                         std::size_t* peak, std::size_t* cap) {
      set_threads(threads);
      SweepDriver driver;
      for (std::size_t i = 0; i < sweep.cells; ++i) {
        Selection sel = (i % 2 == 0) ? Selection::kGreedy
                                     : Selection::kKMeans;
        driver.add_cell([&, sel, i]() {
          std::string name = std::string(selection_name(sel)) + "-cell" +
                             std::to_string(i);
          SimilarityExperiment<L2Space> exp(
              proto, w.space, cell_dataset,
              w.make_mapper(sel, /*k=*/5, std::min<std::size_t>(200,
                                                                s.sample),
                            s.seed + 11 + i),
              name, topology);
          exp.set_queries(cell_queryset, cell_truth);
          QueryStats stats = exp.run_batch(0.05 * w.max_dist);
          CellOutput out;
          out.rows.push_back({name, fmt(stats.recall.mean(), 3),
                              fmt(stats.hops.mean(), 2),
                              fmt(stats.query_messages.mean(), 1)});
          return out;
        });
      }
      std::vector<CellOutput> outs;
      *wall = time_s([&] { outs = driver.run(); });
      *peak = driver.peak_resident();
      *cap = driver.resident_cap();
      return outs;
    };

    std::size_t peak1 = 0, cap1 = 0;
    double wall1 = 0;
    auto outs1 = run_cells(1, &wall1, &peak1, &cap1);
    auto outsN = run_cells(pool_threads, &sweep.tN, &sweep.peak_resident,
                           &sweep.resident_cap);
    sweep.t1 = wall1;
    set_threads(0);
    LMK_CHECK(outs1.size() == outsN.size());
    for (std::size_t i = 0; i < outs1.size(); ++i) {
      // Determinism contract, enforced: identical cell results at any
      // thread count.
      LMK_CHECK(outs1[i].rows == outsN[i].rows);
      LMK_CHECK(outs1[i].lines == outsN[i].lines);
    }
  }

  // Local-store phase: the three LocalStore backends over one large
  // EntryStore, no network in the loop — isolates the per-node build
  // and probe costs the end-to-end query numbers blend together. All
  // backends answer one shared probe schedule (boxes centred on stored
  // entries, knn foci at stored entries); the two exact backends must
  // agree hit-for-hit on every box (order-independent digest, checked).
  struct StoreCell {
    double build_s = 0;
    double range_s = 0;
    double knn_s = 0;
    std::uint64_t range_scanned = 0;
    std::uint64_t range_hits = 0;
    std::uint64_t knn_scanned = 0;
    std::size_t bytes = 0;
  };
  const LocalStoreKind store_kinds[] = {LocalStoreKind::kSorted,
                                        LocalStoreKind::kHnsw,
                                        LocalStoreKind::kPivot};
  StoreCell store_cells[3];
  std::size_t store_entries =
      env_size("LMK_STORE_ENTRIES",
               std::min<std::size_t>(w.data.points.size(),
                                     full_scale() ? 200000 : 20000));
  const std::size_t store_probes =
      env_size("LMK_STORE_PROBES", full_scale() ? 100 : 200);
  {
    LandmarkMapper<L2Space> mapper(w.space, kmeansN,
                                   uniform_boundary(k, 0, w.max_dist));
    EntryStore store;
    for (std::size_t i = 0; i < store_entries; ++i) {
      store.push_back(static_cast<Id>(i), i, mapper.map(w.data.points[i]));
    }
    Rng prng(s.seed + 21);
    std::vector<Region> boxes;
    std::vector<IndexPoint> foci;
    const double width = 0.02 * w.max_dist;
    for (std::size_t p = 0; p < store_probes; ++p) {
      const std::span<const double> c =
          store.point(prng.below(store.size()));
      Region r;
      for (std::size_t d = 0; d < c.size(); ++d) {
        r.ranges.push_back(Interval{c[d] - width, c[d] + width});
      }
      boxes.push_back(std::move(r));
      const std::span<const double> fp =
          store.point(prng.below(store.size()));
      foci.emplace_back(fp.begin(), fp.end());
    }
    std::uint64_t digests[3] = {0, 0, 0};
    for (std::size_t ci = 0; ci < 3; ++ci) {
      LocalStoreOptions sopts;
      sopts.kind = store_kinds[ci];
      auto ls = make_local_store(sopts);
      StoreCell& cell = store_cells[ci];
      cell.build_s = time_s([&] { ls->build(store); });
      std::vector<std::uint32_t> out;
      std::uint64_t digest = 1469598103934665603ULL;
      cell.range_s = time_s([&] {
        for (const Region& r : boxes) {
          out.clear();
          cell.range_scanned += ls->range(store, r, out);
          cell.range_hits += out.size();
          std::sort(out.begin(), out.end());
          for (std::uint32_t hit : out) {
            digest = (digest ^ hit) * 1099511628211ULL;
          }
        }
      });
      cell.knn_s = time_s([&] {
        for (const IndexPoint& focus : foci) {
          out.clear();
          cell.knn_scanned += ls->knn(store, focus, 10, out);
        }
      });
      cell.bytes = ls->memory_bytes();
      digests[ci] = digest;
      std::printf("store %-6s build %8.3fs  range %8.3fs "
                  "(%7.1f scanned/probe, %llu hits)  knn %8.3fs  "
                  "%zu B\n",
                  local_store_kind_name(store_kinds[ci]), cell.build_s,
                  cell.range_s,
                  static_cast<double>(cell.range_scanned) /
                      static_cast<double>(store_probes),
                  static_cast<unsigned long long>(cell.range_hits),
                  cell.knn_s, cell.bytes);
    }
    // Exactness: sorted and pivot returned the same hits on every box.
    LMK_CHECK(digests[0] == digests[2]);
    LMK_CHECK(store_cells[0].range_hits == store_cells[2].range_hits);
  }

  // Serving phase: ResultCache probe storms — hit vs miss vs
  // invalidation scan vs invalidate-and-refill, isolating the serving
  // tier's per-probe cost from the end-to-end query path. The three
  // steady-state storms (hit, miss, non-covering invalidation sweep)
  // run inside one alloc-guard scope: the cache probe and invalidation
  // loops must not allocate once filled (hard-gated by bench_diff.py
  // when the guard build is on).
  struct ServeNumbers {
    double fill_s = 0, hit_s = 0, miss_s = 0, inval_s = 0, refill_s = 0;
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t hit_entries = 0;  ///< entries surfaced by hit probes
    std::size_t slots = 0, entries_per_slot = 0;
    std::uint64_t refills = 0;
  } serve;
  AllocCounters serve_steady;
  {
    const std::size_t cdims = 8;
    serve.slots = env_size("LMK_SERVE_BENCH_SLOTS", 256);
    serve.entries_per_slot = env_size("LMK_SERVE_BENCH_ENTRIES", 64);
    serve.probes =
        env_size("LMK_SERVE_BENCH_PROBES", full_scale() ? 400000 : 100000);
    ResultCache cache(serve.slots, /*max_entries=*/0, /*ttl=*/0);
    // Regions and probe points are prebuilt: Region construction
    // allocates, and the storms below must not.
    auto box_at = [&](double lo) {
      Region r;
      for (std::size_t d = 0; d < cdims; ++d) {
        r.ranges.push_back(Interval{lo, lo + 0.5});
      }
      return r;
    };
    std::vector<Region> fill_regions, miss_regions;
    fill_regions.reserve(serve.slots);
    miss_regions.reserve(serve.slots);
    for (std::size_t i = 0; i < serve.slots; ++i) {
      fill_regions.push_back(box_at(static_cast<double>(i)));
      miss_regions.push_back(box_at(static_cast<double>(i) + 0.25));
    }
    std::vector<std::uint64_t> objs(serve.entries_per_slot);
    std::vector<double> coords(serve.entries_per_slot * cdims);
    Rng crng(s.seed + 33);
    for (std::size_t e = 0; e < serve.entries_per_slot; ++e) {
      objs[e] = e;
      for (std::size_t d = 0; d < cdims; ++d) {
        coords[e * cdims + d] = crng.uniform();
      }
    }
    serve.fill_s = time_s([&] {
      for (std::size_t i = 0; i < serve.slots; ++i) {
        cache.insert(fill_regions[i], 0, objs, coords, cdims);
      }
    });
    const std::vector<double> outside(cdims, -10.0);  // covers no slot
    std::span<const std::uint64_t> po;
    std::span<const double> pc;
    std::size_t pd = 0;
    {
      AllocPhaseScope phase("serve-steady-state");
      serve.hit_s = time_s([&] {
        for (std::uint64_t p = 0; p < serve.probes; ++p) {
          if (cache.probe(fill_regions[p % serve.slots], 0, &po, &pc, &pd)) {
            ++serve.hits;
            serve.hit_entries += po.size();
          }
        }
      });
      serve.miss_s = time_s([&] {
        for (std::uint64_t p = 0; p < serve.probes; ++p) {
          if (cache.probe(miss_regions[p % serve.slots], 0, &po, &pc, &pd)) {
            ++serve.hits;  // cannot happen; keeps the probe observable
          }
        }
      });
      serve.inval_s = time_s([&] {
        for (std::uint64_t p = 0; p < serve.probes / 8; ++p) {
          cache.invalidate_point(outside);
        }
      });
      serve_steady = phase.delta();
    }
    LMK_CHECK(serve.hits == serve.probes);
    LMK_CHECK(cache.live_slots() == serve.slots);
    // Covering invalidation + refill cycle (insert may grow slot
    // storage, so it stays outside the steady-state alloc scope).
    serve.refills = serve.slots * 8;
    serve.refill_s = time_s([&] {
      std::vector<double> center(cdims);
      for (std::uint64_t p = 0; p < serve.refills; ++p) {
        const std::size_t i = static_cast<std::size_t>(p) % serve.slots;
        for (std::size_t d = 0; d < cdims; ++d) {
          center[d] = static_cast<double>(i) + 0.25;
        }
        cache.invalidate_point(center);
        cache.insert(fill_regions[i], 0, objs, coords, cdims);
      }
    });
    LMK_CHECK(cache.stats().point_invalidations == serve.refills);
  }

  double off1 = t1.oracle + t1.kmeans + t1.greedy + t1.build;
  double offN = tN.oracle + tN.kmeans + tN.greedy + tN.build;
  std::printf("phase           1 thread      %zu threads\n", pool_threads);
  std::printf("oracle      %10.3fs   %10.3fs\n", t1.oracle, tN.oracle);
  std::printf("kmeans      %10.3fs   %10.3fs\n", t1.kmeans, tN.kmeans);
  std::printf("greedy      %10.3fs   %10.3fs\n", t1.greedy, tN.greedy);
  std::printf("build       %10.3fs   %10.3fs\n", t1.build, tN.build);
  std::printf("offline sum %10.3fs   %10.3fs   (speedup %.2fx)\n", off1,
              offN, offN > 0 ? off1 / offN : 0.0);
  std::printf("query       %10.3fs  (simulated, single-threaded; "
              "mean recall %.3f)\n",
              query_s, recall_sum);
  std::printf("online: engine %.0f events/s (%llu events), "
              "batch %.0f events/s, %.1f queries/s\n",
              online.engine_eps(),
              static_cast<unsigned long long>(online.engine_events),
              online.sim_eps(), online.qps());
  std::printf("online: %.1f candidates, %.1f scanned per subquery "
              "(%.0f subqueries)\n",
              online.cand_per_subquery(), online.scan_per_subquery(),
              online.subqueries);
  std::printf("serve: %zu slots x %zu entries  hit %.0f probes/s  "
              "miss %.0f probes/s  inval scan %.0f sweeps/s  "
              "refill %.0f cycles/s\n",
              serve.slots, serve.entries_per_slot,
              serve.hit_s > 0 ? static_cast<double>(serve.probes) /
                                    serve.hit_s
                              : 0.0,
              serve.miss_s > 0 ? static_cast<double>(serve.probes) /
                                     serve.miss_s
                               : 0.0,
              serve.inval_s > 0 ? static_cast<double>(serve.probes / 8) /
                                      serve.inval_s
                                : 0.0,
              serve.refill_s > 0 ? static_cast<double>(serve.refills) /
                                       serve.refill_s
                                 : 0.0);
  std::printf("sweep: %zu cells  1 thread %.3fs (%.2f cells/s)  "
              "%zu threads %.3fs (%.2f cells/s)  speedup %.2fx  "
              "peak resident %zu (cap %zu)\n",
              sweep.cells, sweep.t1, sweep.cps1(), pool_threads, sweep.tN,
              sweep.cpsN(), sweep.speedup(), sweep.peak_resident,
              sweep.resident_cap);

  // Pre-PR baseline (committed): embedded into the output JSON so the
  // file carries both sides of the events/sec regression check.
  std::string baseline_online;
  const char* baseline_path = std::getenv("LMK_PERF_BASELINE");
  if (baseline_path != nullptr && *baseline_path != '\0') {
    std::FILE* bf = std::fopen(baseline_path, "r");
    if (bf == nullptr) {
      std::fprintf(stderr, "baseline %s not readable\n", baseline_path);
    } else {
      std::string text;
      char buf[4096];
      std::size_t got = 0;
      while ((got = std::fread(buf, 1, sizeof buf, bf)) > 0) {
        text.append(buf, got);
      }
      std::fclose(bf);
      baseline_online = extract_object(text, "online");
      if (baseline_online.empty()) {
        std::fprintf(stderr, "baseline %s has no \"online\" section\n",
                     baseline_path);
      } else {
        double base_eps = extract_number(baseline_online,
                                         "engine_events_per_sec");
        double base_scan = extract_number(baseline_online,
                                          "scanned_per_subquery");
        if (base_eps > 0) {
          std::printf("online: engine speedup vs baseline: %.2fx\n",
                      online.engine_eps() / base_eps);
        }
        if (base_scan > 0) {
          std::printf("online: scanned/subquery vs baseline: %.1f -> %.1f\n",
                      base_scan, online.scan_per_subquery());
        }
      }
    }
  }

  const char* out_path = std::getenv("LMK_PERF_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_perf.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"threads\": %zu,\n"
               "  \"scale\": {\"nodes\": %zu, \"objects\": %zu, "
               "\"queries\": %zu, \"sample\": %zu, \"seed\": %llu},\n"
               "  \"phases\": {\n"
               "    \"oracle\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"kmeans\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"greedy\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"build\": {\"t1\": %.6f, \"tN\": %.6f},\n"
               "    \"query\": {\"tN\": %.6f}\n"
               "  },\n"
               "  \"offline_seconds_1_thread\": %.6f,\n"
               "  \"offline_seconds_n_threads\": %.6f,\n"
               "  \"offline_speedup\": %.4f,\n"
               "  \"online\": {\n"
               "    \"engine_events\": %llu,\n"
               "    \"engine_seconds\": %.6f,\n"
               "    \"engine_events_per_sec\": %.1f,\n"
               "    \"sim_events\": %llu,\n"
               "    \"query_seconds\": %.6f,\n"
               "    \"sim_events_per_sec\": %.1f,\n"
               "    \"queries\": %llu,\n"
               "    \"queries_per_sec\": %.3f,\n"
               "    \"subqueries\": %.0f,\n"
               "    \"candidates_per_subquery\": %.3f,\n"
               "    \"scanned_per_subquery\": %.3f\n"
               "  },\n"
               "  \"sweep\": {\n"
               "    \"cells\": %zu,\n"
               "    \"t1_seconds\": %.6f,\n"
               "    \"tN_seconds\": %.6f,\n"
               "    \"cells_per_sec_1_thread\": %.4f,\n"
               "    \"cells_per_sec_n_threads\": %.4f,\n"
               "    \"speedup\": %.4f,\n"
               "    \"peak_resident\": %zu,\n"
               "    \"resident_cap\": %zu,\n"
               "    \"hardware_threads\": %u\n"
               "  }",
               pool_threads, s.nodes, s.objects, s.queries, sample_size,
               static_cast<unsigned long long>(s.seed), t1.oracle, tN.oracle,
               t1.kmeans, tN.kmeans, t1.greedy, tN.greedy, t1.build,
               tN.build, query_s, off1, offN,
               offN > 0 ? off1 / offN : 0.0,
               static_cast<unsigned long long>(online.engine_events),
               online.engine_s, online.engine_eps(),
               static_cast<unsigned long long>(online.sim_events),
               online.query_s, online.sim_eps(),
               static_cast<unsigned long long>(online.queries), online.qps(),
               online.subqueries, online.cand_per_subquery(),
               online.scan_per_subquery(), sweep.cells, sweep.t1, sweep.tN,
               sweep.cps1(), sweep.cpsN(), sweep.speedup(),
               sweep.peak_resident, sweep.resident_cap,
               std::thread::hardware_concurrency());
  // Per-backend local-store phase: build + probe wall times over the
  // shared schedule, for the bench_diff local-store timing comparison.
  std::fprintf(f,
               ",\n  \"local_store\": {\n"
               "    \"entries\": %zu,\n"
               "    \"range_probes\": %zu,\n"
               "    \"knn_probes\": %zu",
               store_entries, store_probes, store_probes);
  for (std::size_t ci = 0; ci < 3; ++ci) {
    const StoreCell& cell = store_cells[ci];
    std::fprintf(
        f,
        ",\n    \"%s\": {\"build_seconds\": %.6f, "
        "\"range_seconds\": %.6f, \"knn_seconds\": %.6f, "
        "\"scanned_per_range\": %.3f, \"range_hits\": %llu, "
        "\"scanned_per_knn\": %.3f, \"memory_bytes\": %zu}",
        local_store_kind_name(store_kinds[ci]), cell.build_s, cell.range_s,
        cell.knn_s,
        static_cast<double>(cell.range_scanned) /
            static_cast<double>(store_probes),
        static_cast<unsigned long long>(cell.range_hits),
        static_cast<double>(cell.knn_scanned) /
            static_cast<double>(store_probes),
        cell.bytes);
  }
  std::fprintf(f, "\n  }");

  // Serving-tier cache microbench: raw ResultCache probe storms,
  // decoupled from the end-to-end overload sweep in bench_flagship.
  std::fprintf(
      f,
      ",\n  \"serve\": {\n"
      "    \"slots\": %zu,\n"
      "    \"entries_per_slot\": %zu,\n"
      "    \"probes\": %llu,\n"
      "    \"hits\": %llu,\n"
      "    \"hit_entries\": %llu,\n"
      "    \"fill_seconds\": %.6f,\n"
      "    \"hit_probes_per_sec\": %.1f,\n"
      "    \"miss_probes_per_sec\": %.1f,\n"
      "    \"invalidation_sweeps_per_sec\": %.1f,\n"
      "    \"refill_cycles_per_sec\": %.1f\n"
      "  }",
      serve.slots, serve.entries_per_slot,
      static_cast<unsigned long long>(serve.probes),
      static_cast<unsigned long long>(serve.hits),
      static_cast<unsigned long long>(serve.hit_entries), serve.fill_s,
      serve.hit_s > 0 ? static_cast<double>(serve.probes) / serve.hit_s
                      : 0.0,
      serve.miss_s > 0 ? static_cast<double>(serve.probes) / serve.miss_s
                       : 0.0,
      serve.inval_s > 0
          ? static_cast<double>(serve.probes / 8) / serve.inval_s
          : 0.0,
      serve.refill_s > 0
          ? static_cast<double>(serve.refills) / serve.refill_s
          : 0.0);

  // Per-phase allocation deltas (all-zero unless built with
  // -DLMK_ALLOC_GUARD=ON; "guard_enabled" tells bench_diff.py whether
  // the zero-steady-state-allocation gate is meaningful).
  std::fprintf(f,
               ",\n  \"alloc\": {\n"
               "    \"guard_enabled\": %s,\n"
               "    \"engine_warmup\": {\"allocs\": %llu, \"frees\": %llu, "
               "\"alloc_bytes\": %llu, \"free_bytes\": %llu},\n"
               "    \"engine_steady_state\": {\"allocs\": %llu, "
               "\"frees\": %llu, \"alloc_bytes\": %llu, "
               "\"free_bytes\": %llu},\n"
               "    \"serve_steady_state\": {\"allocs\": %llu, "
               "\"frees\": %llu, \"alloc_bytes\": %llu, "
               "\"free_bytes\": %llu}\n"
               "  }",
               alloc_guard_enabled() ? "true" : "false",
               static_cast<unsigned long long>(engine_warmup.allocs),
               static_cast<unsigned long long>(engine_warmup.frees),
               static_cast<unsigned long long>(engine_warmup.alloc_bytes),
               static_cast<unsigned long long>(engine_warmup.free_bytes),
               static_cast<unsigned long long>(engine_steady.allocs),
               static_cast<unsigned long long>(engine_steady.frees),
               static_cast<unsigned long long>(engine_steady.alloc_bytes),
               static_cast<unsigned long long>(engine_steady.free_bytes),
               static_cast<unsigned long long>(serve_steady.allocs),
               static_cast<unsigned long long>(serve_steady.frees),
               static_cast<unsigned long long>(serve_steady.alloc_bytes),
               static_cast<unsigned long long>(serve_steady.free_bytes));
  if (!baseline_online.empty()) {
    std::fprintf(f, ",\n  \"online_baseline\": %s",
                 baseline_online.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace lmk::bench

int main() { return lmk::bench::run(); }
