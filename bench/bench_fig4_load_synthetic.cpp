// Figure 4: load distribution on nodes (sorted in decreasing order of
// load) for the synthetic dataset, with dynamic load migration enabled —
// the paper reports an even distribution with the maximally loaded node
// holding only ~97 entries (at 10^5 entries over the 1740-node King
// topology, i.e. ~1.7x the 58-entry mean).
//
// The bench prints the load curve (rank deciles) for each landmark
// selection scheme, before and after balancing, plus the max-load and
// Gini summaries. Each (scheme, balanced) pair is one sweep cell over
// the shared dataset and topology.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Figure 4: load distribution on nodes (synthetic dataset)");
  SyntheticWorkload w(scale);
  auto dataset = share(w.data.points);

  struct SchemeAxis {
    Selection sel;
    std::size_t k;
  };
  const SchemeAxis axes[] = {{Selection::kGreedy, 5},
                             {Selection::kGreedy, 10},
                             {Selection::kKMeans, 5},
                             {Selection::kKMeans, 10}};

  double mean_load = static_cast<double>(scale.objects) /
                     static_cast<double>(scale.nodes);
  std::printf("mean load: %.1f entries/node\n\n", mean_load);

  ExperimentConfig proto;
  proto.nodes = scale.nodes;
  proto.seed = scale.seed;
  proto.delta = 0.0;
  proto.probe_level = 4;
  auto topology = SimilarityExperiment<L2Space>::make_topology(proto);

  TablePrinter table({"scheme", "balanced", "max", "p99", "p90", "p50",
                      "gini", "migrations"});
  SweepDriver sweep;
  for (const SchemeAxis& ax : axes) {
    for (bool balanced : {false, true}) {
      sweep.add_cell([&w, &scale, dataset, topology, proto, ax, balanced]() {
        std::string name = std::string(selection_name(ax.sel)) + "-" +
                           std::to_string(ax.k);
        ExperimentConfig ecfg = proto;
        ecfg.load_balance = balanced;
        SimilarityExperiment<L2Space> exp(
            ecfg, w.space, dataset,
            w.make_mapper(ax.sel, ax.k, scale.sample,
                          scale.seed + ax.k +
                              (ax.sel == Selection::kKMeans ? 1000 : 0)),
            name, topology);
        auto curve = exp.load_curve();
        std::vector<double> loads(curve.begin(), curve.end());
        CellOutput out;
        out.rows.push_back({name, balanced ? "yes" : "no",
                            fmt(loads.front(), 0),
                            fmt(percentile(loads, 99), 0),
                            fmt(percentile(loads, 90), 0),
                            fmt(percentile(loads, 50), 0),
                            fmt(gini(loads), 3),
                            std::to_string(exp.migrations())});
        return out;
      });
    }
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\npaper shape: with balancing the curve flattens; max load stays "
      "within a small factor of the mean for every scheme.\n");
  return 0;
}
