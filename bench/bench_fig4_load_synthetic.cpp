// Figure 4: load distribution on nodes (sorted in decreasing order of
// load) for the synthetic dataset, with dynamic load migration enabled —
// the paper reports an even distribution with the maximally loaded node
// holding only ~97 entries (at 10^5 entries over the 1740-node King
// topology, i.e. ~1.7x the 58-entry mean).
//
// The bench prints the load curve (rank deciles) for each landmark
// selection scheme, before and after balancing, plus the max-load and
// Gini summaries.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Figure 4: load distribution on nodes (synthetic dataset)");
  SyntheticWorkload w(scale);

  struct SchemeAxis {
    Selection sel;
    std::size_t k;
  };
  const SchemeAxis axes[] = {{Selection::kGreedy, 5},
                             {Selection::kGreedy, 10},
                             {Selection::kKMeans, 5},
                             {Selection::kKMeans, 10}};

  double mean_load = static_cast<double>(scale.objects) /
                     static_cast<double>(scale.nodes);
  std::printf("mean load: %.1f entries/node\n\n", mean_load);

  TablePrinter table({"scheme", "balanced", "max", "p99", "p90", "p50",
                      "gini", "migrations"});
  for (const SchemeAxis& ax : axes) {
    std::string name = std::string(selection_name(ax.sel)) + "-" +
                       std::to_string(ax.k);
    for (bool balanced : {false, true}) {
      ExperimentConfig ecfg;
      ecfg.nodes = scale.nodes;
      ecfg.seed = scale.seed;
      ecfg.load_balance = balanced;
      ecfg.delta = 0.0;
      ecfg.probe_level = 4;
      SimilarityExperiment<L2Space> exp(
          ecfg, w.space, w.data.points,
          w.make_mapper(ax.sel, ax.k, scale.sample,
                        scale.seed + ax.k +
                            (ax.sel == Selection::kKMeans ? 1000 : 0)),
          name);
      auto curve = exp.load_curve();
      std::vector<double> loads(curve.begin(), curve.end());
      table.add_row({name, balanced ? "yes" : "no", fmt(loads.front(), 0),
                     fmt(percentile(loads, 99), 0),
                     fmt(percentile(loads, 90), 0),
                     fmt(percentile(loads, 50), 0), fmt(gini(loads), 3),
                     std::to_string(exp.migrations())});
    }
  }
  table.print();
  std::printf(
      "\npaper shape: with balancing the curve flattens; max load stays "
      "within a small factor of the mean for every scheme.\n");
  return 0;
}
