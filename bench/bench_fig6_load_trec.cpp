// Figure 6: load distribution on nodes for the TREC-like corpus, with
// dynamic load migration.
//
// Paper shapes to check: greedy landmarks map a large share of the
// documents to one boundary point — a single key the balancer cannot
// divide — so the load stays concentrated on few nodes even after
// balancing; k-means landmarks spread the index so balancing flattens
// the curve. Each (scheme, balanced) pair is one sweep cell over the
// shared corpus and topology.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Figure 6: load distribution on nodes (TREC-like corpus)");
  CorpusWorkload w(scale);
  auto docs = share_ref(w.corpus->documents());

  ExperimentConfig proto;
  proto.nodes = scale.nodes;
  proto.seed = scale.seed;
  proto.delta = 0.0;
  proto.probe_level = 4;
  auto topology = SimilarityExperiment<AngularSpace>::make_topology(proto);

  TablePrinter table({"scheme", "balanced", "max", "p99", "p90", "p50",
                      "nonzero_nodes", "gini", "migrations"});
  SweepDriver sweep;
  for (Selection sel : {Selection::kGreedy, Selection::kKMeans}) {
    for (bool balanced : {false, true}) {
      sweep.add_cell([&w, &scale, docs, topology, proto, sel, balanced]() {
        std::string name = std::string(selection_name(sel)) + "-10";
        ExperimentConfig ecfg = proto;
        ecfg.load_balance = balanced;
        std::size_t sample =
            full_scale() ? 3000 : std::min<std::size_t>(1000, scale.docs / 4);
        SimilarityExperiment<AngularSpace> exp(
            ecfg, w.space, docs,
            w.make_mapper(sel, 10, sample,
                          scale.seed + (sel == Selection::kKMeans ? 7 : 3)),
            name, topology);
        auto curve = exp.load_curve();
        std::vector<double> loads(curve.begin(), curve.end());
        std::size_t nonzero = 0;
        for (double l : loads) {
          if (l > 0) ++nonzero;
        }
        CellOutput out;
        out.rows.push_back({name, balanced ? "yes" : "no",
                            fmt(loads.front(), 0),
                            fmt(percentile(loads, 99), 0),
                            fmt(percentile(loads, 90), 0),
                            fmt(percentile(loads, 50), 0),
                            std::to_string(nonzero), fmt(gini(loads), 3),
                            std::to_string(exp.migrations())});
        return out;
      });
    }
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\npaper shape: greedy stays skewed (single-key piles cannot be "
      "divided); k-means + balancing flattens the curve.\n");
  return 0;
}
