// Table 2: the distribution of document vector sizes in the (TREC-like)
// corpus — minimum, 5th/50th/95th percentile, maximum, mean — compared
// against the paper's reported values for TREC-1,2-AP. The percentile
// scan runs as a sweep cell; its row and summary lines are emitted in
// the serial layout (table first, then the document counts).
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Table 2: distribution of document vector sizes");
  CorpusWorkload w(scale);

  TablePrinter table({"", "minimum", "5th", "50th", "95th", "maximum",
                      "mean"});
  table.add_row({"paper (TREC-1,2-AP)", "1", "50", "146", "293", "676",
                 "155.4"});
  SweepDriver sweep;
  sweep.add_cell([&w]() {
    auto sizes = w.corpus->vector_sizes();
    double mean = 0;
    for (double s : sizes) mean += s;
    mean /= static_cast<double>(sizes.size());
    CellOutput out;
    out.rows.push_back({"this corpus", fmt(percentile(sizes, 0), 0),
                        fmt(percentile(sizes, 5), 0),
                        fmt(percentile(sizes, 50), 0),
                        fmt(percentile(sizes, 95), 0),
                        fmt(percentile(sizes, 100), 0), fmt(mean, 1)});
    char buf[160];
    out.lines.emplace_back("");
    std::snprintf(buf, sizeof buf, "documents: %zu (paper: 157,021)",
                  w.corpus->documents().size());
    out.lines.emplace_back(buf);
    std::snprintf(buf, sizeof buf,
                  "distinct terms used: %zu (paper vocabulary: 233,640)",
                  w.corpus->distinct_terms());
    out.lines.emplace_back(buf);
    std::snprintf(buf, sizeof buf,
                  "stop words removed: top %zu Zipf ranks (paper: SMART's "
                  "571)",
                  w.cfg.stop_words);
    out.lines.emplace_back(buf);
    return out;
  });
  auto outputs = sweep.run();
  for (CellOutput& out : outputs) {
    for (auto& row : out.rows) table.add_row(std::move(row));
  }
  table.print();
  for (const CellOutput& out : outputs) {
    for (const std::string& line : out.lines) {
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}
