// Table 2: the distribution of document vector sizes in the (TREC-like)
// corpus — minimum, 5th/50th/95th percentile, maximum, mean — compared
// against the paper's reported values for TREC-1,2-AP.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Table 2: distribution of document vector sizes");
  CorpusWorkload w(scale);

  auto sizes = w.corpus->vector_sizes();
  double mean = 0;
  for (double s : sizes) mean += s;
  mean /= static_cast<double>(sizes.size());

  TablePrinter table({"", "minimum", "5th", "50th", "95th", "maximum",
                      "mean"});
  table.add_row({"paper (TREC-1,2-AP)", "1", "50", "146", "293", "676",
                 "155.4"});
  table.add_row({"this corpus", fmt(percentile(sizes, 0), 0),
                 fmt(percentile(sizes, 5), 0), fmt(percentile(sizes, 50), 0),
                 fmt(percentile(sizes, 95), 0),
                 fmt(percentile(sizes, 100), 0), fmt(mean, 1)});
  table.print();

  std::printf("\ndocuments: %zu (paper: 157,021)\n",
              w.corpus->documents().size());
  std::printf("distinct terms used: %zu (paper vocabulary: 233,640)\n",
              w.corpus->distinct_terms());
  std::printf("stop words removed: top %zu Zipf ranks (paper: SMART's 571)\n",
              w.cfg.stop_words);
  return 0;
}
