// Figure 3: the Figure 2 sweep WITH dynamic load migration enabled
// (δ = 0, P_l = 4 — the paper's maximum-effect setting).
//
// Paper shapes to check: recall dips and routing cost rises relative to
// Figure 2; the 5-landmark schemes now hold up better than 10-landmark
// ones (their entries distribute more evenly, so balancing perturbs the
// node layout less); recall remains high overall.
#include "synthetic_sweep.hpp"

int main() {
  lmk::bench::run_synthetic_sweep(
      "Figure 3: landmark selection schemes, synthetic dataset, "
      "with dynamic load migration (delta=0, Pl=4)",
      /*load_balance=*/true);
  return 0;
}
