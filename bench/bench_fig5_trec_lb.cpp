// Figure 5: performance on the TREC-like corpus under the angular
// (cosine) metric, schemes {Greedy-10, Kmean-10}, with dynamic load
// migration, versus the query range factor.
//
// Paper shapes to check: at very small range factors greedy achieves
// slightly higher recall at lower routing cost (its query mapping
// saturates at the π/2 boundary, shrinking the effective region); from
// ~1% upward k-means wins on both recall and cost, because greedy's
// sparse landmark documents map most of the corpus to the same boundary
// point and cannot filter.
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Figure 5: TREC-like corpus, Greedy-10 vs Kmean-10, with LB");
  CorpusWorkload w(scale);

  const double pi = 3.14159265358979;
  // Maximum pairwise angular distance for non-negative TF/IDF vectors.
  const double max_dist = pi / 2;

  auto truth = SimilarityExperiment<AngularSpace>::compute_truth(
      w.space, w.corpus->documents(), w.queries, 10);

  TablePrinter table(QueryStats::header());
  for (Selection sel : {Selection::kGreedy, Selection::kKMeans}) {
    ExperimentConfig ecfg;
    ecfg.nodes = scale.nodes;
    ecfg.seed = scale.seed;
    ecfg.load_balance = true;
    ecfg.delta = 0.0;
    ecfg.probe_level = 4;
    std::string name = std::string(selection_name(sel)) + "-10";
    std::size_t sample =
        full_scale() ? 3000 : std::min<std::size_t>(1000, scale.docs / 4);
    SimilarityExperiment<AngularSpace> exp(
        ecfg, w.space, w.corpus->documents(),
        w.make_mapper(sel, 10, sample,
                      scale.seed + (sel == Selection::kKMeans ? 7 : 3)),
        name);
    std::printf("## %s: %d migrations during balancing\n", name.c_str(),
                exp.migrations());
    exp.set_queries(w.queries, truth);
    for (double f : kRangeFactors) {
      QueryStats stats = exp.run_batch(f * max_dist);
      table.add_row(stats.row(name + " @" + fmt(f * 100, 1) + "%"));
    }
  }
  table.print();
  return 0;
}
