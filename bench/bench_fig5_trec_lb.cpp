// Figure 5: performance on the TREC-like corpus under the angular
// (cosine) metric, schemes {Greedy-10, Kmean-10}, with dynamic load
// migration, versus the query range factor.
//
// Paper shapes to check: at very small range factors greedy achieves
// slightly higher recall at lower routing cost (its query mapping
// saturates at the π/2 boundary, shrinking the effective region); from
// ~1% upward k-means wins on both recall and cost, because greedy's
// sparse landmark documents map most of the corpus to the same boundary
// point and cannot filter. The two schemes run as concurrent sweep
// cells over the shared corpus / queries / truth / topology.
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Figure 5: TREC-like corpus, Greedy-10 vs Kmean-10, with LB");
  CorpusWorkload w(scale);

  const double pi = 3.14159265358979;
  // Maximum pairwise angular distance for non-negative TF/IDF vectors.
  const double max_dist = pi / 2;

  auto docs = share_ref(w.corpus->documents());
  auto queries = share_ref(w.queries);
  auto truth = share(SimilarityExperiment<AngularSpace>::compute_truth(
      w.space, *docs, *queries, 10));

  ExperimentConfig proto;
  proto.nodes = scale.nodes;
  proto.seed = scale.seed;
  proto.load_balance = true;
  proto.delta = 0.0;
  proto.probe_level = 4;
  auto topology = SimilarityExperiment<AngularSpace>::make_topology(proto);

  TablePrinter table(QueryStats::header());
  SweepDriver sweep;
  for (Selection sel : {Selection::kGreedy, Selection::kKMeans}) {
    sweep.add_cell([&w, &scale, docs, queries, truth, topology, proto,
                    max_dist, sel]() {
      std::string name = std::string(selection_name(sel)) + "-10";
      std::size_t sample =
          full_scale() ? 3000 : std::min<std::size_t>(1000, scale.docs / 4);
      SimilarityExperiment<AngularSpace> exp(
          proto, w.space, docs,
          w.make_mapper(sel, 10, sample,
                        scale.seed + (sel == Selection::kKMeans ? 7 : 3)),
          name, topology);
      CellOutput out;
      out.lines.push_back("## " + name + ": " +
                          std::to_string(exp.migrations()) +
                          " migrations during balancing");
      exp.set_queries(queries, truth);
      for (double f : kRangeFactors) {
        QueryStats stats = exp.run_batch(f * max_dist);
        out.rows.push_back(stats.row(name + " @" + fmt(f * 100, 1) + "%"));
      }
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
  return 0;
}
