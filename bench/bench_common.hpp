// Shared scaffolding for the figure/table benches.
//
// Every bench regenerates one of the paper's tables or figure series.
// Absolute numbers depend on the substituted substrates (synthetic
// topology instead of King, generated corpus instead of TREC), so each
// bench prints the series and EXPERIMENTS.md records the shape checks.
//
// Scale: the paper runs 1740 nodes / 10^5 objects / 2000 queries. The
// default bench scale is reduced so the whole suite finishes in minutes;
// set LMK_FULL=1 for paper scale, or override individual knobs:
//   LMK_NODES, LMK_OBJECTS, LMK_QUERIES, LMK_SAMPLE, LMK_DOCS, LMK_SEED.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>

#include "eval/experiment.hpp"
#include "eval/sweep.hpp"
#include "landmark/selection.hpp"
#include "workload/corpus.hpp"
#include "workload/synthetic.hpp"

namespace lmk::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// Wrap a vector in the shared-immutable handle the sweep cells hold:
/// one corpus / query set / truth table for N concurrent cells.
template <typename T>
[[nodiscard]] std::shared_ptr<const std::vector<T>> share(
    std::vector<T> v) {
  return std::make_shared<const std::vector<T>>(std::move(v));
}

/// Non-owning handle to a vector some longer-lived owner holds (e.g.
/// the corpus documents inside a workload on the bench's stack, which
/// outlives the sweep). Avoids copying the corpus per cell.
template <typename T>
[[nodiscard]] std::shared_ptr<const std::vector<T>> share_ref(
    const std::vector<T>& v) {
  return std::shared_ptr<const std::vector<T>>(std::shared_ptr<void>(), &v);
}

inline bool full_scale() { return env_size("LMK_FULL", 0) != 0; }

/// Common experiment scale knobs resolved from the environment.
struct Scale {
  std::size_t nodes;
  std::size_t objects;
  std::size_t queries;
  std::size_t sample;   ///< landmark-selection sample size
  std::size_t docs;     ///< corpus documents
  std::uint64_t seed;

  static Scale resolve() {
    bool full = full_scale();
    Scale s;
    s.nodes = env_size("LMK_NODES", full ? 1740 : 256);
    s.objects = env_size("LMK_OBJECTS", full ? 100000 : 10000);
    s.queries = env_size("LMK_QUERIES", full ? 2000 : 150);
    s.sample = env_size("LMK_SAMPLE", full ? 2000 : 800);
    s.docs = env_size("LMK_DOCS", full ? 157021 : 12000);
    s.seed = env_size("LMK_SEED", 42);
    return s;
  }

  void print(const char* bench) const {
    std::printf("# %s  (nodes=%zu objects=%zu queries=%zu sample=%zu "
                "docs=%zu seed=%llu%s)\n",
                bench, nodes, objects, queries, sample, docs,
                static_cast<unsigned long long>(seed),
                full_scale() ? ", FULL PAPER SCALE" : "");
  }
};

/// The paper's query-range-factor sweep: 0.1% .. 20% of the maximum
/// theoretical distance.
inline const double kRangeFactors[] = {0.001, 0.005, 0.01, 0.02,
                                       0.05,  0.10,  0.20};

/// Landmark selection scheme axes of Figures 2/3/5.
enum class Selection { kGreedy, kKMeans };

inline const char* selection_name(Selection s) {
  return s == Selection::kGreedy ? "Greedy" : "Kmean";
}

/// Build the Table 1 synthetic workload at bench scale.
struct SyntheticWorkload {
  SyntheticConfig cfg;
  SyntheticDataset data;
  std::vector<DenseVector> queries;
  double max_dist = 0;
  L2Space space;

  explicit SyntheticWorkload(const Scale& s) {
    cfg.objects = s.objects;
    cfg.dims = 100;          // Table 1
    cfg.range_lo = 0;
    cfg.range_hi = 100;
    cfg.clusters = 10;
    cfg.deviation = 20;
    Rng rng(s.seed);
    data = generate_clustered(cfg, rng);
    queries = generate_queries(cfg, data, s.queries, rng);
    max_dist = max_theoretical_distance(cfg);
  }

  /// Landmark mapper for one (selection, k) scheme, boundary from the
  /// original metric space (each dim [0, max_dist]) as in §4.2.
  LandmarkMapper<L2Space> make_mapper(Selection sel, std::size_t k,
                                      std::size_t sample_size,
                                      std::uint64_t seed) const {
    Rng rng(seed);
    auto idx = rng.sample_indices(data.points.size(),
                                  std::min(sample_size, data.points.size()));
    std::vector<DenseVector> sample;
    sample.reserve(idx.size());
    for (auto i : idx) sample.push_back(data.points[i]);
    std::vector<DenseVector> landmarks =
        sel == Selection::kKMeans
            ? kmeans_dense(std::span<const DenseVector>(sample), k, rng)
            : greedy_selection(space, std::span<const DenseVector>(sample), k,
                               rng);
    return LandmarkMapper<L2Space>(space, std::move(landmarks),
                                   uniform_boundary(k, 0, max_dist));
  }
};

/// Build the TREC-like corpus workload at bench scale (§4.3).
struct CorpusWorkload {
  CorpusConfig cfg;
  std::unique_ptr<Corpus> corpus;
  std::vector<SparseVector> queries;
  AngularSpace space;

  explicit CorpusWorkload(const Scale& s) {
    cfg.documents = s.docs;
    if (!full_scale()) {
      // Keep vocabulary / topics proportionate at reduced scale so the
      // sparsity geometry matches the full corpus.
      cfg.vocabulary = std::max<std::size_t>(20000, s.docs * 3 / 2);
      cfg.topics = 60;
      cfg.stories_per_topic = 25;
    }
    Rng rng(s.seed + 1);
    corpus = std::make_unique<Corpus>(cfg, rng);
    // 50 topics repeated, as the paper repeats TREC-3 topics 151-200.
    auto topics = corpus->make_queries(50, 3.5, rng);
    queries.reserve(s.queries);
    for (std::size_t i = 0; i < s.queries; ++i) {
      queries.push_back(topics[i % topics.size()]);
    }
  }

  LandmarkMapper<AngularSpace> make_mapper(Selection sel, std::size_t k,
                                           std::size_t sample_size,
                                           std::uint64_t seed) const {
    Rng rng(seed);
    const auto& docs = corpus->documents();
    auto idx = rng.sample_indices(docs.size(),
                                  std::min(sample_size, docs.size()));
    std::vector<SparseVector> sample;
    sample.reserve(idx.size());
    for (auto i : idx) sample.push_back(docs[i]);
    std::vector<SparseVector> landmarks =
        sel == Selection::kKMeans
            ? kmeans_spherical(std::span<const SparseVector>(sample), k, rng)
            : greedy_selection(space, std::span<const SparseVector>(sample),
                               k, rng);
    // Boundary from the landmark selection procedure, as in §4.3.
    Boundary boundary = boundary_from_sample(
        space, std::span<const SparseVector>(landmarks),
        std::span<const SparseVector>(sample));
    return LandmarkMapper<AngularSpace>(space, std::move(landmarks),
                                        std::move(boundary));
  }
};

}  // namespace lmk::bench
