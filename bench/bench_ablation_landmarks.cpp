// Ablation: landmark count k (§3.1 "Number of landmarks").
//
// Few landmarks filter poorly (large candidate supersets, wasted
// bandwidth); many landmarks push the index space into high
// dimensionality where range queries touch ever more cuboids (routing
// cost). The sweep shows the tradeoff the paper describes; each k is
// one sweep cell over the shared dataset / queries / truth / topology.
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: number of landmarks k");
  SyntheticWorkload w(scale);
  auto dataset = share(w.data.points);
  auto queries = share(w.queries);
  auto truth = share(SimilarityExperiment<L2Space>::compute_truth(
      w.space, *dataset, *queries, 10));

  ExperimentConfig proto;
  proto.nodes = scale.nodes;
  proto.seed = scale.seed;
  auto topology = SimilarityExperiment<L2Space>::make_topology(proto);

  TablePrinter table(QueryStats::header());
  SweepDriver sweep;
  for (std::size_t k : {2ul, 3ul, 5ul, 10ul, 15ul, 20ul}) {
    sweep.add_cell([&w, &scale, dataset, queries, truth, topology, proto,
                    k]() {
      SimilarityExperiment<L2Space> exp(
          proto, w.space, dataset,
          w.make_mapper(Selection::kKMeans, k, scale.sample, scale.seed + k),
          "k" + std::to_string(k), topology);
      exp.set_queries(queries, truth);
      QueryStats stats = exp.run_batch(0.05 * w.max_dist);
      CellOutput out;
      out.rows.push_back(stats.row("k=" + std::to_string(k) + " @5%"));
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: candidate count (cand) shrinks as k grows (better "
      "filtering); routing cost grows with index dimensionality.\n");
  return 0;
}
