// Ablation: landmark count k (§3.1 "Number of landmarks").
//
// Few landmarks filter poorly (large candidate supersets, wasted
// bandwidth); many landmarks push the index space into high
// dimensionality where range queries touch ever more cuboids (routing
// cost). The sweep shows the tradeoff the paper describes.
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: number of landmarks k");
  SyntheticWorkload w(scale);
  auto truth = SimilarityExperiment<L2Space>::compute_truth(
      w.space, w.data.points, w.queries, 10);

  TablePrinter table(QueryStats::header());
  for (std::size_t k : {2ul, 3ul, 5ul, 10ul, 15ul, 20ul}) {
    ExperimentConfig ecfg;
    ecfg.nodes = scale.nodes;
    ecfg.seed = scale.seed;
    SimilarityExperiment<L2Space> exp(
        ecfg, w.space, w.data.points,
        w.make_mapper(Selection::kKMeans, k, scale.sample, scale.seed + k),
        "k" + std::to_string(k));
    exp.set_queries(w.queries, truth);
    QueryStats stats = exp.run_batch(0.05 * w.max_dist);
    table.add_row(stats.row("k=" + std::to_string(k) + " @5%"));
  }
  table.print();
  std::printf(
      "\nexpected: candidate count (cand) shrinks as k grows (better "
      "filtering); routing cost grows with index dimensionality.\n");
  return 0;
}
