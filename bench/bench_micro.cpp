// Micro-benchmarks (google-benchmark) for the hot kernels: the
// locality-preserving hash, query splitting, metric distance functions,
// landmark mapping, and Chord routing-table scans.
#include <benchmark/benchmark.h>

#include "chord/ring.hpp"
#include "eval/ground_truth.hpp"
#include "landmark/mapper.hpp"
#include "lph/lph.hpp"
#include "metric/dense.hpp"
#include "metric/edit_distance.hpp"
#include "metric/sparse_vector.hpp"
#include "routing/query.hpp"

namespace lmk {
namespace {

void BM_LphHash(benchmark::State& state) {
  auto dims = static_cast<std::size_t>(state.range(0));
  Boundary b = uniform_boundary(dims, 0, 1000);
  Rng rng(1);
  IndexPoint p(dims);
  for (auto& v : p) v = rng.uniform(0, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lph_hash(p, b));
  }
}
BENCHMARK(BM_LphHash)->Arg(2)->Arg(5)->Arg(10)->Arg(20);

void BM_EnclosingPrefix(benchmark::State& state) {
  auto dims = static_cast<std::size_t>(state.range(0));
  Boundary b = uniform_boundary(dims, 0, 1000);
  Region r;
  for (std::size_t d = 0; d < dims; ++d) {
    r.ranges.push_back(Interval{430.0 + static_cast<double>(d), 470.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclosing_prefix(r, b));
  }
}
BENCHMARK(BM_EnclosingPrefix)->Arg(5)->Arg(10);

void BM_QuerySplit(benchmark::State& state) {
  SchemeRouting scheme;
  scheme.boundary = uniform_boundary(5, 0, 1000);
  scheme.query_message_bytes = query_message_size(5);
  Region r;
  for (int d = 0; d < 5; ++d) r.ranges.push_back(Interval{400, 600});
  RangeQuery q;
  (void)make_query(scheme, 1, 0, r, IndexPoint(5, 500.0), &q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query_split(q, q.prefix.length + 1));
  }
}
BENCHMARK(BM_QuerySplit);

void BM_L2Distance(benchmark::State& state) {
  auto dims = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  DenseVector a(dims), b(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    a[d] = rng.uniform();
    b[d] = rng.uniform();
  }
  L2Space space;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.distance(a, b));
  }
}
BENCHMARK(BM_L2Distance)->Arg(100);

// Dense storage comparison: one L2 scan over the whole point set, rows
// held contiguously (DenseMatrix) vs one heap vector per point. The gap
// is the pointer-chasing / cache-miss cost the contiguous layout
// removes from the oracle and k-means hot loops.
void BM_L2ScanVecOfVec(benchmark::State& state) {
  auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  std::vector<DenseVector> pts(rows, DenseVector(100));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.uniform(0, 100);
  }
  DenseVector q(100);
  for (auto& v : q) v = rng.uniform(0, 100);
  L2Space space;
  for (auto _ : state) {
    double acc = 0;
    for (const auto& p : pts) acc += space.distance(q, p);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_L2ScanVecOfVec)->Arg(10000);

void BM_L2ScanDenseMatrix(benchmark::State& state) {
  auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  std::vector<DenseVector> pts(rows, DenseVector(100));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.uniform(0, 100);
  }
  DenseMatrix m = DenseMatrix::from_rows(pts);
  DenseVector q(100);
  for (auto& v : q) v = rng.uniform(0, 100);
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      acc += l2_distance(q, m.row(r));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_L2ScanDenseMatrix)->Arg(10000);

// Squared-distance scan: same layout as above but deferring the sqrt —
// the comparison-only path k-means assignment and the oracle ranking
// use.
void BM_L2SquaredScanDenseMatrix(benchmark::State& state) {
  auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  std::vector<DenseVector> pts(rows, DenseVector(100));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.uniform(0, 100);
  }
  DenseMatrix m = DenseMatrix::from_rows(pts);
  DenseVector q(100);
  for (auto& v : q) v = rng.uniform(0, 100);
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      acc += l2_squared(q, m.row(r));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_L2SquaredScanDenseMatrix)->Arg(10000);

// knn_bruteforce: the legacy type-erased std::function path vs the
// templated kernel that inlines the distance callable.
void BM_KnnBruteforceFunction(benchmark::State& state) {
  Rng rng(22);
  std::vector<DenseVector> pts(4096, DenseVector(32));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.uniform(0, 100);
  }
  DenseVector q(32);
  for (auto& v : q) v = rng.uniform(0, 100);
  L2Space space;
  std::function<double(std::size_t)> dist = [&](std::size_t i) {
    return space.distance(q, pts[i]);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn_bruteforce(pts.size(), dist, 10));
  }
}
BENCHMARK(BM_KnnBruteforceFunction);

void BM_KnnBruteforceTemplated(benchmark::State& state) {
  Rng rng(22);
  std::vector<DenseVector> pts(4096, DenseVector(32));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.uniform(0, 100);
  }
  DenseMatrix m = DenseMatrix::from_rows(pts);
  DenseVector q(32);
  for (auto& v : q) v = rng.uniform(0, 100);
  for (auto _ : state) {
    // Squared distances: same ranking, no sqrt, no indirection.
    benchmark::DoNotOptimize(knn_bruteforce_with(
        m.rows(), [&](std::size_t i) { return l2_squared(q, m.row(i)); },
        10));
  }
}
BENCHMARK(BM_KnnBruteforceTemplated);

void BM_AngularDistance(benchmark::State& state) {
  Rng rng(3);
  auto make = [&rng]() {
    std::vector<SparseEntry> e;
    for (int i = 0; i < 155; ++i) {
      e.push_back(SparseEntry{static_cast<std::uint32_t>(rng.below(200000)),
                              rng.uniform(0.1, 5)});
    }
    return SparseVector(std::move(e));
  };
  SparseVector a = make(), b = make();
  AngularSpace space;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.distance(a, b));
  }
}
BENCHMARK(BM_AngularDistance);

void BM_EditDistance(benchmark::State& state) {
  auto len = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::string a, b;
  for (std::size_t i = 0; i < len; ++i) {
    a.push_back("acgt"[rng.below(4)]);
    b.push_back("acgt"[rng.below(4)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(edit_distance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(50)->Arg(200);

void BM_EditDistanceBounded(benchmark::State& state) {
  Rng rng(5);
  std::string a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back("acgt"[rng.below(4)]);
    b.push_back("acgt"[rng.below(4)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(edit_distance_bounded(a, b, 10));
  }
}
BENCHMARK(BM_EditDistanceBounded);

void BM_LandmarkMap(benchmark::State& state) {
  Rng rng(6);
  L2Space space;
  std::vector<DenseVector> landmarks;
  for (int l = 0; l < 10; ++l) {
    DenseVector lm(100);
    for (auto& v : lm) v = rng.uniform(0, 100);
    landmarks.push_back(std::move(lm));
  }
  LandmarkMapper<L2Space> mapper(space, std::move(landmarks),
                                 uniform_boundary(10, 0, 1000));
  DenseVector p(100);
  for (auto& v : p) v = rng.uniform(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(p));
  }
}
BENCHMARK(BM_LandmarkMap);

void BM_ChordNextHop(benchmark::State& state) {
  Simulator sim;
  ConstantLatencyModel topo(1024, kMillisecond);
  Network net(sim, topo);
  Ring::Options opts;
  Ring ring(net, opts);
  for (HostId h = 0; h < 1024; ++h) ring.create_node(h);
  ring.bootstrap();
  ChordNode& n = ring.node(0);
  Rng rng(7);
  Id key = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.next_hop(key));
    key = key * 0x9e3779b97f4a7c15ull + 1;
  }
}
BENCHMARK(BM_ChordNextHop);

void BM_OracleSuccessor(benchmark::State& state) {
  Simulator sim;
  ConstantLatencyModel topo(1740, kMillisecond);
  Network net(sim, topo);
  Ring::Options opts;
  Ring ring(net, opts);
  for (HostId h = 0; h < 1740; ++h) ring.create_node(h);
  ring.bootstrap();
  Rng rng(8);
  Id key = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.oracle_successor(key));
    key = key * 0x9e3779b97f4a7c15ull + 1;
  }
}
BENCHMARK(BM_OracleSuccessor);

}  // namespace
}  // namespace lmk
