// Ablation: query robustness under churn. While a query batch runs,
// random nodes leave gracefully (entries drained to the successor) and
// rejoin at random points, at increasing churn rates. Measured: query
// completion, result completeness (vs a brute-force count over the
// entries that are alive throughout), lost subqueries, and cost.
// Each churn rate is one sweep cell over the shared delay-space
// topology (immutable after construction).
#include <optional>
#include <set>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/index_platform.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: queries under churn (graceful leave + rejoin)");

  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = scale.nodes;
  topo_opts.seed = scale.seed;
  const DelaySpaceModel topo(topo_opts);

  const double rates[] = {0.0, 0.5, 2.0, 8.0};  // events per second
  TablePrinter table({"churn_evt_per_s", "queries", "completed",
                      "result_coverage", "lost_subq", "avg_msgs",
                      "avg_hops"});
  SweepDriver sweep;
  for (double rate : rates) {
    sweep.add_cell([&scale, &topo, rate]() {
      Simulator sim;
      Network net(sim, topo);
      Ring::Options ropts;
      ropts.seed = scale.seed;
      Ring ring(net, ropts);
      for (HostId h = 0; h < scale.nodes; ++h) ring.create_node(h);
      ring.bootstrap();
      IndexPlatform platform(ring);
      std::uint32_t scheme =
          platform.register_scheme("churn", uniform_boundary(2, 0, 1),
                                   false);
      Rng rng(scale.seed + 40);
      std::size_t object_count = scale.objects / 4;
      for (std::size_t i = 0; i < object_count; ++i) {
        platform.insert(scheme, i, IndexPoint{rng.uniform(), rng.uniform()});
      }

      // Churn process: every exponential(1/rate) seconds, a random node
      // leaves gracefully and immediately rejoins at a random identifier.
      const int kQueries = 40;
      const SimTime churn_end = (kQueries + 1) * 2 * kSecond;
      if (rate > 0) {
        auto churn_step = std::make_shared<std::function<void()>>();
        Rng churn_rng(scale.seed + 41);
        *churn_step = [&ring, &platform, churn_rng, churn_step, &sim, rate,
                       churn_end]() mutable {
          if (sim.now() >= churn_end) return;  // stop after the batch
          auto alive = ring.alive_nodes();
          if (alive.size() > 3) {
            ChordNode* victim = alive[churn_rng.below(alive.size())];
            ChordNode* succ = victim->successor().node;
            platform.drain_all(*victim, *succ);
            ring.leave(*victim);
            ring.rejoin(*victim, churn_rng.next());
            // The rejoined node now owns a slice of its NEW successor's
            // range; pull those entries over so placement stays correct.
            ChordNode* new_succ = victim->successor().node;
            platform.transfer_owned(*new_succ, *victim);
            ring.refresh_all_fingers();
          }
          sim.schedule_after(
              static_cast<SimTime>(churn_rng.exponential(kSecond / rate)),
              [churn_step]() { (*churn_step)(); });
        };
        sim.schedule_after(
            static_cast<SimTime>(Rng(scale.seed + 42).exponential(
                kSecond / rate)),
            [churn_step]() { (*churn_step)(); });
      }

      // Query batch: every 2 seconds, a whole-space query (coverage is
      // easy to judge: every live entry must be found).
      int completed = 0;
      std::uint64_t lost = 0;
      double coverage = 0, msgs = 0, hops = 0;
      Rng qrng(scale.seed + 43);
      for (int qn = 0; qn < kQueries; ++qn) {
        sim.schedule_at((qn + 1) * 2 * kSecond, [&, qn]() {
          auto nodes = ring.alive_nodes();
          platform.region_query(
              *nodes[qrng.below(nodes.size())], scheme,
              Region{{Interval{0, 1}, Interval{0, 1}}}, IndexPoint{0.5, 0.5},
              ReplyMode::kAllMatches,
              [&](const IndexPlatform::QueryOutcome& o) {
                ++completed;
                lost += static_cast<std::uint64_t>(o.lost_subqueries);
                coverage += static_cast<double>(o.results.size()) /
                            static_cast<double>(object_count);
                msgs += static_cast<double>(o.query_messages);
                hops += o.hops;
              });
        });
      }
      sim.run_until((kQueries + 2) * 2 * kSecond);
      sim.run();
      CellOutput out;
      out.rows.push_back({fmt(rate, 1), std::to_string(kQueries),
                          std::to_string(completed),
                          fmt(coverage / std::max(1, completed), 4),
                          std::to_string(lost),
                          fmt(msgs / std::max(1, completed), 1),
                          fmt(hops / std::max(1, completed), 1)});
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: graceful churn preserves entries (drain + transfer); "
      "completion holds at every rate, with occasional lost subqueries "
      "and retry-inflated message counts at high churn.\n");
  return 0;
}
