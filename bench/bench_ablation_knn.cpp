// Ablation: k-NN by radius expansion — the tradeoff between the initial
// radius r0 / growth factor and the total cost (rounds, messages,
// latency). Too small an r0 wastes rounds; too large ships needless
// candidates. All settings return the exact 10-NN (verified against
// brute force). The settings intentionally share one index stack (sim
// time accumulates across them), so the bench is a single sweep cell.
#include <optional>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/typed_index.hpp"
#include "eval/ground_truth.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: k-NN radius expansion (r0, growth)");
  SyntheticWorkload w(scale);

  TablePrinter table({"r0", "growth", "exact", "avg_rounds", "avg_msgs",
                      "avg_qry_B", "avg_res_B", "avg_lat_ms"});
  SweepDriver sweep;
  sweep.add_cell([&w, &scale]() {
    Simulator sim;
    DelaySpaceModel::Options topo_opts;
    topo_opts.hosts = scale.nodes;
    topo_opts.seed = scale.seed;
    DelaySpaceModel topo(topo_opts);
    Network net(sim, topo);
    Ring::Options ropts;
    ropts.seed = scale.seed;
    Ring ring(net, ropts);
    for (HostId h = 0; h < scale.nodes; ++h) ring.create_node(h);
    ring.bootstrap();
    IndexPlatform platform(ring);
    LandmarkIndex<L2Space> index(
        platform, w.space,
        w.make_mapper(Selection::kKMeans, 10, scale.sample, scale.seed + 10),
        "knn");
    index.bind_objects([&w](std::uint64_t id) -> const DenseVector& {
      return w.data.points[id];
    });
    for (std::size_t i = 0; i < w.data.points.size(); ++i) {
      index.insert(i, w.data.points[i]);
    }

    std::size_t probe_count = std::min<std::size_t>(40, w.queries.size());
    struct Setting {
      double r0_factor;
      double growth;
    };
    const Setting settings[] = {{0.001, 2.0}, {0.005, 2.0}, {0.02, 2.0},
                                {0.05, 2.0},  {0.005, 4.0}, {0.001, 8.0}};

    CellOutput out;
    for (const Setting& s : settings) {
      double rounds = 0, msgs = 0, qb = 0, rb = 0, lat = 0;
      int exact = 0;
      auto nodes = ring.alive_nodes();
      Rng rng(scale.seed + 20);
      for (std::size_t qi = 0; qi < probe_count; ++qi) {
        const DenseVector& q = w.queries[qi];
        std::optional<LandmarkIndex<L2Space>::KnnOutcome> got;
        index.knn_query(*nodes[rng.below(nodes.size())], q, 10,
                        s.r0_factor * w.max_dist, s.growth, w.max_dist,
                        [&](const auto& o) { got = o; });
        sim.run();
        rounds += got->rounds;
        msgs += static_cast<double>(got->totals.query_messages);
        qb += static_cast<double>(got->totals.query_bytes);
        rb += static_cast<double>(got->totals.result_bytes);
        lat += static_cast<double>(got->totals.max_latency) / kMillisecond;
        if (got->exact) ++exact;
      }
      auto n = static_cast<double>(probe_count);
      out.rows.push_back({fmt(s.r0_factor * 100, 1) + "%",
                          fmt(s.growth, 0),
                          std::to_string(exact) + "/" +
                              std::to_string(probe_count),
                          fmt(rounds / n, 1), fmt(msgs / n, 1),
                          fmt(qb / n, 0), fmt(rb / n, 0), fmt(lat / n, 0)});
    }
    return out;
  });
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: tiny r0 costs extra rounds (latency adds up), large r0 "
      "ships more candidate bytes; growth trades rounds for overshoot.\n");
  return 0;
}
