// Figure 2: performance of the four landmark selection schemes on the
// Table 1 synthetic dataset, WITHOUT load balancing, versus the query
// range factor (0.1% .. 20% of the 1000-unit maximum distance).
//
// Paper shapes to check (see EXPERIMENTS.md): recall rises with the
// range factor; the 10-landmark schemes reach ~100% recall around the
// 5% factor and beat the 5-landmark schemes; k-means beats greedy.
#include "synthetic_sweep.hpp"

int main() {
  lmk::bench::run_synthetic_sweep(
      "Figure 2: landmark selection schemes, synthetic dataset, "
      "no load balancing",
      /*load_balance=*/false);
  return 0;
}
