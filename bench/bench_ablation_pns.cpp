// Ablation: proximity neighbour selection (Chord-PNS, the paper's
// protocol choice). PNS picks latency-close fingers, which should lower
// response time and maximum latency without changing hop counts much.
// The two settings run as concurrent sweep cells over shared inputs.
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: Chord-PNS on/off");
  SyntheticWorkload w(scale);
  auto dataset = share(w.data.points);
  auto queries = share(w.queries);
  auto truth = share(SimilarityExperiment<L2Space>::compute_truth(
      w.space, *dataset, *queries, 10));

  ExperimentConfig proto;
  proto.nodes = scale.nodes;
  proto.seed = scale.seed;
  auto topology = SimilarityExperiment<L2Space>::make_topology(proto);

  TablePrinter table(QueryStats::header());
  SweepDriver sweep;
  for (bool pns : {true, false}) {
    sweep.add_cell([&w, &scale, dataset, queries, truth, topology, proto,
                    pns]() {
      ExperimentConfig ecfg = proto;
      ecfg.pns = pns;
      SimilarityExperiment<L2Space> exp(
          ecfg, w.space, dataset,
          w.make_mapper(Selection::kKMeans, 5, scale.sample, scale.seed + 5),
          pns ? "pns-on" : "pns-off", topology);
      exp.set_queries(queries, truth);
      CellOutput out;
      for (double f : {0.02, 0.05, 0.10}) {
        QueryStats stats = exp.run_batch(f * w.max_dist);
        out.rows.push_back(stats.row(std::string(pns ? "PNS " : "noPNS ") +
                                     "@" + fmt(f * 100, 0) + "%"));
      }
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
  std::printf("\nexpected: PNS lowers response/max latency at equal hop "
              "counts.\n");
  return 0;
}
