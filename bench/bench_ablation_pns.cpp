// Ablation: proximity neighbour selection (Chord-PNS, the paper's
// protocol choice). PNS picks latency-close fingers, which should lower
// response time and maximum latency without changing hop counts much.
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: Chord-PNS on/off");
  SyntheticWorkload w(scale);
  auto truth = SimilarityExperiment<L2Space>::compute_truth(
      w.space, w.data.points, w.queries, 10);

  TablePrinter table(QueryStats::header());
  for (bool pns : {true, false}) {
    ExperimentConfig ecfg;
    ecfg.nodes = scale.nodes;
    ecfg.seed = scale.seed;
    ecfg.pns = pns;
    SimilarityExperiment<L2Space> exp(
        ecfg, w.space, w.data.points,
        w.make_mapper(Selection::kKMeans, 5, scale.sample, scale.seed + 5),
        pns ? "pns-on" : "pns-off");
    exp.set_queries(w.queries, truth);
    for (double f : {0.02, 0.05, 0.10}) {
      QueryStats stats = exp.run_batch(f * w.max_dist);
      table.add_row(stats.row(std::string(pns ? "PNS " : "noPNS ") + "@" +
                              fmt(f * 100, 0) + "%"));
    }
  }
  table.print();
  std::printf("\nexpected: PNS lowers response/max latency at equal hop "
              "counts.\n");
  return 0;
}
