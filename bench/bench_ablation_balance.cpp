// Ablation: the load-balancing control knobs δ (threshold factor) and
// P_l (probing level) — the paper says their values "control the
// tradeoff between the overhead and quality of the load balancing" and
// between balance quality and query routing performance (§3.4).
//
// For each (δ, P_l): migrations performed, resulting load flatness, and
// the query routing cost afterwards. Each setting is one sweep cell
// over the shared dataset / queries / truth / topology.
#include <algorithm>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: balancing threshold delta x probing level Pl");
  SyntheticWorkload w(scale);
  auto dataset = share(w.data.points);
  auto queries = share(w.queries);
  auto truth = share(SimilarityExperiment<L2Space>::compute_truth(
      w.space, *dataset, *queries, 10));

  ExperimentConfig proto;
  proto.nodes = scale.nodes;
  proto.seed = scale.seed;
  auto topology = SimilarityExperiment<L2Space>::make_topology(proto);

  TablePrinter table({"delta", "Pl", "migrations", "max_load", "gini",
                      "recall@5%", "hops@5%", "qry_msgs@5%"});
  struct Setting {
    double delta;
    int pl;
    bool balance;
  };
  const Setting settings[] = {{0.0, 0, false}, {0.0, 1, true},
                              {0.0, 2, true},  {0.0, 4, true},
                              {0.5, 4, true},  {1.0, 4, true},
                              {2.0, 4, true},  {1.0, 1, true}};
  SweepDriver sweep;
  for (const Setting& s : settings) {
    sweep.add_cell([&w, &scale, dataset, queries, truth, topology, proto,
                    s]() {
      ExperimentConfig ecfg = proto;
      ecfg.load_balance = s.balance;
      ecfg.delta = s.delta;
      ecfg.probe_level = std::max(1, s.pl);
      SimilarityExperiment<L2Space> exp(
          ecfg, w.space, dataset,
          w.make_mapper(Selection::kKMeans, 5, scale.sample, scale.seed + 5),
          "ablation-balance", topology);
      exp.set_queries(queries, truth);
      auto curve = exp.load_curve();
      std::vector<double> loads(curve.begin(), curve.end());
      QueryStats stats = exp.run_batch(0.05 * w.max_dist);
      CellOutput out;
      out.rows.push_back({s.balance ? fmt(s.delta, 1) : "off",
                          s.balance ? std::to_string(s.pl) : "-",
                          std::to_string(exp.migrations()),
                          fmt(loads.front(), 0), fmt(gini(loads), 3),
                          fmt(stats.recall.mean(), 3),
                          fmt(stats.hops.mean(), 1),
                          fmt(stats.query_messages.mean(), 1)});
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: larger delta / smaller Pl -> fewer migrations, flatter "
      "is worse; balancing raises routing cost (skewed node ids).\n");
  return 0;
}
