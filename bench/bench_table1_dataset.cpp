// Table 1: parameters for synthetic dataset generation — prints the
// configured parameters and verifies the generated dataset's moments
// actually match them (clamping at the range boundary shrinks the
// per-dimension deviation slightly; both raw and clamped are shown).
// The verification scan runs as a sweep cell; its lines are emitted
// after the parameter table, as in the serial layout.
#include <cmath>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Table 1: parameters for dataset generation");

  SyntheticWorkload w(scale);
  TablePrinter params({"parameter", "paper", "this run"});
  params.add_row({"Dimension", "100", std::to_string(w.cfg.dims)});
  params.add_row({"Range of each dimension", "[0..100]",
                  "[" + fmt(w.cfg.range_lo, 0) + ".." +
                      fmt(w.cfg.range_hi, 0) + "]"});
  params.add_row({"Number of clusters", "10", std::to_string(w.cfg.clusters)});
  params.add_row(
      {"Deviation of each cluster", "20", fmt(w.cfg.deviation, 0)});
  params.add_row({"Objects", "100000", std::to_string(w.cfg.objects)});
  params.print();

  // Verification: measured per-dimension deviation around the assigned
  // cluster centre, and cluster occupancy balance.
  SweepDriver sweep;
  sweep.add_cell([&w]() {
    Accumulator dev;
    std::vector<std::size_t> occupancy(w.cfg.clusters, 0);
    for (std::size_t i = 0; i < w.data.points.size(); ++i) {
      std::uint32_t c = w.data.assignments[i];
      ++occupancy[c];
      for (std::size_t d = 0; d < w.cfg.dims; ++d) {
        dev.add(w.data.points[i][d] - w.data.centers[c][d]);
      }
    }
    std::size_t min_occ = occupancy[0], max_occ = occupancy[0];
    for (std::size_t o : occupancy) {
      min_occ = std::min(min_occ, o);
      max_occ = std::max(max_occ, o);
    }
    CellOutput out;
    char buf[160];
    out.lines.emplace_back("");
    out.lines.emplace_back("verification:");
    std::snprintf(buf, sizeof buf,
                  "  measured per-dim deviation (after range clamping): %.2f",
                  dev.stddev());
    out.lines.emplace_back(buf);
    std::snprintf(buf, sizeof buf,
                  "  cluster occupancy: min %zu, max %zu (expected ~%zu each)",
                  min_occ, max_occ, w.cfg.objects / w.cfg.clusters);
    out.lines.emplace_back(buf);
    std::snprintf(buf, sizeof buf,
                  "  max theoretical distance: %.1f (paper: 1000)",
                  w.max_dist);
    out.lines.emplace_back(buf);
    return out;
  });
  for (const CellOutput& out : sweep.run()) {
    for (const std::string& line : out.lines) {
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}
