// Ablation: embedded-tree query routing (Algorithms 3-5) versus the
// naive client-side decomposition baseline (§3.3's strawman, MAAN-style).
//
// The strawman's cost shows up when a query spans many index nodes: it
// pays one independent O(log N) Chord route per decomposed piece, while
// the tree router splits queries only where their delivery paths
// diverge ("a query splits into multiple subqueries only when these
// subqueries need to take different ways"). Uniform entries + wide
// regions make the effect visible; the paper notes the naive approach
// "will cause high overhead especially when the query selectivity is
// large". Each routing mode is one sweep cell over the shared topology.
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/index_platform.hpp"

int main() {
  using namespace lmk;
  using namespace lmk::bench;
  Scale scale = Scale::resolve();
  scale.print("Ablation: tree routing vs naive per-piece routing");

  struct Mode {
    const char* name;
    RoutingMode routing;
    int depth;
  };
  const Mode modes[] = {{"tree", RoutingMode::kTree, 0},
                        {"naive-d6", RoutingMode::kNaive, 6},
                        {"naive-d8", RoutingMode::kNaive, 8},
                        {"naive-d10", RoutingMode::kNaive, 10},
                        {"naive-d12", RoutingMode::kNaive, 12}};
  // Query selectivity: fraction of each dimension's extent covered.
  const double extents[] = {0.10, 0.25, 0.50, 0.80};

  DelaySpaceModel::Options topo_opts;
  topo_opts.hosts = scale.nodes;
  topo_opts.seed = scale.seed;
  const DelaySpaceModel topo(topo_opts);

  TablePrinter table({"mode", "extent", "recall_ok", "qry_msgs", "hops",
                      "resp_ms", "maxlat_ms", "nodes", "qry_B"});
  SweepDriver sweep;
  for (const Mode& m : modes) {
    sweep.add_cell([&scale, &topo, &extents, m]() {
      Simulator sim;
      Network net(sim, topo);
      Ring::Options ropts;
      ropts.seed = scale.seed;
      Ring ring(net, ropts);
      for (HostId h = 0; h < scale.nodes; ++h) ring.create_node(h);
      ring.bootstrap();
      IndexPlatform::Options popts;
      popts.routing = m.routing;
      popts.naive_split_depth = m.depth;
      IndexPlatform platform(ring, popts);
      std::uint32_t scheme = platform.register_scheme(
          "uniform3d", uniform_boundary(3, 0, 1), false);
      Rng rng(scale.seed + 3);
      for (std::size_t i = 0; i < scale.objects; ++i) {
        platform.insert(scheme, i,
                        IndexPoint{rng.uniform(), rng.uniform(),
                                   rng.uniform()});
      }
      auto nodes = ring.alive_nodes();
      CellOutput out;
      for (double extent : extents) {
        QueryStats stats;
        Rng qrng(scale.seed + 4);
        std::size_t expected_total = 0;
        std::size_t got_total = 0;
        for (int qn = 0; qn < 30; ++qn) {
          Region r;
          for (int d = 0; d < 3; ++d) {
            double lo = qrng.uniform(0, 1 - extent);
            r.ranges.push_back(Interval{lo, lo + extent});
          }
          std::optional<IndexPlatform::QueryOutcome> outcome;
          platform.region_query(*nodes[qrng.below(nodes.size())], scheme, r,
                                IndexPoint(3, 0.5), ReplyMode::kAllMatches,
                                [&](const auto& o) { outcome = o; });
          sim.run();
          stats.add(*outcome, 1.0);
          got_total += outcome->results.size();
          expected_total += 1;  // placeholder: exactness checked in tests
        }
        out.rows.push_back({m.name, fmt(extent * 100, 0) + "%",
                            got_total > 0 ? "yes" : "n/a",
                            fmt(stats.query_messages.mean(), 1),
                            fmt(stats.hops.mean(), 1),
                            fmt(stats.response_ms.mean(), 1),
                            fmt(stats.max_latency_ms.mean(), 1),
                            fmt(stats.index_nodes.mean(), 1),
                            fmt(stats.query_bytes.mean(), 0)});
      }
      return out;
    });
  }
  sweep.run_into(table);
  table.print();
  std::printf(
      "\nexpected: at matching coverage, the tree router uses fewer query "
      "messages than any naive depth; shallow naive depths leave long "
      "successor walks, deep ones flood lookups.\n");
  return 0;
}
