// Flagship open-loop scenario: the memory-architecture stress test.
//
// Where the figure benches replay the paper's closed query batches at
// paper scale, this bench drives the index like a deployment: a 10k-node
// Chord overlay indexing a 1M-object synthetic corpus that is *streamed*
// into the index (the corpus is a seeded function, never materialized),
// then an open-loop Poisson arrival stream with Zipf-skewed topic
// popularity fires range queries on its own clock — arrivals do not wait
// for completions, so per-node queue depth and tail latency are
// observable instead of being hidden by back-pressure.
//
// Reported, split into two JSON sections:
//   - "deterministic": everything derived from virtual time and the
//     seeds — latency percentiles (p50/p99/p999 exact + P² streaming
//     estimates), per-node reply-queue depth, bytes on the wire,
//     sampled recall, arena/store/pool memory counters. Byte-identical
//     for any LMK_THREADS; CI compares this section across thread
//     counts (LMK_FLAGSHIP_DET_OUT writes it to its own file).
//   - "wallclock": build/oracle/drain wall times and rates for this
//     machine (regression-gated loosely by scripts/bench_diff.py).
//
// Scale: defaults are a smoke configuration that finishes in seconds;
// LMK_FULL=1 selects the flagship 10000-node / 1,000,000-object run.
// Individual knobs: LMK_FLAGSHIP_NODES, LMK_FLAGSHIP_OBJECTS,
// LMK_FLAGSHIP_DIMS, LMK_FLAGSHIP_ARRIVALS, LMK_FLAGSHIP_RATE,
// LMK_FLAGSHIP_RANGE, LMK_FLAGSHIP_RECALL, LMK_SAMPLE, LMK_SEED.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "common/alloc_guard.hpp"
#include "common/arena.hpp"
#include "common/stats.hpp"
#include "workload/open_loop.hpp"

namespace lmk::bench {
namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct FlagshipScale {
  std::size_t nodes;
  std::uint64_t objects;
  std::size_t dims;
  std::size_t landmarks;
  std::uint64_t arrivals;
  double rate;           ///< open-loop Poisson arrivals per second
  double zipf_s;         ///< topic popularity exponent
  double range_factor;   ///< query radius / max theoretical distance
  std::size_t sample;    ///< landmark-selection sample
  std::size_t recall_sample;  ///< arrivals scored against the oracle
  std::uint64_t seed;

  static FlagshipScale resolve() {
    bool full = full_scale();
    FlagshipScale s;
    s.nodes = env_size("LMK_FLAGSHIP_NODES", full ? 10000 : 256);
    s.objects = env_size("LMK_FLAGSHIP_OBJECTS", full ? 1000000 : 20000);
    s.dims = env_size("LMK_FLAGSHIP_DIMS", full ? 100 : 16);
    s.landmarks = env_size("LMK_FLAGSHIP_LANDMARKS", 10);
    s.arrivals = env_size("LMK_FLAGSHIP_ARRIVALS", full ? 2000 : 200);
    s.rate = env_double("LMK_FLAGSHIP_RATE", full ? 50.0 : 20.0);
    s.zipf_s = env_double("LMK_FLAGSHIP_ZIPF", 0.9);
    // 100-dim full geometry concentrates distances, so the paper's
    // 0.05 factor retrieves well; the 16-dim smoke geometry needs a
    // wider cube for comparable recall.
    s.range_factor = env_double("LMK_FLAGSHIP_RANGE", full ? 0.05 : 0.10);
    s.sample = env_size("LMK_SAMPLE", full ? 2000 : 400);
    s.recall_sample = env_size("LMK_FLAGSHIP_RECALL", full ? 50 : 25);
    s.seed = env_size("LMK_SEED", 42);
    return s;
  }
};

int run() {
  FlagshipScale s = FlagshipScale::resolve();
  std::printf("# bench_flagship  (nodes=%zu objects=%llu dims=%zu "
              "landmarks=%zu arrivals=%llu rate=%.1f/s range=%.3f "
              "seed=%llu%s)\n",
              s.nodes, static_cast<unsigned long long>(s.objects), s.dims,
              s.landmarks, static_cast<unsigned long long>(s.arrivals),
              s.rate, s.range_factor,
              static_cast<unsigned long long>(s.seed),
              full_scale() ? ", FULL FLAGSHIP SCALE" : "");
  std::printf("pool threads: %zu\n", thread_count());

  // The corpus is a function of (config, seed): streamed into the index
  // in batches and re-walked independently by the sampled oracle.
  SyntheticConfig cfg;
  cfg.objects = s.objects;
  cfg.dims = s.dims;
  cfg.range_lo = 0;
  cfg.range_hi = 100;
  cfg.clusters = 10;
  cfg.deviation = 20;
  SyntheticStream stream(cfg, s.seed);
  double max_dist = max_theoretical_distance(cfg);
  L2Space space;

  // Landmarks from a seeded sample of the stream (k-means, the paper's
  // recommended scheme).
  std::vector<DenseVector> sample_pts;
  double t_select = time_s([&] {
    Rng sel(s.seed + 7);
    auto idx = sel.sample_indices(
        static_cast<std::size_t>(s.objects),
        std::min<std::size_t>(s.sample,
                              static_cast<std::size_t>(s.objects)));
    sample_pts.reserve(idx.size());
    for (auto i : idx) sample_pts.push_back(stream.point(i));
  });
  std::vector<DenseVector> landmarks;
  t_select += time_s([&] {
    Rng rng(s.seed + 8);
    landmarks = kmeans_dense(std::span<const DenseVector>(sample_pts),
                             s.landmarks, rng);
  });
  LandmarkMapper<L2Space> mapper(
      space, std::move(landmarks),
      uniform_boundary(s.landmarks, 0, max_dist));

  // Full stack, same seed-derivation order as SimilarityExperiment.
  Simulator sim;
  Rng rng(s.seed);
  DelaySpaceModel::Options topo;
  topo.hosts = s.nodes;
  topo.seed = rng.fork().next();
  double t_topology = 0;
  std::unique_ptr<DelaySpaceModel> model;
  std::unique_ptr<Network> net;
  std::unique_ptr<Ring> ring;
  t_topology = time_s([&] {
    model = std::make_unique<DelaySpaceModel>(topo);
    net = std::make_unique<Network>(sim, *model);
    Ring::Options ropts;
    ropts.seed = rng.fork().next();
    ring = std::make_unique<Ring>(*net, ropts);
    for (std::size_t h = 0; h < s.nodes; ++h) {
      ring->create_node(static_cast<HostId>(h));
    }
    ring->bootstrap();
  });
  IndexPlatform platform(*ring);
  LandmarkIndex<L2Space> index(platform, space, std::move(mapper),
                               "flagship");

  // Streaming build: batches of the seeded corpus are landmark-mapped
  // into arena scratch and bulk-inserted; resident memory is one batch
  // plus the (SoA) stores, never the corpus.
  Arena scratch;
  AllocCounters build_alloc;
  double t_build = time_s([&] {
    AllocPhaseScope phase("stream-build");
    index.stream_load(
        s.objects,
        [&](std::uint64_t i, DenseVector& out) {
          out.resize(s.dims);
          stream.point_into(i, out);
        },
        scratch);
    build_alloc = phase.delta();
  });
  LMK_CHECK(platform.scheme_entries(index.scheme_id()) == s.objects);
  ArenaStats build_arena = scratch.stats();

  // Open-loop arrival stream: Poisson clock, Zipf topic per arrival,
  // query point near the topic's cluster centre.
  OpenLoopConfig ocfg;
  ocfg.arrivals_per_sec = s.rate;
  ocfg.topics = cfg.clusters;
  ocfg.zipf_s = s.zipf_s;
  ocfg.count = s.arrivals;
  ocfg.seed = s.seed + 21;
  std::vector<Arrival> schedule = open_loop_schedule(ocfg);
  std::vector<DenseVector> qpts(schedule.size());
  parallel_for(schedule.size(), [&](std::size_t i) {
    qpts[i] = stream.query_near(schedule[i].topic, i);
  });

  // Oracle-scored subset (recall on every arrival would make the oracle
  // O(arrivals · objects); the sample keeps it O(sample · objects)).
  std::vector<std::size_t> sampled = sample_query_indices(
      schedule.size(),
      std::min<std::size_t>(s.recall_sample, schedule.size()), s.seed + 13);
  std::unordered_set<std::size_t> sampled_set(sampled.begin(),
                                              sampled.end());
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> retrieved;

  const double radius = s.range_factor * max_dist;
  std::vector<ChordNode*> alive = ring->alive_nodes();
  Rng origin_rng = rng.fork();

  // Deterministic per-query numbers (virtual-time latencies).
  std::vector<double> lat_ms, resp_ms;
  lat_ms.reserve(schedule.size());
  resp_ms.reserve(schedule.size());
  P2Quantile p99_stream(0.99), p999_stream(0.999);
  Accumulator hops, qbytes, rbytes, qmsgs, subqueries, index_nodes;
  Accumulator scanned;
  std::uint64_t incomplete = 0;

  // One scratch row for regenerating candidate objects during ranking
  // and refinement (the sim is single-threaded; rank calls are atomic).
  DenseVector rank_scratch(s.dims);
  auto dist_to = [&](const DenseVector& q, std::uint64_t id) {
    stream.point_into(id, rank_scratch);
    return std::sqrt(l2_squared(q, rank_scratch));
  };

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    auto at = static_cast<SimTime>(schedule[i].at_sec *
                                   static_cast<double>(kSecond));
    ChordNode* origin = alive[origin_rng.below(alive.size())];
    sim.schedule_at(at, [&, i, origin] {
      const DenseVector& q = qpts[i];
      // Per-query memo: several index nodes rank the same candidate.
      auto cache =
          std::make_shared<std::unordered_map<std::uint64_t, double>>();
      // `i` must ride by value: the closure outlives this scheduled
      // event (it is invoked per subquery while the query is in
      // flight).
      IndexPlatform::DistanceFn rank = [&, cache, i](std::uint64_t id) {
        auto it = cache->find(id);
        if (it != cache->end()) return it->second;
        double d = dist_to(qpts[i], id);
        cache->emplace(id, d);
        return d;
      };
      platform.range_query(
          *origin, index.scheme_id(), index.mapper().map_unclamped(q),
          radius, ReplyMode::kTopK,
          [&, i](const IndexPlatform::QueryOutcome& o) {
            double ms = static_cast<double>(o.max_latency) /
                        static_cast<double>(kMillisecond);
            lat_ms.push_back(ms);
            resp_ms.push_back(static_cast<double>(o.response_time) /
                              static_cast<double>(kMillisecond));
            p99_stream.add(ms);
            p999_stream.add(ms);
            hops.add(o.hops);
            qbytes.add(static_cast<double>(o.query_bytes));
            rbytes.add(static_cast<double>(o.result_bytes));
            qmsgs.add(static_cast<double>(o.query_messages));
            subqueries.add(o.subqueries);
            scanned.add(static_cast<double>(o.scanned));
            index_nodes.add(o.index_nodes);
            if (!o.complete) ++incomplete;
            if (sampled_set.count(i) != 0) {
              // Querier-side refinement: true distances, top-10, ties
              // by id — the paper's recall protocol.
              std::vector<std::pair<double, std::uint64_t>> scored;
              scored.reserve(o.results.size());
              for (std::uint64_t id : o.results) {
                scored.emplace_back(dist_to(qpts[i], id), id);
              }
              std::sort(scored.begin(), scored.end());
              scored.erase(std::unique(scored.begin(), scored.end(),
                                       [](const auto& a, const auto& b) {
                                         return a.second == b.second;
                                       }),
                           scored.end());
              if (scored.size() > 10) scored.resize(10);
              auto& ids = retrieved[i];
              ids.reserve(scored.size());
              for (const auto& [d, id] : scored) ids.push_back(id);
            }
          },
          std::move(rank));
    });
  }

  // Queue-depth sampling on a virtual-time cadence while the open-loop
  // stream runs: per-node unflushed reply buffers (the gauge behind
  // pending_reply_depth) and platform-wide in-flight queries.
  Accumulator depth_mean;
  std::uint64_t depth_max = 0, depth_samples = 0;
  std::size_t max_active = 0;
  sim.set_audit(kSecond, [&](SimTime) {
    std::size_t dmax = 0;
    std::uint64_t dsum = 0;
    for (ChordNode* n : alive) {
      std::size_t d = platform.pending_reply_depth(*n);
      dmax = std::max(dmax, d);
      dsum += d;
    }
    depth_max = std::max<std::uint64_t>(depth_max, dmax);
    depth_mean.add(static_cast<double>(dsum) /
                   static_cast<double>(alive.size()));
    ++depth_samples;
    max_active = std::max(max_active, platform.active_queries());
  });

  std::uint64_t ev0 = sim.events_executed();
  AllocCounters query_alloc;
  double t_query = time_s([&] {
    AllocPhaseScope phase("open-loop-queries");
    sim.run();
    query_alloc = phase.delta();
  });
  std::uint64_t sim_events = sim.events_executed() - ev0;
  sim.set_audit(0, nullptr);
  LMK_CHECK(lat_ms.size() == schedule.size());

  // Sampled oracle: exact truth for the scored arrivals, streamed over
  // the regenerated corpus (O(sample · objects), bounded memory).
  std::vector<DenseVector> sampled_q;
  sampled_q.reserve(sampled.size());
  for (std::size_t si : sampled) sampled_q.push_back(qpts[si]);
  std::vector<std::vector<std::uint64_t>> truth;
  double t_oracle = time_s([&] {
    truth = knn_truth_streamed(
        space, s.objects,
        [&](std::uint64_t first, std::span<DenseVector> out) {
          parallel_for(out.size(), [&](std::size_t j) {
            out[j].resize(s.dims);
            stream.point_into(first + j, out[j]);
          });
        },
        std::span<const DenseVector>(sampled_q), /*k=*/10);
  });
  Accumulator recall_acc;
  for (std::size_t si = 0; si < sampled.size(); ++si) {
    recall_acc.add(recall(truth[si], retrieved[sampled[si]]));
  }

  // Exact percentiles: repeated nth_element on the same sample vector
  // (partial orderings do not affect later calls).
  double p50 = percentile_nth(lat_ms, 50);
  double p90 = percentile_nth(lat_ms, 90);
  double p99 = percentile_nth(lat_ms, 99);
  double p999 = percentile_nth(lat_ms, 99.9);
  double lat_max = *std::max_element(lat_ms.begin(), lat_ms.end());
  double rp50 = percentile_nth(resp_ms, 50);
  double rp99 = percentile_nth(resp_ms, 99);

  std::uint64_t store_bytes = platform.store_bytes();
  RecyclePoolStats pool = platform.reply_pool_stats();
  double wire_total = qbytes.sum() + rbytes.sum();

  std::printf("build: select %.3fs  topology %.3fs  stream-load %.3fs "
              "(%.0f objects/s, batches of 8192)\n",
              t_select, t_topology, t_build,
              t_build > 0 ? static_cast<double>(s.objects) / t_build : 0.0);
  std::printf("arena: high-water %llu bytes, reserved %llu bytes, "
              "%llu resets; store %llu bytes\n",
              static_cast<unsigned long long>(build_arena.high_water_bytes),
              static_cast<unsigned long long>(build_arena.reserved_bytes),
              static_cast<unsigned long long>(build_arena.resets),
              static_cast<unsigned long long>(store_bytes));
  std::printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f  p999 %.2f  "
              "max %.2f  (P2: p99 %.2f, p999 %.2f)\n",
              p50, p90, p99, p999, lat_max, p99_stream.value(),
              p999_stream.value());
  std::printf("first-reply ms: p50 %.2f  p99 %.2f\n", rp50, rp99);
  std::printf("queue: max depth %llu, mean depth %.3f over %llu samples, "
              "max active queries %zu\n",
              static_cast<unsigned long long>(depth_max), depth_mean.mean(),
              static_cast<unsigned long long>(depth_samples), max_active);
  std::printf("wire: %.0f query + %.0f result = %.0f bytes "
              "(%.1f per query); %.1f msgs, %.1f subqueries, "
              "%.1f index nodes per query\n",
              qbytes.sum(), rbytes.sum(), wire_total,
              wire_total / static_cast<double>(schedule.size()),
              qmsgs.mean(), subqueries.mean(), index_nodes.mean());
  std::printf("pool: %llu acquires, %llu hits, high water %llu\n",
              static_cast<unsigned long long>(pool.acquires),
              static_cast<unsigned long long>(pool.hits),
              static_cast<unsigned long long>(pool.high_water));
  std::printf("recall@10 (sampled, %zu queries): %.3f  (oracle %.3fs)\n",
              sampled.size(), recall_acc.mean(), t_oracle);
  std::printf("local store: %s, %.1f scanned per subquery\n",
              platform.local_store_name(index.scheme_id()),
              subqueries.sum() > 0 ? scanned.sum() / subqueries.sum() : 0.0);
  std::printf("query phase: %.3fs wall, %llu sim events, %llu incomplete\n",
              t_query, static_cast<unsigned long long>(sim_events),
              static_cast<unsigned long long>(incomplete));

  // The deterministic section is serialized once and embedded in both
  // output files, so the CI thread-count comparison diffs bytes.
  char det[4096];
  std::snprintf(
      det, sizeof det,
      "{\n"
      "    \"latency_ms\": {\"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, "
      "\"p999\": %.6f, \"max\": %.6f, \"p99_p2\": %.6f, "
      "\"p999_p2\": %.6f},\n"
      "    \"first_reply_ms\": {\"p50\": %.6f, \"p99\": %.6f},\n"
      "    \"queue\": {\"max_depth\": %llu, \"mean_depth\": %.6f, "
      "\"samples\": %llu, \"max_active_queries\": %zu},\n"
      "    \"wire\": {\"query_bytes\": %.0f, \"result_bytes\": %.0f, "
      "\"total_bytes\": %.0f, \"bytes_per_query\": %.3f, "
      "\"messages_per_query\": %.3f},\n"
      "    \"memory\": {\"arena_high_water\": %llu, "
      "\"arena_reserved\": %llu, \"store_bytes\": %llu, "
      "\"pool_high_water\": %llu, \"pool_acquires\": %llu, "
      "\"pool_hits\": %llu},\n"
      "    \"recall\": {\"sampled\": %zu, \"mean\": %.6f},\n"
      "    \"subqueries_per_query\": %.6f,\n"
      "    \"local_store\": \"%s\",\n"
      "    \"scanned_per_subquery\": %.6f,\n"
      "    \"incomplete\": %llu,\n"
      "    \"sim_events\": %llu\n"
      "  }",
      p50, p90, p99, p999, lat_max, p99_stream.value(), p999_stream.value(),
      rp50, rp99, static_cast<unsigned long long>(depth_max),
      depth_mean.mean(), static_cast<unsigned long long>(depth_samples),
      max_active, qbytes.sum(), rbytes.sum(), wire_total,
      wire_total / static_cast<double>(schedule.size()), qmsgs.mean(),
      static_cast<unsigned long long>(build_arena.high_water_bytes),
      static_cast<unsigned long long>(build_arena.reserved_bytes),
      static_cast<unsigned long long>(store_bytes),
      static_cast<unsigned long long>(pool.high_water),
      static_cast<unsigned long long>(pool.acquires),
      static_cast<unsigned long long>(pool.hits), sampled.size(),
      recall_acc.mean(), subqueries.mean(),
      platform.local_store_name(index.scheme_id()),
      subqueries.sum() > 0 ? scanned.sum() / subqueries.sum() : 0.0,
      static_cast<unsigned long long>(incomplete),
      static_cast<unsigned long long>(sim_events));

  const char* out_path = std::getenv("LMK_FLAGSHIP_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_flagship.json";
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"scale\": {\"nodes\": %zu, \"objects\": %llu, \"dims\": %zu, "
      "\"landmarks\": %zu, \"arrivals\": %llu, \"rate\": %.3f, "
      "\"zipf_s\": %.3f, \"range_factor\": %.3f, \"sample\": %zu, "
      "\"recall_sample\": %zu, \"seed\": %llu},\n"
      "  \"deterministic\": %s,\n"
      // Allocation counters depend on the allocator and guard build, so
      // they live outside the deterministic section (which must stay
      // byte-identical across LMK_THREADS).
      "  \"alloc\": {\n"
      "    \"guard_enabled\": %s,\n"
      "    \"stream_build\": {\"allocs\": %llu, \"frees\": %llu, "
      "\"alloc_bytes\": %llu, \"free_bytes\": %llu},\n"
      "    \"open_loop_queries\": {\"allocs\": %llu, \"frees\": %llu, "
      "\"alloc_bytes\": %llu, \"free_bytes\": %llu}\n"
      "  },\n"
      "  \"wallclock\": {\n"
      "    \"select_seconds\": %.6f,\n"
      "    \"topology_seconds\": %.6f,\n"
      "    \"build_seconds\": %.6f,\n"
      "    \"objects_per_sec\": %.1f,\n"
      "    \"query_seconds\": %.6f,\n"
      "    \"sim_events_per_sec\": %.1f,\n"
      "    \"oracle_seconds\": %.6f,\n"
      "    \"threads\": %zu\n"
      "  }\n"
      "}\n",
      s.nodes, static_cast<unsigned long long>(s.objects), s.dims,
      s.landmarks, static_cast<unsigned long long>(s.arrivals), s.rate,
      s.zipf_s, s.range_factor, s.sample,
      std::min<std::size_t>(s.recall_sample, schedule.size()),
      static_cast<unsigned long long>(s.seed), det,
      alloc_guard_enabled() ? "true" : "false",
      static_cast<unsigned long long>(build_alloc.allocs),
      static_cast<unsigned long long>(build_alloc.frees),
      static_cast<unsigned long long>(build_alloc.alloc_bytes),
      static_cast<unsigned long long>(build_alloc.free_bytes),
      static_cast<unsigned long long>(query_alloc.allocs),
      static_cast<unsigned long long>(query_alloc.frees),
      static_cast<unsigned long long>(query_alloc.alloc_bytes),
      static_cast<unsigned long long>(query_alloc.free_bytes),
      t_select, t_topology,
      t_build, t_build > 0 ? static_cast<double>(s.objects) / t_build : 0.0,
      t_query,
      t_query > 0 ? static_cast<double>(sim_events) / t_query : 0.0,
      t_oracle, thread_count());
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  const char* det_path = std::getenv("LMK_FLAGSHIP_DET_OUT");
  if (det_path != nullptr && *det_path != '\0') {
    std::FILE* df = std::fopen(det_path, "w");
    if (df == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", det_path);
      return 1;
    }
    std::fprintf(df, "%s\n", det);
    std::fclose(df);
    std::printf("wrote %s\n", det_path);
  }
  return 0;
}

}  // namespace
}  // namespace lmk::bench

int main() { return lmk::bench::run(); }
