// Flagship open-loop scenario: the memory-architecture stress test.
//
// Where the figure benches replay the paper's closed query batches at
// paper scale, this bench drives the index like a deployment: a 10k-node
// Chord overlay indexing a 1M-object synthetic corpus that is *streamed*
// into the index (the corpus is a seeded function, never materialized),
// then an open-loop Poisson arrival stream with Zipf-skewed topic
// popularity fires range queries on its own clock — arrivals do not wait
// for completions, so per-node queue depth and tail latency are
// observable instead of being hidden by back-pressure.
//
// Reported, split into two JSON sections:
//   - "deterministic": everything derived from virtual time and the
//     seeds — latency percentiles (p50/p99/p999 exact + P² streaming
//     estimates), per-node reply-queue depth, bytes on the wire,
//     sampled recall, arena/store/pool memory counters. Byte-identical
//     for any LMK_THREADS; CI compares this section across thread
//     counts (LMK_FLAGSHIP_DET_OUT writes it to its own file).
//   - "wallclock": build/oracle/drain wall times and rates for this
//     machine (regression-gated loosely by scripts/bench_diff.py).
//
// Scale: defaults are a smoke configuration that finishes in seconds;
// LMK_FULL=1 selects the flagship 10000-node / 1,000,000-object run.
// Individual knobs: LMK_FLAGSHIP_NODES, LMK_FLAGSHIP_OBJECTS,
// LMK_FLAGSHIP_DIMS, LMK_FLAGSHIP_ARRIVALS, LMK_FLAGSHIP_RATE,
// LMK_FLAGSHIP_RANGE, LMK_FLAGSHIP_RECALL, LMK_SAMPLE, LMK_SEED.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "common/alloc_guard.hpp"
#include "common/arena.hpp"
#include "common/stats.hpp"
#include "workload/open_loop.hpp"

namespace lmk::bench {
namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct FlagshipScale {
  std::size_t nodes;
  std::uint64_t objects;
  std::size_t dims;
  std::size_t landmarks;
  std::uint64_t arrivals;
  double rate;           ///< open-loop Poisson arrivals per second
  double zipf_s;         ///< topic popularity exponent
  double range_factor;   ///< query radius / max theoretical distance
  std::size_t sample;    ///< landmark-selection sample
  std::size_t recall_sample;  ///< arrivals scored against the oracle
  std::uint64_t seed;

  static FlagshipScale resolve() {
    bool full = full_scale();
    FlagshipScale s;
    s.nodes = env_size("LMK_FLAGSHIP_NODES", full ? 10000 : 256);
    s.objects = env_size("LMK_FLAGSHIP_OBJECTS", full ? 1000000 : 20000);
    s.dims = env_size("LMK_FLAGSHIP_DIMS", full ? 100 : 16);
    s.landmarks = env_size("LMK_FLAGSHIP_LANDMARKS", 10);
    s.arrivals = env_size("LMK_FLAGSHIP_ARRIVALS", full ? 2000 : 200);
    s.rate = env_double("LMK_FLAGSHIP_RATE", full ? 50.0 : 20.0);
    s.zipf_s = env_double("LMK_FLAGSHIP_ZIPF", 0.9);
    // 100-dim full geometry concentrates distances, so the paper's
    // 0.05 factor retrieves well; the 16-dim smoke geometry needs a
    // wider cube for comparable recall.
    s.range_factor = env_double("LMK_FLAGSHIP_RANGE", full ? 0.05 : 0.10);
    s.sample = env_size("LMK_SAMPLE", full ? 2000 : 400);
    s.recall_sample = env_size("LMK_FLAGSHIP_RECALL", full ? 50 : 25);
    s.seed = env_size("LMK_SEED", 42);
    return s;
  }
};

int run() {
  FlagshipScale s = FlagshipScale::resolve();
  std::printf("# bench_flagship  (nodes=%zu objects=%llu dims=%zu "
              "landmarks=%zu arrivals=%llu rate=%.1f/s range=%.3f "
              "seed=%llu%s)\n",
              s.nodes, static_cast<unsigned long long>(s.objects), s.dims,
              s.landmarks, static_cast<unsigned long long>(s.arrivals),
              s.rate, s.range_factor,
              static_cast<unsigned long long>(s.seed),
              full_scale() ? ", FULL FLAGSHIP SCALE" : "");
  std::printf("pool threads: %zu\n", thread_count());

  // The corpus is a function of (config, seed): streamed into the index
  // in batches and re-walked independently by the sampled oracle.
  SyntheticConfig cfg;
  cfg.objects = s.objects;
  cfg.dims = s.dims;
  cfg.range_lo = 0;
  cfg.range_hi = 100;
  cfg.clusters = 10;
  cfg.deviation = 20;
  SyntheticStream stream(cfg, s.seed);
  double max_dist = max_theoretical_distance(cfg);
  L2Space space;

  // Landmarks from a seeded sample of the stream (k-means, the paper's
  // recommended scheme).
  std::vector<DenseVector> sample_pts;
  double t_select = time_s([&] {
    Rng sel(s.seed + 7);
    auto idx = sel.sample_indices(
        static_cast<std::size_t>(s.objects),
        std::min<std::size_t>(s.sample,
                              static_cast<std::size_t>(s.objects)));
    sample_pts.reserve(idx.size());
    for (auto i : idx) sample_pts.push_back(stream.point(i));
  });
  std::vector<DenseVector> landmarks;
  t_select += time_s([&] {
    Rng rng(s.seed + 8);
    landmarks = kmeans_dense(std::span<const DenseVector>(sample_pts),
                             s.landmarks, rng);
  });
  LandmarkMapper<L2Space> mapper(
      space, std::move(landmarks),
      uniform_boundary(s.landmarks, 0, max_dist));

  // Full stack, same seed-derivation order as SimilarityExperiment.
  Simulator sim;
  Rng rng(s.seed);
  DelaySpaceModel::Options topo;
  topo.hosts = s.nodes;
  topo.seed = rng.fork().next();
  double t_topology = 0;
  std::unique_ptr<DelaySpaceModel> model;
  std::unique_ptr<Network> net;
  std::unique_ptr<Ring> ring;
  t_topology = time_s([&] {
    model = std::make_unique<DelaySpaceModel>(topo);
    net = std::make_unique<Network>(sim, *model);
    Ring::Options ropts;
    ropts.seed = rng.fork().next();
    ring = std::make_unique<Ring>(*net, ropts);
    for (std::size_t h = 0; h < s.nodes; ++h) {
      ring->create_node(static_cast<HostId>(h));
    }
    ring->bootstrap();
  });
  IndexPlatform platform(*ring);
  LandmarkIndex<L2Space> index(platform, space, std::move(mapper),
                               "flagship");

  // Streaming build: batches of the seeded corpus are landmark-mapped
  // into arena scratch and bulk-inserted; resident memory is one batch
  // plus the (SoA) stores, never the corpus.
  Arena scratch;
  AllocCounters build_alloc;
  double t_build = time_s([&] {
    AllocPhaseScope phase("stream-build");
    index.stream_load(
        s.objects,
        [&](std::uint64_t i, DenseVector& out) {
          out.resize(s.dims);
          stream.point_into(i, out);
        },
        scratch);
    build_alloc = phase.delta();
  });
  LMK_CHECK(platform.scheme_entries(index.scheme_id()) == s.objects);
  ArenaStats build_arena = scratch.stats();

  // Open-loop arrival stream: Poisson clock, Zipf topic per arrival,
  // query point near the topic's cluster centre.
  OpenLoopConfig ocfg;
  ocfg.arrivals_per_sec = s.rate;
  ocfg.topics = cfg.clusters;
  ocfg.zipf_s = s.zipf_s;
  ocfg.count = s.arrivals;
  ocfg.seed = s.seed + 21;
  std::vector<Arrival> schedule = open_loop_schedule(ocfg);
  std::vector<DenseVector> qpts(schedule.size());
  parallel_for(schedule.size(), [&](std::size_t i) {
    qpts[i] = stream.query_near(schedule[i].topic, i);
  });

  // Oracle-scored subset (recall on every arrival would make the oracle
  // O(arrivals · objects); the sample keeps it O(sample · objects)).
  std::vector<std::size_t> sampled = sample_query_indices(
      schedule.size(),
      std::min<std::size_t>(s.recall_sample, schedule.size()), s.seed + 13);
  std::unordered_set<std::size_t> sampled_set(sampled.begin(),
                                              sampled.end());
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> retrieved;

  const double radius = s.range_factor * max_dist;
  std::vector<ChordNode*> alive = ring->alive_nodes();
  Rng origin_rng = rng.fork();

  // Deterministic per-query numbers (virtual-time latencies).
  std::vector<double> lat_ms, resp_ms;
  lat_ms.reserve(schedule.size());
  resp_ms.reserve(schedule.size());
  P2Quantile p99_stream(0.99), p999_stream(0.999);
  Accumulator hops, qbytes, rbytes, qmsgs, subqueries, index_nodes;
  Accumulator scanned;
  std::uint64_t incomplete = 0;

  // One scratch row for regenerating candidate objects during ranking
  // and refinement (the sim is single-threaded; rank calls are atomic).
  DenseVector rank_scratch(s.dims);
  auto dist_to = [&](const DenseVector& q, std::uint64_t id) {
    stream.point_into(id, rank_scratch);
    return std::sqrt(l2_squared(q, rank_scratch));
  };

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    auto at = static_cast<SimTime>(schedule[i].at_sec *
                                   static_cast<double>(kSecond));
    ChordNode* origin = alive[origin_rng.below(alive.size())];
    sim.schedule_at(at, [&, i, origin] {
      const DenseVector& q = qpts[i];
      // Per-query memo: several index nodes rank the same candidate.
      auto cache =
          std::make_shared<std::unordered_map<std::uint64_t, double>>();
      // `i` must ride by value: the closure outlives this scheduled
      // event (it is invoked per subquery while the query is in
      // flight).
      IndexPlatform::DistanceFn rank = [&, cache, i](std::uint64_t id) {
        auto it = cache->find(id);
        if (it != cache->end()) return it->second;
        double d = dist_to(qpts[i], id);
        cache->emplace(id, d);
        return d;
      };
      platform.range_query(
          *origin, index.scheme_id(), index.mapper().map_unclamped(q),
          radius, ReplyMode::kTopK,
          [&, i](const IndexPlatform::QueryOutcome& o) {
            double ms = static_cast<double>(o.max_latency) /
                        static_cast<double>(kMillisecond);
            lat_ms.push_back(ms);
            resp_ms.push_back(static_cast<double>(o.response_time) /
                              static_cast<double>(kMillisecond));
            p99_stream.add(ms);
            p999_stream.add(ms);
            hops.add(o.hops);
            qbytes.add(static_cast<double>(o.query_bytes));
            rbytes.add(static_cast<double>(o.result_bytes));
            qmsgs.add(static_cast<double>(o.query_messages));
            subqueries.add(o.subqueries);
            scanned.add(static_cast<double>(o.scanned));
            index_nodes.add(o.index_nodes);
            if (!o.complete) ++incomplete;
            if (sampled_set.count(i) != 0) {
              // Querier-side refinement: true distances, top-10, ties
              // by id — the paper's recall protocol.
              std::vector<std::pair<double, std::uint64_t>> scored;
              scored.reserve(o.results.size());
              for (std::uint64_t id : o.results) {
                scored.emplace_back(dist_to(qpts[i], id), id);
              }
              std::sort(scored.begin(), scored.end());
              scored.erase(std::unique(scored.begin(), scored.end(),
                                       [](const auto& a, const auto& b) {
                                         return a.second == b.second;
                                       }),
                           scored.end());
              if (scored.size() > 10) scored.resize(10);
              auto& ids = retrieved[i];
              ids.reserve(scored.size());
              for (const auto& [d, id] : scored) ids.push_back(id);
            }
          },
          std::move(rank));
    });
  }

  // Queue-depth sampling on a virtual-time cadence while the open-loop
  // stream runs: per-node unflushed reply buffers (the gauge behind
  // pending_reply_depth) and platform-wide in-flight queries.
  Accumulator depth_mean;
  std::uint64_t depth_max = 0, depth_samples = 0;
  std::size_t max_active = 0;
  sim.set_audit(kSecond, [&](SimTime) {
    std::size_t dmax = 0;
    std::uint64_t dsum = 0;
    for (ChordNode* n : alive) {
      std::size_t d = platform.pending_reply_depth(*n);
      dmax = std::max(dmax, d);
      dsum += d;
    }
    depth_max = std::max<std::uint64_t>(depth_max, dmax);
    depth_mean.add(static_cast<double>(dsum) /
                   static_cast<double>(alive.size()));
    ++depth_samples;
    max_active = std::max(max_active, platform.active_queries());
  });

  std::uint64_t ev0 = sim.events_executed();
  AllocCounters query_alloc;
  double t_query = time_s([&] {
    AllocPhaseScope phase("open-loop-queries");
    sim.run();
    query_alloc = phase.delta();
  });
  std::uint64_t sim_events = sim.events_executed() - ev0;
  sim.set_audit(0, nullptr);
  LMK_CHECK(lat_ms.size() == schedule.size());

  // Sampled oracle: exact truth for the scored arrivals, streamed over
  // the regenerated corpus (O(sample · objects), bounded memory).
  std::vector<DenseVector> sampled_q;
  sampled_q.reserve(sampled.size());
  for (std::size_t si : sampled) sampled_q.push_back(qpts[si]);
  std::vector<std::vector<std::uint64_t>> truth;
  double t_oracle = time_s([&] {
    truth = knn_truth_streamed(
        space, s.objects,
        [&](std::uint64_t first, std::span<DenseVector> out) {
          parallel_for(out.size(), [&](std::size_t j) {
            out[j].resize(s.dims);
            stream.point_into(first + j, out[j]);
          });
        },
        std::span<const DenseVector>(sampled_q), /*k=*/10);
  });
  Accumulator recall_acc;
  for (std::size_t si = 0; si < sampled.size(); ++si) {
    recall_acc.add(recall(truth[si], retrieved[sampled[si]]));
  }

  // Exact percentiles: repeated nth_element on the same sample vector
  // (partial orderings do not affect later calls).
  double p50 = percentile_nth(lat_ms, 50);
  double p90 = percentile_nth(lat_ms, 90);
  double p99 = percentile_nth(lat_ms, 99);
  double p999 = percentile_nth(lat_ms, 99.9);
  double lat_max = *std::max_element(lat_ms.begin(), lat_ms.end());
  double rp50 = percentile_nth(resp_ms, 50);
  double rp99 = percentile_nth(resp_ms, 99);

  std::uint64_t store_bytes = platform.store_bytes();
  RecyclePoolStats pool = platform.reply_pool_stats();
  double wire_total = qbytes.sum() + rbytes.sum();

  // ---- serving-layer sweep (LMK_FLAGSHIP_SERVE=1) --------------------
  //
  // Two rungs over pooled Zipf workloads (the i-th arrival of topic t
  // reuses query salt i mod LMK_FLAGSHIP_QPOOL, so hot topics repeat a
  // small set of exact foci — the shape result caching exists for):
  //   A (efficiency, 1x rate, no service model): serve-off reference,
  //     then caches + coalescing window on. Result digests must match
  //     exactly; reports hit rate and wire bytes saved.
  //   B (overload ladder, {1,2,4}x rate with modeled solve occupancy):
  //     queue-limit shedding off vs on; reports p50/p99/p999 and the
  //     shed rate per rung.
  // The whole sweep is virtual-time-deterministic and lands in the
  // deterministic JSON section; with the sweep off the section is
  // byte-identical to pre-serve builds.
  char serve_det[3584];
  serve_det[0] = '\0';
  const char* serve_env = std::getenv("LMK_FLAGSHIP_SERVE");
  const bool serve_sweep =
      serve_env != nullptr && *serve_env != '\0' && *serve_env != '0';
  if (serve_sweep) {
    const std::size_t qpool = env_size("LMK_FLAGSHIP_QPOOL", 4);
    const std::uint64_t sweep_arrivals =
        env_size("LMK_FLAGSHIP_SERVE_ARRIVALS", s.arrivals);
    const SimTime service_us = static_cast<SimTime>(
        env_size("LMK_FLAGSHIP_SERVICE_US", 30000));
    const std::uint32_t queue_limit = static_cast<std::uint32_t>(
        env_size("LMK_FLAGSHIP_QUEUE_LIMIT", 8));
    const int max_retries = static_cast<int>(
        env_size("LMK_FLAGSHIP_MAX_RETRIES", 4));
    const SimTime window =
        static_cast<SimTime>(env_size("LMK_FLAGSHIP_SERVE_WINDOW_MS", 2)) *
        kMillisecond;
    const char* venv = std::getenv("LMK_SERVE_VERIFY");
    const bool verify = venv != nullptr && *venv != '\0' && *venv != '0';

    struct SweepWorkload {
      std::vector<Arrival> schedule;
      std::vector<DenseVector> pts;
      std::vector<ChordNode*> origins;
    };
    auto make_workload = [&](double mult, std::uint64_t wseed) {
      SweepWorkload w;
      OpenLoopConfig oc;
      oc.arrivals_per_sec = s.rate * mult;
      oc.topics = cfg.clusters;
      oc.zipf_s = s.zipf_s;
      oc.count = sweep_arrivals;
      oc.seed = wseed;
      w.schedule = open_loop_schedule(oc);
      w.pts.resize(w.schedule.size());
      std::vector<std::uint64_t> occurrence(cfg.clusters, 0);
      for (std::size_t i = 0; i < w.schedule.size(); ++i) {
        const std::uint32_t t = w.schedule[i].topic;
        const std::uint64_t salt = t * qpool + (occurrence[t]++ % qpool);
        w.pts[i] = stream.query_near(t, salt);
      }
      w.origins.resize(w.schedule.size());
      Rng org(wseed ^ 0x5e27e5e27e5e27eull);
      for (auto& o : w.origins) o = alive[org.below(alive.size())];
      return w;
    };

    struct RungNumbers {
      double p50 = 0, p99 = 0, p999 = 0;
      std::uint64_t qbytes = 0, qmsgs = 0;
      std::uint64_t hits = 0, probes = 0;
      std::uint64_t shed = 0, lost = 0, coalesced = 0;
      std::uint64_t digest = 1469598103934665603ULL;
    };
    auto run_rung = [&](const SweepWorkload& w, const ServeOptions& so) {
      platform.set_serve_options(so);
      const TrafficCounter q0 = platform.query_traffic();
      const std::uint64_t c0 = platform.coalesced_messages();
      RungNumbers r;
      std::vector<double> lat(w.schedule.size(), 0.0);
      std::vector<std::uint64_t> digests(w.schedule.size(), 0);
      std::size_t completed = 0;
      const SimTime t0 = sim.now();
      for (std::size_t i = 0; i < w.schedule.size(); ++i) {
        const auto at =
            t0 + static_cast<SimTime>(w.schedule[i].at_sec *
                                      static_cast<double>(kSecond));
        sim.schedule_at(at, [&, i] {
          platform.range_query(
              *w.origins[i], index.scheme_id(),
              index.mapper().map_unclamped(w.pts[i]), radius,
              ReplyMode::kAllMatches,
              [&, i](const IndexPlatform::QueryOutcome& o) {
                lat[i] = static_cast<double>(o.max_latency) /
                         static_cast<double>(kMillisecond);
                std::vector<std::uint64_t> ids(o.results);
                std::sort(ids.begin(), ids.end());
                std::uint64_t d = 1469598103934665603ULL;
                for (std::uint64_t id : ids) {
                  d = (d ^ id) * 1099511628211ULL;
                }
                digests[i] = d;
                r.shed += o.shed;
                r.lost += static_cast<std::uint64_t>(o.lost_subqueries);
                ++completed;
              });
        });
      }
      sim.run();
      LMK_CHECK(completed == w.schedule.size());
      if (const ServeState* st = platform.serve_state()) {
        const CacheStats cs = st->aggregate_cache_stats();
        r.hits = cs.hits;
        r.probes = cs.probes;
      }
      r.qbytes = platform.query_traffic().bytes - q0.bytes;
      r.qmsgs = platform.query_traffic().messages - q0.messages;
      r.coalesced = platform.coalesced_messages() - c0;
      for (std::uint64_t d : digests) {
        r.digest = (r.digest ^ d) * 1099511628211ULL;
      }
      r.p50 = percentile_nth(lat, 50);
      r.p99 = percentile_nth(lat, 99);
      r.p999 = percentile_nth(lat, 99.9);
      return r;
    };

    SweepWorkload eff = make_workload(1.0, s.seed + 31);
    RungNumbers a_off = run_rung(eff, ServeOptions{});
    ServeOptions eff_on;
    eff_on.cache_enabled = true;
    eff_on.cache_max_entries = 4096;
    eff_on.coalesce_window = window;
    eff_on.verify_hits = verify;
    RungNumbers a_on = run_rung(eff, eff_on);
    const bool digest_match = a_on.digest == a_off.digest;
    const double hit_rate =
        a_on.probes > 0 ? static_cast<double>(a_on.hits) /
                              static_cast<double>(a_on.probes)
                        : 0.0;
    const double wire_ratio =
        a_off.qbytes > 0 ? static_cast<double>(a_on.qbytes) /
                               static_cast<double>(a_off.qbytes)
                         : 1.0;
    LMK_CHECK_MSG(digest_match,
                  "serving tier changed query results (stale cache or "
                  "batching bug)");

    struct LadderRow {
      int mult;
      RungNumbers off, on;
    };
    LadderRow ladder[3] = {{1, {}, {}}, {2, {}, {}}, {4, {}, {}}};
    for (LadderRow& row : ladder) {
      SweepWorkload w = make_workload(row.mult,
                                      s.seed + 47 + static_cast<std::uint64_t>(
                                                        row.mult));
      ServeOptions base;
      base.service_time = service_us;
      row.off = run_rung(w, base);
      ServeOptions shed = base;
      shed.queue_limit = queue_limit;
      shed.backoff = 5 * kMillisecond;
      shed.max_retries = max_retries;
      row.on = run_rung(w, shed);
    }
    platform.set_serve_options(ServeOptions{});

    std::printf("serve efficiency: hit rate %.3f (%llu/%llu), wire %llu -> "
                "%llu bytes (ratio %.4f), msgs %llu -> %llu, coalesced "
                "%llu, digest %s\n",
                hit_rate, static_cast<unsigned long long>(a_on.hits),
                static_cast<unsigned long long>(a_on.probes),
                static_cast<unsigned long long>(a_off.qbytes),
                static_cast<unsigned long long>(a_on.qbytes), wire_ratio,
                static_cast<unsigned long long>(a_off.qmsgs),
                static_cast<unsigned long long>(a_on.qmsgs),
                static_cast<unsigned long long>(a_on.coalesced),
                digest_match ? "match" : "MISMATCH");
    for (const LadderRow& row : ladder) {
      std::printf("serve overload x%d: off p50/p99/p999 %.1f/%.1f/%.1f ms, "
                  "on %.1f/%.1f/%.1f ms, shed %llu, dropped %llu\n",
                  row.mult, row.off.p50, row.off.p99, row.off.p999,
                  row.on.p50, row.on.p99, row.on.p999,
                  static_cast<unsigned long long>(row.on.shed),
                  static_cast<unsigned long long>(row.on.lost));
    }

    int off = std::snprintf(
        serve_det, sizeof serve_det,
        ",\n    \"serve\": {\n"
        "      \"qpool\": %zu, \"arrivals\": %llu, \"service_us\": %lld, "
        "\"queue_limit\": %u, \"window_ms\": %lld, \"verify\": %s,\n"
        "      \"efficiency\": {\"digest_match\": %s, \"hit_rate\": %.6f, "
        "\"cache_hits\": %llu, \"cache_probes\": %llu, "
        "\"bytes_off\": %llu, \"bytes_on\": %llu, \"wire_ratio\": %.6f, "
        "\"messages_off\": %llu, \"messages_on\": %llu, "
        "\"coalesced\": %llu, \"p50_off\": %.6f, \"p50_on\": %.6f},\n"
        "      \"overload\": [",
        qpool, static_cast<unsigned long long>(sweep_arrivals),
        static_cast<long long>(service_us), queue_limit,
        static_cast<long long>(window / kMillisecond),
        verify ? "true" : "false", digest_match ? "true" : "false", hit_rate,
        static_cast<unsigned long long>(a_on.hits),
        static_cast<unsigned long long>(a_on.probes),
        static_cast<unsigned long long>(a_off.qbytes),
        static_cast<unsigned long long>(a_on.qbytes), wire_ratio,
        static_cast<unsigned long long>(a_off.qmsgs),
        static_cast<unsigned long long>(a_on.qmsgs),
        static_cast<unsigned long long>(a_on.coalesced), a_off.p50, a_on.p50);
    for (std::size_t i = 0; i < 3; ++i) {
      const LadderRow& row = ladder[i];
      off += std::snprintf(
          serve_det + off, sizeof serve_det - static_cast<std::size_t>(off),
          "%s\n        {\"mult\": %d, \"shed\": %llu, \"dropped\": %llu, "
          "\"p50_off\": %.6f, \"p99_off\": %.6f, \"p999_off\": %.6f, "
          "\"p50_on\": %.6f, \"p99_on\": %.6f, \"p999_on\": %.6f}",
          i == 0 ? "" : ",", row.mult,
          static_cast<unsigned long long>(row.on.shed),
          static_cast<unsigned long long>(row.on.lost), row.off.p50,
          row.off.p99, row.off.p999, row.on.p50, row.on.p99, row.on.p999);
    }
    off += std::snprintf(serve_det + off,
                         sizeof serve_det - static_cast<std::size_t>(off),
                         "\n      ]\n    }");
    LMK_CHECK(off > 0 &&
              static_cast<std::size_t>(off) < sizeof serve_det - 1);
  }

  std::printf("build: select %.3fs  topology %.3fs  stream-load %.3fs "
              "(%.0f objects/s, batches of 8192)\n",
              t_select, t_topology, t_build,
              t_build > 0 ? static_cast<double>(s.objects) / t_build : 0.0);
  std::printf("arena: high-water %llu bytes, reserved %llu bytes, "
              "%llu resets; store %llu bytes\n",
              static_cast<unsigned long long>(build_arena.high_water_bytes),
              static_cast<unsigned long long>(build_arena.reserved_bytes),
              static_cast<unsigned long long>(build_arena.resets),
              static_cast<unsigned long long>(store_bytes));
  std::printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f  p999 %.2f  "
              "max %.2f  (P2: p99 %.2f, p999 %.2f)\n",
              p50, p90, p99, p999, lat_max, p99_stream.value(),
              p999_stream.value());
  std::printf("first-reply ms: p50 %.2f  p99 %.2f\n", rp50, rp99);
  std::printf("queue: max depth %llu, mean depth %.3f over %llu samples, "
              "max active queries %zu\n",
              static_cast<unsigned long long>(depth_max), depth_mean.mean(),
              static_cast<unsigned long long>(depth_samples), max_active);
  std::printf("wire: %.0f query + %.0f result = %.0f bytes "
              "(%.1f per query); %.1f msgs, %.1f subqueries, "
              "%.1f index nodes per query\n",
              qbytes.sum(), rbytes.sum(), wire_total,
              wire_total / static_cast<double>(schedule.size()),
              qmsgs.mean(), subqueries.mean(), index_nodes.mean());
  std::printf("pool: %llu acquires, %llu hits, high water %llu\n",
              static_cast<unsigned long long>(pool.acquires),
              static_cast<unsigned long long>(pool.hits),
              static_cast<unsigned long long>(pool.high_water));
  std::printf("recall@10 (sampled, %zu queries): %.3f  (oracle %.3fs)\n",
              sampled.size(), recall_acc.mean(), t_oracle);
  std::printf("local store: %s, %.1f scanned per subquery\n",
              platform.local_store_name(index.scheme_id()),
              subqueries.sum() > 0 ? scanned.sum() / subqueries.sum() : 0.0);
  std::printf("query phase: %.3fs wall, %llu sim events, %llu incomplete\n",
              t_query, static_cast<unsigned long long>(sim_events),
              static_cast<unsigned long long>(incomplete));

  // The deterministic section is serialized once and embedded in both
  // output files, so the CI thread-count comparison diffs bytes.
  char det[8192];
  std::snprintf(
      det, sizeof det,
      "{\n"
      "    \"latency_ms\": {\"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, "
      "\"p999\": %.6f, \"max\": %.6f, \"p99_p2\": %.6f, "
      "\"p999_p2\": %.6f},\n"
      "    \"first_reply_ms\": {\"p50\": %.6f, \"p99\": %.6f},\n"
      "    \"queue\": {\"max_depth\": %llu, \"mean_depth\": %.6f, "
      "\"samples\": %llu, \"max_active_queries\": %zu},\n"
      "    \"wire\": {\"query_bytes\": %.0f, \"result_bytes\": %.0f, "
      "\"total_bytes\": %.0f, \"bytes_per_query\": %.3f, "
      "\"messages_per_query\": %.3f},\n"
      "    \"memory\": {\"arena_high_water\": %llu, "
      "\"arena_reserved\": %llu, \"store_bytes\": %llu, "
      "\"pool_high_water\": %llu, \"pool_acquires\": %llu, "
      "\"pool_hits\": %llu},\n"
      "    \"recall\": {\"sampled\": %zu, \"mean\": %.6f},\n"
      "    \"subqueries_per_query\": %.6f,\n"
      "    \"local_store\": \"%s\",\n"
      "    \"scanned_per_subquery\": %.6f,\n"
      "    \"incomplete\": %llu,\n"
      "    \"sim_events\": %llu%s\n"
      "  }",
      p50, p90, p99, p999, lat_max, p99_stream.value(), p999_stream.value(),
      rp50, rp99, static_cast<unsigned long long>(depth_max),
      depth_mean.mean(), static_cast<unsigned long long>(depth_samples),
      max_active, qbytes.sum(), rbytes.sum(), wire_total,
      wire_total / static_cast<double>(schedule.size()), qmsgs.mean(),
      static_cast<unsigned long long>(build_arena.high_water_bytes),
      static_cast<unsigned long long>(build_arena.reserved_bytes),
      static_cast<unsigned long long>(store_bytes),
      static_cast<unsigned long long>(pool.high_water),
      static_cast<unsigned long long>(pool.acquires),
      static_cast<unsigned long long>(pool.hits), sampled.size(),
      recall_acc.mean(), subqueries.mean(),
      platform.local_store_name(index.scheme_id()),
      subqueries.sum() > 0 ? scanned.sum() / subqueries.sum() : 0.0,
      static_cast<unsigned long long>(incomplete),
      static_cast<unsigned long long>(sim_events), serve_det);

  const char* out_path = std::getenv("LMK_FLAGSHIP_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_flagship.json";
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"scale\": {\"nodes\": %zu, \"objects\": %llu, \"dims\": %zu, "
      "\"landmarks\": %zu, \"arrivals\": %llu, \"rate\": %.3f, "
      "\"zipf_s\": %.3f, \"range_factor\": %.3f, \"sample\": %zu, "
      "\"recall_sample\": %zu, \"seed\": %llu},\n"
      "  \"deterministic\": %s,\n"
      // Allocation counters depend on the allocator and guard build, so
      // they live outside the deterministic section (which must stay
      // byte-identical across LMK_THREADS).
      "  \"alloc\": {\n"
      "    \"guard_enabled\": %s,\n"
      "    \"stream_build\": {\"allocs\": %llu, \"frees\": %llu, "
      "\"alloc_bytes\": %llu, \"free_bytes\": %llu},\n"
      "    \"open_loop_queries\": {\"allocs\": %llu, \"frees\": %llu, "
      "\"alloc_bytes\": %llu, \"free_bytes\": %llu}\n"
      "  },\n"
      "  \"wallclock\": {\n"
      "    \"select_seconds\": %.6f,\n"
      "    \"topology_seconds\": %.6f,\n"
      "    \"build_seconds\": %.6f,\n"
      "    \"objects_per_sec\": %.1f,\n"
      "    \"query_seconds\": %.6f,\n"
      "    \"sim_events_per_sec\": %.1f,\n"
      "    \"oracle_seconds\": %.6f,\n"
      "    \"threads\": %zu\n"
      "  }\n"
      "}\n",
      s.nodes, static_cast<unsigned long long>(s.objects), s.dims,
      s.landmarks, static_cast<unsigned long long>(s.arrivals), s.rate,
      s.zipf_s, s.range_factor, s.sample,
      std::min<std::size_t>(s.recall_sample, schedule.size()),
      static_cast<unsigned long long>(s.seed), det,
      alloc_guard_enabled() ? "true" : "false",
      static_cast<unsigned long long>(build_alloc.allocs),
      static_cast<unsigned long long>(build_alloc.frees),
      static_cast<unsigned long long>(build_alloc.alloc_bytes),
      static_cast<unsigned long long>(build_alloc.free_bytes),
      static_cast<unsigned long long>(query_alloc.allocs),
      static_cast<unsigned long long>(query_alloc.frees),
      static_cast<unsigned long long>(query_alloc.alloc_bytes),
      static_cast<unsigned long long>(query_alloc.free_bytes),
      t_select, t_topology,
      t_build, t_build > 0 ? static_cast<double>(s.objects) / t_build : 0.0,
      t_query,
      t_query > 0 ? static_cast<double>(sim_events) / t_query : 0.0,
      t_oracle, thread_count());
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  const char* det_path = std::getenv("LMK_FLAGSHIP_DET_OUT");
  if (det_path != nullptr && *det_path != '\0') {
    std::FILE* df = std::fopen(det_path, "w");
    if (df == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", det_path);
      return 1;
    }
    std::fprintf(df, "%s\n", det);
    std::fclose(df);
    std::printf("wrote %s\n", det_path);
  }
  return 0;
}

}  // namespace
}  // namespace lmk::bench

int main() { return lmk::bench::run(); }
