// Local-store backend bake-off: the flagship-smoke-scale workload
// (object count, dimensionality and landmark count of bench_flagship's
// smoke configuration) run once per LocalStore backend — sorted order
// indices (baseline), HNSW graph, pivot table — with everything else
// identical: same dataset, same mapper, same topology seeds, same query
// schedule, same ground truth.
//
// Queries run at a selective radius (the early rounds of the paper's
// radius-expansion search) — the per-node regime the sub-linear stores
// target. The overlay defaults to a few fat peers so each per-node
// store is large enough for asymptotics to show; the routing layer is
// not what this ablation measures.
//
// Two recall figures per backend:
//   recall@10 vs the brute-force 10-NN — a property of the query
//     radius, identical for every exact backend (bench_flagship covers
//     the high-coverage radius); and
//   recall@10 vs the exact backends' refined top-10 at the same radius
//     — the store-ablation metric (standard ANN-benchmark practice):
//     it isolates what the approximate store loses. The HNSW gate is
//     on this one.
//
// Reported per backend: scanned candidates/subquery (the per-node scan
// cost the sub-linear stores attack), refinement candidates/subquery,
// both recalls, store memory, rebuild counters, and wall-clock q/s.
// The deterministic section (LMK_ABL_DET_OUT) is byte-identical at any
// LMK_THREADS; CI runs the bench at 1 and 8 threads and compares.
//
// Cross-checks (always on): the pivot backend must reproduce the sorted
// baseline's refined top-10 id-for-id on every query — both are exact.
// Under LMK_ABL_ENFORCE=1 the bench additionally fails unless HNSW and
// pivot each cut scanned/subquery >= 5x vs sorted and HNSW holds
// recall@10 >= 0.95 vs the exact results.
//
// The defaults (m=5, ef_construction=128, ef_search=5) come from a
// tuning grid at the default seed: m <= 4 leaves weakly linked cluster
// components (recall vs exact saturates at 0.938 regardless of beam
// width — the misses are reachability, not ranking), m=5 connects them
// (0.975) and ef_search=5 keeps the beam 5.7x cheaper than the sorted
// scan. Recall varies with the landmark draw (other seeds land in
// 0.86-0.98); the enforce gates are a contract at the pinned default
// seed, where the run is byte-identical, not across seeds.
//
// Knobs: LMK_ABL_NODES, LMK_ABL_OBJECTS, LMK_ABL_DIMS, LMK_ABL_QUERIES,
// LMK_ABL_LANDMARKS, LMK_ABL_RANGE, LMK_ABL_EF, LMK_ABL_M, LMK_ABL_EFC,
// LMK_ABL_PIVOTS, LMK_ABL_DEV, LMK_SAMPLE, LMK_SEED; outputs
// LMK_ABL_OUT / LMK_ABL_DET_OUT.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace lmk::bench {
namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

struct CellResult {
  LocalStoreKind kind = LocalStoreKind::kSorted;
  QueryStats stats;
  std::uint64_t store_bytes = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t rebuilt_entries = 0;
  Accumulator recall_vs_exact;  ///< vs the sorted baseline's top-10
  double seconds = 0;

  [[nodiscard]] double scanned_per_subquery() const {
    return stats.subqueries.sum() > 0
               ? stats.scanned.sum() / stats.subqueries.sum()
               : 0.0;
  }
  [[nodiscard]] double candidates_per_subquery() const {
    return stats.subqueries.sum() > 0
               ? stats.candidates.sum() / stats.subqueries.sum()
               : 0.0;
  }
};

int run() {
  const bool full = full_scale();
  Scale s;  // flagship-smoke geometry by default (20k x 16d, 10 landmarks)
  s.nodes = env_size("LMK_ABL_NODES", full ? 64 : 4);
  s.objects = env_size("LMK_ABL_OBJECTS", full ? 1000000 : 20000);
  s.queries = env_size("LMK_ABL_QUERIES", full ? 500 : 80);
  s.sample = env_size("LMK_SAMPLE", full ? 2000 : 400);
  s.docs = 0;
  s.seed = env_size("LMK_SEED", 42);
  const std::size_t dims = env_size("LMK_ABL_DIMS", full ? 100 : 16);
  const std::size_t landmarks = env_size("LMK_ABL_LANDMARKS", 10);
  const double range_factor = env_double("LMK_ABL_RANGE", 0.02);
  const double deviation = env_double("LMK_ABL_DEV", 20.0);
  const std::size_t ef_search = env_size("LMK_ABL_EF", 5);
  const std::size_t hnsw_m = env_size("LMK_ABL_M", 5);
  const std::size_t ef_construction = env_size("LMK_ABL_EFC", 128);
  const std::size_t pivots = env_size("LMK_ABL_PIVOTS", 8);
  const bool enforce = env_size("LMK_ABL_ENFORCE", 0) != 0;

  std::printf("# bench_ablation_localstore  (nodes=%zu objects=%zu "
              "dims=%zu landmarks=%zu queries=%zu range=%.3f ef=%zu "
              "m=%zu efc=%zu pivots=%zu seed=%llu%s)\n",
              s.nodes, s.objects, dims, landmarks, s.queries, range_factor,
              ef_search, hnsw_m, ef_construction, pivots,
              static_cast<unsigned long long>(s.seed),
              full ? ", FULL FLAGSHIP SCALE" : "");

  // Shared workload: flagship-smoke geometry (the synthetic stream's
  // clustered distribution at 16 dims), one dataset / query set / truth
  // table for all three cells.
  SyntheticConfig cfg;
  cfg.objects = s.objects;
  cfg.dims = dims;
  cfg.range_lo = 0;
  cfg.range_hi = 100;
  cfg.clusters = 10;
  cfg.deviation = deviation;
  Rng rng(s.seed);
  SyntheticDataset data = generate_clustered(cfg, rng);
  std::vector<DenseVector> queries =
      generate_queries(cfg, data, s.queries, rng);
  const double max_dist = max_theoretical_distance(cfg);
  const double radius = range_factor * max_dist;
  L2Space space;

  auto dataset = share(std::move(data.points));
  auto truth = share(SimilarityExperiment<L2Space>::compute_truth(
      space, *dataset, queries, 10));
  auto queries_h = share(std::move(queries));

  auto make_mapper = [&] {
    Rng mrng(s.seed + 5);
    auto idx = mrng.sample_indices(dataset->size(),
                                   std::min(s.sample, dataset->size()));
    std::vector<DenseVector> sample_pts;
    sample_pts.reserve(idx.size());
    for (auto i : idx) sample_pts.push_back((*dataset)[i]);
    std::vector<DenseVector> lms = kmeans_dense(
        std::span<const DenseVector>(sample_pts), landmarks, mrng);
    return LandmarkMapper<L2Space>(space, std::move(lms),
                                   uniform_boundary(landmarks, 0, max_dist));
  };

  const LocalStoreKind kinds[] = {LocalStoreKind::kSorted,
                                  LocalStoreKind::kHnsw,
                                  LocalStoreKind::kPivot};
  // The sorted baseline's per-query refined top-10: the reference for
  // recall_vs_exact and for the pivot id-for-id cross-check.
  std::vector<std::vector<std::uint64_t>> reference(queries_h->size());
  std::vector<CellResult> cells;
  for (LocalStoreKind kind : kinds) {
    ExperimentConfig ecfg;
    ecfg.nodes = s.nodes;
    ecfg.seed = s.seed;
    ecfg.local_store.kind = kind;
    ecfg.local_store.hnsw_ef_search = ef_search;
    ecfg.local_store.hnsw_m = hnsw_m;
    ecfg.local_store.hnsw_ef_construction = ef_construction;
    ecfg.local_store.pivots = pivots;
    SimilarityExperiment<L2Space> exp(ecfg, space, dataset, make_mapper(),
                                      "abl-localstore");
    exp.set_queries(queries_h, truth);
    CellResult cell;
    cell.kind = kind;
    // One selective-radius range query at a time (bench_ablation_knn
    // idiom); refine to top-10 by true distance at the querier, as the
    // paper's search does.
    std::vector<ChordNode*> origins = exp.ring().alive_nodes();
    auto object = [&dataset](std::uint64_t id) -> const DenseVector& {
      return (*dataset)[static_cast<std::size_t>(id)];
    };
    Rng qrng(s.seed + 7);
    // Local stores build lazily on the first probe after a mutation;
    // one untimed warm-up query pays those builds so q/s measures
    // probes, not construction. Results are discarded and the origin
    // draw does not come from qrng, so the recorded schedule is
    // identical with or without the warm-up.
    {
      std::optional<IndexPlatform::QueryOutcome> warm;
      exp.index().range_query(*origins[0], (*queries_h)[0], radius,
                              ReplyMode::kTopK,
                              [&warm](const auto& o) { warm = o; });
      exp.sim().run();
    }
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < queries_h->size(); ++i) {
      std::optional<IndexPlatform::QueryOutcome> got;
      exp.index().range_query(*origins[qrng.below(origins.size())],
                              (*queries_h)[i], radius, ReplyMode::kTopK,
                              [&got](const auto& o) { got = o; });
      exp.sim().run();
      std::vector<std::uint64_t> retrieved = exp.index().refine_knn(
          (*queries_h)[i], got->results, object, 10);
      cell.stats.add(*got, recall((*truth)[i], retrieved));
      if (kind == LocalStoreKind::kSorted) {
        cell.recall_vs_exact.add(1.0);
        reference[i] = std::move(retrieved);
      } else {
        std::size_t overlap = 0;
        for (std::uint64_t id : retrieved) {
          for (std::uint64_t ref : reference[i]) {
            if (id == ref) {
              ++overlap;
              break;
            }
          }
        }
        cell.recall_vs_exact.add(
            reference[i].empty()
                ? 1.0
                : static_cast<double>(overlap) /
                      static_cast<double>(reference[i].size()));
        if (kind == LocalStoreKind::kPivot) {
          // Exactness: identical pruning-free semantics, so the refined
          // top-10 must match the sorted baseline id-for-id.
          LMK_CHECK(retrieved == reference[i]);
        }
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    cell.seconds = std::chrono::duration<double>(t1 - t0).count();
    cell.store_bytes = exp.platform().store_bytes();
    cell.rebuilds = exp.platform().local_store_stats().rebuilds;
    cell.rebuilt_entries = exp.platform().local_store_stats().rebuilt_entries;
    cells.push_back(cell);
    std::printf("%-6s  scanned/subq %8.1f  cand/subq %6.1f  "
                "recall(truth) %.3f  recall(exact) %.3f  store %8llu B  "
                "rebuilds %llu  %.2f q/s\n",
                local_store_kind_name(kind), cell.scanned_per_subquery(),
                cell.candidates_per_subquery(), cell.stats.recall.mean(),
                cell.recall_vs_exact.mean(),
                static_cast<unsigned long long>(cell.store_bytes),
                static_cast<unsigned long long>(cell.rebuilds),
                cell.seconds > 0
                    ? static_cast<double>(s.queries) / cell.seconds
                    : 0.0);
  }
  const CellResult& sorted = cells[0];
  const CellResult& hnsw = cells[1];
  const CellResult& pivot = cells[2];

  // Aggregate exactness cross-checks on top of the per-query id-for-id
  // comparison inside the loop: every outcome statistic must match the
  // sorted baseline bit-for-bit.
  LMK_CHECK(pivot.stats.recall.mean() == sorted.stats.recall.mean());
  LMK_CHECK(pivot.stats.candidates.sum() == sorted.stats.candidates.sum());
  LMK_CHECK(pivot.stats.result_bytes.sum() ==
            sorted.stats.result_bytes.sum());
  LMK_CHECK(pivot.stats.hops.sum() == sorted.stats.hops.sum());
  LMK_CHECK(pivot.recall_vs_exact.mean() == 1.0);

  const double hnsw_reduction =
      hnsw.scanned_per_subquery() > 0
          ? sorted.scanned_per_subquery() / hnsw.scanned_per_subquery()
          : 0.0;
  const double pivot_reduction =
      pivot.scanned_per_subquery() > 0
          ? sorted.scanned_per_subquery() / pivot.scanned_per_subquery()
          : 0.0;
  std::printf("reduction vs sorted: hnsw %.2fx  pivot %.2fx  "
              "(hnsw recall vs exact %.3f, pivot exact)\n",
              hnsw_reduction, pivot_reduction,
              hnsw.recall_vs_exact.mean());

  char det[2048];
  std::size_t at = 0;
  at += static_cast<std::size_t>(std::snprintf(
      det + at, sizeof det - at, "{\n    \"backends\": {\n"));
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellResult& cell = cells[c];
    at += static_cast<std::size_t>(std::snprintf(
        det + at, sizeof det - at,
        "      \"%s\": {\"scanned_per_subquery\": %.6f, "
        "\"candidates_per_subquery\": %.6f, \"recall_truth\": %.6f, "
        "\"recall_exact\": %.6f, \"result_bytes\": %.0f, "
        "\"store_bytes\": %llu, \"rebuilds\": %llu, "
        "\"rebuilt_entries\": %llu}%s\n",
        local_store_kind_name(cell.kind), cell.scanned_per_subquery(),
        cell.candidates_per_subquery(), cell.stats.recall.mean(),
        cell.recall_vs_exact.mean(), cell.stats.result_bytes.sum(),
        static_cast<unsigned long long>(cell.store_bytes),
        static_cast<unsigned long long>(cell.rebuilds),
        static_cast<unsigned long long>(cell.rebuilt_entries),
        c + 1 < cells.size() ? "," : ""));
  }
  at += static_cast<std::size_t>(std::snprintf(
      det + at, sizeof det - at,
      "    },\n"
      "    \"reduction_vs_sorted\": {\"hnsw\": %.6f, \"pivot\": %.6f}\n"
      "  }",
      hnsw_reduction, pivot_reduction));
  LMK_CHECK(at < sizeof det);

  const char* out_path = std::getenv("LMK_ABL_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_ablation_localstore.json";
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"scale\": {\"nodes\": %zu, \"objects\": %zu, \"dims\": %zu, "
      "\"landmarks\": %zu, \"queries\": %zu, \"range_factor\": %.4f, "
      "\"deviation\": %.1f, \"ef_search\": %zu, \"hnsw_m\": %zu, "
      "\"ef_construction\": %zu, \"pivots\": %zu, \"seed\": %llu},\n"
      "  \"deterministic\": %s,\n"
      "  \"wallclock\": {\"sorted_qps\": %.2f, \"hnsw_qps\": %.2f, "
      "\"pivot_qps\": %.2f, \"threads\": %zu}\n"
      "}\n",
      s.nodes, s.objects, dims, landmarks, s.queries, range_factor,
      deviation, ef_search, hnsw_m, ef_construction, pivots,
      static_cast<unsigned long long>(s.seed), det,
      sorted.seconds > 0 ? static_cast<double>(s.queries) / sorted.seconds
                         : 0.0,
      hnsw.seconds > 0 ? static_cast<double>(s.queries) / hnsw.seconds : 0.0,
      pivot.seconds > 0 ? static_cast<double>(s.queries) / pivot.seconds
                        : 0.0,
      thread_count());
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  const char* det_path = std::getenv("LMK_ABL_DET_OUT");
  if (det_path != nullptr && *det_path != '\0') {
    std::FILE* df = std::fopen(det_path, "w");
    if (df == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", det_path);
      return 1;
    }
    std::fprintf(df, "%s\n", det);
    std::fclose(df);
    std::printf("wrote %s\n", det_path);
  }

  if (enforce) {
    int failures = 0;
    if (hnsw_reduction < 5.0) {
      std::fprintf(stderr,
                   "ENFORCE: hnsw scanned reduction %.2fx < 5x\n",
                   hnsw_reduction);
      ++failures;
    }
    if (pivot_reduction < 5.0) {
      std::fprintf(stderr,
                   "ENFORCE: pivot scanned reduction %.2fx < 5x\n",
                   pivot_reduction);
      ++failures;
    }
    if (hnsw.recall_vs_exact.mean() < 0.95) {
      std::fprintf(stderr, "ENFORCE: hnsw recall vs exact %.3f < 0.95\n",
                   hnsw.recall_vs_exact.mean());
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("enforce: all local-store gates passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace lmk::bench

int main() { return lmk::bench::run(); }
