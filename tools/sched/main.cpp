// lmk-sched — schedule & fault exploration gate (DESIGN.md "Schedule
// exploration & fault injection").
//
//   lmk-sched explore [--out FILE]   seed-swarm exploration of the
//                                    canonical churn scenario; exit 1
//                                    and write a minimized .sched
//                                    reproducer when a plan breaks an
//                                    invariant past recovery
//   lmk-sched replay FILE            re-run one .sched plan; exit 1
//                                    when it (still) fails the audit
//
// With the LMK_SCHED_REPLAY environment variable set and no arguments,
// behaves as `replay $LMK_SCHED_REPLAY` — the one-liner for driving a
// committed reproducer from a test harness or CI.
//
// Scenario / swarm knobs (all optional, integers):
//   LMK_SCHED_HOSTS      ring size               (default 24)
//   LMK_SCHED_ENTRIES    indexed objects         (default 240)
//   LMK_SCHED_PLANS      seed-swarm size         (default 16)
//   LMK_SCHED_SEED       first plan seed         (default 1)
//   LMK_SCHED_DIRECTIVES directives per plan     (default 8)
//   LMK_SCHED_SHRINK     shrink run budget       (default 64)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "audit/explorer.hpp"

namespace {

using lmk::FaultPlan;
using lmk::audit::ExploreOptions;
using lmk::audit::ExploreResult;
using lmk::audit::RunResult;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

ExploreOptions options_from_env() {
  ExploreOptions opts;
  opts.hosts = static_cast<std::size_t>(env_u64("LMK_SCHED_HOSTS", 24));
  opts.entries = static_cast<std::size_t>(env_u64("LMK_SCHED_ENTRIES", 240));
  opts.plans = static_cast<std::size_t>(env_u64("LMK_SCHED_PLANS", 16));
  opts.swarm_seed = env_u64("LMK_SCHED_SEED", 1);
  opts.directives =
      static_cast<std::size_t>(env_u64("LMK_SCHED_DIRECTIVES", 8));
  opts.shrink_budget = static_cast<std::size_t>(env_u64("LMK_SCHED_SHRINK", 64));
  return opts;
}

void print_report(const RunResult& run) {
  std::printf("faults: sends=%llu dropped=%llu duplicated=%llu delayed=%llu "
              "reordered=%llu crashes=%llu rejoins=%llu\n",
              static_cast<unsigned long long>(run.stats.sends),
              static_cast<unsigned long long>(run.stats.dropped),
              static_cast<unsigned long long>(run.stats.duplicated),
              static_cast<unsigned long long>(run.stats.delayed),
              static_cast<unsigned long long>(run.stats.reordered),
              static_cast<unsigned long long>(run.stats.crashes),
              static_cast<unsigned long long>(run.stats.rejoins));
  std::printf("%s\n", run.report.summary().c_str());
}

int cmd_explore(const std::string& out_path) {
  const ExploreOptions opts = options_from_env();
  const ExploreResult result = lmk::audit::explore(opts);
  std::printf("lmk-sched explore: %zu scenario runs, baseline sends=%llu\n",
              result.runs,
              static_cast<unsigned long long>(result.baseline_sends));
  if (result.baseline_failed) {
    std::printf("FAIL: fault-free baseline violates invariants: %s\n",
                result.violation.c_str());
    return 1;
  }
  if (!result.found_failure) {
    std::printf("OK: %zu fault plans survived recovery (swarm seeds %llu..%llu)\n",
                opts.plans,
                static_cast<unsigned long long>(opts.swarm_seed),
                static_cast<unsigned long long>(opts.swarm_seed + opts.plans - 1));
    return 0;
  }
  std::printf("FAIL: plan seed %llu breaks recovery: %s\n",
              static_cast<unsigned long long>(result.failing_seed),
              result.violation.c_str());
  std::printf("original plan (%zu directives), minimized to %zu:\n%s",
              result.failing_plan.directives.size(),
              result.minimized.directives.size(),
              result.minimized.to_text().c_str());
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "lmk-sched: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << result.minimized.to_text();
  std::printf("minimized reproducer written to %s (replay with "
              "`lmk-sched replay %s`)\n",
              out_path.c_str(), out_path.c_str());
  return 1;
}

int cmd_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lmk-sched: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  FaultPlan plan;
  std::string error;
  if (!FaultPlan::parse(text.str(), &plan, &error)) {
    std::fprintf(stderr, "lmk-sched: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  const RunResult run = lmk::audit::run_scenario(options_from_env(), plan);
  std::printf("lmk-sched replay %s: %s\n", path.c_str(),
              run.failed ? "FAIL (invariants violated past recovery)" : "OK");
  print_report(run);
  return run.failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    const char* replay = std::getenv("LMK_SCHED_REPLAY");
    if (replay != nullptr && *replay != '\0') return cmd_replay(replay);
    std::fprintf(stderr,
                 "usage: lmk-sched explore [--out FILE] | lmk-sched replay "
                 "FILE\n   or: LMK_SCHED_REPLAY=FILE lmk-sched\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "explore") {
    std::string out_path = "minimized.sched";
    for (int i = 2; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    }
    return cmd_explore(out_path);
  }
  if (cmd == "replay" && argc >= 3) return cmd_replay(argv[2]);
  std::fprintf(stderr, "lmk-sched: unknown command '%s'\n", cmd.c_str());
  return 2;
}
