// lmk-lint: repo-specific determinism lint for the simulator core.
//
// The reproduction's experimental claims rest on bit-identical,
// seed-reproducible simulation runs (DESIGN.md "Correctness tooling").
// This lint statically enforces the repo rules that protect that
// property:
//
//   banned-source        No environment-seeded randomness
//                        (std::random_device, std::rand, time(), ...)
//                        outside src/common/rng and the bench harness.
//                        All randomness must flow from a seeded
//                        lmk::Rng.
//
//   wall-clock           No wall-clock reads (system_clock,
//                        steady_clock, high_resolution_clock,
//                        clock_gettime, gettimeofday, timespec_get) in
//                        src/: simulated code must use the virtual
//                        clock (Simulator::now()). The bench harness is
//                        exempt (throughput timing).
//
//   banned-abort         No direct std::abort / std::exit / _Exit /
//                        quick_exit call sites outside
//                        src/common/check.hpp: process termination must
//                        route through LMK_CHECK / LMK_CHECK_MSG so
//                        every fatal path prints expr/file/line
//                        diagnostics.
//
//   unordered-iteration  No iteration over std::unordered_map /
//                        std::unordered_set: iteration order is
//                        implementation-defined, so anything it feeds —
//                        an RNG draw, an accumulation, an ordered
//                        output — silently depends on it. Flagged sites
//                        must switch to a sorted/ordered container or
//                        carry an explicit justification comment
//                        `// lmk-lint: iteration-order-independent` on
//                        the same or the preceding line.
//
//   pointer-key          No pointer-keyed std::map / std::set: the
//                        ordering is the allocation order of the
//                        pointees, which varies run to run (ASLR, heap
//                        layout). Key by a stable identifier instead.
//
//   pointer-key-unordered  Pointer-keyed std::unordered_map /
//                        std::unordered_set: hash lookups are
//                        deterministic, but any iteration leaks
//                        allocation order. Every declaration must carry
//                        `// lmk-lint: allow(pointer-key-unordered)`
//                        plus a reason asserting the container is
//                        lookup-only (or every walk over it is
//                        order-independent).
//
//   mutable-global       Mutable state with static storage duration:
//                        `static` / `thread_local` variable
//                        declarations (any scope) and keywordless
//                        namespace-scope variable definitions. Sweep
//                        cells run concurrently on the thread pool, so
//                        hidden globals either race or make one cell's
//                        result depend on which cells ran before it.
//                        Every site must be const/constexpr or carry
//                        `// lmk-lint: allow(mutable-global) <reason>`
//                        asserting why the state is benign (per-thread,
//                        pool plumbing guarded by a mutex, ...).
//
// Allocation-discipline rules. The flagship perf contract (DESIGN.md
// "Allocation discipline") is that the simulation engine's steady state
// allocates nothing: arenas and recycle pools absorb all churn. These
// rules police the code paths that contract depends on. They apply
// only inside *hot-path regions*: whole files placed on the driver's
// curated list (FileOptions.hot_path — the event engine, EventClosure,
// the simulator loop), or regions delimited in any file by a
// `// lmk-hot-path` comment and closed by `// lmk-hot-path-end`
// (arena-escape applies file-wide; see below).
//
//   hot-alloc            Owning heap allocation on a hot path: `new`
//                        (placement new is exempt), make_unique /
//                        make_shared, std::string construction, and
//                        growth calls (push_back / emplace_back /
//                        emplace) on a receiver with no `.reserve(`
//                        call anywhere in the file or its companion
//                        header. Preallocate, use the arena, or justify
//                        with `// lmk-lint: allow(hot-alloc) <reason>`
//                        (capacity-warmup growth that amortizes to zero
//                        is the expected justification).
//
//   hot-std-function     std::function constructed on a hot path:
//                        type-erasure through an owning, possibly
//                        heap-backed closure per assignment. Reference
//                        parameters (`const std::function<...>&`) are
//                        exempt — they do not construct. Use
//                        EventClosure / a template parameter, or
//                        justify with
//                        `// lmk-lint: allow(hot-std-function)`.
//
// Handler-discipline rules (the schedule-exploration gate's static
// half, DESIGN.md "Schedule exploration & fault injection"). The
// lmk-sched explorer can only perturb what flows through
// Network::send; code that runs *inside a message delivery* must
// therefore behave like a real peer — no god's-eye reads of other
// nodes, no shared RNG streams, no direct simulator scheduling. These
// rules apply inside *handler regions*: whole files on the driver's
// curated list (FileOptions.handler_file — the query routers and the
// load balancer), or regions delimited in any file by a
// `// lmk-handler` comment and closed by `// lmk-handler-end` (the
// Chord protocol section of src/chord/ring.cpp).
//
//   cross-node-touch     A handler calls a ring-oracle entry point
//                        (oracle_successor / oracle_predecessor /
//                        alive_nodes / alive_count / bootstrap /
//                        fix_neighbors / fix_fingers /
//                        refresh_all_fingers): global state a real
//                        node cannot see. Route the information
//                        through messages (Network::send / Ring::rpc),
//                        or justify with
//                        `// lmk-lint: allow(cross-node-touch)` — the
//                        expected justification is an explicitly
//                        modeled out-of-band control plane.
//
//   unforked-rng         A handler draws (next / below / uniform /
//                        normal / exponential / shuffle /
//                        sample_indices) from a shared member Rng
//                        (receiver spelled `*rng*_`): the stream's
//                        draw order then depends on message delivery
//                        order across nodes, so one reordered message
//                        decorrelates every later draw. fork() a
//                        node-local stream at setup time and draw from
//                        that (fork() itself is exempt), or justify
//                        with `// lmk-lint: allow(unforked-rng)`.
//
//   raw-schedule         A handler schedules directly on the
//                        simulator (schedule_after / schedule_at):
//                        the event bypasses Network::send, so no
//                        latency model applies and the lmk-sched
//                        fault injector can never drop, delay or
//                        reorder it. Inter-node effects must be
//                        messages; node-local timers need a
//                        justification:
//                        `// lmk-lint: allow(raw-schedule) <reason>`.
//
//   arena-escape         Arena-allocated memory escaping the
//                        allocating scope (file-wide, not only hot
//                        regions): `return`ing the result of
//                        allocate / allocate_span / guarded_span,
//                        assigning it to a member (`foo_ = ...`), or
//                        storing an EntryView in a member / container
//                        element. Arena reset() recycles the bytes and
//                        EntryStore mutation invalidates views, so an
//                        escaped handle is a use-after-reset waiting to
//                        happen. Copy out, or justify with
//                        `// lmk-lint: allow(arena-escape) <reason>`.
//
// Any rule can be suppressed for one line with
// `// lmk-lint: allow(<rule>) <reason>` — reserved for sites reviewed
// to be safe; prefer fixing.
//
// The analysis is a file-local, comment/string-aware token scan — not a
// full parser. Each file is scanned once into a token-position index
// shared by every rule family (see ScanIndex in lint_rules.cpp); rules
// then walk only their own tokens' positions. Known limits (documented,
// acceptable for a lint that gates CI): type aliases of unordered
// containers are not traced, and a range expression must be a plain
// variable (or `var.begin()`) declared in the same file to be
// recognized.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lmk::lint {

/// One lint violation.
struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Per-file exemptions and context, derived from the path by the driver.
struct FileOptions {
  /// Part of src/common/rng: the one module allowed to name raw entropy
  /// sources (it wraps them behind the seeded Rng).
  bool rng_module = false;
  /// Bench harness: allowed to read wall clocks for throughput timing.
  bool bench = false;
  /// src/common/check.hpp: the one module allowed to terminate the
  /// process (LMK_CHECK's [[noreturn]] failure paths call std::abort).
  bool check_module = false;
  /// Whole file is a hot-path region (driver's curated list: the event
  /// engine, EventClosure, the simulator loop). The allocation rules
  /// apply everywhere in it, no markers needed.
  bool hot_path = false;
  /// src/common/arena.*: defines the allocation entry points the
  /// arena-escape rule keys on, so it is exempt from that rule.
  bool arena_module = false;
  /// Whole file is a message-handler region (driver's curated list:
  /// the query routers, the load balancer). The handler-discipline
  /// rules apply everywhere in it, no markers needed.
  bool handler_file = false;
  /// tools/lint itself: its sources quote the marker strings and
  /// banned tokens they scan for, so region collection and the
  /// wall-clock rule (the --stats harness times itself) are disabled.
  /// Every token-level rule still applies.
  bool lint_module = false;
  /// Companion-header text (X.hpp next to X.cpp): member variables are
  /// declared there, so its unordered-container declarations are folded
  /// into the iteration analysis of the .cpp, and its reserve() calls
  /// into the hot-alloc growth analysis.
  std::string_view companion_decls;
};

/// Cumulative per-rule wall time over lint_source calls (--stats).
struct LintStats {
  /// (rule name, seconds), in first-seen order; "scan-index" is the
  /// shared single-pass tokenization every rule family reads from.
  std::vector<std::pair<std::string, double>> rule_seconds;

  void add(std::string_view rule, double seconds);
};

/// Replace comments, string literals and char literals with spaces
/// (newlines preserved, so offsets and line numbers survive). Exposed
/// for tests.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view src);

/// Names of variables declared in `src` with an unordered container
/// type. Exposed for tests.
[[nodiscard]] std::vector<std::string> collect_unordered_vars(
    std::string_view stripped);

/// Lint one translation unit / header. `path` is used only for
/// reporting; `content` is the file text. When `stats` is non-null,
/// per-rule wall time is accumulated into it.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view content,
                                               const FileOptions& opts = {},
                                               LintStats* stats = nullptr);

}  // namespace lmk::lint
