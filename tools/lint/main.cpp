// lmk-lint driver: walks source trees (or the files named by a
// compile_commands.json) and applies the determinism rules in
// lint_rules.hpp. Exit status 0 = clean, 1 = findings, 2 = usage/IO
// error.
//
// Usage:
//   lmk-lint <dir-or-file>...            # file walk
//   lmk-lint --compdb build/compile_commands.json [<filter-prefix>...]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace fs = std::filesystem;

namespace {

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

lmk::lint::FileOptions options_for(const std::string& path) {
  lmk::lint::FileOptions opts;
  opts.rng_module = path.find("common/rng") != std::string::npos;
  opts.bench = path.find("bench/") != std::string::npos ||
               path.rfind("bench_", 0) == 0;
  opts.check_module = path.find("common/check.hpp") != std::string::npos;
  // Curated whole-file hot-path list: the event engine loop, closure
  // dispatch and the simulator drive every event — the allocation rules
  // apply to every line. Other files opt regions in with
  // `// lmk-hot-path` markers (e.g. on_solve in index_platform.cpp).
  for (const char* hot : {"sim/event_queue", "sim/event_closure",
                          "sim/simulator"}) {
    if (path.find(hot) != std::string::npos) opts.hot_path = true;
  }
  opts.arena_module = path.find("common/arena") != std::string::npos;
  // Curated whole-file handler list: every line of the query routers
  // and the load balancer runs inside (or directly feeds) message
  // deliveries, so the handler-discipline rules apply throughout. The
  // Chord ring opts its protocol section in with `// lmk-handler`
  // markers instead (its oracle half IS the god's-eye repair code the
  // rules protect against).
  for (const char* handler : {"routing/router", "routing/naive",
                              "balance/migration"}) {
    if (path.find(handler) != std::string::npos) opts.handler_file = true;
  }
  // The lint's own sources quote the marker strings and banned tokens
  // they scan for, and the --stats harness times itself.
  opts.lint_module = path.find("tools/lint") != std::string::npos;
  return opts;
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Minimal extraction of the "file" entries of a compile_commands.json
/// (the format is stable enough that a full JSON parser is overkill for
/// a lint driver with no dependencies).
std::vector<std::string> compdb_files(const std::string& json) {
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    std::size_t colon = json.find(':', pos + key.size());
    if (colon == std::string::npos) break;
    std::size_t q1 = json.find('"', colon + 1);
    if (q1 == std::string::npos) break;
    std::size_t q2 = json.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    files.push_back(json.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool want_stats = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--stats") {
      want_stats = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (args.empty()) {
    std::cerr << "usage: lmk-lint [--stats] <dir-or-file>... | "
                 "lmk-lint [--stats] --compdb <compile_commands.json> "
                 "[<prefix>...]\n";
    return 2;
  }

  std::set<std::string> targets;  // sorted, deduplicated
  if (args[0] == "--compdb") {
    if (args.size() < 2) {
      std::cerr << "lmk-lint: --compdb requires a path\n";
      return 2;
    }
    std::string json;
    if (!read_file(args[1], &json)) {
      std::cerr << "lmk-lint: cannot read " << args[1] << "\n";
      return 2;
    }
    std::vector<std::string> prefixes(args.begin() + 2, args.end());
    for (const std::string& f : compdb_files(json)) {
      if (!prefixes.empty()) {
        bool keep = false;
        for (const std::string& p : prefixes) {
          if (f.find(p) != std::string::npos) keep = true;
        }
        if (!keep) continue;
      }
      targets.insert(f);
    }
  } else {
    for (const std::string& a : args) {
      fs::path p(a);
      std::error_code ec;
      if (fs::is_directory(p, ec)) {
        for (const auto& entry : fs::recursive_directory_iterator(p)) {
          if (entry.is_regular_file() && is_source_file(entry.path())) {
            targets.insert(entry.path().string());
          }
        }
      } else if (fs::is_regular_file(p, ec)) {
        targets.insert(p.string());
      } else {
        std::cerr << "lmk-lint: no such file or directory: " << a << "\n";
        return 2;
      }
    }
  }

  std::size_t files_checked = 0;
  std::vector<lmk::lint::Finding> all;
  lmk::lint::LintStats stats;
  for (const std::string& path : targets) {
    std::string content;
    if (!read_file(path, &content)) {
      std::cerr << "lmk-lint: cannot read " << path << "\n";
      return 2;
    }
    ++files_checked;
    lmk::lint::FileOptions opts = options_for(path);
    // Member containers are declared in the companion header; fold its
    // declarations into the iteration analysis of the .cpp.
    std::string companion;
    fs::path p(path);
    if (p.extension() == ".cpp" || p.extension() == ".cc") {
      for (const char* ext : {".hpp", ".h", ".hh"}) {
        fs::path hdr = p;
        hdr.replace_extension(ext);
        if (read_file(hdr, &companion)) break;
      }
    }
    opts.companion_decls = companion;
    auto findings = lmk::lint::lint_source(path, content, opts,
                                           want_stats ? &stats : nullptr);
    all.insert(all.end(), findings.begin(), findings.end());
  }

  for (const auto& f : all) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "lmk-lint: " << files_checked << " files, " << all.size()
            << " finding" << (all.size() == 1 ? "" : "s") << "\n";
  if (want_stats) {
    std::cout << "lmk-lint rule timing (cumulative over "
              << files_checked << " files):\n";
    for (const auto& [rule, seconds] : stats.rule_seconds) {
      std::cout << "  " << rule;
      for (std::size_t pad = rule.size(); pad < 22; ++pad) std::cout << ' ';
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6fs", seconds);
      std::cout << buf << "\n";
    }
  }
  return all.empty() ? 0 : 1;
}
