#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <memory>
#include <span>

namespace lmk::lint {

namespace {

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

// ---------------------------------------------------------------------
// Single-pass scan index. The file is tokenized exactly once; every
// rule family then iterates only the recorded positions of its own
// tokens instead of re-searching the full text (the old scheme ran ~30
// full-text find loops per file). Line starts are recorded in the same
// pass so line_of() is a binary search, not a count.
// ---------------------------------------------------------------------

/// Every identifier token any rule cares about, sorted (ASCII) for
/// binary search. Adding a rule means adding its tokens here.
constexpr std::array<std::string_view, 58> kIndexedTokens = {
    "EntryView",     "_Exit",          "abort",
    "alive_count",   "alive_nodes",    "allocate",
    "allocate_span", "below",          "bootstrap",
    "clock_gettime", "default_random_engine",
    "emplace",       "emplace_back",   "exit",
    "exponential",   "fix_fingers",    "fix_neighbors",
    "for",           "function",       "getrandom",
    "gettimeofday",  "gmtime",         "guarded_span",
    "high_resolution_clock",           "localtime",
    "make_shared",   "make_unique",    "map",
    "minstd_rand",   "mt19937",        "mt19937_64",
    "new",           "next",           "normal",
    "oracle_predecessor",              "oracle_successor",
    "push_back",     "quick_exit",     "rand",
    "random_device", "refresh_all_fingers",
    "reserve",       "sample_indices", "schedule_after",
    "schedule_at",   "set",            "shuffle",
    "srand",         "static",         "steady_clock",
    "string",        "system_clock",   "thread_local",
    "time",          "timespec_get",   "uniform",
    "unordered_map", "unordered_set",
};

class ScanIndex {
 public:
  explicit ScanIndex(std::string_view stripped) {
    line_starts_.push_back(0);
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      if (stripped[i] == '\n') line_starts_.push_back(i + 1);
    }
    std::size_t i = 0;
    while (i < stripped.size()) {
      if (!is_ident_char(stripped[i])) {
        ++i;
        continue;
      }
      std::size_t begin = i;
      while (i < stripped.size() && is_ident_char(stripped[i])) ++i;
      std::string_view tok = stripped.substr(begin, i - begin);
      auto it =
          std::lower_bound(kIndexedTokens.begin(), kIndexedTokens.end(), tok);
      if (it != kIndexedTokens.end() && *it == tok) {
        by_token_[static_cast<std::size_t>(it - kIndexedTokens.begin())]
            .push_back(begin);
      }
    }
  }

  /// 1-based line number of byte offset `pos` (raw and stripped text
  /// share line structure: stripping replaces bytes 1:1, keeping '\n').
  [[nodiscard]] int line_of(std::size_t pos) const {
    auto it =
        std::upper_bound(line_starts_.begin(), line_starts_.end(), pos);
    return static_cast<int>(it - line_starts_.begin());
  }

  /// All positions of `token` (as a whole identifier), in file order.
  [[nodiscard]] std::span<const std::size_t> positions(
      std::string_view token) const {
    auto it = std::lower_bound(kIndexedTokens.begin(), kIndexedTokens.end(),
                               token);
    if (it == kIndexedTokens.end() || *it != token) return {};
    return by_token_[static_cast<std::size_t>(it - kIndexedTokens.begin())];
  }

 private:
  std::vector<std::size_t> line_starts_;
  std::array<std::vector<std::size_t>, kIndexedTokens.size()> by_token_;
};

/// The line (1-based) each raw-text suppression comment covers: the
/// comment's own line and the next, so it can sit above the flagged
/// statement or trail it.
struct Suppressions {
  std::vector<int> iteration_ok;              // iteration-order-independent
  std::vector<std::pair<int, std::string>> allow;  // allow(<rule>)
};

[[nodiscard]] Suppressions collect_suppressions(std::string_view raw,
                                                const ScanIndex& idx) {
  Suppressions out;
  static constexpr std::string_view kTag = "lmk-lint:";
  std::size_t pos = 0;
  while ((pos = raw.find(kTag, pos)) != std::string_view::npos) {
    std::size_t after = skip_ws(raw, pos + kTag.size());
    int line = idx.line_of(pos);
    static constexpr std::string_view kIter = "iteration-order-independent";
    static constexpr std::string_view kAllow = "allow(";
    if (raw.compare(after, kIter.size(), kIter) == 0) {
      out.iteration_ok.push_back(line);
    } else if (raw.compare(after, kAllow.size(), kAllow) == 0) {
      std::size_t start = after + kAllow.size();
      std::size_t close = raw.find(')', start);
      if (close != std::string_view::npos) {
        out.allow.emplace_back(line,
                               std::string(raw.substr(start, close - start)));
      }
    }
    pos = after;
  }
  return out;
}

[[nodiscard]] bool iteration_suppressed(const Suppressions& sup, int line) {
  return std::any_of(sup.iteration_ok.begin(), sup.iteration_ok.end(),
                     [line](int l) { return l == line || l + 1 == line; });
}

[[nodiscard]] bool allowed(const Suppressions& sup, int line,
                           std::string_view rule) {
  return std::any_of(sup.allow.begin(), sup.allow.end(),
                     [line, rule](const auto& a) {
                       return (a.first == line || a.first + 1 == line) &&
                              a.second == rule;
                     });
}

/// Find `token` as a whole identifier (no identifier char on either
/// side), starting at `from`. npos when absent. Used for names not in
/// the fixed index (loop variables, companion-header text).
[[nodiscard]] std::size_t find_token(std::string_view text,
                                     std::string_view token,
                                     std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    std::size_t end = pos + token.size();
    bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string_view::npos;
}

/// Skip a balanced <...> starting at the '<' at `i`; returns the index
/// one past the matching '>'. npos when unbalanced.
[[nodiscard]] std::size_t skip_angles(std::string_view s, std::size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') {
      ++depth;
    } else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' || s[i] == '{') {
      break;  // a declaration never crosses these at angle depth > 0
    }
  }
  return std::string_view::npos;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// True when `expr` (a trimmed range expression) iterates variable
/// `var` directly: `var`, `var.begin()`, or `var.cbegin()`.
[[nodiscard]] bool iterates_var(std::string_view expr, std::string_view var) {
  if (expr == var) return true;
  if (expr.substr(0, var.size()) != var) return false;
  std::string_view rest = expr.substr(var.size());
  return rest == ".begin()" || rest == ".cbegin()";
}

/// True when the token at `pos` is a member access (preceded by `.` or
/// `->`), so free-function rules skip it.
[[nodiscard]] bool is_member_access(std::string_view s, std::size_t pos) {
  return pos >= 1 && (s[pos - 1] == '.' ||
                      (pos >= 2 && s[pos - 2] == '-' && s[pos - 1] == '>'));
}

/// Receiver variable of a member call at `tok_pos` (the position of the
/// method name): the identifier before the `.` / `->`, looking through
/// one trailing `[...]` / `(...)` group (`buckets_[b].events.x` yields
/// "events"; `table_[k].x` yields "table_"). Empty when there is none.
[[nodiscard]] std::string_view member_receiver(std::string_view s,
                                               std::size_t tok_pos) {
  std::size_t i = tok_pos;
  if (i >= 1 && s[i - 1] == '.') {
    i -= 1;
  } else if (i >= 2 && s[i - 2] == '-' && s[i - 1] == '>') {
    i -= 2;
  } else {
    return {};
  }
  while (i > 0 && std::isspace(static_cast<unsigned char>(s[i - 1])) != 0) {
    --i;
  }
  if (i > 0 && (s[i - 1] == ']' || s[i - 1] == ')')) {
    char close = s[i - 1];
    char open = close == ']' ? '[' : '(';
    int depth = 0;
    while (i > 0) {
      --i;
      if (s[i] == close) ++depth;
      if (s[i] == open && --depth == 0) break;
    }
  }
  std::size_t end = i;
  while (i > 0 && is_ident_char(s[i - 1])) --i;
  return s.substr(i, end - i);
}

/// Marked region byte ranges: marker comments `// <mark>` ...
/// `// <mark>-end` in the raw text (markers live in comments, so the
/// raw, unstripped text is scanned). An unclosed region runs to end of
/// file; `whole_file` covers the whole file (the driver's curated
/// lists). Shared by the hot-path (`lmk-hot-path`) and handler
/// (`lmk-handler`) region families.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
collect_marked_regions(std::string_view raw, std::string_view mark,
                       bool whole_file) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  if (whole_file) {
    regions.emplace_back(0, raw.size());
    return regions;
  }
  std::size_t pos = 0;
  std::size_t open = std::string_view::npos;
  while ((pos = raw.find(mark, pos)) != std::string_view::npos) {
    std::size_t after = pos + mark.size();
    if (raw.compare(after, 4, "-end") == 0) {
      if (open != std::string_view::npos) {
        regions.emplace_back(open, pos);
        open = std::string_view::npos;
      }
      pos = after + 4;
    } else {
      if (open == std::string_view::npos) open = pos;
      pos = after;
    }
  }
  if (open != std::string_view::npos) regions.emplace_back(open, raw.size());
  return regions;
}

[[nodiscard]] bool in_region(
    const std::vector<std::pair<std::size_t, std::size_t>>& regions,
    std::size_t pos) {
  return std::any_of(regions.begin(), regions.end(), [pos](const auto& r) {
    return r.first <= pos && pos < r.second;
  });
}

/// Everything one rule family needs, assembled once per file.
struct Ctx {
  std::string_view path;
  std::string_view stripped;
  std::string_view raw;
  const FileOptions* opts = nullptr;
  const ScanIndex* idx = nullptr;
  const Suppressions* sup = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> hot;
  std::vector<std::pair<std::size_t, std::size_t>> handler;
  std::vector<Finding>* findings = nullptr;

  void report(std::size_t pos, std::string_view rule,
              std::string message) const {
    int line = idx->line_of(pos);
    if (allowed(*sup, line, rule)) return;
    findings->push_back(Finding{std::string(path), line, std::string(rule),
                                std::move(message)});
  }
};

// --- banned-source: environment-seeded randomness ---
void rule_banned_source(const Ctx& ctx) {
  if (ctx.opts->rng_module) return;
  // Tokens banned anywhere they appear (even in the bench harness).
  static constexpr std::array<std::string_view, 6> kPlain = {
      "random_device", "mt19937",     "mt19937_64",
      "minstd_rand",   "default_random_engine", "getrandom"};
  for (std::string_view tok : kPlain) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      ctx.report(pos, "banned-source",
                 "'" + std::string(tok) +
                     "' is a nondeterministic source; all randomness "
                     "must flow from the seeded lmk::Rng "
                     "(src/common/rng)");
    }
  }
  // Tokens banned only as calls: name followed by '('.
  static constexpr std::array<std::string_view, 5> kCalls = {
      "rand", "srand", "time", "localtime", "gmtime"};
  for (std::string_view tok : kCalls) {
    if (ctx.opts->bench && tok == "time") continue;
    for (std::size_t pos : ctx.idx->positions(tok)) {
      std::size_t after = skip_ws(ctx.stripped, pos + tok.size());
      if (!is_member_access(ctx.stripped, pos) &&
          after < ctx.stripped.size() && ctx.stripped[after] == '(') {
        ctx.report(pos, "banned-source",
                   "call to '" + std::string(tok) +
                       "()' reads wall-clock/global state; use the seeded "
                       "lmk::Rng or Simulator::now() instead");
      }
    }
  }
}

// --- wall-clock: real-time reads inside simulated code ---
// The simulator is the only clock; a wall-clock read inside src/
// couples behavior (timeouts, sampling, logging cadence) to host
// speed and breaks bit-identical replay. The bench harness measures
// throughput and is exempt; the rng module keeps its blanket
// exemption (it wraps host sources behind the seeded Rng).
void rule_wall_clock(const Ctx& ctx) {
  if (ctx.opts->rng_module || ctx.opts->bench || ctx.opts->lint_module) {
    return;  // the lint's own --stats harness times itself
  }
  static constexpr std::array<std::string_view, 6> kClockTokens = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday", "timespec_get"};
  for (std::string_view tok : kClockTokens) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      ctx.report(pos, "wall-clock",
                 "'" + std::string(tok) +
                     "' reads the host wall clock; simulated code must use "
                     "the virtual clock (Simulator::now())");
    }
  }
}

// --- banned-abort: process termination outside the check module ---
// Termination must route through LMK_CHECK / LMK_CHECK_MSG
// (src/common/check.hpp) so every fatal path prints expr/file/line
// diagnostics; a bare abort()/exit() dies silently mid-simulation.
void rule_banned_abort(const Ctx& ctx) {
  if (ctx.opts->check_module) return;
  static constexpr std::array<std::string_view, 4> kTerminators = {
      "abort", "exit", "_Exit", "quick_exit"};
  for (std::string_view tok : kTerminators) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      std::size_t after = skip_ws(ctx.stripped, pos + tok.size());
      if (!is_member_access(ctx.stripped, pos) &&
          after < ctx.stripped.size() && ctx.stripped[after] == '(') {
        ctx.report(pos, "banned-abort",
                   "call to '" + std::string(tok) +
                       "()' terminates the process without diagnostics; use "
                       "LMK_CHECK / LMK_CHECK_MSG (src/common/check.hpp), "
                       "the only module allowed to terminate");
      }
    }
  }
}

/// First template argument of the container token at `tok_pos` (must
/// carry a "std::" qualifier and an immediate '<'); empty view when the
/// site does not parse as a std:: container type.
[[nodiscard]] std::string_view first_template_arg(std::string_view s,
                                                  std::size_t tok_pos,
                                                  std::size_t tok_len) {
  if (tok_pos < 5 || s.substr(tok_pos - 5, 5) != "std::") return {};
  std::size_t i = skip_ws(s, tok_pos + tok_len);
  if (i >= s.size() || s[i] != '<') return {};
  int depth = 1;
  std::size_t arg_begin = ++i;
  while (i < s.size() && depth > 0) {
    char c = s[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      --depth;
    } else if (c == ',' && depth == 1) {
      break;
    }
    ++i;
  }
  return trim(s.substr(arg_begin, i - arg_begin));
}

// --- pointer-key / pointer-key-unordered: pointer-keyed containers ---
void rule_pointer_key(const Ctx& ctx) {
  for (std::string_view kw : {"map", "set"}) {
    for (std::size_t pos : ctx.idx->positions(kw)) {
      std::string_view first_arg =
          first_template_arg(ctx.stripped, pos, kw.size());
      if (first_arg.find('*') != std::string_view::npos) {
        ctx.report(pos, "pointer-key",
                   "std::" + std::string(kw) + " keyed by a pointer ('" +
                       std::string(first_arg) +
                       "'): comparison order is the allocation order of the "
                       "pointees, which varies run to run; key by a stable "
                       "id");
      }
    }
  }
  // Hash lookups keyed by pointer are deterministic, but any iteration
  // (or bucket walk) over such a container leaks allocation order into
  // visit order. Each declaration must carry a justification comment.
  for (std::string_view kw : {"unordered_map", "unordered_set"}) {
    for (std::size_t pos : ctx.idx->positions(kw)) {
      std::string_view first_arg =
          first_template_arg(ctx.stripped, pos, kw.size());
      if (first_arg.find('*') != std::string_view::npos) {
        ctx.report(pos, "pointer-key-unordered",
                   "std::" + std::string(kw) + " keyed by a pointer ('" +
                       std::string(first_arg) +
                       "'): lookups are deterministic but any iteration "
                       "leaks allocation order; key by a stable id where "
                       "walks exist, or justify a lookup-only container "
                       "with // lmk-lint: allow(pointer-key-unordered)");
      }
    }
  }
}

// --- mutable-global: hidden mutable state with static storage ---
// Sweep cells run concurrently on the thread pool; a mutable global
// (namespace-scope variable, static local, thread_local) is shared
// across cells, so an unsynchronized write races and even a guarded
// one can make a cell's output depend on which cells ran before it.
// Two scans: (1) `static` / `thread_local` declarations at any scope,
// (2) keywordless variable definitions at namespace scope (the common
// anonymous-namespace-global idiom carries no keyword at all).
// Known limits, same spirit as the container rules: constructor-call
// initializers (`Foo g(1);`) read as prototypes and are skipped, and
// `struct X { ... } g;` tail declarators are not traced.
void rule_mutable_global(const Ctx& ctx) {
  const std::string_view stripped = ctx.stripped;
  std::vector<int> flagged_lines;  // dedup `static thread_local` etc.
  auto report_mutable = [&](std::size_t pos, std::string_view what) {
    int line = ctx.idx->line_of(pos);
    if (std::find(flagged_lines.begin(), flagged_lines.end(), line) !=
        flagged_lines.end()) {
      return;
    }
    flagged_lines.push_back(line);
    ctx.report(pos, "mutable-global",
               std::string(what) +
                   ": mutable state with static storage duration is shared "
                   "across concurrently running sweep cells; make it "
                   "const/constexpr, move it into the cell's own stack, or "
                   "justify with // lmk-lint: allow(mutable-global)");
  };
  // Scan a declaration starting just after `from` (keyword or start of
  // statement). Returns true when it is a mutable variable: no
  // const-family qualifier and no '(' (functions, prototypes and
  // constructor-call initializers all stop at '(').
  auto mutable_decl = [&](std::size_t from) {
    bool has_const = false;
    std::size_t idents = 0;
    std::size_t i = from;
    while (i < stripped.size()) {
      i = skip_ws(stripped, i);
      if (i >= stripped.size()) break;
      char c = stripped[i];
      if (c == ';' || c == '=' || c == '{') break;
      if (c == '(') return false;
      if (c == '<') {
        std::size_t j = skip_angles(stripped, i);
        if (j == std::string_view::npos) return false;
        i = j;
        continue;
      }
      if (is_ident_char(c)) {
        std::size_t s = i;
        while (i < stripped.size() && is_ident_char(stripped[i])) ++i;
        std::string_view id = stripped.substr(s, i - s);
        if (id == "const" || id == "constexpr" || id == "constinit" ||
            id == "consteval") {
          has_const = true;
        } else if (id != "static" && id != "thread_local" &&
                   id != "inline" && id != "std") {
          ++idents;
        }
        continue;
      }
      ++i;  // :: & * [ ] , ...
    }
    // A variable needs at least a type and a name; `using X = ...;`
    // style aliases were already skipped by the caller.
    return !has_const && idents >= 2;
  };

  // (1) static / thread_local declarations, any scope.
  for (std::string_view kw : {"static", "thread_local"}) {
    for (std::size_t pos : ctx.idx->positions(kw)) {
      if (mutable_decl(pos + kw.size())) {
        report_mutable(pos, "'" + std::string(kw) +
                                "' variable is not const/constexpr");
      }
    }
  }

  // (2) keywordless definitions at namespace scope. Track brace
  // contexts: a '{' whose statement head starts with `namespace`
  // keeps us at namespace scope; every other '{' (class, function,
  // enum, initializer) enters a non-namespace region.
  std::vector<bool> ns_brace;
  std::size_t stmt_begin = 0;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    char c = stripped[i];
    if (c == '#') {
      // Preprocessor directive: consume to end of line (honoring
      // backslash continuations), then restart the statement, so
      // includes/conditionals never pollute the next head.
      while (i < stripped.size()) {
        std::size_t eol = stripped.find('\n', i);
        if (eol == std::string_view::npos) {
          i = stripped.size();
          break;
        }
        if (eol > 0 && stripped[eol - 1] == '\\') {
          i = eol + 1;
          continue;
        }
        i = eol;
        break;
      }
      stmt_begin = i + 1;
    } else if (c == '{') {
      std::string_view head =
          trim(stripped.substr(stmt_begin, i - stmt_begin));
      bool at_ns = std::all_of(ns_brace.begin(), ns_brace.end(),
                               [](bool b) { return b; });
      // The tokens immediately before the brace decide the context:
      // `namespace` or `namespace <ident>` opens a namespace.
      std::size_t tail = head.size();
      while (tail > 0 && is_ident_char(head[tail - 1])) --tail;
      std::string_view last = head.substr(tail);
      std::size_t prev_end = tail;
      while (prev_end > 0 &&
             std::isspace(static_cast<unsigned char>(head[prev_end - 1])) !=
                 0) {
        --prev_end;
      }
      std::size_t prev_begin = prev_end;
      while (prev_begin > 0 && is_ident_char(head[prev_begin - 1])) {
        --prev_begin;
      }
      std::string_view second_last =
          head.substr(prev_begin, prev_end - prev_begin);
      bool opens_ns = last == "namespace" || second_last == "namespace";
      if (at_ns && head.find('=') != std::string_view::npos) {
        // `Type name = {...};` initializer: consume the balanced
        // braces without entering a context, keep the statement open.
        int depth = 0;
        for (; i < stripped.size(); ++i) {
          if (stripped[i] == '{') ++depth;
          if (stripped[i] == '}' && --depth == 0) break;
        }
        continue;
      }
      ns_brace.push_back(opens_ns);
      stmt_begin = i + 1;
    } else if (c == '}') {
      if (!ns_brace.empty()) ns_brace.pop_back();
      stmt_begin = i + 1;
    } else if (c == ';') {
      // Inside at least one `namespace { ... }` and nothing else:
      // file-top fragments (no enclosing namespace) are not scanned,
      // matching the repo convention that all code lives in lmk::.
      bool at_ns = !ns_brace.empty() &&
                   std::all_of(ns_brace.begin(), ns_brace.end(),
                               [](bool b) { return b; });
      std::string_view head =
          trim(stripped.substr(stmt_begin, i - stmt_begin));
      if (at_ns && !head.empty()) {
        std::string_view first = head.substr(0, head.find_first_of(" \t\n"));
        bool skip = first == "using" || first == "typedef" ||
                    first == "static_assert" || first == "template" ||
                    first == "extern" || first == "friend" ||
                    first == "struct" || first == "class" ||
                    first == "union" || first == "enum" ||
                    first == "namespace" || first == "static" ||
                    first == "thread_local";  // scan (1) owns these
        std::size_t head_off = skip_ws(stripped, stmt_begin);
        if (!skip && mutable_decl(head_off)) {
          report_mutable(head_off,
                         "namespace-scope variable is not const/constexpr");
        }
      }
      stmt_begin = i + 1;
    }
  }
}

// --- unordered-iteration ---
void rule_unordered_iteration(const Ctx& ctx) {
  const std::string_view stripped = ctx.stripped;
  std::vector<std::string> unordered;
  for (std::string_view kw : {"unordered_map", "unordered_set"}) {
    for (std::size_t pos : ctx.idx->positions(kw)) {
      std::size_t i = skip_ws(stripped, pos + kw.size());
      if (i >= stripped.size() || stripped[i] != '<') continue;
      i = skip_angles(stripped, i);
      if (i == std::string_view::npos) continue;
      i = skip_ws(stripped, i);
      // Optional ref/pointer declarator.
      while (i < stripped.size() &&
             (stripped[i] == '&' || stripped[i] == '*')) {
        i = skip_ws(stripped, i + 1);
      }
      std::size_t start = i;
      while (i < stripped.size() && is_ident_char(stripped[i])) ++i;
      if (i == start) continue;  // e.g. `using X = unordered_map<...>;`
      std::string name(stripped.substr(start, i - start));
      i = skip_ws(stripped, i);
      // A declaration introduces the name before ; = { ( — anything
      // else (e.g. `unordered_map<K, V> const&` in a cast) is skipped.
      if (i < stripped.size() && (stripped[i] == ';' || stripped[i] == '=' ||
                                  stripped[i] == '{' || stripped[i] == '(')) {
        if (std::find(unordered.begin(), unordered.end(), name) ==
            unordered.end()) {
          unordered.push_back(std::move(name));
        }
      }
    }
  }
  if (!ctx.opts->companion_decls.empty()) {
    const std::string companion_stripped =
        strip_comments_and_strings(ctx.opts->companion_decls);
    for (std::string& name : collect_unordered_vars(companion_stripped)) {
      if (std::find(unordered.begin(), unordered.end(), name) ==
          unordered.end()) {
        unordered.push_back(std::move(name));
      }
    }
  }
  if (unordered.empty()) return;

  for (std::size_t for_pos : ctx.idx->positions("for")) {
    std::size_t open = skip_ws(stripped, for_pos + 3);
    if (open >= stripped.size() || stripped[open] != '(') continue;
    // Balanced-paren scan for the loop header.
    int depth = 0;
    std::size_t i = open;
    std::size_t close = std::string_view::npos;
    for (; i < stripped.size(); ++i) {
      if (stripped[i] == '(') {
        ++depth;
      } else if (stripped[i] == ')') {
        if (--depth == 0) {
          close = i;
          break;
        }
      } else if (stripped[i] == '{') {
        break;  // malformed / macro — bail out of this header
      }
    }
    if (close == std::string_view::npos) continue;
    std::string_view header = stripped.substr(open + 1, close - open - 1);

    // Range-for: a top-level ':' (not '::') and no ';'.
    if (header.find(';') != std::string_view::npos) {
      // Classic for — still flag `it = var.begin()` over unordered vars.
      for (const std::string& var : unordered) {
        std::size_t vp = find_token(header, var, 0);
        while (vp != std::string_view::npos) {
          std::string_view rest = header.substr(vp + var.size());
          if (rest.substr(0, 7) == ".begin(" ||
              rest.substr(0, 8) == ".cbegin(") {
            int line = ctx.idx->line_of(for_pos);
            if (!iteration_suppressed(*ctx.sup, line)) {
              ctx.report(for_pos, "unordered-iteration",
                         "iterator walk over unordered container '" + var +
                             "': iteration order is implementation-defined; "
                             "use an ordered container or justify with "
                             "// lmk-lint: iteration-order-independent");
            }
            break;
          }
          vp = find_token(header, var, vp + var.size());
        }
      }
      continue;
    }
    std::size_t colon = std::string_view::npos;
    int hdepth = 0;
    for (std::size_t h = 0; h < header.size(); ++h) {
      char c = header[h];
      if (c == '(' || c == '<' || c == '[') ++hdepth;
      if (c == ')' || c == '>' || c == ']') --hdepth;
      if (c == ':' && hdepth == 0) {
        bool dbl = (h + 1 < header.size() && header[h + 1] == ':') ||
                   (h > 0 && header[h - 1] == ':');
        if (!dbl) {
          colon = h;
          break;
        }
      }
    }
    if (colon == std::string_view::npos) continue;
    std::string_view range_expr = trim(header.substr(colon + 1));
    for (const std::string& var : unordered) {
      if (!iterates_var(range_expr, var)) continue;
      int line = ctx.idx->line_of(for_pos);
      if (!iteration_suppressed(*ctx.sup, line)) {
        ctx.report(for_pos, "unordered-iteration",
                   "range-for over unordered container '" + var +
                       "': iteration order is implementation-defined, so any "
                       "RNG draw, accumulation or ordered output it feeds "
                       "becomes run-dependent; use an ordered container or "
                       "justify with // lmk-lint: iteration-order-independent");
      }
      break;
    }
  }
}

// --- hot-alloc: owning heap allocation inside hot-path regions ---
// The engine steady-state contract is zero allocations per event
// (enforced dynamically by the LMK_ALLOC_GUARD bench gate); this rule
// catches the sources at review time. Placement new is exempt (it
// binds storage the caller already owns); growth calls are exempt when
// the receiver has a reserve() call in the file or companion header
// (capacity warmup, amortizes to zero).
void rule_hot_alloc(const Ctx& ctx) {
  if (ctx.hot.empty()) return;
  const std::string_view stripped = ctx.stripped;

  for (std::size_t pos : ctx.idx->positions("new")) {
    if (!in_region(ctx.hot, pos)) continue;
    // `#include <new>`: the header name is not an expression.
    if (pos >= 1 && stripped[pos - 1] == '<') continue;
    std::size_t after = skip_ws(stripped, pos + 3);
    // Placement new: `new (buf) T(...)` — the '(' right after the
    // keyword is the placement argument list, not an allocation.
    if (after < stripped.size() && stripped[after] == '(') continue;
    ctx.report(pos, "hot-alloc",
               "'new' on a hot path is an owning heap allocation per "
               "call; use the arena / a recycle pool, preallocate, or "
               "justify with // lmk-lint: allow(hot-alloc)");
  }

  for (std::string_view tok : {"make_unique", "make_shared"}) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      if (!in_region(ctx.hot, pos)) continue;
      ctx.report(pos, "hot-alloc",
                 "'" + std::string(tok) +
                     "' on a hot path heap-allocates per call; use the "
                     "arena / a recycle pool, preallocate, or justify "
                     "with // lmk-lint: allow(hot-alloc)");
    }
  }

  // std::string construction (declaration or temporary). References,
  // pointers and template arguments do not construct and are skipped;
  // string_view is a different token and never matches.
  for (std::size_t pos : ctx.idx->positions("string")) {
    if (!in_region(ctx.hot, pos)) continue;
    if (pos < 5 || stripped.substr(pos - 5, 5) != "std::") continue;
    std::size_t after = skip_ws(stripped, pos + 6);
    if (after >= stripped.size()) continue;
    char c = stripped[after];
    if (!(is_ident_char(c) || c == '(' || c == '{')) continue;
    ctx.report(pos, "hot-alloc",
               "std::string constructed on a hot path owns heap storage; "
               "use std::string_view / a preallocated buffer, or justify "
               "with // lmk-lint: allow(hot-alloc)");
  }

  // Growth calls without a visible reserve() for the same receiver.
  std::vector<std::string_view> reserved;
  for (std::size_t pos : ctx.idx->positions("reserve")) {
    std::string_view recv = member_receiver(stripped, pos);
    if (!recv.empty()) reserved.push_back(recv);
  }
  std::string companion_stripped;
  if (!ctx.opts->companion_decls.empty()) {
    companion_stripped =
        strip_comments_and_strings(ctx.opts->companion_decls);
    std::size_t pos = 0;
    while ((pos = find_token(companion_stripped, "reserve", pos)) !=
           std::string_view::npos) {
      std::string_view recv = member_receiver(companion_stripped, pos);
      // Note: views into companion_stripped stay valid — it lives until
      // the end of this function and is not resized after this loop.
      if (!recv.empty()) reserved.push_back(recv);
      pos += 7;
    }
  }
  for (std::string_view tok : {"push_back", "emplace_back", "emplace"}) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      if (!in_region(ctx.hot, pos)) continue;
      std::size_t after = skip_ws(stripped, pos + tok.size());
      if (after >= stripped.size() || stripped[after] != '(') continue;
      std::string_view recv = member_receiver(stripped, pos);
      if (recv.empty()) continue;  // not a traceable member call
      if (std::find(reserved.begin(), reserved.end(), recv) !=
          reserved.end()) {
        continue;
      }
      ctx.report(pos, "hot-alloc",
                 "'" + std::string(recv) + "." + std::string(tok) +
                     "' on a hot path with no visible '" +
                     std::string(recv) +
                     ".reserve(...)': unreserved growth reallocates; "
                     "reserve capacity up front or justify with "
                     "// lmk-lint: allow(hot-alloc)");
    }
  }
}

// --- hot-std-function: type-erasing closures inside hot regions ---
void rule_hot_std_function(const Ctx& ctx) {
  if (ctx.hot.empty()) return;
  const std::string_view stripped = ctx.stripped;
  for (std::size_t pos : ctx.idx->positions("function")) {
    if (!in_region(ctx.hot, pos)) continue;
    if (pos < 5 || stripped.substr(pos - 5, 5) != "std::") continue;
    // `const std::function<...>&` parameters never construct — skip
    // when the declarator after the template arguments is a reference.
    std::size_t i = skip_ws(stripped, pos + 8);
    if (i < stripped.size() && stripped[i] == '<') {
      std::size_t j = skip_angles(stripped, i);
      if (j != std::string_view::npos) i = skip_ws(stripped, j);
    }
    if (i < stripped.size() && stripped[i] == '&') continue;
    ctx.report(pos, "hot-std-function",
               "std::function on a hot path type-erases through an "
               "owning (possibly heap-backed) closure per assignment; "
               "use EventClosure / a template parameter / a const& "
               "parameter, or justify with "
               "// lmk-lint: allow(hot-std-function)");
  }
}

// --- arena-escape: arena handles outliving the allocating scope ---
// Applies file-wide (an escaped handle is a use-after-reset wherever it
// happens). The arena module itself defines the entry points and is
// exempt.
void rule_arena_escape(const Ctx& ctx) {
  if (ctx.opts->arena_module) return;
  const std::string_view stripped = ctx.stripped;

  // Head of the statement containing `pos`: text from the previous
  // ';' / '{' / '}' up to `pos`.
  auto stmt_head = [&](std::size_t pos) {
    std::size_t b = pos;
    while (b > 0 && stripped[b - 1] != ';' && stripped[b - 1] != '{' &&
           stripped[b - 1] != '}') {
      --b;
    }
    return trim(stripped.substr(b, pos - b));
  };
  // `head` ends with a member assignment: `... foo_ =` (not ==, <=,
  // +=, ...). The trailing-underscore convention identifies members.
  auto assigns_member = [](std::string_view head) {
    std::size_t eq = head.rfind('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    char before = head[eq - 1];
    if (before == '=' || before == '!' || before == '<' || before == '>' ||
        before == '+' || before == '-' || before == '*' || before == '/' ||
        before == '&' || before == '|' || before == '^') {
      return false;
    }
    if (eq + 1 < head.size() && head[eq + 1] == '=') return false;
    std::size_t e = eq;
    while (e > 0 &&
           std::isspace(static_cast<unsigned char>(head[e - 1])) != 0) {
      --e;
    }
    return e > 0 && head[e - 1] == '_';
  };

  for (std::string_view tok : {"allocate", "allocate_span", "guarded_span"}) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      std::size_t after = skip_ws(stripped, pos + tok.size());
      // Calls only (possibly through a template argument list).
      if (after < stripped.size() && stripped[after] == '<') {
        after = skip_angles(stripped, after);
        if (after == std::string_view::npos) continue;
        after = skip_ws(stripped, after);
      }
      if (after >= stripped.size() || stripped[after] != '(') continue;
      std::string_view head = stmt_head(pos);
      bool returns = head.substr(0, 6) == "return" &&
                     (head.size() == 6 || !is_ident_char(head[6]));
      if (returns) {
        ctx.report(pos, "arena-escape",
                   "returning the result of '" + std::string(tok) +
                       "' hands arena memory to a caller that outlives "
                       "the allocating scope; the next reset() recycles "
                       "the bytes under it — copy out, or justify with "
                       "// lmk-lint: allow(arena-escape)");
      } else if (assigns_member(head)) {
        ctx.report(pos, "arena-escape",
                   "storing the result of '" + std::string(tok) +
                       "' in a member keeps arena memory across calls; "
                       "the next reset() recycles the bytes under it — "
                       "copy out, or justify with "
                       "// lmk-lint: allow(arena-escape)");
      }
    }
  }

  // EntryView stored beyond a single expression: member declarations
  // (`EntryView foo_;` / `EntryView foo_ = ...`) and container elements
  // (`vector<EntryView>`, `pair<..., EntryView>`). Any EntryStore
  // mutation invalidates the view's point span.
  for (std::size_t pos : ctx.idx->positions("EntryView")) {
    std::size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(stripped[before - 1])) !=
               0) {
      --before;
    }
    if (before > 0 && (stripped[before - 1] == '<' ||
                       stripped[before - 1] == ',')) {
      ctx.report(pos, "arena-escape",
                 "container of EntryView: the views' point spans are "
                 "invalidated by any mutation of the backing EntryStore; "
                 "store (key, object, owned point) instead, or justify "
                 "with // lmk-lint: allow(arena-escape)");
      continue;
    }
    std::size_t i = skip_ws(stripped, pos + 9);
    std::size_t name_begin = i;
    while (i < stripped.size() && is_ident_char(stripped[i])) ++i;
    if (i == name_begin) continue;
    std::string_view name = stripped.substr(name_begin, i - name_begin);
    std::size_t after_name = skip_ws(stripped, i);
    bool is_decl = after_name < stripped.size() &&
                   (stripped[after_name] == ';' ||
                    stripped[after_name] == '=' ||
                    stripped[after_name] == '{');
    if (is_decl && !name.empty() && name.back() == '_') {
      ctx.report(pos, "arena-escape",
                 "EntryView stored in member '" + std::string(name) +
                     "' outlives the statement that created it; any "
                     "EntryStore mutation invalidates its point span — "
                     "store (key, object, owned point) or use "
                     "checked_view(), or justify with "
                     "// lmk-lint: allow(arena-escape)");
    }
  }
}

// --- handler discipline: cross-node-touch / unforked-rng /
// --- raw-schedule (the lmk-sched gate's static half) ---
// The fault-exploration gate (src/audit/explorer.*) can only perturb
// what flows through Network::send. Code running inside a message
// delivery must therefore look like a real peer: learn about other
// nodes from messages, derive randomness from a node-local forked
// stream, and cause remote effects only by sending. These rules police
// the handler regions the driver curates (see lint_rules.hpp).

void rule_cross_node_touch(const Ctx& ctx) {
  if (ctx.handler.empty()) return;
  // Ring-oracle entry points: each reads or repairs global membership
  // state no single node could observe.
  static constexpr std::array<std::string_view, 8> kOracle = {
      "alive_count",        "alive_nodes",  "bootstrap",
      "fix_fingers",        "fix_neighbors", "oracle_predecessor",
      "oracle_successor",   "refresh_all_fingers"};
  for (std::string_view tok : kOracle) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      if (!in_region(ctx.handler, pos)) continue;
      std::size_t after = skip_ws(ctx.stripped, pos + tok.size());
      if (after >= ctx.stripped.size() || ctx.stripped[after] != '(') {
        continue;  // declaration / doc reference, not a call
      }
      ctx.report(pos, "cross-node-touch",
                 "'" + std::string(tok) +
                     "' inside a message handler reads or repairs global "
                     "ring state no real node can see, and the lmk-sched "
                     "fault explorer cannot perturb it; route the "
                     "information through messages (Network::send / "
                     "Ring::rpc), or justify an explicitly modeled "
                     "out-of-band control plane with "
                     "// lmk-lint: allow(cross-node-touch)");
    }
  }
}

void rule_unforked_rng(const Ctx& ctx) {
  if (ctx.handler.empty()) return;
  // Draw methods of lmk::Rng. fork() is deliberately absent: forking a
  // node-local stream is the sanctioned pattern.
  static constexpr std::array<std::string_view, 7> kDraws = {
      "below",   "exponential",    "next",   "normal",
      "shuffle", "sample_indices", "uniform"};
  for (std::string_view tok : kDraws) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      if (!in_region(ctx.handler, pos)) continue;
      std::size_t after = skip_ws(ctx.stripped, pos + tok.size());
      if (after >= ctx.stripped.size() || ctx.stripped[after] != '(') {
        continue;
      }
      std::string_view recv = member_receiver(ctx.stripped, pos);
      // Shared stream = a member (trailing-underscore convention) whose
      // name says it is an rng. Locals (typically fork()ed per node or
      // per task) are fine.
      if (recv.empty() || recv.back() != '_' ||
          recv.find("rng") == std::string_view::npos) {
        continue;
      }
      ctx.report(pos, "unforked-rng",
                 "'" + std::string(recv) + "." + std::string(tok) +
                     "' inside a message handler draws from a shared Rng "
                     "stream, so the value depends on the delivery order "
                     "of every earlier handler; fork() a node-local "
                     "stream at setup and draw from that, or justify "
                     "with // lmk-lint: allow(unforked-rng)");
    }
  }
}

void rule_raw_schedule(const Ctx& ctx) {
  if (ctx.handler.empty()) return;
  for (std::string_view tok : {"schedule_after", "schedule_at"}) {
    for (std::size_t pos : ctx.idx->positions(tok)) {
      if (!in_region(ctx.handler, pos)) continue;
      std::size_t after = skip_ws(ctx.stripped, pos + tok.size());
      if (after >= ctx.stripped.size() || ctx.stripped[after] != '(') {
        continue;
      }
      ctx.report(pos, "raw-schedule",
                 "'" + std::string(tok) +
                     "' inside a message handler bypasses Network::send: "
                     "no latency model applies and the lmk-sched fault "
                     "injector can never drop, delay or reorder the "
                     "event; send a message for inter-node effects, or "
                     "justify a node-local timer with "
                     "// lmk-lint: allow(raw-schedule)");
    }
  }
}

}  // namespace

void LintStats::add(std::string_view rule, double seconds) {
  for (auto& [name, total] : rule_seconds) {
    if (name == rule) {
      total += seconds;
      return;
    }
  }
  rule_seconds.emplace_back(std::string(rule), seconds);
}

std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          st = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !is_ident_char(src[i - 1]))) {
          // Identifier-adjacent quotes are digit separators (1'000'000).
          st = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = st == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < src.size()) {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          out[i] = ' ';
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> collect_unordered_vars(std::string_view stripped) {
  std::vector<std::string> vars;
  for (std::string_view kw : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = find_token(stripped, kw, pos)) != std::string_view::npos) {
      std::size_t i = skip_ws(stripped, pos + kw.size());
      pos += kw.size();
      if (i >= stripped.size() || stripped[i] != '<') continue;
      i = skip_angles(stripped, i);
      if (i == std::string_view::npos) continue;
      i = skip_ws(stripped, i);
      // Optional ref/pointer declarator.
      while (i < stripped.size() &&
             (stripped[i] == '&' || stripped[i] == '*')) {
        i = skip_ws(stripped, i + 1);
      }
      std::size_t start = i;
      while (i < stripped.size() && is_ident_char(stripped[i])) ++i;
      if (i == start) continue;  // e.g. `using X = unordered_map<...>;`
      std::string name(stripped.substr(start, i - start));
      i = skip_ws(stripped, i);
      // A declaration introduces the name before ; = { ( — anything
      // else (e.g. `unordered_map<K, V> const&` in a cast) is skipped.
      if (i < stripped.size() && (stripped[i] == ';' || stripped[i] == '=' ||
                                  stripped[i] == '{' || stripped[i] == '(')) {
        if (std::find(vars.begin(), vars.end(), name) == vars.end()) {
          vars.push_back(name);
        }
      }
    }
  }
  return vars;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content,
                                 const FileOptions& opts, LintStats* stats) {
  std::vector<Finding> findings;
  const auto timed = [&](std::string_view name, auto&& body) {
    if (stats == nullptr) {
      body();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    body();
    stats->add(name, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  };

  std::string stripped_storage;
  std::unique_ptr<ScanIndex> idx;
  timed("scan-index", [&] {
    stripped_storage = strip_comments_and_strings(content);
    idx = std::make_unique<ScanIndex>(stripped_storage);
  });
  const Suppressions sup = collect_suppressions(content, *idx);

  Ctx ctx;
  ctx.path = path;
  ctx.stripped = stripped_storage;
  ctx.raw = content;
  ctx.opts = &opts;
  ctx.idx = idx.get();
  ctx.sup = &sup;
  // The lint module's own sources quote the marker strings they scan
  // for, so region collection there would open phantom regions.
  if (!opts.lint_module) {
    ctx.hot = collect_marked_regions(content, "lmk-hot-path", opts.hot_path);
    ctx.handler =
        collect_marked_regions(content, "lmk-handler", opts.handler_file);
  }
  ctx.findings = &findings;

  timed("banned-source", [&] { rule_banned_source(ctx); });
  timed("wall-clock", [&] { rule_wall_clock(ctx); });
  timed("banned-abort", [&] { rule_banned_abort(ctx); });
  timed("pointer-key", [&] { rule_pointer_key(ctx); });
  timed("mutable-global", [&] { rule_mutable_global(ctx); });
  timed("unordered-iteration", [&] { rule_unordered_iteration(ctx); });
  timed("hot-alloc", [&] { rule_hot_alloc(ctx); });
  timed("hot-std-function", [&] { rule_hot_std_function(ctx); });
  timed("arena-escape", [&] { rule_arena_escape(ctx); });
  timed("cross-node-touch", [&] { rule_cross_node_touch(ctx); });
  timed("unforked-rng", [&] { rule_unforked_rng(ctx); });
  timed("raw-schedule", [&] { rule_raw_schedule(ctx); });

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

}  // namespace lmk::lint
