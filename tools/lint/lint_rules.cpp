#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace lmk::lint {

namespace {

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// 1-based line number of byte offset `pos`.
[[nodiscard]] int line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(pos),
                            '\n'));
}

[[nodiscard]] std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

/// The line (1-based) each raw-text suppression comment covers: the
/// comment's own line and the next, so it can sit above the flagged
/// statement or trail it.
struct Suppressions {
  std::vector<int> iteration_ok;              // iteration-order-independent
  std::vector<std::pair<int, std::string>> allow;  // allow(<rule>)
};

[[nodiscard]] Suppressions collect_suppressions(std::string_view raw) {
  Suppressions out;
  static constexpr std::string_view kTag = "lmk-lint:";
  std::size_t pos = 0;
  while ((pos = raw.find(kTag, pos)) != std::string_view::npos) {
    std::size_t after = skip_ws(raw, pos + kTag.size());
    int line = line_of(raw, pos);
    static constexpr std::string_view kIter = "iteration-order-independent";
    static constexpr std::string_view kAllow = "allow(";
    if (raw.compare(after, kIter.size(), kIter) == 0) {
      out.iteration_ok.push_back(line);
    } else if (raw.compare(after, kAllow.size(), kAllow) == 0) {
      std::size_t start = after + kAllow.size();
      std::size_t close = raw.find(')', start);
      if (close != std::string_view::npos) {
        out.allow.emplace_back(line,
                               std::string(raw.substr(start, close - start)));
      }
    }
    pos = after;
  }
  return out;
}

[[nodiscard]] bool iteration_suppressed(const Suppressions& sup, int line) {
  return std::any_of(sup.iteration_ok.begin(), sup.iteration_ok.end(),
                     [line](int l) { return l == line || l + 1 == line; });
}

[[nodiscard]] bool allowed(const Suppressions& sup, int line,
                           std::string_view rule) {
  return std::any_of(sup.allow.begin(), sup.allow.end(),
                     [line, rule](const auto& a) {
                       return (a.first == line || a.first + 1 == line) &&
                              a.second == rule;
                     });
}

/// Find `token` as a whole identifier (no identifier char on either
/// side), starting at `from`. npos when absent.
[[nodiscard]] std::size_t find_token(std::string_view text,
                                     std::string_view token,
                                     std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    std::size_t end = pos + token.size();
    bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string_view::npos;
}

/// Skip a balanced <...> starting at the '<' at `i`; returns the index
/// one past the matching '>'. npos when unbalanced.
[[nodiscard]] std::size_t skip_angles(std::string_view s, std::size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') {
      ++depth;
    } else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' || s[i] == '{') {
      break;  // a declaration never crosses these at angle depth > 0
    }
  }
  return std::string_view::npos;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// True when `expr` (a trimmed range expression) iterates variable
/// `var` directly: `var`, `var.begin()`, or `var.cbegin()`.
[[nodiscard]] bool iterates_var(std::string_view expr, std::string_view var) {
  if (expr == var) return true;
  if (expr.substr(0, var.size()) != var) return false;
  std::string_view rest = expr.substr(var.size());
  return rest == ".begin()" || rest == ".cbegin()";
}

}  // namespace

std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          st = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !is_ident_char(src[i - 1]))) {
          // Identifier-adjacent quotes are digit separators (1'000'000).
          st = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = st == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < src.size()) {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          out[i] = ' ';
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> collect_unordered_vars(std::string_view stripped) {
  std::vector<std::string> vars;
  for (std::string_view kw : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = find_token(stripped, kw, pos)) != std::string_view::npos) {
      std::size_t i = skip_ws(stripped, pos + kw.size());
      pos += kw.size();
      if (i >= stripped.size() || stripped[i] != '<') continue;
      i = skip_angles(stripped, i);
      if (i == std::string_view::npos) continue;
      i = skip_ws(stripped, i);
      // Optional ref/pointer declarator.
      while (i < stripped.size() &&
             (stripped[i] == '&' || stripped[i] == '*')) {
        i = skip_ws(stripped, i + 1);
      }
      std::size_t start = i;
      while (i < stripped.size() && is_ident_char(stripped[i])) ++i;
      if (i == start) continue;  // e.g. `using X = unordered_map<...>;`
      std::string name(stripped.substr(start, i - start));
      i = skip_ws(stripped, i);
      // A declaration introduces the name before ; = { ( — anything
      // else (e.g. `unordered_map<K, V> const&` in a cast) is skipped.
      if (i < stripped.size() && (stripped[i] == ';' || stripped[i] == '=' ||
                                  stripped[i] == '{' || stripped[i] == '(')) {
        if (std::find(vars.begin(), vars.end(), name) == vars.end()) {
          vars.push_back(name);
        }
      }
    }
  }
  return vars;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content,
                                 const FileOptions& opts) {
  std::vector<Finding> findings;
  const std::string stripped_storage = strip_comments_and_strings(content);
  const std::string_view stripped = stripped_storage;
  const Suppressions sup = collect_suppressions(content);

  auto report = [&](std::size_t pos, std::string_view rule,
                    std::string message) {
    int line = line_of(stripped, pos);
    if (allowed(sup, line, rule)) return;
    findings.push_back(
        Finding{std::string(path), line, std::string(rule), std::move(message)});
  };

  // --- banned-source: environment-seeded randomness ---
  if (!opts.rng_module) {
    // Tokens banned anywhere they appear (even in the bench harness).
    static constexpr std::array<std::string_view, 6> kPlain = {
        "random_device", "mt19937",     "mt19937_64",
        "minstd_rand",   "default_random_engine", "getrandom"};
    for (std::string_view tok : kPlain) {
      std::size_t pos = 0;
      while ((pos = find_token(stripped, tok, pos)) !=
             std::string_view::npos) {
        report(pos, "banned-source",
               "'" + std::string(tok) +
                   "' is a nondeterministic source; all randomness "
                   "must flow from the seeded lmk::Rng "
                   "(src/common/rng)");
        pos += tok.size();
      }
    }
    // Tokens banned only as calls: name followed by '('.
    static constexpr std::array<std::string_view, 5> kCalls = {
        "rand", "srand", "time", "localtime", "gmtime"};
    for (std::string_view tok : kCalls) {
      if (opts.bench && tok == "time") continue;
      std::size_t pos = 0;
      while ((pos = find_token(stripped, tok, pos)) !=
             std::string_view::npos) {
        std::size_t after = skip_ws(stripped, pos + tok.size());
        bool member = pos >= 1 && (stripped[pos - 1] == '.' ||
                                   (pos >= 2 && stripped[pos - 2] == '-' &&
                                    stripped[pos - 1] == '>'));
        if (!member && after < stripped.size() && stripped[after] == '(') {
          report(pos, "banned-source",
                 "call to '" + std::string(tok) +
                     "()' reads wall-clock/global state; use the seeded "
                     "lmk::Rng or Simulator::now() instead");
        }
        pos += tok.size();
      }
    }
  }

  // --- wall-clock: real-time reads inside simulated code ---
  // The simulator is the only clock; a wall-clock read inside src/
  // couples behavior (timeouts, sampling, logging cadence) to host
  // speed and breaks bit-identical replay. The bench harness measures
  // throughput and is exempt; the rng module keeps its blanket
  // exemption (it wraps host sources behind the seeded Rng).
  if (!opts.rng_module && !opts.bench) {
    static constexpr std::array<std::string_view, 6> kClockTokens = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "clock_gettime", "gettimeofday", "timespec_get"};
    for (std::string_view tok : kClockTokens) {
      std::size_t pos = 0;
      while ((pos = find_token(stripped, tok, pos)) !=
             std::string_view::npos) {
        report(pos, "wall-clock",
               "'" + std::string(tok) +
                   "' reads the host wall clock; simulated code must use "
                   "the virtual clock (Simulator::now())");
        pos += tok.size();
      }
    }
  }

  // --- banned-abort: process termination outside the check module ---
  // Termination must route through LMK_CHECK / LMK_CHECK_MSG
  // (src/common/check.hpp) so every fatal path prints expr/file/line
  // diagnostics; a bare abort()/exit() dies silently mid-simulation.
  if (!opts.check_module) {
    static constexpr std::array<std::string_view, 4> kTerminators = {
        "abort", "exit", "_Exit", "quick_exit"};
    for (std::string_view tok : kTerminators) {
      std::size_t pos = 0;
      while ((pos = find_token(stripped, tok, pos)) !=
             std::string_view::npos) {
        std::size_t after = skip_ws(stripped, pos + tok.size());
        bool member = pos >= 1 && (stripped[pos - 1] == '.' ||
                                   (pos >= 2 && stripped[pos - 2] == '-' &&
                                    stripped[pos - 1] == '>'));
        if (!member && after < stripped.size() && stripped[after] == '(') {
          report(pos, "banned-abort",
                 "call to '" + std::string(tok) +
                     "()' terminates the process without diagnostics; use "
                     "LMK_CHECK / LMK_CHECK_MSG (src/common/check.hpp), "
                     "the only module allowed to terminate");
        }
        pos += tok.size();
      }
    }
  }

  // --- pointer-key: pointer-keyed ordered containers ---
  for (std::string_view kw : {"map", "set"}) {
    std::size_t pos = 0;
    while ((pos = find_token(stripped, kw, pos)) != std::string_view::npos) {
      std::size_t tok_pos = pos;
      pos += kw.size();
      // Require the std:: qualifier so set(), bitset members etc. are
      // not misread.
      if (tok_pos < 5 || stripped.substr(tok_pos - 5, 5) != "std::") continue;
      std::size_t i = skip_ws(stripped, tok_pos + kw.size());
      if (i >= stripped.size() || stripped[i] != '<') continue;
      // First template argument: up to a top-level ',' or '>'.
      int depth = 1;
      std::size_t arg_begin = ++i;
      while (i < stripped.size() && depth > 0) {
        char c = stripped[i];
        if (c == '<') {
          ++depth;
        } else if (c == '>') {
          --depth;
        } else if (c == ',' && depth == 1) {
          break;
        }
        ++i;
      }
      std::string_view first_arg =
          trim(stripped.substr(arg_begin, i - arg_begin));
      if (first_arg.find('*') != std::string_view::npos) {
        report(tok_pos, "pointer-key",
               "std::" + std::string(kw) + " keyed by a pointer ('" +
                   std::string(first_arg) +
                   "'): comparison order is the allocation order of the "
                   "pointees, which varies run to run; key by a stable id");
      }
    }
  }

  // --- pointer-key-unordered: pointer-keyed hash containers ---
  // Hash lookups keyed by pointer are deterministic, but any iteration
  // (or bucket walk) over such a container leaks allocation order into
  // visit order. Each declaration must carry a justification comment —
  // // lmk-lint: allow(pointer-key-unordered) — asserting the container
  // is lookup-only or that every walk over it is order-independent.
  for (std::string_view kw : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = find_token(stripped, kw, pos)) != std::string_view::npos) {
      std::size_t tok_pos = pos;
      pos += kw.size();
      if (tok_pos < 5 || stripped.substr(tok_pos - 5, 5) != "std::") continue;
      std::size_t i = skip_ws(stripped, tok_pos + kw.size());
      if (i >= stripped.size() || stripped[i] != '<') continue;
      int depth = 1;
      std::size_t arg_begin = ++i;
      while (i < stripped.size() && depth > 0) {
        char c = stripped[i];
        if (c == '<') {
          ++depth;
        } else if (c == '>') {
          --depth;
        } else if (c == ',' && depth == 1) {
          break;
        }
        ++i;
      }
      std::string_view first_arg =
          trim(stripped.substr(arg_begin, i - arg_begin));
      if (first_arg.find('*') != std::string_view::npos) {
        report(tok_pos, "pointer-key-unordered",
               "std::" + std::string(kw) + " keyed by a pointer ('" +
                   std::string(first_arg) +
                   "'): lookups are deterministic but any iteration leaks "
                   "allocation order; key by a stable id where walks exist, "
                   "or justify a lookup-only container with "
                   "// lmk-lint: allow(pointer-key-unordered)");
      }
    }
  }

  // --- mutable-global: hidden mutable state with static storage ---
  // Sweep cells run concurrently on the thread pool; a mutable global
  // (namespace-scope variable, static local, thread_local) is shared
  // across cells, so an unsynchronized write races and even a guarded
  // one can make a cell's output depend on which cells ran before it.
  // Two scans: (1) `static` / `thread_local` declarations at any scope,
  // (2) keywordless variable definitions at namespace scope (the common
  // anonymous-namespace-global idiom carries no keyword at all).
  // Known limits, same spirit as the container rules: constructor-call
  // initializers (`Foo g(1);`) read as prototypes and are skipped, and
  // `struct X { ... } g;` tail declarators are not traced.
  {
    std::vector<int> flagged_lines;  // dedup `static thread_local` etc.
    auto report_mutable = [&](std::size_t pos, std::string_view what) {
      int line = line_of(stripped, pos);
      if (std::find(flagged_lines.begin(), flagged_lines.end(), line) !=
          flagged_lines.end()) {
        return;
      }
      flagged_lines.push_back(line);
      report(pos, "mutable-global",
             std::string(what) +
                 ": mutable state with static storage duration is shared "
                 "across concurrently running sweep cells; make it "
                 "const/constexpr, move it into the cell's own stack, or "
                 "justify with // lmk-lint: allow(mutable-global)");
    };
    // Scan a declaration starting just after `from` (keyword or start of
    // statement). Returns true when it is a mutable variable: no
    // const-family qualifier and no '(' (functions, prototypes and
    // constructor-call initializers all stop at '(').
    auto mutable_decl = [&](std::size_t from) {
      bool has_const = false;
      std::size_t idents = 0;
      std::size_t i = from;
      while (i < stripped.size()) {
        i = skip_ws(stripped, i);
        if (i >= stripped.size()) break;
        char c = stripped[i];
        if (c == ';' || c == '=' || c == '{') break;
        if (c == '(') return false;
        if (c == '<') {
          std::size_t j = skip_angles(stripped, i);
          if (j == std::string_view::npos) return false;
          i = j;
          continue;
        }
        if (is_ident_char(c)) {
          std::size_t s = i;
          while (i < stripped.size() && is_ident_char(stripped[i])) ++i;
          std::string_view id = stripped.substr(s, i - s);
          if (id == "const" || id == "constexpr" || id == "constinit" ||
              id == "consteval") {
            has_const = true;
          } else if (id != "static" && id != "thread_local" &&
                     id != "inline" && id != "std") {
            ++idents;
          }
          continue;
        }
        ++i;  // :: & * [ ] , ...
      }
      // A variable needs at least a type and a name; `using X = ...;`
      // style aliases were already skipped by the caller.
      return !has_const && idents >= 2;
    };

    // (1) static / thread_local declarations, any scope.
    for (std::string_view kw : {"static", "thread_local"}) {
      std::size_t pos = 0;
      while ((pos = find_token(stripped, kw, pos)) !=
             std::string_view::npos) {
        std::size_t tok_pos = pos;
        pos += kw.size();
        if (mutable_decl(tok_pos + kw.size())) {
          report_mutable(tok_pos, "'" + std::string(kw) +
                                      "' variable is not const/constexpr");
        }
      }
    }

    // (2) keywordless definitions at namespace scope. Track brace
    // contexts: a '{' whose statement head starts with `namespace`
    // keeps us at namespace scope; every other '{' (class, function,
    // enum, initializer) enters a non-namespace region.
    std::vector<bool> ns_brace;
    std::size_t stmt_begin = 0;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      char c = stripped[i];
      if (c == '#') {
        // Preprocessor directive: consume to end of line (honoring
        // backslash continuations), then restart the statement, so
        // includes/conditionals never pollute the next head.
        while (i < stripped.size()) {
          std::size_t eol = stripped.find('\n', i);
          if (eol == std::string_view::npos) {
            i = stripped.size();
            break;
          }
          if (eol > 0 && stripped[eol - 1] == '\\') {
            i = eol + 1;
            continue;
          }
          i = eol;
          break;
        }
        stmt_begin = i + 1;
      } else if (c == '{') {
        std::string_view head =
            trim(stripped.substr(stmt_begin, i - stmt_begin));
        bool at_ns = std::all_of(ns_brace.begin(), ns_brace.end(),
                                 [](bool b) { return b; });
        // The tokens immediately before the brace decide the context:
        // `namespace` or `namespace <ident>` opens a namespace.
        std::size_t tail = head.size();
        while (tail > 0 && is_ident_char(head[tail - 1])) --tail;
        std::string_view last = head.substr(tail);
        std::size_t prev_end = tail;
        while (prev_end > 0 &&
               std::isspace(static_cast<unsigned char>(head[prev_end - 1])) !=
                   0) {
          --prev_end;
        }
        std::size_t prev_begin = prev_end;
        while (prev_begin > 0 && is_ident_char(head[prev_begin - 1])) {
          --prev_begin;
        }
        std::string_view second_last =
            head.substr(prev_begin, prev_end - prev_begin);
        bool opens_ns = last == "namespace" || second_last == "namespace";
        if (at_ns && head.find('=') != std::string_view::npos) {
          // `Type name = {...};` initializer: consume the balanced
          // braces without entering a context, keep the statement open.
          int depth = 0;
          for (; i < stripped.size(); ++i) {
            if (stripped[i] == '{') ++depth;
            if (stripped[i] == '}' && --depth == 0) break;
          }
          continue;
        }
        ns_brace.push_back(opens_ns);
        stmt_begin = i + 1;
      } else if (c == '}') {
        if (!ns_brace.empty()) ns_brace.pop_back();
        stmt_begin = i + 1;
      } else if (c == ';') {
        // Inside at least one `namespace { ... }` and nothing else:
        // file-top fragments (no enclosing namespace) are not scanned,
        // matching the repo convention that all code lives in lmk::.
        bool at_ns = !ns_brace.empty() &&
                     std::all_of(ns_brace.begin(), ns_brace.end(),
                                 [](bool b) { return b; });
        std::string_view head =
            trim(stripped.substr(stmt_begin, i - stmt_begin));
        if (at_ns && !head.empty()) {
          std::string_view first = head.substr(0, head.find_first_of(" \t\n"));
          bool skip = first == "using" || first == "typedef" ||
                      first == "static_assert" || first == "template" ||
                      first == "extern" || first == "friend" ||
                      first == "struct" || first == "class" ||
                      first == "union" || first == "enum" ||
                      first == "namespace" || first == "static" ||
                      first == "thread_local";  // scan (1) owns these
          std::size_t head_off = skip_ws(stripped, stmt_begin);
          if (!skip && mutable_decl(head_off)) {
            report_mutable(head_off,
                           "namespace-scope variable is not const/constexpr");
          }
        }
        stmt_begin = i + 1;
      }
    }
  }

  // --- unordered-iteration ---
  std::vector<std::string> unordered = collect_unordered_vars(stripped);
  if (!opts.companion_decls.empty()) {
    const std::string companion_stripped =
        strip_comments_and_strings(opts.companion_decls);
    for (std::string& name : collect_unordered_vars(companion_stripped)) {
      if (std::find(unordered.begin(), unordered.end(), name) ==
          unordered.end()) {
        unordered.push_back(std::move(name));
      }
    }
  }
  if (!unordered.empty()) {
    std::size_t pos = 0;
    while ((pos = find_token(stripped, "for", pos)) !=
           std::string_view::npos) {
      std::size_t open = skip_ws(stripped, pos + 3);
      std::size_t for_pos = pos;
      pos += 3;
      if (open >= stripped.size() || stripped[open] != '(') continue;
      // Balanced-paren scan for the loop header.
      int depth = 0;
      std::size_t i = open;
      std::size_t close = std::string_view::npos;
      for (; i < stripped.size(); ++i) {
        if (stripped[i] == '(') {
          ++depth;
        } else if (stripped[i] == ')') {
          if (--depth == 0) {
            close = i;
            break;
          }
        } else if (stripped[i] == '{') {
          break;  // malformed / macro — bail out of this header
        }
      }
      if (close == std::string_view::npos) continue;
      std::string_view header = stripped.substr(open + 1, close - open - 1);

      // Range-for: a top-level ':' (not '::') and no ';'.
      if (header.find(';') != std::string_view::npos) {
        // Classic for — still flag `it = var.begin()` over unordered vars.
        for (const std::string& var : unordered) {
          std::size_t vp = find_token(header, var, 0);
          while (vp != std::string_view::npos) {
            std::string_view rest = header.substr(vp + var.size());
            if (rest.substr(0, 7) == ".begin(" ||
                rest.substr(0, 8) == ".cbegin(") {
              int line = line_of(stripped, for_pos);
              if (!iteration_suppressed(sup, line)) {
                report(for_pos, "unordered-iteration",
                       "iterator walk over unordered container '" + var +
                           "': iteration order is implementation-defined; "
                           "use an ordered container or justify with "
                           "// lmk-lint: iteration-order-independent");
              }
              break;
            }
            vp = find_token(header, var, vp + var.size());
          }
        }
        continue;
      }
      std::size_t colon = std::string_view::npos;
      int hdepth = 0;
      for (std::size_t h = 0; h < header.size(); ++h) {
        char c = header[h];
        if (c == '(' || c == '<' || c == '[') ++hdepth;
        if (c == ')' || c == '>' || c == ']') --hdepth;
        if (c == ':' && hdepth == 0) {
          bool dbl = (h + 1 < header.size() && header[h + 1] == ':') ||
                     (h > 0 && header[h - 1] == ':');
          if (!dbl) {
            colon = h;
            break;
          }
        }
      }
      if (colon == std::string_view::npos) continue;
      std::string_view range_expr = trim(header.substr(colon + 1));
      for (const std::string& var : unordered) {
        if (!iterates_var(range_expr, var)) continue;
        int line = line_of(stripped, for_pos);
        if (!iteration_suppressed(sup, line)) {
          report(for_pos, "unordered-iteration",
                 "range-for over unordered container '" + var +
                     "': iteration order is implementation-defined, so any "
                     "RNG draw, accumulation or ordered output it feeds "
                     "becomes run-dependent; use an ordered container or "
                     "justify with // lmk-lint: iteration-order-independent");
        }
        break;
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

}  // namespace lmk::lint
