// End-to-end integration tests: the full experiment pipeline that the
// figure benches run, at small scale — synthetic clustered data under
// Euclidean distance and the TREC-like corpus under angular distance,
// with and without load balancing, across landmark selection schemes.
#include <gtest/gtest.h>

#include <span>

#include "eval/experiment.hpp"
#include "landmark/selection.hpp"
#include "workload/corpus.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

struct SyntheticFixture {
  SyntheticFixture() {
    cfg.objects = 4000;
    cfg.dims = 20;
    cfg.clusters = 5;
    cfg.deviation = 8;
    Rng rng(99);
    data = generate_clustered(cfg, rng);
    queries = generate_queries(cfg, data, 40, rng);
    max_dist = max_theoretical_distance(cfg);
  }

  LandmarkMapper<L2Space> make_mapper(std::size_t k, bool kmeans) {
    Rng rng(100);
    auto sample_idx = rng.sample_indices(data.points.size(), 500);
    std::vector<DenseVector> sample;
    for (auto i : sample_idx) sample.push_back(data.points[i]);
    std::vector<DenseVector> landmarks =
        kmeans ? kmeans_dense(std::span<const DenseVector>(sample), k, rng)
               : greedy_selection(space, std::span<const DenseVector>(sample),
                                  k, rng);
    return LandmarkMapper<L2Space>(space, std::move(landmarks),
                                   uniform_boundary(k, 0, max_dist));
  }

  SyntheticConfig cfg;
  SyntheticDataset data;
  std::vector<DenseVector> queries;
  double max_dist = 0;
  L2Space space;
};

TEST(EndToEnd, RecallGrowsWithRangeFactorAndReachesHigh) {
  SyntheticFixture f;
  ExperimentConfig ecfg;
  ecfg.nodes = 64;
  ecfg.seed = 1;
  SimilarityExperiment<L2Space> exp(ecfg, f.space, f.data.points,
                                    f.make_mapper(5, /*kmeans=*/true),
                                    "e2e-kmean5");
  exp.set_queries(f.queries);
  QueryStats small = exp.run_batch(0.001 * f.max_dist);
  QueryStats mid = exp.run_batch(0.05 * f.max_dist);
  QueryStats large = exp.run_batch(0.20 * f.max_dist);
  EXPECT_EQ(small.recall.count(), f.queries.size());
  EXPECT_LE(small.recall.mean(), mid.recall.mean() + 0.05);
  EXPECT_LE(mid.recall.mean(), large.recall.mean() + 0.05);
  EXPECT_GT(large.recall.mean(), 0.9);
  // Larger ranges touch more index nodes and cost more bandwidth.
  EXPECT_GT(large.index_nodes.mean(), small.index_nodes.mean());
  EXPECT_GT(large.total_bytes.mean(), small.total_bytes.mean());
}

TEST(EndToEnd, ResponseTimesAreNetworkScale) {
  SyntheticFixture f;
  ExperimentConfig ecfg;
  ecfg.nodes = 64;
  ecfg.seed = 2;
  SimilarityExperiment<L2Space> exp(ecfg, f.space, f.data.points,
                                    f.make_mapper(5, true), "e2e-latency");
  exp.set_queries(f.queries);
  QueryStats stats = exp.run_batch(0.05 * f.max_dist);
  // Mean RTT is 180 ms; a routed query + reply should land in the
  // hundreds of milliseconds, bounded by a few seconds.
  EXPECT_GT(stats.response_ms.mean(), 50.0);
  EXPECT_LT(stats.response_ms.mean(), 5000.0);
  EXPECT_GE(stats.max_latency_ms.mean(), stats.response_ms.mean());
  EXPECT_GT(stats.hops.mean(), 1.0);
}

TEST(EndToEnd, LoadBalancingFlattensLoadAndKeepsQueriesCorrect) {
  SyntheticFixture f;
  ExperimentConfig plain;
  plain.nodes = 64;
  plain.seed = 3;
  SimilarityExperiment<L2Space> exp_plain(plain, f.space, f.data.points,
                                          f.make_mapper(5, true), "e2e-nolb");
  ExperimentConfig lb = plain;
  lb.load_balance = true;
  lb.delta = 0.0;
  lb.probe_level = 4;
  SimilarityExperiment<L2Space> exp_lb(lb, f.space, f.data.points,
                                       f.make_mapper(5, true), "e2e-lb");
  EXPECT_GT(exp_lb.migrations(), 0);
  auto curve_plain = exp_plain.load_curve();
  auto curve_lb = exp_lb.load_curve();
  EXPECT_LT(curve_lb.front(), curve_plain.front());
  // Queries still work after balancing, with decent recall at 5% range.
  exp_lb.set_queries(f.queries);
  QueryStats stats = exp_lb.run_batch(0.05 * f.max_dist);
  EXPECT_GT(stats.recall.mean(), 0.5);
  EXPECT_EQ(stats.incomplete, 0u);
}

TEST(EndToEnd, TenLandmarksFilterBetterThanTwo) {
  SyntheticFixture f;
  ExperimentConfig ecfg;
  ecfg.nodes = 64;
  ecfg.seed = 4;
  SimilarityExperiment<L2Space> exp2(ecfg, f.space, f.data.points,
                                     f.make_mapper(2, true), "e2e-k2");
  SimilarityExperiment<L2Space> exp10(ecfg, f.space, f.data.points,
                                      f.make_mapper(10, true), "e2e-k10");
  exp2.set_queries(f.queries);
  exp10.set_queries(f.queries);
  double r = 0.05 * f.max_dist;
  QueryStats s2 = exp2.run_batch(r);
  QueryStats s10 = exp10.run_batch(r);
  // More landmarks => tighter filter => fewer candidate entries shipped
  // back per query (the paper's filtering-power argument).
  EXPECT_LT(s10.result_bytes.mean(), s2.result_bytes.mean() * 1.05);
}

TEST(EndToEnd, NaiveRoutingCostsMoreMessages) {
  SyntheticFixture f;
  ExperimentConfig tree;
  tree.nodes = 64;
  tree.seed = 5;
  ExperimentConfig naive = tree;
  naive.routing = RoutingMode::kNaive;
  naive.naive_split_depth = 8;
  SimilarityExperiment<L2Space> exp_tree(tree, f.space, f.data.points,
                                         f.make_mapper(5, true), "e2e-tree");
  SimilarityExperiment<L2Space> exp_naive(naive, f.space, f.data.points,
                                          f.make_mapper(5, true),
                                          "e2e-naive");
  exp_tree.set_queries(f.queries);
  exp_naive.set_queries(f.queries);
  double r = 0.10 * f.max_dist;
  QueryStats st = exp_tree.run_batch(r);
  QueryStats sn = exp_naive.run_batch(r);
  // Identical recall (both are exact over the same index)...
  EXPECT_NEAR(st.recall.mean(), sn.recall.mean(), 1e-9);
  // ...but the naive client-side decomposition ships more messages.
  EXPECT_GT(sn.query_messages.mean(), st.query_messages.mean());
}

TEST(EndToEnd, CorpusPipelineWithSphericalKmeans) {
  Rng rng(7);
  CorpusConfig ccfg;
  ccfg.documents = 1500;
  ccfg.vocabulary = 20000;
  ccfg.topics = 15;
  ccfg.stories_per_topic = 15;
  Corpus corpus(ccfg, rng);
  AngularSpace ang;
  auto sample_idx = rng.sample_indices(corpus.documents().size(), 300);
  std::vector<SparseVector> sample;
  for (auto i : sample_idx) sample.push_back(corpus.documents()[i]);
  auto landmarks =
      kmeans_spherical(std::span<const SparseVector>(sample), 6, rng);
  Boundary boundary = boundary_from_sample(
      ang, std::span<const SparseVector>(landmarks),
      std::span<const SparseVector>(sample));
  LandmarkMapper<AngularSpace> mapper(ang, std::move(landmarks),
                                      std::move(boundary));
  ExperimentConfig ecfg;
  ecfg.nodes = 48;
  ecfg.seed = 8;
  ecfg.load_balance = true;
  SimilarityExperiment<AngularSpace> exp(ecfg, ang, corpus.documents(),
                                         std::move(mapper), "e2e-trec");
  exp.set_queries(corpus.make_queries(25, 3.5, rng));
  QueryStats stats = exp.run_batch(0.15 * 3.14159);
  EXPECT_EQ(stats.recall.count(), 25u);
  EXPECT_GT(stats.recall.mean(), 0.3);
  EXPECT_EQ(stats.incomplete, 0u);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  SyntheticFixture f;
  auto run = [&f]() {
    ExperimentConfig ecfg;
    ecfg.nodes = 32;
    ecfg.seed = 9;
    SimilarityExperiment<L2Space> exp(ecfg, f.space, f.data.points,
                                      f.make_mapper(4, false), "e2e-det");
    exp.set_queries(f.queries);
    QueryStats s = exp.run_batch(0.03 * f.max_dist);
    return std::tuple{s.recall.mean(), s.hops.mean(), s.total_bytes.mean(),
                      s.response_ms.mean()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace lmk
