// Tests for landmark selection (greedy / k-means / k-medoids), the
// index-space mapping, boundary determination, and the contractiveness
// property everything else relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "landmark/mapper.hpp"
#include "landmark/selection.hpp"
#include "metric/edit_distance.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

std::vector<DenseVector> two_far_clusters(std::size_t per_cluster, Rng& rng) {
  std::vector<DenseVector> pts;
  for (std::size_t i = 0; i < per_cluster; ++i) {
    pts.push_back({rng.normal(0, 1), rng.normal(0, 1)});
    pts.push_back({rng.normal(100, 1), rng.normal(100, 1)});
  }
  return pts;
}

TEST(Greedy, PicksRequestedCount) {
  Rng rng(1);
  auto pts = two_far_clusters(50, rng);
  L2Space l2;
  auto lm = greedy_selection(l2, std::span<const DenseVector>(pts), 5, rng);
  EXPECT_EQ(lm.size(), 5u);
}

TEST(Greedy, LandmarksAreDispersed) {
  Rng rng(2);
  auto pts = two_far_clusters(50, rng);
  L2Space l2;
  auto lm = greedy_selection(l2, std::span<const DenseVector>(pts), 2, rng);
  // With two clusters 140 apart, the two greedy landmarks must land in
  // different clusters (farthest-first guarantees it).
  EXPECT_GT(l2.distance(lm[0], lm[1]), 100.0);
}

TEST(Greedy, FarthestFirstInvariant) {
  // Every landmark after the first is at least as far from the earlier
  // set as any not-yet-chosen sample point at selection time; check a
  // weaker but testable consequence: min pairwise landmark distance is
  // no smaller than the covering radius of the final set.
  Rng rng(3);
  std::vector<DenseVector> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  }
  L2Space l2;
  auto lm = greedy_selection(l2, std::span<const DenseVector>(pts), 6, rng);
  double min_pair = 1e18;
  for (std::size_t i = 0; i < lm.size(); ++i) {
    for (std::size_t j = i + 1; j < lm.size(); ++j) {
      min_pair = std::min(min_pair, l2.distance(lm[i], lm[j]));
    }
  }
  double covering = 0;
  for (const auto& p : pts) {
    double best = 1e18;
    for (const auto& l : lm) best = std::min(best, l2.distance(p, l));
    covering = std::max(covering, best);
  }
  EXPECT_GE(min_pair + 1e-9, covering);
}

TEST(Greedy, WorksOnStringsWithEditDistance) {
  Rng rng(4);
  std::vector<std::string> sample{"aaaa", "aaab", "zzzz", "zzzy",
                                  "mmmm", "mmmn", "aaba", "zzxy"};
  EditDistanceSpace ed;
  auto lm = greedy_selection(ed, std::span<const std::string>(sample), 3, rng);
  EXPECT_EQ(lm.size(), 3u);
  std::set<std::string> uniq(lm.begin(), lm.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(KMeansDense, FindsTwoObviousClusters) {
  Rng rng(5);
  auto pts = two_far_clusters(100, rng);
  auto centroids = kmeans_dense(std::span<const DenseVector>(pts), 2, rng);
  ASSERT_EQ(centroids.size(), 2u);
  L2Space l2;
  // One centroid near (0,0), the other near (100,100), in some order.
  double d0 = std::min(l2.distance(centroids[0], {0, 0}),
                       l2.distance(centroids[0], {100, 100}));
  double d1 = std::min(l2.distance(centroids[1], {0, 0}),
                       l2.distance(centroids[1], {100, 100}));
  EXPECT_LT(d0, 5.0);
  EXPECT_LT(d1, 5.0);
  EXPECT_GT(l2.distance(centroids[0], centroids[1]), 100.0);
}

TEST(KMeansDense, CentroidsBeatGreedyOnClusterCenters) {
  // On the paper's clustered data, k-means centroids sit near cluster
  // centres while greedy landmarks sit at cluster fringes.
  Rng rng(6);
  SyntheticConfig cfg;
  cfg.objects = 2000;
  cfg.dims = 10;
  cfg.clusters = 4;
  cfg.deviation = 3;
  auto data = generate_clustered(cfg, rng);
  auto centroids =
      kmeans_dense(std::span<const DenseVector>(data.points), 4, rng);
  L2Space l2;
  double worst = 0;
  for (const auto& c : centroids) {
    double best = 1e18;
    for (const auto& center : data.centers) {
      best = std::min(best, l2.distance(c, center));
    }
    worst = std::max(worst, best);
  }
  // Every centroid lands near some true cluster centre.
  EXPECT_LT(worst, 8.0);
}

TEST(KMeansSpherical, SeparatesDisjointTopics) {
  Rng rng(7);
  std::vector<SparseVector> docs;
  for (int i = 0; i < 60; ++i) {
    // Topic A uses terms 0-9, topic B uses terms 100-109.
    std::uint32_t base = (i % 2 == 0) ? 0u : 100u;
    std::vector<SparseEntry> e;
    for (int t = 0; t < 5; ++t) {
      e.push_back(
          SparseEntry{base + static_cast<std::uint32_t>(rng.below(10)),
                      rng.uniform(0.5, 2.0)});
    }
    docs.emplace_back(std::move(e));
  }
  auto centroids =
      kmeans_spherical(std::span<const SparseVector>(docs), 2, rng);
  ASSERT_EQ(centroids.size(), 2u);
  AngularSpace ang;
  // The two centroids must be (nearly) orthogonal: disjoint topics.
  EXPECT_GT(ang.distance(centroids[0], centroids[1]), 1.0);
}

TEST(KMeansSpherical, CentroidsAreDenserThanMembers) {
  // The paper's key TREC observation: k-means centroids have more terms
  // than individual documents, making them informative landmarks.
  Rng rng(8);
  std::vector<SparseVector> docs;
  for (int i = 0; i < 100; ++i) {
    std::vector<SparseEntry> e;
    for (int t = 0; t < 6; ++t) {
      e.push_back(SparseEntry{static_cast<std::uint32_t>(rng.below(200)),
                              rng.uniform(0.5, 2.0)});
    }
    docs.emplace_back(std::move(e));
  }
  auto centroids =
      kmeans_spherical(std::span<const SparseVector>(docs), 3, rng);
  double avg_doc_terms = 0;
  for (const auto& d : docs) avg_doc_terms += d.term_count();
  avg_doc_terms /= docs.size();
  double avg_centroid_terms = 0;
  for (const auto& c : centroids) avg_centroid_terms += c.term_count();
  avg_centroid_terms /= centroids.size();
  EXPECT_GT(avg_centroid_terms, 2.0 * avg_doc_terms);
}

TEST(KMedoids, MedoidsAreSampleMembers) {
  Rng rng(9);
  std::vector<std::string> sample{"aaaa", "aaab", "zzzz", "zzzy",
                                  "mmmm", "mmmn"};
  EditDistanceSpace ed;
  auto lm =
      kmedoids_selection(ed, std::span<const std::string>(sample), 3, rng);
  ASSERT_EQ(lm.size(), 3u);
  for (const auto& l : lm) {
    EXPECT_NE(std::find(sample.begin(), sample.end(), l), sample.end());
  }
}

TEST(KMedoids, SeparatesStringClusters) {
  Rng rng(10);
  std::vector<std::string> sample;
  for (int i = 0; i < 20; ++i) {
    std::string a = "aaaaaaaa", z = "zzzzzzzz";
    a[rng.below(8)] = 'b';
    z[rng.below(8)] = 'y';
    sample.push_back(a);
    sample.push_back(z);
  }
  EditDistanceSpace ed;
  auto lm =
      kmedoids_selection(ed, std::span<const std::string>(sample), 2, rng);
  EXPECT_GE(ed.distance(lm[0], lm[1]), 6.0);
}

// ----- mapper -----

TEST(Mapper, MapsToLandmarkDistances) {
  L2Space l2;
  std::vector<DenseVector> lm{{0, 0}, {10, 0}};
  LandmarkMapper<L2Space> mapper(l2, lm, uniform_boundary(2, 0, 20));
  IndexPoint p = mapper.map({3, 4});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 5.0);
  EXPECT_DOUBLE_EQ(p[1], std::sqrt(49.0 + 16.0));
}

TEST(Mapper, ClampsToBoundary) {
  L2Space l2;
  std::vector<DenseVector> lm{{0, 0}};
  LandmarkMapper<L2Space> mapper(l2, lm, uniform_boundary(1, 0, 5));
  EXPECT_DOUBLE_EQ(mapper.map({100, 0})[0], 5.0);
  EXPECT_DOUBLE_EQ(mapper.map_unclamped({100, 0})[0], 100.0);
}

TEST(Mapper, ContractiveUnderLInf) {
  // |I(x) - I(y)|_inf <= d(x, y): the property that makes range queries
  // in the index space a superset of the metric ball (paper §3.1).
  Rng rng(11);
  L2Space l2;
  std::vector<DenseVector> sample;
  for (int i = 0; i < 100; ++i) {
    sample.push_back({rng.uniform(0, 50), rng.uniform(0, 50),
                      rng.uniform(0, 50)});
  }
  auto lm = greedy_selection(l2, std::span<const DenseVector>(sample), 4, rng);
  LandmarkMapper<L2Space> mapper(l2, lm, uniform_boundary(4, 0, 100));
  for (int t = 0; t < 200; ++t) {
    DenseVector x{rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(0, 50)};
    DenseVector y{rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(0, 50)};
    double lower = index_lower_bound(mapper.map(x), mapper.map(y));
    EXPECT_LE(lower, l2.distance(x, y) + 1e-9);
  }
}

TEST(Mapper, ContractiveForEditDistanceToo) {
  Rng rng(12);
  EditDistanceSpace ed;
  std::vector<std::string> sample{"gattaca", "gattacc", "cicada",
                                  "ttttttt", "gagaga", "acgtacgt"};
  auto lm = greedy_selection(ed, std::span<const std::string>(sample), 3, rng);
  LandmarkMapper<EditDistanceSpace> mapper(ed, lm, uniform_boundary(3, 0, 20));
  auto rand_dna = [&rng]() {
    std::string s;
    for (std::uint64_t i = 4 + rng.below(6); i > 0; --i) {
      s.push_back("acgt"[rng.below(4)]);
    }
    return s;
  };
  for (int t = 0; t < 100; ++t) {
    std::string x = rand_dna(), y = rand_dna();
    double lower = index_lower_bound(mapper.map(x), mapper.map(y));
    EXPECT_LE(lower, ed.distance(x, y) + 1e-9);
  }
}

TEST(Boundary, FromSampleCoversSampleDistances) {
  Rng rng(13);
  L2Space l2;
  std::vector<DenseVector> sample;
  for (int i = 0; i < 50; ++i) {
    sample.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  }
  auto lm = greedy_selection(l2, std::span<const DenseVector>(sample), 3, rng);
  Boundary b = boundary_from_sample(l2, std::span<const DenseVector>(lm),
                                    std::span<const DenseVector>(sample));
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t i = 0; i < lm.size(); ++i) {
    for (const auto& s : sample) {
      double d = l2.distance(s, lm[i]);
      EXPECT_GE(d, b[i].lo);
      EXPECT_LE(d, b[i].hi);
    }
  }
}

TEST(Boundary, UniformBoundaryShape) {
  Boundary b = uniform_boundary(5, -2, 3);
  ASSERT_EQ(b.size(), 5u);
  for (const auto& iv : b) {
    EXPECT_DOUBLE_EQ(iv.lo, -2);
    EXPECT_DOUBLE_EQ(iv.hi, 3);
  }
}

TEST(IndexLowerBound, IsLInfOnIndexPoints) {
  EXPECT_DOUBLE_EQ(index_lower_bound({1, 5, 2}, {3, 4, 2}), 2.0);
  EXPECT_DOUBLE_EQ(index_lower_bound({0}, {0}), 0.0);
}

}  // namespace
}  // namespace lmk
