// Correctness tests for range-query resolving and routing (Algorithms
// 3-5) against a brute-force oracle: a range query must return exactly
// the stored entries whose index points lie in the region — over random
// overlays, dimensionalities, rotations, and both routing engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/index_platform.hpp"
#include "routing/query.hpp"

namespace lmk {
namespace {

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed, IndexPlatform::Options popts)
      : topo(hosts, 15 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring, popts);
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

std::vector<IndexPoint> random_points(std::size_t n, std::size_t dims,
                                      Rng& rng) {
  std::vector<IndexPoint> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    IndexPoint p(dims);
    for (auto& v : p) v = rng.uniform();
    pts.push_back(std::move(p));
  }
  return pts;
}

Region random_region(std::size_t dims, double max_extent, Rng& rng) {
  Region r;
  for (std::size_t d = 0; d < dims; ++d) {
    double lo = rng.uniform();
    double hi = std::min(1.0, lo + rng.uniform() * max_extent);
    r.ranges.push_back(Interval{lo, hi});
  }
  return r;
}

std::set<std::uint64_t> brute_force(const std::vector<IndexPoint>& pts,
                                    const Region& region) {
  std::set<std::uint64_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool inside = true;
    for (std::size_t d = 0; d < pts[i].size(); ++d) {
      if (pts[i][d] < region.ranges[d].lo || pts[i][d] > region.ranges[d].hi) {
        inside = false;
        break;
      }
    }
    if (inside) out.insert(i);
  }
  return out;
}

struct Params {
  std::size_t nodes;
  std::size_t dims;
  bool rotate;
  RoutingMode routing;
};

class RoutingOracle : public ::testing::TestWithParam<Params> {};

TEST_P(RoutingOracle, RangeQueriesReturnExactlyTheRegionContents) {
  const Params p = GetParam();
  IndexPlatform::Options popts;
  popts.routing = p.routing;
  popts.naive_split_depth = 8;
  Stack s(p.nodes, 11, popts);
  Rng rng(17);
  std::uint32_t scheme = s.platform->register_scheme(
      "oracle-idx", uniform_boundary(p.dims, 0, 1), p.rotate);
  auto pts = random_points(400, p.dims, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert(scheme, i, pts[i]);
  }
  s.platform->check_placement_invariant();
  auto nodes = s.ring->alive_nodes();
  for (int t = 0; t < 25; ++t) {
    Region region = random_region(p.dims, 0.5, rng);
    IndexPoint focus(p.dims, 0.5);
    std::set<std::uint64_t> expected = brute_force(pts, region);
    std::optional<IndexPlatform::QueryOutcome> outcome;
    ChordNode* origin = nodes[rng.below(nodes.size())];
    s.platform->region_query(*origin, scheme, region, focus,
                             ReplyMode::kAllMatches,
                             [&](const IndexPlatform::QueryOutcome& o) {
                               outcome = o;
                             });
    s.sim.run();
    ASSERT_TRUE(outcome.has_value()) << "query never completed";
    EXPECT_TRUE(outcome->complete);
    EXPECT_EQ(outcome->lost_subqueries, 0);
    std::set<std::uint64_t> got(outcome->results.begin(),
                                outcome->results.end());
    EXPECT_EQ(got, expected) << "query " << t;
    EXPECT_EQ(outcome->results.size(), got.size()) << "duplicate results";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingOracle,
    ::testing::Values(Params{1, 2, false, RoutingMode::kTree},
                      Params{2, 2, false, RoutingMode::kTree},
                      Params{3, 1, false, RoutingMode::kTree},
                      Params{8, 2, false, RoutingMode::kTree},
                      Params{8, 2, true, RoutingMode::kTree},
                      Params{64, 3, false, RoutingMode::kTree},
                      Params{64, 3, true, RoutingMode::kTree},
                      Params{64, 5, false, RoutingMode::kTree},
                      Params{8, 2, false, RoutingMode::kNaive},
                      Params{64, 3, false, RoutingMode::kNaive},
                      Params{64, 3, true, RoutingMode::kNaive}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      const Params& p = param_info.param;
      std::string name = std::to_string(p.nodes) + "nodes_" +
                         std::to_string(p.dims) + "d";
      if (p.rotate) name += "_rot";
      name += p.routing == RoutingMode::kTree ? "_tree" : "_naive";
      return name;
    });

TEST(Routing, WholeSpaceQueryReachesEveryEntry) {
  IndexPlatform::Options popts;
  Stack s(32, 3, popts);
  Rng rng(5);
  std::uint32_t scheme =
      s.platform->register_scheme("full", uniform_boundary(2, 0, 1), false);
  auto pts = random_points(300, 2, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert(scheme, i, pts[i]);
  }
  Region all{{Interval{0, 1}, Interval{0, 1}}};
  std::optional<IndexPlatform::QueryOutcome> outcome;
  s.platform->region_query(*s.ring->alive_nodes()[0], scheme, all,
                           IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->results.size(), pts.size());
  // A whole-space query must touch every node: each owns part of the
  // key space and must answer (possibly with an empty reply) so the
  // querier can detect completion.
  EXPECT_EQ(outcome->index_nodes,
            static_cast<int>(s.ring->alive_count()));
}

TEST(Routing, RegionOutsideBoundarySnapsToEdgeEntries) {
  // Out-of-boundary objects are stored at the boundary point (§3.1), so
  // an out-of-boundary query must snap to the edge and still find them.
  IndexPlatform::Options popts;
  Stack s(8, 4, popts);
  std::uint32_t scheme =
      s.platform->register_scheme("oob", uniform_boundary(2, 0, 1), false);
  // An entry mapped beyond the boundary lands on the corner (1, 1).
  s.platform->insert(scheme, 77, IndexPoint{1.0, 1.0});
  s.platform->insert(scheme, 78, IndexPoint{0.2, 0.2});
  Region outside{{Interval{2, 3}, Interval{2, 3}}};
  std::optional<IndexPlatform::QueryOutcome> outcome;
  s.platform->region_query(*s.ring->alive_nodes()[0], scheme, outside,
                           IndexPoint{2.5, 2.5}, ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->complete);
  ASSERT_EQ(outcome->results.size(), 1u);
  EXPECT_EQ(outcome->results[0], 77u);
}

TEST(Routing, PointQueryFindsExactPoint) {
  IndexPlatform::Options popts;
  Stack s(16, 6, popts);
  Rng rng(6);
  std::uint32_t scheme =
      s.platform->register_scheme("pt", uniform_boundary(3, 0, 1), false);
  auto pts = random_points(200, 3, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert(scheme, i, pts[i]);
  }
  for (int t = 0; t < 10; ++t) {
    std::size_t target = rng.below(pts.size());
    Region r;
    for (double v : pts[target]) r.ranges.push_back(Interval{v, v});
    std::optional<IndexPlatform::QueryOutcome> outcome;
    s.platform->region_query(*s.ring->alive_nodes()[0], scheme, r,
                             pts[target], ReplyMode::kAllMatches,
                             [&](const auto& o) { outcome = o; });
    s.sim.run();
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(std::count(outcome->results.begin(), outcome->results.end(),
                           target) == 1);
  }
}

TEST(Routing, TopKModeReturnsAtMostKPerNode) {
  IndexPlatform::Options popts;
  popts.top_k = 3;
  Stack s(4, 7, popts);
  Rng rng(7);
  std::uint32_t scheme =
      s.platform->register_scheme("topk", uniform_boundary(2, 0, 1), false);
  auto pts = random_points(500, 2, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert(scheme, i, pts[i]);
  }
  Region all{{Interval{0, 1}, Interval{0, 1}}};
  std::optional<IndexPlatform::QueryOutcome> outcome;
  s.platform->region_query(*s.ring->alive_nodes()[0], scheme, all,
                           IndexPoint{0.5, 0.5}, ReplyMode::kTopK,
                           [&](const auto& o) { outcome = o; });
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  // Each reply carries at most top_k entries.
  EXPECT_LE(outcome->results.size(),
            static_cast<std::size_t>(outcome->result_messages) * 3);
  EXPECT_LT(outcome->results.size(), pts.size());
}

TEST(Routing, TopKRanksByIndexDistance) {
  IndexPlatform::Options popts;
  popts.top_k = 2;
  Stack s(1, 8, popts);  // single node: one reply with the global top-2
  std::uint32_t scheme =
      s.platform->register_scheme("rank", uniform_boundary(1, 0, 1), false);
  s.platform->insert(scheme, 0, IndexPoint{0.50});
  s.platform->insert(scheme, 1, IndexPoint{0.52});
  s.platform->insert(scheme, 2, IndexPoint{0.70});
  s.platform->insert(scheme, 3, IndexPoint{0.90});
  std::optional<IndexPlatform::QueryOutcome> outcome;
  s.platform->range_query(*s.ring->alive_nodes()[0], scheme,
                          IndexPoint{0.51}, 0.45, ReplyMode::kTopK,
                          [&](const auto& o) { outcome = o; });
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  std::set<std::uint64_t> got(outcome->results.begin(),
                              outcome->results.end());
  // Per-node top-k is per *solve* (the region may split into several
  // subqueries even on one node), so the platform returns a superset;
  // the two nearest entries must be in it, and each reply obeys the cap.
  EXPECT_TRUE(got.count(0) == 1 && got.count(1) == 1);
  EXPECT_LE(outcome->results.size(),
            static_cast<std::size_t>(outcome->result_messages) * 2);
}

TEST(Routing, BandwidthModelMatchesPaperFormula) {
  // k = 4 landmarks: query message = 20 + 4 + (2*2*4 + 8 + 1) = 49 bytes.
  EXPECT_EQ(query_message_size(4), 49u);
  // k = 10: 20 + 4 + (40 + 9) = 73.
  EXPECT_EQ(query_message_size(10), 73u);
  // Two subqueries batched, k = 10: 24 + 2*49 = 122.
  EXPECT_EQ(query_message_size(10, 2), 122u);

  IndexPlatform::Options popts;
  Stack s(8, 9, popts);
  std::uint32_t scheme =
      s.platform->register_scheme("bw", uniform_boundary(4, 0, 1), false);
  Rng rng(9);
  auto pts = random_points(100, 4, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert(scheme, i, pts[i]);
  }
  std::optional<IndexPlatform::QueryOutcome> outcome;
  s.platform->range_query(*s.ring->alive_nodes()[0], scheme,
                          IndexPoint(4, 0.5), 0.1, ReplyMode::kAllMatches,
                          [&](const auto& o) { outcome = o; });
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  // Query messages batch n subqueries each: size = 24 + n*49-25... each
  // message is 20 + 4 + n*(2*2*4 + 8 + 1) = 24 + 25n bytes, so the total
  // decomposes exactly into per-message headers plus subquery units.
  ASSERT_GE(outcome->query_bytes, outcome->query_messages * (24 + 25));
  std::uint64_t units =
      (outcome->query_bytes - outcome->query_messages * 24) / 25;
  EXPECT_EQ(outcome->query_bytes, outcome->query_messages * 24 + units * 25);
  EXPECT_GE(units, outcome->query_messages);
  // Result messages: 20-byte header + 6 bytes per entry.
  EXPECT_EQ(outcome->result_bytes,
            outcome->result_messages * 20u + 6u * outcome->results.size());
}

TEST(Routing, HopsBoundedByLogNPlusDepth) {
  IndexPlatform::Options popts;
  Stack s(128, 10, popts);
  Rng rng(10);
  std::uint32_t scheme =
      s.platform->register_scheme("hops", uniform_boundary(2, 0, 1), false);
  auto pts = random_points(500, 2, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert(scheme, i, pts[i]);
  }
  auto nodes = s.ring->alive_nodes();
  double worst = 0;
  for (int t = 0; t < 30; ++t) {
    Region region = random_region(2, 0.15, rng);
    std::optional<IndexPlatform::QueryOutcome> outcome;
    s.platform->region_query(*nodes[rng.below(nodes.size())], scheme, region,
                             IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                             [&](const auto& o) { outcome = o; });
    s.sim.run();
    ASSERT_TRUE(outcome.has_value());
    worst = std::max(worst, static_cast<double>(outcome->hops));
  }
  // log2(128) = 7; surrogate chains add a few hops. Far below the 512
  // runaway limit.
  EXPECT_LE(worst, 40.0);
}

TEST(Routing, ConcurrentQueriesDoNotInterfere) {
  IndexPlatform::Options popts;
  Stack s(32, 12, popts);
  Rng rng(12);
  std::uint32_t scheme =
      s.platform->register_scheme("cc", uniform_boundary(2, 0, 1), false);
  auto pts = random_points(300, 2, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert(scheme, i, pts[i]);
  }
  auto nodes = s.ring->alive_nodes();
  // Inject 20 queries at once, all outstanding simultaneously.
  std::vector<Region> regions;
  std::vector<std::optional<IndexPlatform::QueryOutcome>> outcomes(20);
  for (int t = 0; t < 20; ++t) {
    regions.push_back(random_region(2, 0.3, rng));
    s.platform->region_query(*nodes[rng.below(nodes.size())], scheme,
                             regions.back(), IndexPoint{0.5, 0.5},
                             ReplyMode::kAllMatches,
                             [&outcomes, t](const auto& o) {
                               outcomes[static_cast<std::size_t>(t)] = o;
                             });
  }
  s.sim.run();
  EXPECT_EQ(s.platform->active_queries(), 0u);
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(outcomes[static_cast<std::size_t>(t)].has_value());
    std::set<std::uint64_t> got(
        outcomes[static_cast<std::size_t>(t)]->results.begin(),
        outcomes[static_cast<std::size_t>(t)]->results.end());
    EXPECT_EQ(got, brute_force(pts, regions[static_cast<std::size_t>(t)]));
  }
}

TEST(Routing, MultipleSchemesCoexistIndependently) {
  IndexPlatform::Options popts;
  Stack s(16, 13, popts);
  Rng rng(13);
  std::uint32_t s2d = s.platform->register_scheme(
      "two-d", uniform_boundary(2, 0, 1), true);
  std::uint32_t s3d = s.platform->register_scheme(
      "three-d", uniform_boundary(3, 0, 10), true);
  auto pts2 = random_points(150, 2, rng);
  std::vector<IndexPoint> pts3 = random_points(150, 3, rng);
  for (auto& p : pts3) {
    for (auto& v : p) v *= 10;
  }
  for (std::size_t i = 0; i < pts2.size(); ++i) {
    s.platform->insert(s2d, i, pts2[i]);
  }
  for (std::size_t i = 0; i < pts3.size(); ++i) {
    s.platform->insert(s3d, i, pts3[i]);
  }
  // Query each scheme; results must come only from its own entries.
  Region r2 = random_region(2, 0.4, rng);
  std::optional<IndexPlatform::QueryOutcome> o2;
  s.platform->region_query(*s.ring->alive_nodes()[0], s2d, r2,
                           IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                           [&](const auto& o) { o2 = o; });
  s.sim.run();
  ASSERT_TRUE(o2.has_value());
  std::set<std::uint64_t> got2(o2->results.begin(), o2->results.end());
  EXPECT_EQ(got2, brute_force(pts2, r2));

  Region r3{{Interval{0, 10}, Interval{0, 10}, Interval{0, 10}}};
  std::optional<IndexPlatform::QueryOutcome> o3;
  s.platform->region_query(*s.ring->alive_nodes()[0], s3d, r3,
                           IndexPoint(3, 5.0), ReplyMode::kAllMatches,
                           [&](const auto& o) { o3 = o; });
  s.sim.run();
  ASSERT_TRUE(o3.has_value());
  EXPECT_EQ(o3->results.size(), pts3.size());
}

TEST(Routing, InsertViaNetworkPlacesAtOwner) {
  IndexPlatform::Options popts;
  Stack s(32, 14, popts);
  Rng rng(14);
  std::uint32_t scheme =
      s.platform->register_scheme("net-ins", uniform_boundary(2, 0, 1), false);
  auto pts = random_points(50, 2, rng);
  auto nodes = s.ring->alive_nodes();
  int stored = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.platform->insert_via_network(*nodes[rng.below(nodes.size())], scheme, i,
                                   pts[i], [&](int hops) {
                                     EXPECT_GE(hops, 0);
                                     ++stored;
                                   });
  }
  s.sim.run();
  EXPECT_EQ(stored, 50);
  s.platform->check_placement_invariant();
  EXPECT_EQ(s.platform->total_entries(), 50u);
}

TEST(Routing, Algorithm5SpillRegressionPaperListingWouldMissThis) {
  // Regression pin for the documented pseudocode repair (router.hpp):
  // the paper's Algorithm 5 extends the query prefix along me.id (lines
  // 10-11) without narrowing the region. Construct the exact spill:
  //
  //  * 2-D index space, nodes with ids 110..., 111..., 1111...1;
  //  * a whole-space query arrives at the surrogate A (id 110...);
  //  * entry e at (0.9, 0.2) hashes to cuboid "10" -> stored at A;
  //  * the literal listing jumps A's prefix to 110 and splits only at
  //    the third plane, shipping the region piece dim0 > 0.75 (which
  //    contains e) to the "111" owner B, where e is not stored -> miss.
  //
  // The level-by-level refinement must solve the "10" piece locally at
  // A and return e.
  Simulator sim;
  ConstantLatencyModel topo(3, 10 * kMillisecond);
  Network net(sim, topo);
  Ring::Options ropts;
  Ring ring(net, ropts);
  ChordNode& a = ring.create_node_with_id(0, Id{0b110} << 61);
  ChordNode& b = ring.create_node_with_id(1, Id{0b111} << 61);
  ring.create_node_with_id(2, ~Id{0});
  ring.bootstrap();
  IndexPlatform platform(ring);
  auto scheme =
      platform.register_scheme("alg5", uniform_boundary(2, 0, 1), false);
  platform.insert(scheme, 7, IndexPoint{0.9, 0.2});  // cuboid "10"
  ASSERT_EQ(platform.store(a, scheme).size(), 1u)
      << "precondition: e must live on the 110... node";
  // Also one entry genuinely in the 111 cuboid (it lands past B's id,
  // on the last node).
  platform.insert(scheme, 8, IndexPoint{0.9, 0.9});
  ASSERT_TRUE(platform.store(a, scheme).size() == 1u);

  std::optional<IndexPlatform::QueryOutcome> outcome;
  platform.region_query(b, scheme,
                        Region{{Interval{0, 1}, Interval{0, 1}}},
                        IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                        [&](const auto& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  std::set<std::uint64_t> got(outcome->results.begin(),
                              outcome->results.end());
  EXPECT_EQ(got, (std::set<std::uint64_t>{7, 8}));
}

// QuerySplit unit coverage (Algorithm 4).
TEST(QuerySplit, StraddleSplitsRegionAtPlane) {
  SchemeRouting sch;
  sch.boundary = uniform_boundary(2, 0, 1);
  sch.query_message_bytes = query_message_size(2);
  RangeQuery q;
  ASSERT_TRUE(make_query(sch, 1, 0,
                         Region{{Interval{0.4, 0.8}, Interval{0.2, 0.3}}},
                         IndexPoint{0.5, 0.25}, &q));
  ASSERT_EQ(q.prefix.length, 0);  // straddles first plane
  auto subs = query_split(q, 1);
  ASSERT_EQ(subs.size(), 2u);
  // Upper child first (paper order).
  EXPECT_EQ(get_bit(subs[0].prefix.key, 1), 1);
  EXPECT_DOUBLE_EQ(subs[0].region.ranges[0].lo, 0.5);
  EXPECT_DOUBLE_EQ(subs[0].region.ranges[0].hi, 0.8);
  EXPECT_EQ(get_bit(subs[1].prefix.key, 1), 0);
  EXPECT_DOUBLE_EQ(subs[1].region.ranges[0].hi, 0.5);
  // Dim 1 untouched by a dim-0 split.
  EXPECT_DOUBLE_EQ(subs[0].region.ranges[1].lo, 0.2);
}

TEST(QuerySplit, OneSidedDescends) {
  SchemeRouting sch;
  sch.boundary = uniform_boundary(1, 0, 1);
  sch.query_message_bytes = query_message_size(1);
  RangeQuery q;
  ASSERT_TRUE(make_query(sch, 1, 0, Region{{Interval{0.6, 0.7}}},
                         IndexPoint{0.65}, &q));
  // Enclosing prefix: [0.6,0.7] descends "1" then "10", then straddles
  // the 0.625 plane.
  EXPECT_EQ(q.prefix.length, 2);
  // Manually rebuild a shallow query to exercise the one-sided cases.
  RangeQuery shallow = q;
  shallow.prefix = Prefix{0, 0};
  auto subs = query_split(shallow, 1);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].prefix.length, 1);
  EXPECT_EQ(get_bit(subs[0].prefix.key, 1), 1);
  EXPECT_DOUBLE_EQ(subs[0].region.ranges[0].lo, 0.6);  // region unchanged
}

}  // namespace
}  // namespace lmk
